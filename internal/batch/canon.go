// Package batch packs many small LLL instances into one engine run and
// canonicalizes instances for result caching.
//
// The serving path (internal/service) runs every job as its own sequence of
// engine dispatches, so small instances pay a full pool round-trip per scan
// round. Pack concatenates the event spaces of disjoint instances into one
// global index range; the packed runners then cover the union with a single
// sharded scan per round (engine.ForEachSegments), amortizing dispatch
// across the whole batch while each instance keeps its own assignment, its
// own RNG stream and its own round/resampling budget. The per-instance
// results are bit-for-bit identical to solo runs with the same seed — the
// packed scan is read-only and index-addressed, and every random draw
// happens on the instance's private generator in the solo order — which the
// equivalence tests in this package lock in.
//
// Hash computes a canonical, isomorphism-stable fingerprint of an instance
// (Weisfeiler-Leman color refinement over the dependency graph, seeded with
// per-event structural invariants). The service's result cache keys on it,
// so spec variations that cannot change the result — worker counts, retry
// budgets, field ordering — collapse onto one cache entry.
package batch

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/prng"
)

// wlRounds is the number of Weisfeiler-Leman refinement rounds. The
// generator families in internal/graph are distinguished within a few
// rounds; more rounds only cost time on large instances.
const wlRounds = 3

// mix folds x into the running hash h. It is the only combinator used by
// the canonical hash, so the fingerprint is stable across processes and
// architectures (pure integer arithmetic, no map iteration).
func mix(h, x uint64) uint64 {
	return prng.Mix64(h*0x9E3779B97F4A7C15 + x + 0xD1B54A32D192ED03)
}

// mixSorted folds a multiset of values into h order-insensitively by
// sorting first. values is mutated (sorted in place).
func mixSorted(h uint64, values []uint64) uint64 {
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, v := range values {
		h = mix(h, v)
	}
	return h
}

// varSignature fingerprints one variable: its distribution (exact float64
// bits of every probability) and its rank (how many events it affects).
// Variable identity and name are deliberately excluded — the hash must be
// stable under relabeling.
func varSignature(v *model.Variable) uint64 {
	h := mix(0x7661_7269_6162_6c65, uint64(v.Dist.Size()))
	for i := 0; i < v.Dist.Size(); i++ {
		h = mix(h, math.Float64bits(v.Dist.Prob(i)))
	}
	return mix(h, uint64(len(v.Events)))
}

// eventSignature fingerprints one event: scope size, dependency degree, the
// multiset of (scope variable signature, per-position event structure)
// pairs, and — for events without a serializable spec — the exact
// unconditional probability as a semantic stand-in for the opaque
// predicate. The multiset view makes the signature invariant under
// permutations of the scope, which relabeled generator builds produce.
func eventSignature(inst *model.Instance, id int, varSig []uint64, empty *model.Assignment) uint64 {
	e := inst.Event(id)
	h := mix(0x6576_656e_74, uint64(len(e.Scope)))
	h = mix(h, uint64(inst.DependencyGraph().Degree(id)))

	pos := make([]uint64, len(e.Scope))
	switch s := e.Spec.(type) {
	case model.ConjunctionSpec:
		h = mix(h, 0xc01) // kind tag: conjunction
		for i, vid := range e.Scope {
			ph := mix(0x706f_73, varSig[vid])
			set := append([]int(nil), s.BadSets[i]...)
			sort.Ints(set)
			ph = mix(ph, uint64(len(set)))
			for _, val := range set {
				ph = mix(ph, uint64(val))
			}
			pos[i] = ph
		}
	case model.AllEqualSpec:
		h = mix(h, 0xa11e_4a1) // kind tag: all-equal
		for i, vid := range e.Scope {
			pos[i] = mix(0x706f_73, varSig[vid])
		}
	default:
		// Opaque predicate: fall back to the scope structure plus the
		// exact unconditional probability of the event.
		h = mix(h, 0x0b_aca) // kind tag: opaque
		h = mix(h, math.Float64bits(inst.CondProb(id, empty)))
		for i, vid := range e.Scope {
			pos[i] = mix(0x706f_73, varSig[vid])
		}
	}
	return mixSorted(h, pos)
}

// Hash returns the canonical fingerprint of inst.
//
// The fingerprint is invariant under instance isomorphism — any relabeling
// of variables and events that preserves the scopes, the distributions and
// the event structure hashes identically, including permuted scope order
// and permuted construction order of the generator-built families
// (internal/graph cycles, random regular graphs, the hypergraph families).
// It is computed by Weisfeiler-Leman color refinement on the dependency
// graph: initial colors are per-event structural invariants
// (eventSignature), each round re-colors every event with its own color
// plus the sorted multiset of its neighbors' colors, and the final hash
// combines the sorted multiset of stable colors with the sorted multiset of
// variable signatures.
//
// Like every WL-style invariant it is complete only up to WL
// distinguishability, and 64 bits can collide; callers that need exactness
// (the service result cache) additionally fold the generation seed and
// parameters into their key, so a collision requires two DIFFERENT
// instances built from the SAME spec — which cannot happen, the builders
// are deterministic.
func Hash(inst *model.Instance) uint64 {
	n, m := inst.NumVars(), inst.NumEvents()
	empty := model.NewAssignment(inst)

	varSig := make([]uint64, n)
	for v := 0; v < n; v++ {
		varSig[v] = varSignature(inst.Var(v))
	}

	colors := make([]uint64, m)
	for id := 0; id < m; id++ {
		colors[id] = eventSignature(inst, id, varSig, empty)
	}

	g := inst.DependencyGraph()
	next := make([]uint64, m)
	var scratch []uint64
	for round := 0; round < wlRounds; round++ {
		for id := 0; id < m; id++ {
			nb := g.Neighbors(id)
			scratch = scratch[:0]
			for _, u := range nb {
				scratch = append(scratch, colors[u])
			}
			next[id] = mixSorted(mix(0x776c, colors[id]), scratch)
		}
		colors, next = next, colors
	}

	h := mix(0x6c6c_6c, uint64(n))
	h = mix(h, uint64(m))
	h = mixSorted(h, colors)
	vs := append([]uint64(nil), varSig...)
	return mixSorted(h, vs)
}
