package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// swapHandler lets an httptest server exist (so its URL is known) before
// the clustered services that need those URLs in their membership are
// constructed.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterPair builds a real two-node cluster "a"/"b": each node runs the
// full service (real RunSpec) behind its own HTTP server, with membership
// pointing at the other.
func clusterPair(t testing.TB) (services map[string]*Service, regs map[string]*obs.Registry) {
	t.Helper()
	ha, hb := &swapHandler{}, &swapHandler{}
	tsa, tsb := httptest.NewServer(ha), httptest.NewServer(hb)
	nodes := map[string]string{"a": tsa.URL, "b": tsb.URL}
	services = make(map[string]*Service)
	regs = map[string]*obs.Registry{"a": obs.NewRegistry(), "b": obs.NewRegistry()}
	for _, name := range []string{"a", "b"} {
		s := New(Config{
			QueueCap: 64, MaxInFlight: 4, CacheSize: 8, Metrics: regs[name],
			Cluster: &ClusterConfig{Self: name, Nodes: nodes, FillWaitMS: 100},
		})
		services[name] = s
	}
	ha.set(NewHandler(services["a"], regs["a"]))
	hb.set(NewHandler(services["b"], regs["b"]))
	t.Cleanup(func() {
		tsa.Close()
		tsb.Close()
		for _, s := range services {
			s.Shutdown(context.Background())
		}
	})
	return services, regs
}

// seedOwnedBy finds a cacheSpec seed whose cache key the given node owns,
// plus its key — so tests can aim jobs at the owner or the non-owner
// deliberately.
func seedOwnedBy(t testing.TB, s *Service, owner string) (uint64, uint64) {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		js, err := cacheSpec(seed).withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := s.jobKeyInst(js)
		if err != nil {
			t.Fatal(err)
		}
		if s.peers.owner(key) == owner {
			return seed, key
		}
	}
	t.Fatalf("no seed in [1,64) hashes to node %q", owner)
	return 0, 0
}

// TestPeerFillServesWarmSummary: a result solved on the key's home node is
// served to a miss on the other node through the peer fill — bit-identical,
// marked as a (peer) cache hit, with no second solve.
func TestPeerFillServesWarmSummary(t *testing.T) {
	services, regs := clusterPair(t)
	sa, sb := services["a"], services["b"]
	seed, _ := seedOwnedBy(t, sa, "a")

	cold := runJob(t, sa, cacheSpec(seed)) // solved and cached on the owner
	if cold.CacheHit {
		t.Fatal("cold solve marked as a cache hit")
	}

	j, err := sb.Submit(cacheSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	warm := j.View().Result
	if !warm.CacheHit {
		t.Fatal("job on the non-owner was not served through the peer fill")
	}
	normalized := *warm
	normalized.CacheHit = false
	if !reflect.DeepEqual(*cold, normalized) {
		t.Fatalf("peer-filled result not bit-identical to the owner's solve:\ncold: %+v\nwarm: %+v", *cold, normalized)
	}
	events, _, _ := j.EventsSince(0)
	peerHit := false
	for _, e := range events {
		if e.Kind == "cache_hit" && e.Peer {
			peerHit = true
		}
	}
	if !peerHit {
		t.Error("no cache_hit event with peer=true in the stream")
	}
	if got := regs["b"].Counter("peer_fill_hits_total").Value(); got != 1 {
		t.Errorf("peer_fill_hits_total = %d on b, want 1", got)
	}
	if got := regs["a"].Counter("peer_serves_total").Value(); got != 1 {
		t.Errorf("peer_serves_total = %d on a, want 1", got)
	}
}

// TestPeerWriteThroughPopulatesHome: a solve on a non-owner node is written
// through to the key's home node, so an isomorphic resubmission landing on
// the owner is a plain local cache hit — no re-solve anywhere. This is the
// cluster's cache-locality contract: wherever a job first lands, the entry
// ends up at the home node every later submission is routed to.
func TestPeerWriteThroughPopulatesHome(t *testing.T) {
	services, regs := clusterPair(t)
	sa, sb := services["a"], services["b"]
	seed, _ := seedOwnedBy(t, sa, "a")

	cold := runJob(t, sb, cacheSpec(seed)) // non-owner solves as cluster leader
	if got := regs["b"].Counter("peer_fill_leads_total").Value(); got != 1 {
		t.Errorf("peer_fill_leads_total = %d on b, want 1 (claim granted)", got)
	}
	if got := regs["a"].Counter("peer_claims_granted_total").Value(); got != 1 {
		t.Errorf("peer_claims_granted_total = %d on a, want 1", got)
	}

	// The write-through may complete just after the job is terminal; wait
	// for the store counter before asserting the owner's cache.
	deadline := time.Now().Add(5 * time.Second)
	for regs["b"].Counter("peer_stores_total").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("write-through store never reached the owner")
		}
		time.Sleep(time.Millisecond)
	}

	warm := runJob(t, sa, cacheSpec(seed))
	if !warm.CacheHit {
		t.Fatal("owner-side resubmission missed the cache after write-through")
	}
	normalized := *warm
	normalized.CacheHit = false
	if !reflect.DeepEqual(*cold, normalized) {
		t.Fatalf("write-through result not bit-identical:\ncold: %+v\nwarm: %+v", *cold, normalized)
	}
	if got := regs["b"].Counter("peer_fill_hits_total").Value(); got != 0 {
		t.Errorf("peer_fill_hits_total = %d on b, want 0 (b solved, never filled)", got)
	}
}

// TestPeerFillDeadOwnerFallsBack: with the key's home node unreachable the
// peer protocol must never reduce availability — the job solves locally.
func TestPeerFillDeadOwnerFallsBack(t *testing.T) {
	reg := obs.NewRegistry()
	hb := &swapHandler{}
	tsb := httptest.NewServer(hb)
	// Node "a" is a dead address (reserved port 1 refuses connections).
	nodes := map[string]string{"a": "http://127.0.0.1:1", "b": tsb.URL}
	sb := New(Config{
		QueueCap: 64, MaxInFlight: 4, CacheSize: 8, Metrics: reg,
		Cluster: &ClusterConfig{Self: "b", Nodes: nodes, FillWaitMS: 50,
			Client: &http.Client{Timeout: 200 * time.Millisecond}},
	})
	hb.set(NewHandler(sb, reg))
	t.Cleanup(func() {
		tsb.Close()
		sb.Shutdown(context.Background())
	})

	seed, _ := seedOwnedBy(t, sb, "a")
	sum := runJob(t, sb, cacheSpec(seed))
	if sum.CacheHit {
		t.Fatal("job behind a dead owner reported a cache hit")
	}
	if !sum.Satisfied {
		t.Fatal("job behind a dead owner did not solve")
	}
	if got := reg.Counter("peer_fill_errors_total").Value(); got < 1 {
		t.Errorf("peer_fill_errors_total = %d, want >= 1", got)
	}
}

// TestPeerClaims: the owner-side claim table grants exactly one claim per
// key, wakes waiters on release, and expires stale claims so a crashed
// claimer cannot wedge the key.
func TestPeerClaims(t *testing.T) {
	pc := newPeerClaims()
	granted, _ := pc.claim(7, time.Minute)
	if !granted {
		t.Fatal("first claim not granted")
	}
	granted, wait := pc.claim(7, time.Minute)
	if granted {
		t.Fatal("second claim granted while the first is live")
	}
	select {
	case <-wait:
		t.Fatal("waiter woke before release")
	default:
	}
	pc.release(7)
	select {
	case <-wait:
	case <-time.After(time.Second):
		t.Fatal("release did not wake the waiter")
	}
	// Released key: claimable again.
	if granted, _ := pc.claim(7, time.Minute); !granted {
		t.Fatal("claim after release not granted")
	}
	// Expired claim: a fresh claimer takes over.
	if granted, _ := pc.claim(9, time.Nanosecond); !granted {
		t.Fatal("first claim on key 9 not granted")
	}
	time.Sleep(time.Millisecond)
	if granted, _ := pc.claim(9, time.Minute); !granted {
		t.Fatal("expired claim was not reclaimable")
	}
	pc.release(7)
	pc.release(9)
	pc.release(9) // idempotent on an empty table
}

// TestCacheEvictRacesSingleFlight pins the follower hand-off against LRU
// eviction racing the leader's store: the leader's entry is evicted from a
// capacity-1 cache after its put but before the followers wake (simulated
// here by evicting before complete, the worst interleaving). Followers must
// still receive the leader's summary from the flight entry itself — neither
// losing the result nor triggering a second solve. Run under -race.
func TestCacheEvictRacesSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	cache := newResultCache(1, reg)
	flights := newFlightGroup(reg)

	const key = uint64(42)
	_, leader := flights.begin(key)
	if !leader {
		t.Fatal("first begin is not the leader")
	}

	const followers = 8
	results := make(chan *Summary, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, lead := flights.begin(key)
			if lead {
				results <- nil // a follower stole leadership: bug
				return
			}
			if err := flights.wait(context.Background(), f); err != nil {
				results <- nil
				return
			}
			results <- f.result()
		}()
	}
	// All followers must be parked on the flight before the leader finishes.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("cache_singleflight_waits_total").Value() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight",
				reg.Counter("cache_singleflight_waits_total").Value(), followers)
		}
		time.Sleep(time.Millisecond)
	}

	sum := &Summary{Algorithm: AlgMTPar, Satisfied: true, Resamplings: 17}
	cache.put(key, sum)        // the leader's store...
	cache.put(1, &Summary{})   // ...evicted by an unrelated job before
	cache.put(2, &Summary{})   // any follower wakes (capacity 1)
	flights.complete(key, sum) // leader finishes; followers wake now

	wg.Wait()
	close(results)
	if _, ok := cache.get(key); ok {
		t.Fatal("test setup broken: leader's entry survived eviction")
	}
	got := 0
	for r := range results {
		if r == nil {
			t.Fatal("a follower lost the leader's result (or re-ran the solve)")
		}
		if !r.Satisfied || r.Resamplings != 17 {
			t.Fatalf("follower received a wrong summary: %+v", r)
		}
		if r == sum {
			t.Fatal("follower shares the leader's Summary pointer (must be a copy)")
		}
		got++
	}
	if got != followers {
		t.Fatalf("%d/%d followers got a result", got, followers)
	}
}

// TestCacheEvictSingleFlightStress drives the full service path with a
// capacity-1 cache and concurrent identical + distinct jobs, so eviction,
// stores and flight hand-offs interleave freely under the race detector.
// Every job must terminate satisfied with the bit-identical per-key result.
func TestCacheEvictSingleFlightStress(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{QueueCap: 256, MaxInFlight: 8, Metrics: reg, CacheSize: 1})
	defer s.Shutdown(context.Background())

	const perSeed, seeds = 6, 3
	jobs := make([]*Job, 0, perSeed*seeds)
	for i := 0; i < perSeed; i++ {
		for seed := uint64(1); seed <= seeds; seed++ {
			j, err := s.Submit(cacheSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	bySeed := make(map[uint64]*Summary)
	for _, j := range jobs {
		waitState(t, j, StateDone)
		res := j.View().Result
		if res == nil || !res.Satisfied {
			t.Fatalf("job %s did not finish satisfied: %+v", j.ID, res)
		}
		norm := *res
		norm.CacheHit = false
		seed := j.Spec.Seed
		if prev, ok := bySeed[seed]; ok {
			if !reflect.DeepEqual(*prev, norm) {
				t.Fatalf("seed %d results diverged:\n%+v\n%+v", seed, *prev, norm)
			}
		} else {
			bySeed[seed] = &norm
		}
	}
}
