package tenant

import (
	"errors"
	"math"
	"sync"
	"time"
)

// Limiter errors. The service maps both onto HTTP 429 with the decision's
// Retry-After.
var (
	// ErrThrottled: the tenant's token bucket is empty — its sustained
	// admission rate is exhausted.
	ErrThrottled = errors.New("tenant: rate limit exceeded")
	// ErrQuota: the tenant's in-flight quota is exhausted — too many of
	// its jobs are queued or running.
	ErrQuota = errors.New("tenant: in-flight quota exhausted")
)

// Decision is the outcome of one Admit call.
type Decision struct {
	// Err is nil for an admitted job, ErrThrottled or ErrQuota otherwise.
	Err error
	// RetryAfter is the suggested client backoff for a rejection: for a
	// throttle, the exact time until the bucket refills one token; for a
	// quota rejection, a fixed nominal second (the quota frees when a job
	// finishes, which the limiter cannot predict).
	RetryAfter time.Duration
}

// bucket is one tenant's token bucket + in-flight account.
type bucket struct {
	spec     Spec
	tokens   float64 // current tokens, <= spec.Burst
	last     time.Time
	inflight int
	// primed is false until the first Admit initializes the refill clock;
	// the bucket starts full.
	primed bool
}

// Limiter enforces per-tenant token-bucket rates and in-flight quotas at
// admission. Admit charges the tenant; Release returns the in-flight unit
// when the job goes terminal. The clock is injectable for exact tests.
// All methods are safe for concurrent use; a nil *Limiter admits
// everything (tenancy disabled).
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

// NewLimiter builds a limiter over the tenant set. now overrides the clock
// (nil means time.Now). Unknown names admit with no accounting.
func NewLimiter(specs []Spec, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	l := &Limiter{buckets: make(map[string]*bucket, len(specs)), now: now}
	for _, sp := range specs {
		sp = sp.withDefaults()
		l.buckets[sp.Name] = &bucket{spec: sp, tokens: float64(sp.Burst)}
	}
	return l
}

// Admit charges the named tenant for one admission: the in-flight quota is
// checked first (it consumes nothing), then one token is drawn from the
// bucket. A rejection changes no state, so a throttled client cannot
// degrade the tenant's quota and vice versa. Nil receiver admits.
func (l *Limiter) Admit(name string) Decision {
	if l == nil {
		return Decision{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[name]
	if b == nil {
		return Decision{}
	}
	if q := b.spec.MaxInFlight; q > 0 && b.inflight >= q {
		return Decision{Err: ErrQuota, RetryAfter: time.Second}
	}
	if b.spec.Rate > 0 {
		now := l.now()
		if !b.primed {
			b.primed = true
			b.last = now
		}
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(float64(b.spec.Burst), b.tokens+dt*b.spec.Rate)
			b.last = now
		}
		if b.tokens < 1 {
			waitSec := math.Ceil((1 - b.tokens) / b.spec.Rate)
			wait := time.Hour
			if waitSec < 3600 {
				wait = time.Duration(waitSec * float64(time.Second))
			}
			if wait < time.Second {
				// HTTP Retry-After has whole-second resolution; round up so
				// a compliant client never retries into a still-empty bucket.
				wait = time.Second
			}
			return Decision{Err: ErrThrottled, RetryAfter: wait}
		}
		b.tokens--
	}
	b.inflight++
	return Decision{}
}

// Release returns the named tenant's in-flight unit (call exactly once per
// admitted job, when it reaches a terminal state). Nil receiver no-ops.
func (l *Limiter) Release(name string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.buckets[name]; b != nil && b.inflight > 0 {
		b.inflight--
	}
}

// InFlight returns the named tenant's admitted-but-not-terminal count.
func (l *Limiter) InFlight(name string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.buckets[name]; b != nil {
		return b.inflight
	}
	return 0
}
