package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// The proofs of Theorems 1.1 and 1.3 are stated against an order chosen by
// an ADAPTIVE adversary: "our algorithm still works if an (even adaptive)
// adversary chooses the order in which we have to fix the random
// variables". A fixed permutation cannot express adaptivity — the adversary
// may inspect everything fixed so far before naming the next variable —
// so this file provides the adaptive driver and two built-in adversaries.

// AdversaryState is the read-only view handed to an adaptive adversary
// before each fixing step.
type AdversaryState struct {
	// Instance is the instance being fixed.
	Instance *model.Instance
	// Assignment is the current partial assignment (do not mutate).
	Assignment *model.Assignment
	// PStar is the current bookkeeping (do not mutate).
	PStar *PStar
	// Unfixed lists the identifiers of the still-unfixed variables, in
	// ascending order.
	Unfixed []int
}

// Adversary picks the next variable to fix from state.Unfixed.
type Adversary func(state *AdversaryState) int

// FixSequentialAdaptive runs the sequential fixing process with the order
// chosen step-by-step by the adversary. The guarantee of the theorems is
// unchanged: strictly below the threshold the final assignment avoids all
// bad events no matter how the adversary plays (and the test suite
// exercises exactly that with the greedy worst-case adversary below).
func FixSequentialAdaptive(inst *model.Instance, adversary Adversary, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if r := inst.Rank(); r > 3 {
		return nil, fmt.Errorf("%w: rank %d", ErrRankTooHigh, r)
	}
	if adversary == nil {
		return nil, fmt.Errorf("core: nil adversary")
	}

	g := inst.DependencyGraph()
	ps := NewPStar(g)
	a := model.NewAssignment(inst)
	orc := newOracle(inst)
	base := make([]float64, inst.NumEvents())
	empty := model.NewAssignment(inst)
	for v := 0; v < inst.NumEvents(); v++ {
		base[v] = orc.CondProb(v, empty)
	}

	f := &fixer{inst: inst, orc: orc, g: g, ps: ps, a: a, opts: opts}
	if g.M() > 0 {
		f.stats.PeakEdgeSum = 2
	}
	if inst.NumEvents() > 0 {
		f.stats.PeakEventBound = 1
	}
	for _, b := range base {
		if b > f.stats.PeakCertBound {
			f.stats.PeakCertBound = b
		}
	}

	unfixed := make([]int, inst.NumVars())
	for i := range unfixed {
		unfixed[i] = i
	}
	for len(unfixed) > 0 {
		state := &AdversaryState{
			Instance:   inst,
			Assignment: a,
			PStar:      ps,
			Unfixed:    unfixed,
		}
		vid := adversary(state)
		pos := -1
		for i, u := range unfixed {
			if u == vid {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("core: adversary chose %d, which is not unfixed", vid)
		}
		unfixed = append(unfixed[:pos], unfixed[pos+1:]...)
		if err := f.fixOne(vid); err != nil {
			return nil, err
		}
		f.updatePeaks(vid, base)
		if opts.Audit {
			if err := ps.Audit(inst, a, base, 1e-6); err != nil {
				return nil, fmt.Errorf("after fixing variable %d: %w", vid, err)
			}
		}
	}

	f.stats.VarsFixed = inst.NumVars()
	f.stats.MaxEdgeSum = ps.MaxEdgeSum()
	f.stats.MaxEventBound = ps.MaxEventBound()
	violated, err := f.orc.CountViolated(a)
	if err != nil {
		return nil, err
	}
	f.stats.FinalViolatedEvents = violated
	for v := 0; v < inst.NumEvents(); v++ {
		if q := base[v] * ps.EventBound(v); q > f.stats.MaxFinalProbQuotient {
			f.stats.MaxFinalProbQuotient = q
		}
	}
	return &Result{Assignment: a, PStar: ps, Stats: f.stats}, nil
}

// GreedyAdversary is a worst-case-seeking adaptive adversary: at each step
// it picks the unfixed variable whose affected events currently carry the
// LARGEST certified failure bound — steering the process towards the
// tightest corner of the budget. Below the threshold the theorems defeat
// it anyway.
func GreedyAdversary(state *AdversaryState) int {
	inst := state.Instance
	bestVar := state.Unfixed[0]
	bestScore := math.Inf(-1)
	for _, vid := range state.Unfixed {
		score := 0.0
		for _, e := range inst.Var(vid).Events {
			score += state.PStar.EventBound(e) * inst.CondProb(e, state.Assignment)
		}
		if score > bestScore {
			bestScore = score
			bestVar = vid
		}
	}
	return bestVar
}

// RoundRobinAdversary replays a fixed order adaptively (mainly for tests:
// it must match FixSequential with the same order).
func RoundRobinAdversary(order []int) Adversary {
	next := 0
	return func(state *AdversaryState) int {
		vid := order[next]
		next++
		return vid
	}
}
