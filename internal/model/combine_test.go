package model

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/prng"
)

// multiVarEdgeInstance builds a cycle-shaped rank-2 instance where every
// dependency edge carries TWO variables (a coin and a 3-valued die); the
// bad event at node v occurs iff, on both incident edges, the coin points at
// v and the die is 0. This is exactly the situation the paper's Section 2
// remark resolves by combining the variables of an edge.
func multiVarEdgeInstance(t *testing.T, n int) *Instance {
	t.Helper()
	b := NewBuilder()
	coin := make([]int, n)
	die := make([]int, n)
	biased, err := dist.New([]float64{0.45, 0.55})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < n; e++ { // edge e connects nodes e and (e+1)%n
		coin[e] = b.AddVariable(biased, "coin")
		die[e] = b.AddVariable(dist.Uniform(3), "die")
	}
	for v := 0; v < n; v++ {
		left := (v - 1 + n) % n // edge left points at v with coin=1
		right := v              // edge right points at v with coin=0
		scope := []int{coin[left], die[left], coin[right], die[right]}
		b.AddEvent(scope, func(vals []int) bool {
			return vals[0] == 1 && vals[1] == 0 && vals[2] == 0 && vals[3] == 0
		}, nil, "")
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCombinePreservesStructure(t *testing.T) {
	inst := multiVarEdgeInstance(t, 6)
	if inst.Rank() != 2 {
		t.Fatalf("rank = %d", inst.Rank())
	}
	c, err := Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	comb := c.Instance
	// 12 original variables merge into 6 (one per edge).
	if comb.NumVars() != 6 {
		t.Fatalf("combined has %d variables, want 6", comb.NumVars())
	}
	for _, g := range c.Groups {
		if len(g) != 2 {
			t.Fatalf("group %v should have 2 members", g)
		}
	}
	if comb.NumEvents() != inst.NumEvents() {
		t.Fatal("event count changed")
	}
	// Same p, d, r.
	p0, d0, r0 := inst.Params()
	p1, d1, r1 := comb.Params()
	if math.Abs(p0-p1) > 1e-12 || d0 != d1 || r0 != r1 {
		t.Fatalf("params changed: (%v,%d,%d) -> (%v,%d,%d)", p0, d0, r0, p1, d1, r1)
	}
	// Identical dependency graphs.
	g0, g1 := inst.DependencyGraph(), comb.DependencyGraph()
	if g0.M() != g1.M() || g0.N() != g1.N() {
		t.Fatal("dependency graph changed")
	}
	for _, e := range g0.Edges() {
		if !g1.HasEdge(e.U, e.V) {
			t.Fatalf("dependency edge %v lost", e)
		}
	}
}

func TestCombineProbabilitiesAgree(t *testing.T) {
	// Unconditional event probabilities must match between the original
	// and the combined instance.
	inst := multiVarEdgeInstance(t, 5)
	c, err := Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	a0 := NewAssignment(inst)
	a1 := NewAssignment(c.Instance)
	for e := 0; e < inst.NumEvents(); e++ {
		p0 := inst.CondProb(e, a0)
		p1 := c.Instance.CondProb(e, a1)
		if math.Abs(p0-p1) > 1e-12 {
			t.Fatalf("event %d: %v vs %v", e, p0, p1)
		}
	}
}

func TestCombineConditionalAgreesUnderExpansion(t *testing.T) {
	// Fixing a combined variable and expanding must give the same event
	// status as fixing the originals directly.
	inst := multiVarEdgeInstance(t, 5)
	c, err := Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(9)
	for trial := 0; trial < 50; trial++ {
		a := NewAssignment(c.Instance)
		for vid := 0; vid < c.Instance.NumVars(); vid++ {
			a.Fix(vid, r.Intn(c.Instance.Var(vid).Dist.Size()))
		}
		expanded := c.Expand(a)
		if !expanded.Complete() {
			t.Fatal("expansion incomplete")
		}
		for e := 0; e < inst.NumEvents(); e++ {
			bad0, err := c.Instance.Violated(e, a)
			if err != nil {
				t.Fatal(err)
			}
			bad1, err := inst.Violated(e, expanded)
			if err != nil {
				t.Fatal(err)
			}
			if bad0 != bad1 {
				t.Fatalf("trial %d event %d: combined %v vs expanded %v", trial, e, bad0, bad1)
			}
		}
	}
}

func TestCombineSingletonGroupsKeepDistributions(t *testing.T) {
	b := NewBuilder()
	x := b.AddVariable(dist.MustNew([]float64{0.3, 0.7}), "x")
	y := b.AddVariable(dist.Uniform(3), "y")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E0")
	b.AddEvent([]int{y}, func(v []int) bool { return v[0] == 2 }, nil, "E1")
	inst := b.MustBuild()
	c, err := Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instance.NumVars() != 2 {
		t.Fatalf("vars = %d", c.Instance.NumVars())
	}
	if got := c.Instance.Var(0).Dist.Prob(1); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("distribution changed: %v", got)
	}
}

func TestCombineRejectsHugeGroups(t *testing.T) {
	b := NewBuilder()
	var scope []int
	for i := 0; i < 10; i++ {
		scope = append(scope, b.AddVariable(dist.Uniform(8), ""))
	}
	b.AddEvent(scope, func([]int) bool { return false }, nil, "E")
	inst := b.MustBuild()
	// All ten variables share the single event: one group of 8^10 values.
	if _, err := Combine(inst); err == nil {
		t.Fatal("oversized combined variable accepted")
	}
}

func TestCombineMixedRanks(t *testing.T) {
	// Variables with different event sets stay separate.
	b := NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	y := b.AddVariable(dist.Uniform(2), "y")
	z := b.AddVariable(dist.Uniform(2), "z")
	b.AddEvent([]int{x, y}, func(v []int) bool { return v[0] == 1 && v[1] == 1 }, nil, "E0")
	b.AddEvent([]int{x, y, z}, func(v []int) bool { return v[0] == 0 && v[2] == 1 }, nil, "E1")
	inst := b.MustBuild()
	c, err := Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	// x and y share {E0, E1}; z affects only E1: two groups.
	if len(c.Groups) != 2 {
		t.Fatalf("groups = %v", c.Groups)
	}
}
