// Package slo is the service-level-objective engine of the serving stack:
// declared objectives (p99 run latency, error rate, queue wait) evaluated
// as multi-window burn rates over sliding histograms, in the style of the
// Google SRE workbook's multiwindow multi-burn-rate alerts.
//
// An Objective declares a target good-event fraction (e.g. 0.99 of runs
// finish within 250ms). The engine keeps a ring of time slots covering the
// long evaluation window; every observation lands in the current slot as a
// good or bad event, and for latency objectives also in a per-slot bucket
// histogram, so burn rates and quantiles are computed over a true sliding
// window — old traffic ages out instead of diluting the rate forever.
//
// The burn rate over a window is badFraction(window) / (1 - target): burn 1
// means the error budget is being spent exactly at the sustainable rate,
// burn N means N× too fast. "Fast burn" trips when BOTH the short and the
// long window exceed the configured factor — the long window proves the
// problem is real, the short window proves it is still happening — and is
// the signal the admission controller sheds on (see internal/service).
//
// Latency observations carry an optional trace ID, retained per bucket as
// an exemplar (OpenMetrics-style in the Prometheus exposition), so a bucket
// exceedance on /slo links directly to a JSONL trace that explains it.
//
// Like the obs collectors, a nil *Engine is the disabled engine: every
// method is a no-op or returns a zero value, so wiring is unconditional.
package slo

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Seconds is a float64 duration-in-seconds that marshals +Inf as the JSON
// string "+Inf" (encoding/json rejects infinities), matching the
// Prometheus le label convention.
type Seconds float64

// MarshalJSON implements json.Marshaler.
func (s Seconds) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(s), 1) {
		return []byte(`"+Inf"`), nil
	}
	return json.Marshal(float64(s))
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Seconds) UnmarshalJSON(b []byte) error {
	if string(b) == `"+Inf"` {
		*s = Seconds(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*s = Seconds(f)
	return nil
}

// Kind classifies how an objective's observations are judged.
type Kind int

const (
	// Latency objectives observe durations in seconds; an event is good
	// iff the value is <= the objective's Threshold.
	Latency Kind = iota
	// Ratio objectives observe explicit good/bad outcomes (e.g. error
	// rate: a failed job is a bad event).
	Ratio
)

func (k Kind) String() string {
	if k == Ratio {
		return "ratio"
	}
	return "latency"
}

// Objective declares one SLO.
type Objective struct {
	// Name identifies the objective ("run_latency", "error_rate",
	// "queue_wait"); Observe and ObserveOutcome address it by name.
	Name string
	// Kind selects how observations are judged.
	Kind Kind
	// Target is the good-event fraction the objective promises, in (0, 1)
	// — e.g. 0.99 means 1% error budget.
	Target float64
	// Threshold is the latency bound in seconds (Latency kind only): an
	// observation is good iff value <= Threshold.
	Threshold float64
	// Bounds are the histogram bucket upper bounds for Latency objectives;
	// obs.DurationBuckets when nil.
	Bounds []float64
}

// Config configures an Engine.
type Config struct {
	// Objectives are the declared SLOs. Duplicate names keep the first.
	Objectives []Objective
	// ShortWindow and LongWindow are the two burn-rate evaluation windows.
	// Defaults: 10s and 60s — sized for a load-test daemon, not a quarter's
	// error budget; both must be >= 1s and Short <= Long.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnFactor is the burn rate both windows must exceed to trip fast
	// burn. Default 2 (budget burning at twice the sustainable rate).
	BurnFactor float64
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	// Bound is the upper bound of the bucket the observation fell in
	// (+Inf is math.Inf(1), marshalled as the string "+Inf").
	Bound Seconds `json:"bound"`
	// Value is the observed value in seconds.
	Value float64 `json:"value"`
	// Trace is the trace ID of the request that produced the observation.
	Trace string `json:"trace_id"`
	// UnixNS is the wall-clock time of the observation.
	UnixNS int64 `json:"t_unix_ns"`
}

// slot is one time slice of an objective's sliding window.
type slot struct {
	good, bad int64
	buckets   []int64 // len(bounds)+1; Latency objectives only
}

// objective is the runtime state of one declared Objective.
type objective struct {
	def       Objective
	bounds    []float64
	slots     []slot
	head      int        // index of the slot now() falls in
	headStart time.Time  // start of the head slot
	exemplars []Exemplar // len(bounds)+1; zero Trace = none yet
}

// Engine evaluates a set of objectives. All methods are safe for
// concurrent use; a nil *Engine is the disabled engine.
type Engine struct {
	mu      sync.Mutex
	byName  map[string]*objective
	order   []*objective
	slotDur time.Duration
	shortN  int // slots covered by the short window
	longN   int // slots covered by the long window (== len(slots))
	factor  float64
	short   time.Duration
	long    time.Duration
	now     func() time.Time
}

// NewEngine builds an engine from cfg. Returns nil (the disabled engine)
// when cfg declares no objectives.
func NewEngine(cfg Config) *Engine {
	if len(cfg.Objectives) == 0 {
		return nil
	}
	if cfg.ShortWindow < time.Second {
		cfg.ShortWindow = 10 * time.Second
	}
	if cfg.LongWindow < cfg.ShortWindow {
		cfg.LongWindow = 60 * time.Second
	}
	if cfg.LongWindow < cfg.ShortWindow {
		cfg.LongWindow = cfg.ShortWindow
	}
	if cfg.BurnFactor <= 0 {
		cfg.BurnFactor = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	// Slot resolution: the short window spans >= 10 slots so its burn rate
	// is not quantized to death, floored at 100ms per slot.
	slotDur := cfg.ShortWindow / 10
	if slotDur < 100*time.Millisecond {
		slotDur = 100 * time.Millisecond
	}
	longN := int((cfg.LongWindow + slotDur - 1) / slotDur)
	shortN := int((cfg.ShortWindow + slotDur - 1) / slotDur)
	if shortN < 1 {
		shortN = 1
	}
	if longN < shortN {
		longN = shortN
	}
	e := &Engine{
		byName:  make(map[string]*objective, len(cfg.Objectives)),
		slotDur: slotDur,
		shortN:  shortN,
		longN:   longN,
		factor:  cfg.BurnFactor,
		short:   cfg.ShortWindow,
		long:    cfg.LongWindow,
		now:     cfg.Now,
	}
	start := e.now()
	for _, def := range cfg.Objectives {
		if def.Name == "" || e.byName[def.Name] != nil {
			continue
		}
		if def.Target <= 0 || def.Target >= 1 {
			// A target outside (0,1) has no error budget to burn; clamp to
			// a conservative default rather than dividing by zero.
			def.Target = 0.99
		}
		o := &objective{def: def, headStart: start}
		if def.Kind == Latency {
			o.bounds = def.Bounds
			if o.bounds == nil {
				o.bounds = obs.DurationBuckets
			}
			o.exemplars = make([]Exemplar, len(o.bounds)+1)
		}
		o.slots = make([]slot, longN)
		if def.Kind == Latency {
			for i := range o.slots {
				o.slots[i].buckets = make([]int64, len(o.bounds)+1)
			}
		}
		e.byName[def.Name] = o
		e.order = append(e.order, o)
	}
	if len(e.order) == 0 {
		return nil
	}
	return e
}

// advance rotates o's ring so the head slot contains now. Caller holds e.mu.
func (e *Engine) advance(o *objective, now time.Time) {
	elapsed := now.Sub(o.headStart)
	if elapsed < e.slotDur {
		return
	}
	steps := int(elapsed / e.slotDur)
	if steps >= len(o.slots) {
		// The whole window aged out; clear everything.
		for i := range o.slots {
			o.slots[i].good, o.slots[i].bad = 0, 0
			for j := range o.slots[i].buckets {
				o.slots[i].buckets[j] = 0
			}
		}
		o.head = 0
		o.headStart = now.Truncate(e.slotDur)
		if o.headStart.After(now) {
			o.headStart = o.headStart.Add(-e.slotDur)
		}
		return
	}
	for s := 0; s < steps; s++ {
		o.head = (o.head + 1) % len(o.slots)
		o.slots[o.head].good, o.slots[o.head].bad = 0, 0
		for j := range o.slots[o.head].buckets {
			o.slots[o.head].buckets[j] = 0
		}
		o.headStart = o.headStart.Add(e.slotDur)
	}
}

// Observe records one latency observation (seconds) against the named
// objective, with an optional trace ID retained as the bucket's exemplar.
// No-op on a nil engine, an unknown name, or a Ratio objective.
func (e *Engine) Observe(name string, v float64, trace string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	o := e.byName[name]
	if o == nil || o.def.Kind != Latency {
		return
	}
	now := e.now()
	e.advance(o, now)
	s := &o.slots[o.head]
	i := 0
	for i < len(o.bounds) && v > o.bounds[i] {
		i++
	}
	s.buckets[i]++
	if v <= o.def.Threshold {
		s.good++
	} else {
		s.bad++
	}
	if trace != "" {
		bound := math.Inf(1)
		if i < len(o.bounds) {
			bound = o.bounds[i]
		}
		o.exemplars[i] = Exemplar{Bound: Seconds(bound), Value: v, Trace: trace, UnixNS: now.UnixNano()}
	}
}

// ObserveOutcome records one good/bad event against the named objective.
// Works for both kinds (a Latency objective counts it without a histogram
// sample); no-op on a nil engine or an unknown name.
func (e *Engine) ObserveOutcome(name string, good bool, trace string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	o := e.byName[name]
	if o == nil {
		return
	}
	now := e.now()
	e.advance(o, now)
	s := &o.slots[o.head]
	if good {
		s.good++
	} else {
		s.bad++
		if trace != "" && o.exemplars != nil {
			last := len(o.exemplars) - 1
			o.exemplars[last] = Exemplar{Bound: Seconds(math.Inf(1)), Trace: trace, UnixNS: now.UnixNano()}
		}
	}
}

// window sums the last n slots of o. Caller holds e.mu (after advance).
func (o *objective) window(n int) (good, bad int64, buckets []int64) {
	if n > len(o.slots) {
		n = len(o.slots)
	}
	if o.bounds != nil {
		buckets = make([]int64, len(o.bounds)+1)
	}
	idx := o.head
	for s := 0; s < n; s++ {
		good += o.slots[idx].good
		bad += o.slots[idx].bad
		for j, c := range o.slots[idx].buckets {
			buckets[j] += c
		}
		idx--
		if idx < 0 {
			idx = len(o.slots) - 1
		}
	}
	return good, bad, buckets
}

// burn computes badFraction/(1-target) over the given counts; 0 when the
// window is empty.
func burn(good, bad int64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// quantile returns the q-quantile estimate (upper bucket bound) from
// cumulative-summable bucket counts; +Inf when the quantile falls in the
// overflow bucket, 0 when empty.
func quantile(bounds []float64, buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var run int64
	for i, c := range buckets {
		run += c
		if run >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ObjectiveStatus is the evaluated state of one objective.
type ObjectiveStatus struct {
	Name      string     `json:"name"`
	Kind      string     `json:"kind"`
	Target    float64    `json:"target"`
	Threshold float64    `json:"threshold_s,omitempty"`
	Good      int64      `json:"good"`
	Bad       int64      `json:"bad"`
	BurnShort float64    `json:"burn_short"`
	BurnLong  float64    `json:"burn_long"`
	FastBurn  bool       `json:"fast_burn"`
	P50       Seconds    `json:"p50_s,omitempty"`
	P99       Seconds    `json:"p99_s,omitempty"`
	Bounds    []float64  `json:"bounds,omitempty"`
	Buckets   []int64    `json:"buckets,omitempty"` // cumulative, +Inf last
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Status is the engine's full evaluated state, the /slo JSON document.
type Status struct {
	FastBurn     bool              `json:"fast_burn"`
	BurnFactor   float64           `json:"burn_factor"`
	ShortWindowS float64           `json:"short_window_s"`
	LongWindowS  float64           `json:"long_window_s"`
	Objectives   []ObjectiveStatus `json:"objectives"`
}

// Status evaluates every objective. Zero value on a nil engine.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	st := Status{
		BurnFactor:   e.factor,
		ShortWindowS: e.short.Seconds(),
		LongWindowS:  e.long.Seconds(),
	}
	for _, o := range e.order {
		e.advance(o, now)
		goodL, badL, buckets := o.window(e.longN)
		goodS, badS, _ := o.window(e.shortN)
		os := ObjectiveStatus{
			Name:      o.def.Name,
			Kind:      o.def.Kind.String(),
			Target:    o.def.Target,
			Threshold: o.def.Threshold,
			Good:      goodL,
			Bad:       badL,
			BurnShort: burn(goodS, badS, o.def.Target),
			BurnLong:  burn(goodL, badL, o.def.Target),
		}
		os.FastBurn = os.BurnShort >= e.factor && os.BurnLong >= e.factor
		if o.def.Kind == Latency {
			os.P50 = Seconds(quantile(o.bounds, buckets, 0.50))
			os.P99 = Seconds(quantile(o.bounds, buckets, 0.99))
			os.Bounds = o.bounds
			cum := make([]int64, len(buckets))
			var run int64
			for i, c := range buckets {
				run += c
				cum[i] = run
			}
			os.Buckets = cum
			for _, ex := range o.exemplars {
				if ex.Trace != "" {
					os.Exemplars = append(os.Exemplars, ex)
				}
			}
			sort.Slice(os.Exemplars, func(i, j int) bool {
				return os.Exemplars[i].Bound < os.Exemplars[j].Bound
			})
		}
		st.Objectives = append(st.Objectives, os)
		st.FastBurn = st.FastBurn || os.FastBurn
	}
	return st
}

// FastBurn reports whether any objective is currently fast-burning.
// False on a nil engine.
func (e *Engine) FastBurn() bool {
	if e == nil {
		return false
	}
	return e.Status().FastBurn
}

// Quantile returns the q-quantile estimate (seconds) of the named Latency
// objective over the long window, and whether the window holds any
// samples. (0, false) on a nil engine, unknown name or Ratio objective.
func (e *Engine) Quantile(name string, q float64) (float64, bool) {
	v, n, ok := e.QuantileN(name, q)
	return v, ok && n > 0
}

// QuantileN is Quantile plus the sample count backing the estimate, so
// callers gating decisions on a quantile (the tenant deadline shed) can
// require a minimum population instead of trusting a one-sample p99.
// (0, 0, false) on a nil engine, unknown name or Ratio objective; ok is
// true with n == 0 when the objective exists but its window is empty.
func (e *Engine) QuantileN(name string, q float64) (v float64, n int64, ok bool) {
	if e == nil {
		return 0, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	o := e.byName[name]
	if o == nil || o.def.Kind != Latency {
		return 0, 0, false
	}
	e.advance(o, e.now())
	good, bad, buckets := o.window(e.longN)
	if good+bad == 0 {
		return 0, 0, true
	}
	return quantile(o.bounds, buckets, q), good + bad, true
}
