package lll_test

import (
	"bytes"
	"math"
	"testing"

	lll "repro"
)

// TestFacadeSurface exercises every public constructor and solver wrapper
// end to end, so the façade cannot silently drift from the internal
// packages.
func TestFacadeSurface(t *testing.T) {
	r := lll.NewRand(1)

	// Distributions.
	d, err := lll.NewDistribution([]float64{0.25, 0.75})
	if err != nil || d.Size() != 2 {
		t.Fatalf("NewDistribution: %v", err)
	}

	// Graph constructors.
	if g := lll.NewPath(5); g.N() != 5 || g.M() != 4 {
		t.Fatal("NewPath wrong")
	}
	if g := lll.NewGrid(3, 4); g.N() != 12 {
		t.Fatal("NewGrid wrong")
	}
	if g := lll.NewTorus(3, 3); g.MaxDegree() != 4 {
		t.Fatal("NewTorus wrong")
	}
	if g := lll.NewComplete(5); g.M() != 10 {
		t.Fatal("NewComplete wrong")
	}
	if g := lll.NewRandomTree(20, r); g.M() != 19 || !g.Connected() {
		t.Fatal("NewRandomTree wrong")
	}
	reg, err := lll.NewRandomRegular(12, 3, r)
	if err != nil || reg.MaxDegree() != 3 {
		t.Fatalf("NewRandomRegular: %v", err)
	}
	gb := lll.NewGraphBuilder(3)
	if err := gb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if gb.Build().M() != 1 {
		t.Fatal("NewGraphBuilder wrong")
	}
	hb := lll.NewHypergraphBuilder(4)
	if err := hb.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if hb.Build().Rank() != 3 {
		t.Fatal("NewHypergraphBuilder wrong")
	}

	// Biased family with explicit heads.
	g4 := lll.NewCycle(6)
	heads := make([]int, g4.M())
	for id := 0; id < g4.M(); id++ {
		heads[id] = g4.Edge(id).U
	}
	if _, err := lll.NewSinklessBiased(g4, 0.4, heads); err != nil {
		t.Fatalf("NewSinklessBiased: %v", err)
	}

	// Applications + distributed-any-rank + summaries.
	h4, err := lll.NewRandomRegularUniform(16, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := lll.NewHyperSinklessUniform(h4, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sum := lll.Summarize(hs.Instance)
	if sum.R != 4 || sum.ExpMargin >= 1 {
		t.Fatalf("Summarize: %+v", sum)
	}
	seqR, err := lll.SolveAnyRank(hs.Instance, nil)
	if err != nil || seqR.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("SolveAnyRank: %v %+v", err, seqR)
	}
	distR, err := lll.SolveDistributedAnyRank(hs.Instance, lll.LocalOptions{IDSeed: 2})
	if err != nil || distR.ViolatedEvents != 0 {
		t.Fatalf("SolveDistributedAnyRank: %v", err)
	}

	h3, err := lll.NewRandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	to, err := lll.NewThreeOrientations(h3)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := lll.Solve(to.Instance, lll.Options{}); err != nil || res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("ThreeOrientations solve: %v", err)
	}

	adj, err := lll.NewRandomBiregular(8, 3, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := lll.NewWeakSplitting(adj, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := lll.Solve(ws.Instance, lll.Options{}); err != nil || res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("WeakSplitting solve: %v", err)
	}

	// Adaptive solving.
	bi, err := lll.NewSinklessBiasedCycle(10, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := lll.SolveAdaptive(bi.Instance, lll.GreedyAdversary, lll.Options{})
	if err != nil || adp.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("SolveAdaptive: %v", err)
	}

	// Distributed Moser-Tardos.
	mtres, err := lll.MoserTardosDistributed(bi.Instance, 3, 60, lll.LocalOptions{IDSeed: 4})
	if err != nil || !mtres.Satisfied {
		t.Fatalf("MoserTardosDistributed: %v satisfied=%v", err, mtres != nil && mtres.Satisfied)
	}

	// Combine + expand round trip.
	comb, err := lll.Combine(bi.Instance)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := lll.Solve(comb.Instance, lll.Options{})
	if err != nil || cres.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("Solve(combined): %v", err)
	}
	expanded := comb.Expand(cres.Assignment)
	violated, err := bi.Instance.CountViolated(expanded)
	if err != nil || violated != 0 {
		t.Fatalf("expanded combined solution: %v violated=%d", err, violated)
	}

	// Local criterion + stress family + lower-bound certificate.
	rc, err := lll.NewRandomConjunction(h3, 2, 0.9, r)
	if err == nil {
		if ok, m := lll.CheckLocalExponentialCriterion(rc.Instance); !ok || m >= 1 {
			t.Fatalf("local criterion: ok=%v m=%v", ok, m)
		}
		if res, err := lll.Solve(rc.Instance, lll.Options{}); err != nil || res.Stats.FinalViolatedEvents != 0 {
			t.Fatalf("stress family solve: %v", err)
		}
	}
	cert, err := lll.DecideLowerBound(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Solvable {
		t.Fatal("radius-1, m=6 must be UNSAT")
	}

	// Serialization round trip.
	var buf bytes.Buffer
	if err := lll.SaveInstance(&buf, bi.Instance); err != nil {
		t.Fatalf("SaveInstance: %v", err)
	}
	loaded, err := lll.LoadInstance(&buf)
	if err != nil {
		t.Fatalf("LoadInstance: %v", err)
	}
	if p0, p1 := bi.Instance.P(), loaded.P(); math.Abs(p0-p1) > 1e-12 {
		t.Fatalf("round trip changed p: %v vs %v", p0, p1)
	}
}

func TestFacadeRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	tables, err := lll.RunAllExperiments(2, lll.ExperimentSizes{Scale: 0.35, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("want 13 tables, got %d", len(tables))
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		tbl.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatal("no rendered output")
	}
}
