package benchset

import (
	"strings"
	"testing"
)

func doc(entries ...Result) *Doc { return &Doc{Benchmarks: entries} }

func entry(name string, cpus int, roundsPerSec, allocsPerRound float64) Result {
	return Result{
		Name: name, CPUs: cpus, Iterations: 100,
		Metrics: map[string]float64{"rounds/sec": roundsPerSec, "allocs/round": allocsPerRound},
	}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := doc(entry("BenchmarkEngineRounds/pool", 1, 10000, 1))
	// Faster and leaner than baseline: clean pass.
	cur := doc(entry("BenchmarkEngineRounds/pool", 1, 12000, 1))
	if problems := Compare(base, cur, DefaultBaselineRules(), nil, nil); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	// Wobble within the bands: still a pass.
	cur = doc(entry("BenchmarkEngineRounds/pool", 1, 4100, 3))
	if problems := Compare(base, cur, DefaultBaselineRules(), nil, nil); len(problems) != 0 {
		t.Fatalf("in-band wobble flagged: %v", problems)
	}
}

func TestCompareBaselineCatchesRegressions(t *testing.T) {
	base := doc(entry("BenchmarkEngineRounds/pool", 1, 10000, 1))
	cases := []struct {
		name string
		cur  *Doc
		want string
	}{
		{"throughput collapse", doc(entry("BenchmarkEngineRounds/pool", 1, 3000, 1)), "rounds/sec"},
		{"alloc growth", doc(entry("BenchmarkEngineRounds/pool", 1, 10000, 10)), "allocs/round"},
		{"vanished benchmark", doc(entry("BenchmarkOther", 1, 1, 1)), "missing"},
	}
	for _, tc := range cases {
		problems := Compare(base, tc.cur, DefaultBaselineRules(), nil, nil)
		if len(problems) == 0 {
			t.Errorf("%s: not flagged", tc.name)
			continue
		}
		if !strings.Contains(problems[0], tc.want) {
			t.Errorf("%s: problem %q does not mention %q", tc.name, problems[0], tc.want)
		}
	}
}

func TestCompareMatchesPerCPU(t *testing.T) {
	base := doc(
		entry("BenchmarkEngineRounds/pool", 1, 10000, 1),
		entry("BenchmarkEngineRounds/pool", 4, 30000, 1),
	)
	// cpus=1 fine, cpus=4 collapsed: exactly one problem, naming cpus=4.
	cur := doc(
		entry("BenchmarkEngineRounds/pool", 1, 10000, 1),
		entry("BenchmarkEngineRounds/pool", 4, 5000, 1),
	)
	problems := Compare(base, cur, DefaultBaselineRules(), nil, nil)
	if len(problems) != 1 || !strings.Contains(problems[0], "cpus=4") {
		t.Fatalf("want one cpus=4 problem, got %v", problems)
	}
}

func TestCompareNewBenchmarkSkipped(t *testing.T) {
	// A benchmark absent from the baseline must not fail its first run.
	base := doc(entry("BenchmarkEngineRounds/pool", 1, 10000, 1))
	cur := doc(
		entry("BenchmarkEngineRounds/pool", 1, 10000, 1),
		entry("BenchmarkViolatedScan100k/generic", 1, 50, 400000),
		entry("BenchmarkViolatedScan100k/kernel", 1, 500, 10),
	)
	if problems := Compare(base, cur, DefaultBaselineRules(), nil, nil); len(problems) != 0 {
		t.Fatalf("new benchmarks flagged: %v", problems)
	}
}

func TestCompareRatioRules(t *testing.T) {
	rr := DefaultRatioRules()
	// Kernel 10x faster: pass on the speedup clause.
	cur := doc(
		entry("BenchmarkViolatedScan100k/generic", 1, 50, 400000),
		entry("BenchmarkViolatedScan100k/kernel", 1, 500, 10),
	)
	if problems := Compare(doc(), cur, nil, rr, nil); len(problems) != 0 {
		t.Fatalf("clear win flagged: %v", problems)
	}
	// Same speed but 100x fewer allocs: pass on the allocs clause.
	cur = doc(
		entry("BenchmarkViolatedScan100k/generic", 1, 100, 1000),
		entry("BenchmarkViolatedScan100k/kernel", 1, 100, 10),
	)
	if problems := Compare(doc(), cur, nil, rr, nil); len(problems) != 0 {
		t.Fatalf("alloc win flagged: %v", problems)
	}
	// Neither clause: fail.
	cur = doc(
		entry("BenchmarkViolatedScan100k/generic", 1, 100, 100),
		entry("BenchmarkViolatedScan100k/kernel", 1, 150, 90),
	)
	problems := Compare(doc(), cur, nil, rr, nil)
	if len(problems) != 1 || !strings.Contains(problems[0], "neither") {
		t.Fatalf("want one ratio problem, got %v", problems)
	}
	// Missing subject: fail loudly.
	if problems := Compare(doc(), doc(), nil, rr, nil); len(problems) == 0 {
		t.Fatal("missing ratio subject not flagged")
	}
}

func TestCompareAbsoluteRules(t *testing.T) {
	ar := DefaultAbsoluteRules()
	zeroAlloc := Result{
		Name: "BenchmarkObsDisabled", CPUs: 8, Iterations: 1000,
		Metrics: map[string]float64{"allocs/op": 0, "ns/op": 5},
	}
	if problems := Compare(doc(), doc(zeroAlloc), nil, nil, ar); len(problems) != 0 {
		t.Fatalf("zero-alloc run flagged: %v", problems)
	}
	// One allocation is a hard failure — no band, no baseline.
	leaked := zeroAlloc
	leaked.Metrics = map[string]float64{"allocs/op": 1, "ns/op": 5}
	problems := Compare(doc(), doc(leaked), nil, nil, ar)
	if len(problems) != 1 || !strings.Contains(problems[0], "absolute ceiling") {
		t.Fatalf("leaked alloc not flagged: %v", problems)
	}
	// A vanished benchmark or metric must fail, not silently pass.
	if problems := Compare(doc(), doc(entry("BenchmarkOther", 1, 1, 1)), nil, nil, ar); len(problems) == 0 {
		t.Fatal("missing absolute-rule benchmark not flagged")
	}
	noMetric := zeroAlloc
	noMetric.Metrics = map[string]float64{"ns/op": 5}
	if problems := Compare(doc(), doc(noMetric), nil, nil, ar); len(problems) == 0 {
		t.Fatal("missing absolute-rule metric not flagged")
	}
}

func TestRequiredWorkloadsExist(t *testing.T) {
	// The shared instance builds at the pinned size and the required list
	// covers both sides of the ratio rules.
	inst, err := Sinkless100k()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumEvents() != LargeN {
		t.Fatalf("Sinkless100k has %d events, want %d", inst.NumEvents(), LargeN)
	}
	req := map[string]bool{}
	for _, name := range Required() {
		req[name] = true
	}
	for _, rule := range DefaultRatioRules() {
		if !req[rule.Name] || !req[rule.Against] {
			t.Errorf("ratio rule %s vs %s not covered by Required()", rule.Name, rule.Against)
		}
	}
	for _, rule := range DefaultAbsoluteRules() {
		if !req[rule.Name] {
			t.Errorf("absolute rule %s not covered by Required()", rule.Name)
		}
	}
}
