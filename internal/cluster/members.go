package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// NodeState is a member's health as seen by the failure detector.
type NodeState string

const (
	// StateUp: /healthz answered 200 and the node is not flap-damped.
	StateUp NodeState = "up"
	// StateSuspect: the detector has seen probe failures (fewer than
	// DetectorConfig.DownAfter consecutive ones), or the node recently
	// flapped and is being held back before full re-admission. Suspect
	// nodes still accept work — they are deprioritized, not excluded.
	StateSuspect NodeState = "suspect"
	// StateDraining: /healthz answered 503 — the node is shutting down
	// gracefully; in-flight jobs finish but new ones are refused.
	StateDraining NodeState = "draining"
	// StateDown: DownAfter consecutive probes failed (or the caller
	// confirmed the node dead). Down nodes are excluded from placement
	// and from the bounded-load baseline until a probe succeeds again.
	StateDown NodeState = "down"
	// StateUnknown: never probed yet. Placement treats unknown as up so a
	// router is usable before its first poll completes.
	StateUnknown NodeState = "unknown"
)

// Usable reports whether a placement decision may send new work to a node
// in this state. Suspect nodes remain usable: a single missed probe must
// not shed a node that is still answering requests — only the down
// transition excludes it.
func (s NodeState) Usable() bool {
	return s == StateUp || s == StateUnknown || s == StateSuspect
}

// DetectorConfig shapes the threshold failure detector that drives the
// up → suspect → down → up transitions. The zero value selects the
// defaults noted on each field.
type DetectorConfig struct {
	// SuspectAfter is the number of consecutive probe failures that turns
	// an up node suspect (default 1).
	SuspectAfter int
	// DownAfter is the number of consecutive probe failures that turns a
	// node down (default 3). With a poll interval of I the suspicion
	// window — the longest a dead node stays routable — is DownAfter × I
	// plus one probe timeout.
	DownAfter int
	// FlapWindow and FlapMax damp flapping: when a node completes its
	// FlapMax'th down → up recovery inside FlapWindow, it is re-admitted
	// as suspect (deprioritized) instead of up. Defaults: 60s window,
	// 3 recoveries.
	FlapWindow time.Duration
	FlapMax    int
	// DampHold is how long a flap-damped node is held at suspect after
	// its latest recovery before a successful probe promotes it back to
	// up (default 5s).
	DampHold time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 60 * time.Second
	}
	if c.FlapMax <= 0 {
		c.FlapMax = 3
	}
	if c.DampHold <= 0 {
		c.DampHold = 5 * time.Second
	}
	return c
}

// NodeStatus is one member's health and load snapshot.
type NodeStatus struct {
	// Name / URL identify the member.
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the failure detector's current verdict.
	State NodeState `json:"state"`
	// Fails is the consecutive probe-failure count feeding the detector.
	Fails int `json:"fails,omitempty"`
	// Queue / Running are the node's service_queue_depth and
	// service_jobs_running gauges from its /debug/vars snapshot (0 when the
	// node is unreachable or does not export them).
	Queue   float64 `json:"queue"`
	Running float64 `json:"running"`
	// Outstanding is the caller-side in-flight count (jobs routed to the
	// node and not yet terminal) — the bounded-load signal that needs no
	// probe round-trip.
	Outstanding int64 `json:"outstanding"`
	// Err is the last probe error, cleared on success.
	Err string `json:"err,omitempty"`
	// LastProbe is when the state was last refreshed.
	LastProbe time.Time `json:"last_probe"`
}

// member is the detector's per-node record: the exported status plus the
// flap history that drives damping.
type member struct {
	NodeStatus
	recoveries  []time.Time // down→up transition times inside FlapWindow
	dampedUntil time.Time   // while in the future, successes yield suspect
}

// Members tracks the health and load of a dynamic set of nodes: a
// threshold failure detector over periodic health probes, caller-reported
// wire failures, and caller-side outstanding-job counters. Membership
// changes at runtime through SetNodes. Safe for concurrent use.
type Members struct {
	client *http.Client

	mu     sync.Mutex
	cfg    DetectorConfig
	status map[string]*member
	names  []string
	stop   chan struct{}
	wg     sync.WaitGroup

	// detector metrics (nil-safe when Instrument was never called)
	mSuspects   *obs.Counter
	mDowns      *obs.Counter
	mRecoveries *obs.Counter
	mDamped     *obs.Counter
	mFailures   *obs.Counter
	mMembers    *obs.Gauge
	mMembersUp  *obs.Gauge
	mMembersDn  *obs.Gauge
}

// NewMembers builds the membership table for nodes (name → base URL).
// client may be nil (a 2s-timeout default is used). The failure detector
// runs with default thresholds until SetDetector overrides them.
func NewMembers(nodes map[string]string, client *http.Client) *Members {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	m := &Members{client: client, cfg: DetectorConfig{}.withDefaults(), status: make(map[string]*member, len(nodes))}
	for name, url := range nodes {
		m.status[name] = &member{NodeStatus: NodeStatus{Name: name, URL: url, State: StateUnknown}}
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m
}

// SetDetector replaces the failure-detector thresholds (zero fields take
// their defaults). Existing per-node state is kept.
func (m *Members) SetDetector(cfg DetectorConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg = cfg.withDefaults()
}

// Instrument registers the detector's cluster_* metrics on reg. Safe to
// skip (all instruments stay nil and every update is a no-op).
func (m *Members) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mSuspects = reg.Counter("cluster_suspects_total")
	m.mDowns = reg.Counter("cluster_downs_total")
	m.mRecoveries = reg.Counter("cluster_recoveries_total")
	m.mDamped = reg.Counter("cluster_flap_damped_total")
	m.mFailures = reg.Counter("cluster_probe_failures_total")
	m.mMembers = reg.Gauge("cluster_members")
	m.mMembersUp = reg.Gauge("cluster_members_up")
	m.mMembersDn = reg.Gauge("cluster_members_down")
	m.refreshGaugesLocked()
}

// refreshGaugesLocked recomputes the membership gauges after a transition
// or a membership change. Callers hold m.mu.
func (m *Members) refreshGaugesLocked() {
	if m.mMembers == nil {
		return
	}
	up, down := 0, 0
	for _, st := range m.status {
		switch st.State {
		case StateDown:
			down++
		case StateUp, StateUnknown, StateSuspect:
			up++
		}
	}
	m.mMembers.Set(float64(len(m.status)))
	m.mMembersUp.Set(float64(up))
	m.mMembersDn.Set(float64(down))
}

// SetNodes replaces the member set: new names join as StateUnknown,
// departed names are dropped (their probe history with them), URLs of
// surviving members are refreshed. Existing health state survives.
func (m *Members) SetNodes(nodes map[string]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, url := range nodes {
		if st, ok := m.status[name]; ok {
			st.URL = url
			continue
		}
		m.status[name] = &member{NodeStatus: NodeStatus{Name: name, URL: url, State: StateUnknown}}
	}
	for name := range m.status {
		if _, ok := nodes[name]; !ok {
			delete(m.status, name)
		}
	}
	m.names = m.names[:0]
	for name := range m.status {
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	m.refreshGaugesLocked()
}

// Names returns the current member names, sorted.
func (m *Members) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.names...)
}

// URL returns the base URL of a member ("" for unknown names).
func (m *Members) URL(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.URL
	}
	return ""
}

// State returns a member's current state (StateDown for unknown names).
func (m *Members) State(name string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.State
	}
	return StateDown
}

// AddOutstanding adjusts the caller-side in-flight counter of a member.
func (m *Members) AddOutstanding(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		st.Outstanding += delta
		if st.Outstanding < 0 {
			st.Outstanding = 0
		}
	}
}

// Outstanding returns a member's in-flight counter.
func (m *Members) Outstanding(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.Outstanding
	}
	return 0
}

// MeanOutstanding returns the mean in-flight count over the usable
// members — the bounded-load baseline. Down and draining nodes are
// excluded so a dead node's stranded counter cannot distort the balance
// target; when no member is usable the mean is 0 (there is no meaningful
// baseline to bound against).
func (m *Members) MeanOutstanding() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum, n float64
	for _, st := range m.status {
		if st.State.Usable() {
			sum += float64(st.Outstanding)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Snapshot returns a copy of every member's status, sorted by name.
func (m *Members) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.names))
	for _, name := range m.names {
		out = append(out, m.status[name].NodeStatus)
	}
	return out
}

// ReportFailure feeds one caller-observed wire failure (connection
// refused, broken stream) into the detector, as if a probe had failed.
// A single report turns the node suspect; repeated reports (or failed
// probes) accumulate to down — so the router reacts to hard evidence
// faster than the poll cadence without a lone timeout shedding a node.
func (m *Members) ReportFailure(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recordFailureLocked(name, err)
}

// MarkDown forces a member straight to StateDown — for callers holding
// conclusive evidence (a direct probe just failed after a stream broke).
// The next successful probe restores it through the normal recovery path.
func (m *Members) MarkDown(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.status[name]
	if !ok {
		return
	}
	if st.Fails < m.cfg.DownAfter {
		st.Fails = m.cfg.DownAfter
	}
	if st.State != StateDown {
		st.State = StateDown
		m.mDowns.Inc()
	}
	if err != nil {
		st.Err = err.Error()
	}
	st.LastProbe = time.Now()
	m.refreshGaugesLocked()
}

// recordFailureLocked advances the detector on one failed probe/report.
func (m *Members) recordFailureLocked(name string, err error) {
	st, ok := m.status[name]
	if !ok {
		return
	}
	m.mFailures.Inc()
	st.Fails++
	if err != nil {
		st.Err = err.Error()
	}
	st.LastProbe = time.Now()
	switch {
	case st.Fails >= m.cfg.DownAfter:
		if st.State != StateDown {
			st.State = StateDown
			m.mDowns.Inc()
		}
	case st.Fails >= m.cfg.SuspectAfter:
		if st.State != StateSuspect && st.State != StateDown {
			st.State = StateSuspect
			m.mSuspects.Inc()
		}
	}
	m.refreshGaugesLocked()
}

// recordSuccessLocked advances the detector on one successful probe
// (observed is StateUp or StateDraining). A down node recovering inside
// the flap window too many times is re-admitted as suspect for DampHold
// instead of up, so a flapping node cannot yo-yo its ring slice.
func (m *Members) recordSuccessLocked(name string, observed NodeState, queue, running float64) {
	st, ok := m.status[name]
	if !ok {
		return
	}
	now := time.Now()
	wasDown := st.State == StateDown
	st.Fails = 0
	st.Err = ""
	st.Queue = queue
	st.Running = running
	st.LastProbe = now
	if wasDown {
		m.mRecoveries.Inc()
		// Prune the flap history to the window, then record this recovery.
		kept := st.recoveries[:0]
		for _, t := range st.recoveries {
			if now.Sub(t) <= m.cfg.FlapWindow {
				kept = append(kept, t)
			}
		}
		st.recoveries = append(kept, now)
		if len(st.recoveries) >= m.cfg.FlapMax {
			st.dampedUntil = now.Add(m.cfg.DampHold)
			m.mDamped.Inc()
		}
	}
	switch {
	case observed == StateDraining:
		st.State = StateDraining
	case now.Before(st.dampedUntil):
		if st.State != StateSuspect {
			st.State = StateSuspect
			m.mSuspects.Inc()
		}
	default:
		st.State = StateUp
	}
	m.refreshGaugesLocked()
}

// Poll probes every member once, in parallel: /healthz decides the probe
// verdict (200 up, 503 draining, unreachable a failure) and /debug/vars
// refreshes the queue/running gauges of reachable nodes. The verdicts
// feed the threshold detector; a node is only marked down after
// DetectorConfig.DownAfter consecutive failures.
func (m *Members) Poll(ctx context.Context) {
	names := m.Names()
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m.probe(ctx, name)
		}(name)
	}
	wg.Wait()
}

func (m *Members) probe(ctx context.Context, name string) {
	url := m.URL(name)
	if url == "" {
		return // removed while the poll was in flight
	}
	state, err := m.probeHealth(ctx, url)
	var queue, running float64
	if state != StateDown {
		queue, running = m.probeLoad(ctx, url)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if state == StateDown {
		m.recordFailureLocked(name, err)
		return
	}
	m.recordSuccessLocked(name, state, queue, running)
}

// probeHealth asks /healthz: 200 is up, 503 is draining, anything else —
// including transport failure — is a probe failure.
func (m *Members) probeHealth(ctx context.Context, url string) (NodeState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return StateDown, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return StateDown, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateUp, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return StateDraining, nil
	default:
		return StateDown, nil
	}
}

// probeLoad reads the service_queue_depth / service_jobs_running gauges
// from the node's /debug/vars JSON snapshot; missing endpoint or fields
// simply yield zeros.
func (m *Members) probeLoad(ctx context.Context, url string) (queue, running float64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/debug/vars", nil)
	if err != nil {
		return 0, 0
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap) != nil {
		return 0, 0
	}
	return snap.Gauges["service_queue_depth"], snap.Gauges["service_jobs_running"]
}

// Start launches a background poller at the given interval (default 500ms
// when interval <= 0). Stop stops it; Start after Stop is not supported.
func (m *Members) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	stop := m.stop
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			m.Poll(ctx)
			cancel()
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts the background poller and waits for it to exit.
func (m *Members) Stop() {
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	m.wg.Wait()
}
