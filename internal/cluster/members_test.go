package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// flakySrv is a health endpoint whose availability tests flip at will.
func flakySrv(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			// Hijack and slam the connection so the probe sees a transport
			// error, not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte("ok\n"))
	}))
	t.Cleanup(srv.Close)
	return srv, &healthy
}

func TestDetectorSuspectThenDownThenRecover(t *testing.T) {
	srv, healthy := flakySrv(t)
	m := NewMembers(map[string]string{"n": srv.URL}, nil)
	m.SetDetector(DetectorConfig{SuspectAfter: 1, DownAfter: 3})

	m.Poll(t.Context())
	if st := m.State("n"); st != StateUp {
		t.Fatalf("healthy probe → %v, want up", st)
	}

	healthy.Store(false)
	m.Poll(t.Context())
	if st := m.State("n"); st != StateSuspect {
		t.Fatalf("1 failure → %v, want suspect", st)
	}
	if !m.State("n").Usable() {
		t.Fatal("suspect must stay usable — one missed probe must not shed a live node")
	}
	m.Poll(t.Context())
	if st := m.State("n"); st != StateSuspect {
		t.Fatalf("2 failures → %v, want suspect (DownAfter=3)", st)
	}
	m.Poll(t.Context())
	if st := m.State("n"); st != StateDown {
		t.Fatalf("3 failures → %v, want down", st)
	}
	if m.State("n").Usable() {
		t.Fatal("down must not be usable")
	}

	// Recovery: one good probe re-admits the node with no restart anywhere.
	healthy.Store(true)
	m.Poll(t.Context())
	if st := m.State("n"); st != StateUp {
		t.Fatalf("recovered probe → %v, want up", st)
	}
}

func TestDetectorNeverDownWhileAnswering(t *testing.T) {
	// Acceptance invariant: a node answering every probe is never marked
	// down (nor suspect), no matter how many polls run.
	srv, _ := flakySrv(t)
	m := NewMembers(map[string]string{"n": srv.URL}, nil)
	for i := 0; i < 20; i++ {
		m.Poll(t.Context())
		if st := m.State("n"); st != StateUp {
			t.Fatalf("poll %d: answering node state = %v", i, st)
		}
	}
}

func TestDetectorReportFailureAccumulates(t *testing.T) {
	// Caller-observed wire failures feed the same threshold: the router's
	// connection-refused evidence accelerates detection between polls.
	m := NewMembers(map[string]string{"n": "http://127.0.0.1:1"}, nil)
	m.SetDetector(DetectorConfig{SuspectAfter: 1, DownAfter: 3})
	m.ReportFailure("n", fmt.Errorf("connection refused"))
	if st := m.State("n"); st != StateSuspect {
		t.Fatalf("1 report → %v, want suspect", st)
	}
	m.ReportFailure("n", fmt.Errorf("connection refused"))
	m.ReportFailure("n", fmt.Errorf("connection refused"))
	if st := m.State("n"); st != StateDown {
		t.Fatalf("3 reports → %v, want down", st)
	}
	m.ReportFailure("missing", nil) // unknown member: no-op, no panic
}

func TestDetectorFlapDamping(t *testing.T) {
	srv, healthy := flakySrv(t)
	m := NewMembers(map[string]string{"n": srv.URL}, nil)
	m.SetDetector(DetectorConfig{
		SuspectAfter: 1,
		DownAfter:    1,
		FlapWindow:   time.Minute,
		FlapMax:      2,
		DampHold:     200 * time.Millisecond,
	})

	// First down→up cycle: clean recovery to up.
	healthy.Store(false)
	m.Poll(t.Context())
	healthy.Store(true)
	m.Poll(t.Context())
	if st := m.State("n"); st != StateUp {
		t.Fatalf("first recovery → %v, want up", st)
	}

	// Second cycle inside the window trips FlapMax: held at suspect.
	healthy.Store(false)
	m.Poll(t.Context())
	healthy.Store(true)
	m.Poll(t.Context())
	if st := m.State("n"); st != StateSuspect {
		t.Fatalf("flapping recovery → %v, want suspect (damped)", st)
	}
	if !m.State("n").Usable() {
		t.Fatal("damped node must stay usable, just deprioritized")
	}

	// After DampHold expires a successful probe promotes it back to up.
	time.Sleep(250 * time.Millisecond)
	m.Poll(t.Context())
	if st := m.State("n"); st != StateUp {
		t.Fatalf("post-hold probe → %v, want up", st)
	}
}

func TestMembersSetNodesDynamic(t *testing.T) {
	srv, _ := flakySrv(t)
	m := NewMembers(map[string]string{"a": srv.URL, "b": "http://127.0.0.1:1"}, nil)
	m.SetDetector(DetectorConfig{DownAfter: 1})
	m.Poll(t.Context())
	if st := m.State("a"); st != StateUp {
		t.Fatalf("a = %v", st)
	}
	if st := m.State("b"); st != StateDown {
		t.Fatalf("b = %v", st)
	}

	// Join c, drop b: a's probe history must survive, c starts unknown,
	// b is forgotten entirely.
	m.SetNodes(map[string]string{"a": srv.URL, "c": srv.URL})
	if got := m.Names(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("names after SetNodes = %v", got)
	}
	if st := m.State("a"); st != StateUp {
		t.Fatalf("a lost its state across SetNodes: %v", st)
	}
	if st := m.State("c"); st != StateUnknown {
		t.Fatalf("joined c = %v, want unknown", st)
	}
	if st := m.State("b"); st != StateDown {
		t.Fatalf("departed b = %v, want down (unknown names read down)", st)
	}
	if url := m.URL("b"); url != "" {
		t.Fatalf("departed b still has URL %q", url)
	}
	m.Poll(t.Context())
	if st := m.State("c"); st != StateUp {
		t.Fatalf("c after probe = %v", st)
	}
}

func TestMembersConcurrentProbesAndReports(t *testing.T) {
	// Race hygiene: polls, wire-failure reports, membership swaps and
	// snapshots all run concurrently. Run under -race this is the
	// detector's data-race gate; the only functional assertion is that the
	// answering node is never down at the end.
	srv, _ := flakySrv(t)
	m := NewMembers(map[string]string{"a": srv.URL, "b": "http://127.0.0.1:1"}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				m.Poll(t.Context())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			m.ReportFailure("b", fmt.Errorf("refused"))
			m.AddOutstanding("a", 1)
			m.AddOutstanding("a", -1)
			m.MeanOutstanding()
			m.Snapshot()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			m.SetNodes(map[string]string{"a": srv.URL, "b": "http://127.0.0.1:1"})
			m.Names()
		}
	}()
	wg.Wait()
	m.Poll(t.Context())
	if st := m.State("a"); st != StateUp {
		t.Fatalf("answering node ended %v", st)
	}
}

func TestMembersInstrumentGauges(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMembers(map[string]string{"a": "http://127.0.0.1:1", "b": "http://127.0.0.1:1"}, nil)
	m.SetDetector(DetectorConfig{DownAfter: 1})
	m.Instrument(reg)
	snap := reg.TakeSnapshot()
	if got := snap.Gauges["cluster_members"]; got != 2 {
		t.Fatalf("cluster_members = %v", got)
	}
	m.MarkDown("b", fmt.Errorf("dead"))
	snap = reg.TakeSnapshot()
	if got := snap.Gauges["cluster_members_down"]; got != 1 {
		t.Fatalf("cluster_members_down = %v", got)
	}
	if got := snap.Counters["cluster_downs_total"]; got != 1 {
		t.Fatalf("cluster_downs_total = %v", got)
	}
	m.SetNodes(map[string]string{"a": "http://127.0.0.1:1"})
	snap = reg.TakeSnapshot()
	if got := snap.Gauges["cluster_members"]; got != 1 {
		t.Fatalf("cluster_members after leave = %v", got)
	}
}

func TestMembershipEpochAndAdoption(t *testing.T) {
	base := Membership{Epoch: 3, Nodes: map[string]string{"a": "http://a", "b": "http://b"}}
	joined := base.WithJoin("c", "http://c")
	if joined.Epoch != 4 || joined.Nodes["c"] != "http://c" {
		t.Fatalf("WithJoin = %+v", joined)
	}
	if _, ok := base.Nodes["c"]; ok {
		t.Fatal("WithJoin mutated the receiver")
	}
	left := joined.WithLeave("a")
	if left.Epoch != 5 || len(left.Nodes) != 2 {
		t.Fatalf("WithLeave = %+v", left)
	}
	if !joined.Newer(base) || base.Newer(joined) {
		t.Fatal("higher epoch must win")
	}
	if base.Newer(base.Clone()) {
		t.Fatal("identical membership is not newer")
	}
	// Same epoch, different content: exactly one side wins, and both sides
	// agree on which (the hash tie-break) — so adoption converges.
	x := Membership{Epoch: 7, Nodes: map[string]string{"a": "http://a"}}
	y := Membership{Epoch: 7, Nodes: map[string]string{"b": "http://b"}}
	if x.Newer(y) == y.Newer(x) {
		t.Fatalf("tie-break must pick exactly one winner: x>y=%v y>x=%v", x.Newer(y), y.Newer(x))
	}
	if !joined.Equal(joined.Clone()) {
		t.Fatal("clone must be Equal")
	}
	if got := joined.Ring(8).Owner(42); got == "" {
		t.Fatal("membership ring owns nothing")
	}
}
