package exp

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/srep"
)

// F1Surface regenerates Figure 1: the boundary surface of the set S_rep of
// representable triples. The table shows f(a, b) on a coarse grid (the
// shape plotted in the paper) and verifies the figure's caption claim —
// incurvedness — on random chords between points outside S_rep.
func F1Surface(step float64, chords int, seed uint64) (*Table, error) {
	if step <= 0 {
		return nil, fmt.Errorf("exp: step must be positive, got %v", step)
	}
	t := &Table{
		ID:    "F1",
		Title: "Surface of S_rep: c = f(a,b) on {a,b >= 0, a+b <= 4} (Figure 1)",
		Note:  "Cells show f(a,b); '-' marks points outside the domain. The caption's incurvedness claim is verified on random chords below.",
	}
	var axis []float64
	for a := 0.0; a <= 4+1e-9; a += step {
		axis = append(axis, a)
	}
	t.Header = append(t.Header, "a\\b")
	for _, b := range axis {
		t.Header = append(t.Header, fmt.Sprintf("%.2f", b))
	}
	for _, a := range axis {
		row := []any{fmt.Sprintf("%.2f", a)}
		for _, b := range axis {
			if a+b > 4+1e-9 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.3f", srep.F(a, b)))
			}
		}
		t.AddRow(row...)
	}

	// Incurvedness verification (Definition 3.4 / Lemma 3.7).
	r := prng.New(seed)
	tested, violations := 0, 0
	for tested < chords {
		s := srep.Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		o := srep.Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		if s.In(srep.DefaultTol) || o.In(srep.DefaultTol) {
			continue
		}
		tested++
		if srep.ChordViolation(s, o, r.Float64(), srep.DefaultTol) {
			violations++
		}
	}
	t.AddRow("chords", fmt.Sprintf("tested=%d", tested), fmt.Sprintf("violations=%d", violations))
	if violations > 0 {
		return t, fmt.Errorf("exp: F1: %d incurvedness violations", violations)
	}
	return t, nil
}

// F2Witness regenerates Figure 2: the explicit representable triple
// (1/4, 3/2, 1/10) with a full witness decomposition and all Definition 3.3
// constraints checked.
func F2Witness() (*Table, error) {
	a, b, c := 0.25, 1.5, 0.1
	w, err := srep.Decompose(a, b, c)
	if err != nil {
		return nil, fmt.Errorf("exp: F2: %w", err)
	}
	t := &Table{
		ID:     "F2",
		Title:  "Witness for the representable triple (1/4, 3/2, 1/10) (Figure 2)",
		Note:   "All six values must lie in [0,2], the three edge sums must be <= 2 and the products must equal (a, b, c).",
		Header: []string{"quantity", "value", "constraint", "holds"},
	}
	wa, wb, wc := w.Triple()
	t.AddRow("a1 (u on {u,v})", w.A1, "in [0,2]", w.A1 >= 0 && w.A1 <= 2)
	t.AddRow("a2 (u on {u,w})", w.A2, "in [0,2]", w.A2 >= 0 && w.A2 <= 2)
	t.AddRow("b1 (v on {u,v})", w.B1, "in [0,2]", w.B1 >= 0 && w.B1 <= 2)
	t.AddRow("b3 (v on {v,w})", w.B3, "in [0,2]", w.B3 >= 0 && w.B3 <= 2)
	t.AddRow("c2 (w on {u,w})", w.C2, "in [0,2]", w.C2 >= 0 && w.C2 <= 2)
	t.AddRow("c3 (w on {v,w})", w.C3, "in [0,2]", w.C3 >= 0 && w.C3 <= 2)
	t.AddRow("a1+b1", w.A1+w.B1, "<= 2", w.A1+w.B1 <= 2+1e-12)
	t.AddRow("a2+c2", w.A2+w.C2, "<= 2", w.A2+w.C2 <= 2+1e-12)
	t.AddRow("b3+c3", w.B3+w.C3, "<= 2", w.B3+w.C3 <= 2+1e-12)
	t.AddRow("a1*a2", wa, "= 1/4", abs(wa-a) < 1e-9)
	t.AddRow("b1*b3", wb, "= 3/2", abs(wb-b) < 1e-9)
	t.AddRow("c2*c3", wc, "= 1/10", abs(wc-c) < 1e-9)
	if !w.Valid(1e-12) || !w.Realizes(a, b, c, 1e-9) {
		return t, fmt.Errorf("exp: F2: witness invalid")
	}
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
