package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("lookup did not return the same counter")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.SetMax(1) // no-op
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax = %v, want 7", got)
	}
	m := r.Gauge("min")
	m.SetMin(3) // unset gauge adopts the first value
	m.SetMin(5) // no-op
	m.SetMin(2)
	if got := m.Value(); got != 2 {
		t.Fatalf("gauge after SetMin = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1053.5 {
		t.Fatalf("sum = %v, want 1053.5", got)
	}
	want := []int64{2, 1, 1, 1} // (<=1)=2, (<=10)=1, (<=100)=1, +Inf=1
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("got %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("got %v, want %v", b, want)
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("invalid bucket specs must return nil")
	}
}

func TestRegistryPrefixViews(t *testing.T) {
	r := NewRegistry()
	v := r.WithPrefix("t2_")
	v.Counter("rounds_total").Add(3)
	if got := r.Counter("t2_rounds_total").Value(); got != 3 {
		t.Fatalf("parent sees %d through prefixed name, want 3", got)
	}
	vv := v.WithPrefix("inner_")
	vv.Counter("x").Inc()
	if got := r.Counter("t2_inner_x").Value(); got != 1 {
		t.Fatalf("nested prefix = %d, want 1", got)
	}
	// Exposition covers the whole core from any view.
	var buf bytes.Buffer
	if err := v.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t2_rounds_total 3") {
		t.Fatalf("exposition missing prefixed counter:\n%s", buf.String())
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(1.25)
	h := r.Histogram("c", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_total counter
a_total 2
# TYPE b gauge
b 1.25
# TYPE c histogram
c_bucket{le="1"} 1
c_bucket{le="2"} 2
c_bucket{le="+Inf"} 3
c_sum 11
c_count 3
`
	if buf.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(7)
	r.Gauge("g").Set(3.5)
	r.Histogram("h", []float64{10}).Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["n"] != 7 || s.Gauges["g"] != 3.5 {
		t.Fatalf("snapshot = %+v", s)
	}
	h := s.Histograms["h"]
	// Buckets are cumulative with a trailing +Inf entry equal to Count.
	if h.Count != 1 || h.Sum != 4 || len(h.Buckets) != 2 || h.Buckets[0] != 1 || h.Buckets[1] != 1 {
		t.Fatalf("hist snapshot = %+v", h)
	}
}

func TestNilRegistryAndCollectors(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil collectors")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	g.SetMin(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil collectors must read zero")
	}
	if r.WithPrefix("p_") != nil {
		t.Fatal("nil registry WithPrefix must stay nil")
	}
	if err := r.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
	var rec *Recorder
	rec.Emit(Event{Kind: "x"})
	rec.Span(0, "p").End()
	if rec.NextRun() != 0 {
		t.Fatal("nil recorder NextRun must return 0")
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathZeroAllocs is the satellite requirement in executable
// form: the disabled path of every collector and of spans allocates zero
// bytes per operation.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var (
		reg *Registry
		c   *Counter
		g   *Gauge
		h   *Histogram
		rec *Recorder
		f   *Flight
	)
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		c.Inc()
		g.Set(1)
		g.SetMax(2)
		g.SetMin(0.5)
		h.Observe(4)
		rec.Span(0, "compute").End()
		sp, sctx := rec.StartSpan(ctx, "attempt")
		if sctx != ctx {
			panic("nil recorder must not derive a context")
		}
		sp.End()
		f.Record(FlightEntry{Kind: "round", Round: 1})
		_ = f.Dump()
		_ = TraceFrom(ctx)
	}); n != 0 {
		t.Fatalf("disabled collectors allocate %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = reg.Counter("x")
		_ = reg.Gauge("y")
		_ = reg.Histogram("z", nil)
	}); n != 0 {
		t.Fatalf("nil registry lookups allocate %v allocs/op, want 0", n)
	}
}

// BenchmarkObsDisabled benchmarks the disabled path; run with -benchmem to
// see 0 B/op, 0 allocs/op. This is the overhead an uninstrumented run pays,
// with the span-tracing and flight-recorder surfaces of this PR included.
// CI pins allocs/op to exactly zero via benchgate's absolute rule.
func BenchmarkObsDisabled(b *testing.B) {
	var (
		c   *Counter
		g   *Gauge
		h   *Histogram
		rec *Recorder
		f   *Flight
	)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.SetMax(float64(i))
		h.Observe(float64(i))
		rec.Span(0, "round").End()
		sp, _ := rec.StartSpan(ctx, "attempt")
		sp.End()
		f.Record(FlightEntry{Kind: "round", Round: i})
	}
}

// BenchmarkObsEnabled is the counterpart: the live cost of one counter add
// plus one histogram observation, for sizing instrumentation density.
func BenchmarkObsEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x_total")
	h := r.Histogram("h", CountBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(float64(i % 1000))
	}
}

func TestConcurrentUpdatesAreRaceClean(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("peak")
			h := r.Histogram("obs", CountBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(float64(w*1000 + i))
				h.Observe(float64(i))
			}
		}(w)
	}
	// Concurrent reader: exposition while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.WriteText(io.Discard)
			_ = r.TakeSnapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("peak").Value(); got != 7999 {
		t.Fatalf("gauge = %v, want 7999", got)
	}
	if got := r.Histogram("obs", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	run := rec.NextRun()
	rec.Emit(Event{Kind: "run_start", Run: run, Nodes: 4, Workers: 2})
	rec.Emit(Event{Kind: "round", Run: run, Round: 1, Steps: 4, Messages: 8, Active: 2})
	sp := rec.Span(run, "deliver")
	sp.End()
	rec.Emit(Event{Kind: "run_end", Run: run, Rounds: 1})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	kinds := []string{"run_start", "round", "span", "run_end"}
	for i, e := range events {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind = %q, want %q", i, e.Kind, kinds[i])
		}
		if e.Seq != int64(i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i)
		}
		if e.Run != run {
			t.Fatalf("event %d run = %d, want %d", i, e.Run, run)
		}
	}
	if events[2].Phase != "deliver" || events[2].DurNS < 0 {
		t.Fatalf("span event = %+v", events[2])
	}
}

func TestFileRecorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, closeFn, err := NewFileRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.Emit(Event{Kind: "round", Round: 1})
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(bytes.TrimSpace(data), &e); err != nil {
		t.Fatalf("file content %q: %v", data, err)
	}
	if e.Kind != "round" || e.Round != 1 {
		t.Fatalf("event = %+v", e)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(42)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "hits_total 42") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}

	body, _ = get("/debug/vars")
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if s.Counters["hits_total"] != 42 {
		t.Fatalf("/debug/vars counters = %v", s.Counters)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ body:\n%s", body)
	}
}

func TestStartProfiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	stop, err := StartProfiles(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing profile %s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", suffix)
		}
	}
}
