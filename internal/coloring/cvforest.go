package coloring

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

// LogStar returns the iterated logarithm log*(x): the number of times log₂
// must be applied before the value drops to at most 1. It is the additive
// term of every runtime in the paper.
func LogStar(x float64) int {
	count := 0
	for x > 1 {
		x = math.Log2(x)
		count++
	}
	return count
}

// cvForestMachine runs Cole-Vishkin colour reduction on a rooted forest:
// every non-root node knows its parent (by ID), roots act against a
// synthetic parent colour. After O(log* n) bit-fix iterations the palette
// is {0..5}; three shift-down + recolour phases reduce it to {0,1,2}.
// Shift-down makes every node's children monochromatic, so a recolouring
// node sees at most two blocked colours regardless of its degree — the
// classic trick that makes 3 colours reachable on trees of any degree.
type cvForestMachine struct {
	info       local.NodeInfo
	parentID   uint64 // 0 and isRoot=true for roots
	isRoot     bool
	parentPort int
	color      uint64
	iterations int
	err        error
}

func (m *cvForestMachine) Init(info local.NodeInfo) {
	m.info = info
	m.color = info.ID
	m.parentPort = -1
	if m.isRoot {
		return
	}
	for i, id := range info.NeighborIDs {
		if id == m.parentID {
			m.parentPort = i
		}
	}
	if m.parentPort < 0 {
		m.err = fmt.Errorf("coloring: parent %d is not a neighbour of %d", m.parentID, m.info.ID)
	}
}

// Phases: round 1 broadcast; rounds 2..iterations+1 bit-fix steps; then
// three (shift-down, recolour) pairs; total 1 + iterations + 6.
func (m *cvForestMachine) totalRounds() int { return 1 + m.iterations + 6 }

// parentColor extracts the parent's previous-round colour, or a synthetic
// one for roots (differ in bit 0).
func (m *cvForestMachine) parentColor(recv []local.Message) (uint64, bool) {
	if m.isRoot {
		return m.color ^ 1, true
	}
	c, ok := recv[m.parentPort].(uint64)
	return c, ok
}

func (m *cvForestMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	if round > 1 {
		step := round - 2
		switch {
		case step < m.iterations:
			// Bit-fix iteration.
			pc, ok := m.parentColor(recv)
			if !ok {
				m.err = fmt.Errorf("coloring: missing parent colour in round %d", round)
				return nil, true
			}
			if pc == m.color {
				m.err = fmt.Errorf("coloring: parent shares colour %d", m.color)
				return nil, true
			}
			i := bits.TrailingZeros64(m.color ^ pc)
			b := (m.color >> uint(i)) & 1
			m.color = uint64(2*i) + b
		default:
			// Reduction phases: pairs (shift-down, recolour class c).
			phase := step - m.iterations // 0..5
			class := uint64(5 - phase/2)
			if phase%2 == 0 {
				// Shift-down: adopt the parent's previous colour; roots
				// pick the smallest colour in {0,1,2} different from
				// their own.
				if m.isRoot {
					for c := uint64(0); c < 3; c++ {
						if c != m.color {
							m.color = c
							break
						}
					}
				} else {
					pc, ok := m.parentColor(recv)
					if !ok {
						m.err = fmt.Errorf("coloring: missing parent colour in shift-down round %d", round)
						return nil, true
					}
					m.color = pc
				}
			} else if m.color == class {
				// Recolour: after a shift-down my children are
				// monochromatic, so at most two colours are blocked.
				var blocked []int
				for _, msg := range recv {
					if c, ok := msg.(uint64); ok {
						blocked = append(blocked, int(c))
					}
				}
				free := smallestFree(3, blocked)
				if free < 0 {
					m.err = fmt.Errorf("coloring: no free colour in {0,1,2} (children not monochromatic?)")
					return nil, true
				}
				m.color = uint64(free)
			}
		}
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = m.color
	}
	return send, round >= m.totalRounds()
}

// ColeVishkinForest 3-colours a rooted forest in O(log* n) LOCAL rounds.
// g must be a forest; parent[v] gives v's parent node index, or -1 for
// roots. The orientation is part of the input, as the procedure requires.
func ColeVishkinForest(g *graph.Graph, parent []int, seed uint64) (*Result, error) {
	n := g.N()
	if len(parent) != n {
		return nil, fmt.Errorf("coloring: %d parent entries for %d nodes", len(parent), n)
	}
	for v, p := range parent {
		if p == -1 {
			continue
		}
		if p < 0 || p >= n || !g.HasEdge(v, p) {
			return nil, fmt.Errorf("coloring: node %d has invalid parent %d", v, p)
		}
	}

	// Draw distinct IDs so machines can be configured with parent IDs.
	r := prng.New(seed ^ 0xf0e5_7c01)
	space := local.IDSpace(n)
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for v := range ids {
		for {
			id := r.Uint64() % space
			if !seen[id] {
				seen[id] = true
				ids[v] = id
				break
			}
		}
	}

	iters := cvIterations(space)
	machines := make([]*cvForestMachine, n)
	stats, err := local.Run(g, func(v int) local.Machine {
		m := &cvForestMachine{iterations: iters}
		if parent[v] == -1 {
			m.isRoot = true
		} else {
			m.parentID = ids[parent[v]]
		}
		machines[v] = m
		return m
	}, local.Options{PresetIDs: ids})
	if err != nil {
		return nil, err
	}
	colors := make([]int, n)
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("coloring: node %d failed: %w", v, m.err)
		}
		colors[v] = int(m.color)
	}
	if err := Verify(g, colors); err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   3,
		Rounds:    stats.Rounds,
		SimFactor: 1,
		Messages:  stats.MessagesSent,
	}, nil
}

// ParentsFromBFS roots each connected component of a forest at its
// lowest-index node and returns the parent array ColeVishkinForest expects.
// It errors if g contains a cycle.
func ParentsFromBFS(g *graph.Graph) ([]int, error) {
	n := g.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -2 // unvisited
	}
	for root := 0; root < n; root++ {
		if parent[root] != -2 {
			continue
		}
		parent[root] = -1
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if u == parent[v] {
					continue
				}
				if parent[u] != -2 {
					return nil, fmt.Errorf("coloring: graph contains a cycle through %d", u)
				}
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return parent, nil
}
