package fault

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/prng"
)

// TestInjectorDeterminism checks the stateless-decision contract: equal
// plans answer every coordinate identically, a different seed answers
// differently somewhere, and query order never matters (decisions are pure
// hashes, not generator draws).
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, PanicRate: 0.1, DropRate: 0.1, CrashRate: 0.1}
	a, b := NewInjector(plan), NewInjector(plan)
	diff := NewInjector(Plan{Seed: 43, PanicRate: 0.1, DropRate: 0.1, CrashRate: 0.1})

	var agreeAll, diffSomewhere bool
	agreeAll = true
	for round := 0; round < 50; round++ {
		for node := 0; node < 20; node++ {
			if a.PanicShard(round, node) != b.PanicShard(round, node) ||
				a.CrashNode(round, node) != b.CrashNode(round, node) {
				agreeAll = false
			}
			if a.CrashNode(round, node) != diff.CrashNode(round, node) {
				diffSomewhere = true
			}
			for port := 0; port < 4; port++ {
				if a.DropMessage(round, node, port) != b.DropMessage(round, node, port) {
					agreeAll = false
				}
			}
		}
	}
	if !agreeAll {
		t.Error("equal plans made different decisions")
	}
	if !diffSomewhere {
		t.Error("different seeds never diverged over 1000 coordinates")
	}

	// Reversed query order reproduces the same decisions.
	for round := 49; round >= 0; round-- {
		for node := 19; node >= 0; node-- {
			if a.CrashNode(round, node) != b.CrashNode(round, node) {
				t.Fatal("decision changed under reversed query order")
			}
		}
	}
}

// TestInjectorRates checks decisions land near the configured probability:
// a 10% rate over 100k coordinates must hit within [8%, 12%], and rate 0
// must never fire.
func TestInjectorRates(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, DropRate: 0.1})
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if in.DropMessage(i, i%97, i%5) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.08 || got > 0.12 {
		t.Errorf("10%% drop rate fired %.4f of the time", got)
	}
	for i := 0; i < 1000; i++ {
		if in.PanicShard(i, i) || in.CrashNode(i, i) {
			t.Fatal("zero-rate fault class fired")
		}
	}
}

// TestInjectorDerive checks Derive keeps the rates but changes the decision
// pattern, and that equal salts derive equal injectors.
func TestInjectorDerive(t *testing.T) {
	base := NewInjector(Plan{Seed: 42, CrashRate: 0.2})
	d1, d1b, d2 := base.Derive(1), base.Derive(1), base.Derive(2)
	var v1, v2 bool
	for round := 0; round < 100; round++ {
		for node := 0; node < 10; node++ {
			if d1.CrashNode(round, node) != d1b.CrashNode(round, node) {
				t.Fatal("same salt derived different patterns")
			}
			if d1.CrashNode(round, node) != base.CrashNode(round, node) {
				v1 = true
			}
			if d1.CrashNode(round, node) != d2.CrashNode(round, node) {
				v2 = true
			}
		}
	}
	if !v1 {
		t.Error("Derive(1) never diverged from the base injector")
	}
	if !v2 {
		t.Error("Derive(1) and Derive(2) never diverged")
	}
}

// TestNilInjector checks the disabled paths: a nil injector answers no
// everywhere, survives Derive, and NewInjector returns nil for a plan
// without faults.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.PanicShard(1, 2) || in.DropMessage(1, 2, 3) || in.CrashNode(1, 2) {
		t.Error("nil injector made a yes decision")
	}
	if in.Panicking() || in.Dropping() || in.Crashing() {
		t.Error("nil injector reports a live fault class")
	}
	if in.Derive(5) != nil {
		t.Error("nil.Derive returned non-nil")
	}
	if NewInjector(Plan{Seed: 99}) != nil {
		t.Error("NewInjector returned an injector for a fault-free plan")
	}
}

// TestPlanMergeValidate pins the merge semantics (max rates, override seed
// wins when non-zero) and rate validation bounds.
func TestPlanMergeValidate(t *testing.T) {
	base := Plan{Seed: 1, PanicRate: 0.1, DropRate: 0.01}
	over := Plan{Seed: 2, PanicRate: 0.05, CrashRate: 0.2}
	m := base.Merge(over)
	if m.Seed != 2 || m.PanicRate != 0.1 || m.DropRate != 0.01 || m.CrashRate != 0.2 {
		t.Errorf("merge = %+v", m)
	}
	if m2 := base.Merge(Plan{}); m2.Seed != 1 {
		t.Errorf("zero-seed override clobbered the base seed: %+v", m2)
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan reports Enabled")
	}
	for _, bad := range []Plan{{PanicRate: 1}, {DropRate: -0.1}, {CrashRate: 1.5}} {
		if bad.Validate() == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	if err := (Plan{PanicRate: 0.999}).Validate(); err != nil {
		t.Errorf("Validate rejected a legal plan: %v", err)
	}
}

// TestCapturePanic checks stack capture, idempotence across re-panics, and
// that error panic values unwrap to their sentinel via errors.Is.
func TestCapturePanic(t *testing.T) {
	pe := CapturePanic("boom")
	if pe.Value != "boom" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "TestCapturePanic") {
		t.Error("stack does not contain the capturing frame")
	}
	if CapturePanic(pe) != pe {
		t.Error("re-capturing a *PanicError allocated a new one")
	}
	if pe.Unwrap() != nil {
		t.Error("string panic value unwrapped to an error")
	}

	inj := CapturePanic(ErrInjected)
	if !errors.Is(inj, ErrInjected) {
		t.Error("error panic value does not unwrap to ErrInjected")
	}
	var as *PanicError
	if !errors.As(error(inj), &as) {
		t.Error("errors.As failed to recover the *PanicError")
	}
}

// TestCheckpointClone checks the deep copy: mutating the clone's slices
// must not reach the original.
func TestCheckpointClone(t *testing.T) {
	c := &Checkpoint{
		Algorithm:   "mt-sequential",
		Round:       3,
		Resamplings: 7,
		Values:      []int{1, 2},
		Phi:         []float64{0.5},
		Peaks:       []float64{1.5},
		Counts:      []int{4},
		RNG:         [4]uint64{1, 2, 3, 4},
	}
	d := c.Clone()
	d.Values[0], d.Phi[0], d.Peaks[0], d.Counts[0] = 9, 9, 9, 9
	if c.Values[0] != 1 || c.Phi[0] != 0.5 || c.Peaks[0] != 1.5 || c.Counts[0] != 4 {
		t.Error("Clone shares backing arrays with the original")
	}
	if d.Algorithm != c.Algorithm || d.Round != c.Round || d.RNG != c.RNG {
		t.Error("Clone dropped scalar fields")
	}
	var nilC *Checkpoint
	if nilC.Clone() != nil {
		t.Error("nil.Clone returned non-nil")
	}
}

// TestBackoff pins the exponential growth, the cap, the jitter envelope and
// the 1ms floor.
func TestBackoff(t *testing.T) {
	// No jitter: pure doubling from base, capped at ceil.
	ms := time.Millisecond
	for i, want := range []time.Duration{100 * ms, 200 * ms, 400 * ms, 800 * ms, 1000 * ms, 1000 * ms} {
		if got := Backoff(100*ms, 1000*ms, i+1, nil); got != want {
			t.Errorf("attempt %d: Backoff = %v, want %v", i+1, got, want)
		}
	}
	// Defaults: base 100ms, ceil 5s.
	if got := Backoff(0, 0, 1, nil); got != 100*time.Millisecond {
		t.Errorf("default base = %v", got)
	}
	if got := Backoff(0, 0, 20, nil); got != 5*time.Second {
		t.Errorf("default ceil = %v", got)
	}
	// Jitter stays within ±25% and actually varies.
	r := prng.New(1)
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d := Backoff(time.Second, 10*time.Second, 1, r)
		if d < 750*time.Millisecond || d >= 1250*time.Millisecond {
			t.Fatalf("jittered delay %v outside [0.75s, 1.25s)", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct delays in 100 draws", len(seen))
	}
	// Floor: tiny bases never return sub-millisecond delays.
	if got := Backoff(1, 1, 1, r); got < time.Millisecond {
		t.Errorf("delay %v below the 1ms floor", got)
	}
}
