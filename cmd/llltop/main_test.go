package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseProm(t *testing.T) {
	text := `# TYPE service_queue_depth gauge
service_queue_depth 3
# TYPE service_jobs_done_total counter
service_jobs_done_total 120
# TYPE service_job_run_seconds histogram
service_job_run_seconds_bucket{le="0.001"} 10
service_job_run_seconds_bucket{le="0.01"} 90
service_job_run_seconds_bucket{le="+Inf"} 100
service_job_run_seconds_sum 0.42
service_job_run_seconds_count 100
garbage line without value
only_name
bad_value x
`
	metrics, hists := parseProm(text)
	if metrics["service_queue_depth"] != 3 || metrics["service_jobs_done_total"] != 120 {
		t.Fatalf("metrics = %v", metrics)
	}
	if metrics["service_job_run_seconds_sum"] != 0.42 {
		t.Fatalf("sum series not parsed: %v", metrics)
	}
	bs := hists["service_job_run_seconds"]
	if len(bs) != 3 {
		t.Fatalf("buckets = %v", bs)
	}
	if bs[0].le != 0.001 || bs[0].cum != 10 || !math.IsInf(bs[2].le, 1) || bs[2].cum != 100 {
		t.Fatalf("buckets = %v", bs)
	}
}

func TestHistQuantile(t *testing.T) {
	bs := []promBucket{{le: 0.001, cum: 10}, {le: 0.01, cum: 90}, {le: math.Inf(1), cum: 100}}
	if q := histQuantile(bs, 0.05); q != 0.001 {
		t.Fatalf("p5 = %v, want 0.001", q)
	}
	if q := histQuantile(bs, 0.5); q != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", q)
	}
	if q := histQuantile(bs, 0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %v, want +Inf", q)
	}
	if q := histQuantile(nil, 0.5); q != 0 {
		t.Fatalf("empty hist quantile = %v, want 0", q)
	}
	if q := histQuantile([]promBucket{{le: 1, cum: 0}}, 0.5); q != 0 {
		t.Fatalf("zero-count hist quantile = %v, want 0", q)
	}
}

func TestFmtSec(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{math.Inf(1), "+Inf"},
		{0.5, "500ms"},
		{0.000001, "1µs"},
	} {
		if got := fmtSec(tc.in); got != tc.want {
			t.Errorf("fmtSec(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestFrameAgainstFakeDaemon renders one -once frame against a stub daemon
// and checks the panels reflect both endpoints.
func TestFrameAgainstFakeDaemon(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `service_queue_depth 2
service_jobs_running 1
service_jobs_submitted_total 40
service_admission_rejects_total 3
service_admission_shed_total 1
service_jobs_done_total 36
service_job_run_seconds_bucket{le="0.01"} 30
service_job_run_seconds_bucket{le="+Inf"} 36
service_job_run_seconds_sum 0.5
service_job_run_seconds_count 36
`)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{
  "fast_burn": true,
  "burn_factor": 2,
  "short_window_s": 10,
  "long_window_s": 60,
  "objectives": [
    {"name": "run_latency", "kind": "latency", "target": 0.99, "threshold_s": 2,
     "good": 30, "bad": 6, "burn_short": 16.6, "burn_long": 4.2, "fast_burn": true,
     "p50_s": 0.01, "p99_s": "+Inf",
     "exemplars": [{"bound": 0.01, "value": 0.007, "trace_id": "deadbeef01234567", "t_unix_ns": 5}]}
  ]
}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var sb strings.Builder
	if err := frame(&sb, srv.Client(), srv.URL, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"queue=2", "running=1", "shed=1",
		"FAST BURN",
		"run_latency", "burn short=16.60 long=4.20",
		"p99=+Inf",
		"trace=deadbeef01234567",
		"[burning]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("-once frame must not emit ANSI codes:\n%s", out)
	}
}

// TestFrameBothEndpointsDown: frame fails (non-nil error) only when both
// endpoints are unreachable.
func TestFrameBothEndpointsDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	var sb strings.Builder
	if err := frame(&sb, srv.Client(), srv.URL, false); err == nil {
		t.Fatalf("frame with both endpoints down should error; output:\n%s", sb.String())
	}

	// /metrics up, /slo down: degraded frame, no error.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "service_queue_depth 0\n")
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	srv2 := httptest.NewServer(mux)
	defer srv2.Close()
	sb.Reset()
	if err := frame(&sb, srv2.Client(), srv2.URL, false); err != nil {
		t.Fatalf("degraded frame: %v", err)
	}
	if !strings.Contains(sb.String(), "/slo unavailable") {
		t.Errorf("degraded frame should note the missing endpoint:\n%s", sb.String())
	}
}
