package benchset

import "fmt"

// The regression gate. Two kinds of rules guard the bench trajectory:
//
//   - BaselineRule compares the current document against the committed
//     baseline (the previous PR's BENCH_*.json) with a tolerance band.
//     Throughput bands are generous — CI machines differ and rounds/sec
//     moves with the hardware — while allocs/round bands are tight,
//     because allocation counts are deterministic properties of the code.
//
//   - RatioRule compares two benchmarks inside the SAME document, which is
//     machine-independent: the kernel scan must beat the generic scan by
//     the pinned factor on the very machine that ran both.
//
//   - AbsoluteRule pins a metric of one benchmark to a hard ceiling,
//     baseline-free and machine-independent. Its one current use is the
//     zero-allocation guarantee of the disabled observability path: a
//     single allocation on BenchmarkObsDisabled means nil-guarded
//     instrumentation leaked onto the hot path, and no tolerance band is
//     appropriate.
//
// A benchmark present in the baseline but missing from the current run is
// a failure (evidence must not silently disappear); one missing from the
// baseline is skipped, so a freshly added benchmark passes its first gate
// run and joins the trajectory when the new document is committed.

// BaselineRule bounds how far one metric of one benchmark may regress
// from the committed baseline.
type BaselineRule struct {
	// Name is the benchmark name; every (name, cpus) entry shared by both
	// documents is checked.
	Name   string
	Metric string
	// HigherIsBetter: current >= baseline * (1 - Tolerance).
	// Lower-is-better: current <= baseline * (1 + Tolerance) + Slack,
	// where Slack is absolute headroom for near-zero baselines.
	HigherIsBetter bool
	Tolerance      float64
	Slack          float64
}

// RatioRule demands that benchmark Name beats benchmark Against within one
// document: it passes when at least one clause holds — rounds/sec at least
// MinSpeedup times higher, or allocs/round at most MaxAllocRatio times as
// large. Entries are matched per CPU count.
type RatioRule struct {
	Name          string
	Against       string
	MinSpeedup    float64
	MaxAllocRatio float64
}

// AbsoluteRule caps one metric of one benchmark at a hard, baseline-free
// ceiling in the current document. Every (name, cpus) entry is checked; a
// missing benchmark or metric is a failure — an absolute guarantee that
// silently stops being measured is not a guarantee.
type AbsoluteRule struct {
	Name   string
	Metric string
	// Max is the inclusive ceiling (0 demands exactly zero).
	Max float64
}

// DefaultBaselineRules is the committed trajectory guard: throughput may
// wobble with the CI machine (60% band) but must not collapse; allocation
// rates are near-deterministic and get a 25% band plus 2 allocs of
// absolute slack.
func DefaultBaselineRules() []BaselineRule {
	rules := []BaselineRule{}
	for _, name := range []string{
		"BenchmarkEngineRounds/pool",
		"BenchmarkLocalSinkless100k",
		"BenchmarkViolatedScan100k/generic",
		"BenchmarkViolatedScan100k/kernel",
	} {
		rules = append(rules,
			BaselineRule{Name: name, Metric: "rounds/sec", HigherIsBetter: true, Tolerance: 0.6},
			BaselineRule{Name: name, Metric: "allocs/round", Tolerance: 0.25, Slack: 2},
		)
	}
	// Cluster serving-path latencies (PR 8). The hit paths ride real HTTP
	// servers and the scheduler, so wall time gets the same generous
	// machine band as throughput; the placement decision is pure compute
	// and additionally pins its allocation count tightly.
	for _, name := range []string{
		"BenchmarkCacheHitPath/local",
		"BenchmarkCacheHitPath/peer",
		"BenchmarkRouterPlacement",
	} {
		rules = append(rules,
			BaselineRule{Name: name, Metric: "ns/op", Tolerance: 1.5, Slack: 50_000})
	}
	rules = append(rules,
		BaselineRule{Name: "BenchmarkRouterPlacement", Metric: "allocs/op", Tolerance: 0.25, Slack: 2})
	return rules
}

// DefaultRatioRules pins the kernel claim of this PR: on the shared
// n = 100k instance, the CSR/bitset scan must be at least 2x the generic
// scan's rounds/sec or at most 0.5x its allocs/round — on the same
// machine, in the same run.
func DefaultRatioRules() []RatioRule {
	return []RatioRule{{
		Name:          "BenchmarkViolatedScan100k/kernel",
		Against:       "BenchmarkViolatedScan100k/generic",
		MinSpeedup:    2.0,
		MaxAllocRatio: 0.5,
	}}
}

// DefaultAbsoluteRules pins the guarantees that hold with zero tolerance on
// any machine: the disabled observability path — nil registry, nil
// recorder, nil SLO engine — allocates nothing per operation, even with
// span tracing and the flight recorder compiled in.
func DefaultAbsoluteRules() []AbsoluteRule {
	return []AbsoluteRule{{
		Name:   "BenchmarkObsDisabled",
		Metric: "allocs/op",
		Max:    0,
	}}
}

// findCPU returns the result with the given name and CPU count.
func (d *Doc) findCPU(name string, cpus int) (Result, bool) {
	for _, r := range d.Benchmarks {
		if r.Name == name && r.CPUs == cpus {
			return r, true
		}
	}
	return Result{}, false
}

// Compare checks current against baseline under the given rules and
// returns one human-readable problem per violation (empty = gate passes).
func Compare(baseline, current *Doc, brs []BaselineRule, rrs []RatioRule, ars []AbsoluteRule) []string {
	var problems []string
	for _, rule := range brs {
		base := baseline.Find(rule.Name)
		if len(base) == 0 {
			continue // new benchmark: joins the trajectory next commit
		}
		if len(current.Find(rule.Name)) == 0 {
			problems = append(problems,
				fmt.Sprintf("%s: present in baseline but missing from current run", rule.Name))
			continue
		}
		for _, b := range base {
			bv, ok := b.Metrics[rule.Metric]
			if !ok {
				continue
			}
			cur, ok := current.findCPU(rule.Name, b.CPUs)
			if !ok {
				problems = append(problems,
					fmt.Sprintf("%s (cpus=%d): missing from current run", rule.Name, b.CPUs))
				continue
			}
			cv, ok := cur.Metrics[rule.Metric]
			if !ok {
				problems = append(problems,
					fmt.Sprintf("%s (cpus=%d): metric %s missing from current run", rule.Name, b.CPUs, rule.Metric))
				continue
			}
			if rule.HigherIsBetter {
				if floor := bv * (1 - rule.Tolerance); cv < floor {
					problems = append(problems, fmt.Sprintf(
						"%s (cpus=%d): %s regressed to %.4g, below %.4g (baseline %.4g - %.0f%%)",
						rule.Name, b.CPUs, rule.Metric, cv, floor, bv, rule.Tolerance*100))
				}
			} else {
				if ceil := bv*(1+rule.Tolerance) + rule.Slack; cv > ceil {
					problems = append(problems, fmt.Sprintf(
						"%s (cpus=%d): %s regressed to %.4g, above %.4g (baseline %.4g + %.0f%% + %.4g)",
						rule.Name, b.CPUs, rule.Metric, cv, ceil, bv, rule.Tolerance*100, rule.Slack))
				}
			}
		}
	}
	for _, rule := range rrs {
		subjects := current.Find(rule.Name)
		if len(subjects) == 0 {
			problems = append(problems, fmt.Sprintf("%s: missing from current run", rule.Name))
			continue
		}
		for _, subj := range subjects {
			ref, ok := current.findCPU(rule.Against, subj.CPUs)
			if !ok {
				problems = append(problems,
					fmt.Sprintf("%s (cpus=%d): comparison benchmark %s missing", rule.Name, subj.CPUs, rule.Against))
				continue
			}
			speedupOK := subj.Metrics["rounds/sec"] >= rule.MinSpeedup*ref.Metrics["rounds/sec"]
			allocsOK := subj.Metrics["allocs/round"] <= rule.MaxAllocRatio*ref.Metrics["allocs/round"]
			if !speedupOK && !allocsOK {
				problems = append(problems, fmt.Sprintf(
					"%s (cpus=%d): neither %.1fx rounds/sec over %s (%.4g vs %.4g) nor <=%.2fx allocs/round (%.4g vs %.4g)",
					rule.Name, subj.CPUs, rule.MinSpeedup, rule.Against,
					subj.Metrics["rounds/sec"], ref.Metrics["rounds/sec"],
					rule.MaxAllocRatio, subj.Metrics["allocs/round"], ref.Metrics["allocs/round"]))
			}
		}
	}
	for _, rule := range ars {
		subjects := current.Find(rule.Name)
		if len(subjects) == 0 {
			problems = append(problems,
				fmt.Sprintf("%s: missing from current run (absolute %s ceiling unverified)", rule.Name, rule.Metric))
			continue
		}
		for _, subj := range subjects {
			v, ok := subj.Metrics[rule.Metric]
			if !ok {
				problems = append(problems,
					fmt.Sprintf("%s (cpus=%d): metric %s missing (absolute ceiling unverified)", rule.Name, subj.CPUs, rule.Metric))
				continue
			}
			if v > rule.Max {
				problems = append(problems, fmt.Sprintf(
					"%s (cpus=%d): %s = %.4g exceeds the absolute ceiling %.4g",
					rule.Name, subj.CPUs, rule.Metric, v, rule.Max))
			}
		}
	}
	return problems
}
