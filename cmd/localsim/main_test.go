package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("16, 64,256")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 64, 256}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseIntsErrors(t *testing.T) {
	for _, in := range []string{"abc", "2", "0", "16,,32", "-5"} {
		if _, err := parseInts(in); err == nil {
			t.Errorf("parseInts(%q) accepted", in)
		}
	}
}
