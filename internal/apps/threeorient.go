package apps

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hypergraph"
	"repro/internal/model"
)

// ThreeOrientations is the hypergraph-orientation application from the
// paper's introduction: given a rank-3 hypergraph, compute THREE
// orientations of the hyperedges (each orientation assigns every hyperedge a
// head among its three members) such that no node is a sink — the head of
// all of its hyperedges — in two or more of the three orientations.
//
// Every hyperedge carries one variable with 27 values encoding the triple of
// heads (one per orientation, uniform and independent across orientations).
// The bad event at node v is "v is a sink in at least 2 of the 3
// orientations"; for hypergraph degree k its probability is
// 3q² − 2q³ with q = 3^-k, which is strictly below 2^-d (d ≤ 2k) for every
// k ≥ 2 — a natural rank-3 problem strictly inside the paper's regime with
// no relaxation knob at all.
type ThreeOrientations struct {
	Instance *model.Instance
	Hyper    *hypergraph.Hypergraph
	// EdgeVar maps a hyperedge identifier to its variable identifier.
	EdgeVar []int
}

// NumOrientations is the number of simultaneous orientations computed.
const NumOrientations = 3

// headDigit extracts the head member index of orientation j from an encoded
// variable value.
func headDigit(val, j int) int {
	for ; j > 0; j-- {
		val /= 3
	}
	return val % 3
}

// NewThreeOrientations builds the instance on the 3-uniform hypergraph h.
// Every node must have degree at least 2 (degree-1 nodes violate the
// exponential criterion, as the paper's parameter discussion notes).
func NewThreeOrientations(h *hypergraph.Hypergraph) (*ThreeOrientations, error) {
	for id := 0; id < h.M(); id++ {
		if len(h.Edge(id)) != 3 {
			return nil, fmt.Errorf("apps: hyperedge %d has %d members, want 3", id, len(h.Edge(id)))
		}
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) < 2 {
			return nil, fmt.Errorf("apps: node %d has degree %d < 2; criterion p < 2^-d fails", v, h.Degree(v))
		}
	}
	d := dist.Uniform(27)
	b := model.NewBuilder()
	edgeVar := make([]int, h.M())
	for id := 0; id < h.M(); id++ {
		m := h.Edge(id)
		edgeVar[id] = b.AddVariable(d, fmt.Sprintf("orient3{%d,%d,%d}", m[0], m[1], m[2]))
	}
	for v := 0; v < h.N(); v++ {
		ids := h.Incident(v)
		scope := make([]int, len(ids))
		myIndex := make([]int, len(ids)) // member index of v in each hyperedge
		for i, id := range ids {
			scope[i] = edgeVar[id]
			myIndex[i] = memberIndex(h.Edge(id), v)
		}
		bad := func(vals []int) bool {
			sinks := 0
			for j := 0; j < NumOrientations; j++ {
				all := true
				for i := range vals {
					if headDigit(vals[i], j) != myIndex[i] {
						all = false
						break
					}
				}
				if all {
					sinks++
				}
			}
			return sinks >= 2
		}
		condProb := func(vals []int, fixed []bool) float64 {
			// The three orientations are independent coordinates of the
			// uniform 27-value distribution, so
			// Pr[sink in ≥2] = q1q2 + q1q3 + q2q3 − 2·q1q2q3 with
			// q_j = ∏_e Pr[head_j(e) = v | partial].
			var q [NumOrientations]float64
			for j := range q {
				q[j] = 1
				for i := range vals {
					if fixed[i] {
						if headDigit(vals[i], j) != myIndex[i] {
							q[j] = 0
							break
						}
					} else {
						q[j] *= 1.0 / 3.0
					}
				}
			}
			return q[0]*q[1] + q[0]*q[2] + q[1]*q[2] - 2*q[0]*q[1]*q[2]
		}
		b.AddEvent(scope, bad, condProb, fmt.Sprintf("multisink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building three-orientations instance: %w", err)
	}
	return &ThreeOrientations{Instance: inst, Hyper: h, EdgeVar: edgeVar}, nil
}

// HeadOf returns the head node of hyperedge id in orientation j under the
// complete assignment a.
func (t *ThreeOrientations) HeadOf(edgeID, j int, a *model.Assignment) int {
	return t.Hyper.Edge(edgeID)[headDigit(a.Value(t.EdgeVar[edgeID]), j)]
}

// SinkCount returns, for node v, in how many of the three orientations v is
// a sink under the complete assignment a. A correct solution has
// SinkCount(v) ≤ 1 for every v.
func (t *ThreeOrientations) SinkCount(v int, a *model.Assignment) int {
	count := 0
	for j := 0; j < NumOrientations; j++ {
		all := true
		for _, id := range t.Hyper.Incident(v) {
			if t.HeadOf(id, j, a) != v {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

// Violations returns the nodes that are sinks in two or more orientations.
func (t *ThreeOrientations) Violations(a *model.Assignment) []int {
	var out []int
	for v := 0; v < t.Hyper.N(); v++ {
		if t.SinkCount(v, a) >= 2 {
			out = append(out, v)
		}
	}
	return out
}
