package tenant

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func specsFor(t *testing.T, cfg string) []Spec {
	t.Helper()
	c, err := ParseConfig([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return c.Specs()
}

// fill backlogs every tenant with n items so the queue stays saturated
// through the whole measurement window.
func fill(t *testing.T, q *Queue[int], names []string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, name := range names {
			if err := q.Push(name, i); err != nil {
				t.Fatalf("push %s#%d: %v", name, i, err)
			}
		}
	}
}

// drain pops n items without blocking on the running gate (each pop is
// finished immediately) and returns the per-tenant dispatch counts.
func drain(t *testing.T, q *Queue[int], n int) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		_, name, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		counts[name]++
		q.Finish(name)
	}
	return counts
}

// TestWFQSharesConvergeToWeights: under saturation, each tenant's dispatch
// share converges to weight/Σweights within ±10% relative error — the
// headline WFQ invariant from the issue.
func TestWFQSharesConvergeToWeights(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 2, "c": 4, "d": 8}
	cfg := `{"tenants":[{"name":"a","weight":1},{"name":"b","weight":2},{"name":"c","weight":4},{"name":"d","weight":8}]}`
	q := NewQueue[int](100000, specsFor(t, cfg))
	q.SetRunningLimit(1)

	names := []string{"a", "b", "c", "d"}
	const perTenant = 3000
	fill(t, q, names, perTenant)

	// Pop while every tenant stays backlogged: the heaviest tenant (d,
	// weight 8) receives 8/15 of dispatches, so pops must stay below
	// perTenant * 15/8; 5000 pops consume at most ~2667 of d's 3000.
	total := 0
	for _, w := range weights {
		total += w
	}
	const pops = 5000
	counts := drain(t, q, pops)

	for name, w := range weights {
		want := float64(w) / float64(total)
		got := float64(counts[name]) / float64(pops)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("tenant %s: share %.4f, want %.4f (weight %d/%d), relative error %.2f%% > 10%%",
				name, got, want, w, total, 100*rel)
		}
	}
}

// TestWFQNoStarvation: the lowest-weight tenant's gap between consecutive
// dispatches is bounded — with weights summing to W and own weight w, a
// backlogged tenant waits at most ceil(W/w) + len(tenants) dispatches
// (stride scheduling's bounded-lag property, with slack for ties).
func TestWFQNoStarvation(t *testing.T) {
	cfg := `{"tenants":[{"name":"tiny","weight":1},{"name":"big1","weight":100},{"name":"big2","weight":100}]}`
	q := NewQueue[int](100000, specsFor(t, cfg))
	q.SetRunningLimit(1)
	names := []string{"tiny", "big1", "big2"}
	fill(t, q, names, 500)

	totalWeight := 201
	bound := totalWeight/1 + len(names) + 1
	gap, maxGap := 0, 0
	pops := 450 * totalWeight / 100 // keep the big tenants backlogged
	if pops > 900 {
		pops = 900
	}
	for i := 0; i < pops; i++ {
		_, name, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		q.Finish(name)
		if name == "tiny" {
			if gap > maxGap {
				maxGap = gap
			}
			gap = 0
		} else {
			gap++
		}
	}
	if maxGap > bound {
		t.Errorf("lowest-weight tenant max inter-dispatch gap = %d pops, bound %d: starvation", maxGap, bound)
	}
	if maxGap == 0 {
		t.Fatal("tiny tenant never dispatched at all")
	}
}

// TestWFQClosedLoopShares: closed-loop clients — each keeps a fixed number
// of items outstanding and resubmits the moment one finishes — still
// receive weight-proportional shares. Their sub-queues are momentarily
// empty whenever all outstanding items are running, which must NOT count
// as idleness: only a tenant with neither queued nor running work forfeits
// its stride position. (Regression: the original re-activation rule reset
// the pass on every such gap, collapsing 3:1 weights to round-robin.)
func TestWFQClosedLoopShares(t *testing.T) {
	cfg := `{"tenants":[{"name":"gold","weight":3},{"name":"silver","weight":1}]}`
	q := NewQueue[int](1024, specsFor(t, cfg))
	q.SetRunningLimit(4)

	// 4 closed-loop workers per tenant: one item outstanding each, pushed
	// back the instant its predecessor finishes (FIFO completion order).
	for _, name := range []string{"gold", "silver"} {
		for i := 0; i < 4; i++ {
			if err := q.Push(name, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	var running []string
	counts := map[string]int{}
	const pops = 4000
	for i := 0; i < pops; i++ {
		if len(running) == 4 {
			done := running[0]
			running = running[1:]
			q.Finish(done)
			if err := q.Push(done, i); err != nil {
				t.Fatal(err)
			}
		}
		_, name, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		counts[name]++
		running = append(running, name)
	}
	gold := float64(counts["gold"]) / float64(pops)
	if math.Abs(gold-0.75)/0.75 > 0.10 {
		t.Errorf("closed-loop gold share = %.4f, want 0.75 ±10%% (got gold=%d silver=%d)",
			gold, counts["gold"], counts["silver"])
	}
}

// TestPriorityClassesStrict: a higher priority class with queued work is
// always dispatched before any lower class, regardless of weights.
func TestPriorityClassesStrict(t *testing.T) {
	cfg := `{"tenants":[{"name":"lo","weight":1000},{"name":"hi","weight":1,"priority":3}]}`
	q := NewQueue[int](1000, specsFor(t, cfg))
	q.SetRunningLimit(1)
	for i := 0; i < 10; i++ {
		if err := q.Push("lo", i); err != nil {
			t.Fatal(err)
		}
		if err := q.Push("hi", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		_, name, _ := q.Pop()
		q.Finish(name)
		if name != "hi" {
			t.Fatalf("pop %d dispatched %q while priority-3 work was queued", i, name)
		}
	}
	_, name, _ := q.Pop()
	q.Finish(name)
	if name != "lo" {
		t.Fatalf("after the high class drained, pop dispatched %q, want lo", name)
	}
}

// TestSingleTenantFIFO: with one tenant the queue is a plain FIFO — the
// foundation of the service-level differential pin.
func TestSingleTenantFIFO(t *testing.T) {
	q := NewQueue[int](128, (*Config)(nil).Specs())
	q.SetRunningLimit(1)
	for i := 0; i < 100; i++ {
		if err := q.Push(DefaultName, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, name, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v), want FIFO order", i, v, ok)
		}
		q.Finish(name)
	}
}

// TestReactivationNoCredit: a tenant that idles while others work cannot
// bank virtual time and monopolize the queue when it returns.
func TestReactivationNoCredit(t *testing.T) {
	cfg := `{"tenants":[{"name":"a","weight":1},{"name":"b","weight":1}]}`
	q := NewQueue[int](10000, specsFor(t, cfg))
	q.SetRunningLimit(1)
	// a works alone for a long stretch: its pass advances far.
	for i := 0; i < 1000; i++ {
		if err := q.Push("a", i); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, q, 1000)
	// b activates with a backlog; a also has fresh work. b must NOT get
	// 1000 consecutive dispatches to "catch up".
	for i := 0; i < 50; i++ {
		q.Push("a", i)
		q.Push("b", i)
	}
	counts := drain(t, q, 40)
	if counts["a"] < 15 || counts["b"] < 15 {
		t.Errorf("post-reactivation dispatches a=%d b=%d, want roughly even (no banked credit)", counts["a"], counts["b"])
	}
}

// TestQueueCaps: the global capacity and the per-tenant MaxQueued cap
// reject with the right sentinels, and a rejection changes nothing.
func TestQueueCaps(t *testing.T) {
	cfg := `{"tenants":[{"name":"capped","max_queued":2},{"name":"free"}]}`
	q := NewQueue[int](3, specsFor(t, cfg))
	if err := q.Push("capped", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("capped", 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("capped", 3); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("per-tenant overflow err = %v, want ErrTenantFull", err)
	}
	if err := q.Push("free", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("free", 2); !errors.Is(err, ErrFull) {
		t.Fatalf("global overflow err = %v, want ErrFull", err)
	}
	if got := q.Len(); got != 3 {
		t.Errorf("Len = %d after rejections, want 3", got)
	}
	if err := q.Push("ghost", 1); err == nil {
		t.Error("push for unconfigured tenant succeeded")
	}
}

// TestRunningGate: Pop blocks while limit items are unfinished; Finish and
// SetRunningLimit release it.
func TestRunningGate(t *testing.T) {
	q := NewQueue[int](16, (*Config)(nil).Specs())
	q.SetRunningLimit(2)
	for i := 0; i < 4; i++ {
		q.Push(DefaultName, i)
	}
	for i := 0; i < 2; i++ {
		if _, _, ok := q.Pop(); !ok {
			t.Fatal("pop under limit blocked")
		}
	}
	popped := make(chan int, 4)
	go func() {
		v, _, ok := q.Pop()
		if ok {
			popped <- v
		}
	}()
	select {
	case v := <-popped:
		t.Fatalf("third pop returned %d with running=2, limit=2", v)
	case <-time.After(50 * time.Millisecond):
	}
	q.Finish(DefaultName) // release one slot
	select {
	case <-popped:
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after Finish")
	}
	go func() {
		v, _, ok := q.Pop()
		if ok {
			popped <- v
		}
	}()
	select {
	case v := <-popped:
		t.Fatalf("pop returned %d at the limit", v)
	case <-time.After(50 * time.Millisecond):
	}
	q.SetRunningLimit(3) // grow the gate instead of finishing
	select {
	case <-popped:
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after SetRunningLimit grew the gate")
	}
}

// TestCloseDrains: Close stops Push immediately but Pop still delivers
// everything enqueued before it — channel-close semantics.
func TestCloseDrains(t *testing.T) {
	q := NewQueue[int](16, (*Config)(nil).Specs())
	q.SetRunningLimit(4)
	for i := 0; i < 5; i++ {
		q.Push(DefaultName, i)
	}
	q.Close()
	if err := q.Push(DefaultName, 99); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close err = %v, want ErrClosed", err)
	}
	for i := 0; i < 5; i++ {
		v, name, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("drain pop %d = (%d, %v)", i, v, ok)
		}
		q.Finish(name)
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop on a closed drained queue reported ok")
	}
}

// TestPopUnblocksOnClose: workers blocked in Pop return promptly when the
// queue closes empty — the shutdown path must not hang.
func TestPopUnblocksOnClose(t *testing.T) {
	q := NewQueue[int](16, (*Config)(nil).Specs())
	q.SetRunningLimit(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, name, ok := q.Pop()
				if !ok {
					return
				}
				q.Finish(name)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	q.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not unblock on Close")
	}
}

// TestQueueConcurrentMixed hammers the queue from concurrent producers and
// consumers across tenants — the -race tier's structural check that every
// item pushed is popped exactly once.
func TestQueueConcurrentMixed(t *testing.T) {
	cfg := `{"tenants":[{"name":"a","weight":1},{"name":"b","weight":3},{"name":"hi","weight":1,"priority":2}]}`
	q := NewQueue[string](4096, specsFor(t, cfg))
	q.SetRunningLimit(3)
	const perTenant = 300
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b", "hi"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				for {
					err := q.Push(name, fmt.Sprintf("%s-%d", name, i))
					if err == nil {
						break
					}
					if errors.Is(err, ErrClosed) {
						t.Errorf("push saw ErrClosed before Close")
						return
					}
					time.Sleep(time.Millisecond) // full: retry
				}
			}
		}(name)
	}
	seen := make(map[string]bool)
	var seenMu sync.Mutex
	var consumers sync.WaitGroup
	for c := 0; c < 4; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				v, name, ok := q.Pop()
				if !ok {
					return
				}
				seenMu.Lock()
				if seen[v] {
					t.Errorf("item %s popped twice", v)
				}
				seen[v] = true
				seenMu.Unlock()
				q.Finish(name)
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumers.Wait()
	if got := len(seen); got != 3*perTenant {
		t.Errorf("popped %d distinct items, want %d", got, 3*perTenant)
	}
}
