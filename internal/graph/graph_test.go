package graph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self-loop error = %v", err)
	}
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range error = %v", err)
	}
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range error = %v", err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate error = %v", err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 2, V: 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	e.Other(3)
}

func TestBasicAccessors(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(0) != 3 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 3 || nbrs[0] != 1 || nbrs[1] != 2 || nbrs[2] != 3 {
		t.Fatalf("Neighbors(0) = %v", nbrs)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
	id, ok := g.EdgeBetween(2, 0)
	if !ok || g.Edge(id).normalize() != (Edge{U: 0, V: 2}) {
		t.Fatalf("EdgeBetween(2,0) = %d, %v", id, ok)
	}
	if _, ok := g.EdgeBetween(0, 17); ok {
		t.Fatal("EdgeBetween out of range should be false")
	}
}

func TestIncidentEdgesMatchNeighbors(t *testing.T) {
	g := Grid(3, 4)
	for v := 0; v < g.N(); v++ {
		ids := g.IncidentEdges(v)
		nbrs := g.Neighbors(v)
		if len(ids) != len(nbrs) {
			t.Fatalf("node %d: %d edges vs %d neighbors", v, len(ids), len(nbrs))
		}
		for i, id := range ids {
			if g.Edge(id).Other(v) != nbrs[i] {
				t.Fatalf("node %d edge %d mismatched neighbor", v, id)
			}
		}
	}
}

func TestBFSOnPath(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("distance to %d = %d", i, d[i])
		}
	}
}

func TestConnected(t *testing.T) {
	if !Cycle(5).Connected() {
		t.Fatal("cycle should be connected")
	}
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if b.Build().Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !NewBuilder(1).Build().Connected() {
		t.Fatal("single node should be connected")
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(6).Diameter(); d != 5 {
		t.Fatalf("path diameter = %d", d)
	}
	if d := Cycle(8).Diameter(); d != 4 {
		t.Fatalf("cycle diameter = %d", d)
	}
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d := b.Build().Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d", d)
	}
}

func TestSquareOfPath(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	sq := g.Square()
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {1, 3}, {2, 4}}
	if sq.M() != len(wantEdges) {
		t.Fatalf("square has %d edges, want %d", sq.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !sq.HasEdge(e[0], e[1]) {
			t.Fatalf("square missing edge %v", e)
		}
	}
}

func TestSquareDegreeBound(t *testing.T) {
	r := prng.New(1)
	g, err := RandomRegular(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	sq := g.Square()
	if sq.MaxDegree() > 4*4 {
		t.Fatalf("square degree %d exceeds d^2 = 16", sq.MaxDegree())
	}
}

func TestLineGraphOfTriangle(t *testing.T) {
	lg := Cycle(3).LineGraph()
	if lg.N() != 3 || lg.M() != 3 {
		t.Fatalf("line graph of triangle: N=%d M=%d, want 3/3", lg.N(), lg.M())
	}
}

func TestLineGraphOfStar(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	lg := b.Build().LineGraph()
	// All 4 edges share node 0, so L(G) = K4.
	if lg.N() != 4 || lg.M() != 6 {
		t.Fatalf("line graph of star: N=%d M=%d, want 4/6", lg.N(), lg.M())
	}
}

func TestLineGraphDegreeBound(t *testing.T) {
	r := prng.New(2)
	g, err := RandomRegular(30, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	lg := g.LineGraph()
	if lg.MaxDegree() > 2*5-2 {
		t.Fatalf("line graph degree %d exceeds 2d-2 = 8", lg.MaxDegree())
	}
}

func TestCycleStructure(t *testing.T) {
	g := Cycle(7)
	if g.N() != 7 || g.M() != 7 || g.MaxDegree() != 2 {
		t.Fatalf("bad cycle: N=%d M=%d maxDeg=%d", g.N(), g.M(), g.MaxDegree())
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || g.MaxDegree() != 5 {
		t.Fatalf("bad K6: M=%d maxDeg=%d", g.M(), g.MaxDegree())
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 3)
	if g.N() != 9 || g.M() != 12 || g.MaxDegree() != 4 {
		t.Fatalf("bad grid: N=%d M=%d maxDeg=%d", g.N(), g.M(), g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15)
	if g.M() != 14 || !g.Connected() {
		t.Fatalf("binary tree wrong: M=%d", g.M())
	}
	if g.Degree(0) != 2 {
		t.Fatalf("root degree %d", g.Degree(0))
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	r := prng.New(5)
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := RandomTree(n, r)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("n=%d: tree has %d edges", n, g.M())
			}
		}
		if !g.Connected() {
			t.Fatalf("n=%d: random tree disconnected", n)
		}
	}
}

func TestRandomRegularProperties(t *testing.T) {
	r := prng.New(7)
	tests := []struct{ n, d int }{
		{10, 3}, {20, 4}, {50, 5}, {16, 2}, {8, 7},
	}
	for _, tt := range tests {
		g, err := RandomRegular(tt.n, tt.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tt.n, tt.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tt.d {
				t.Fatalf("RandomRegular(%d,%d): node %d degree %d", tt.n, tt.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	r := prng.New(9)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd n*d should fail")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Fatal("d >= n should fail")
	}
	g, err := RandomRegular(6, 0, r)
	if err != nil || g.M() != 0 {
		t.Fatal("d=0 should give empty graph")
	}
}

func TestRandomBoundedDegreeRespectsBound(t *testing.T) {
	r := prng.New(11)
	g := RandomBoundedDegree(50, 120, 5, r)
	if g.MaxDegree() > 5 {
		t.Fatalf("degree bound violated: %d", g.MaxDegree())
	}
	if g.M() == 0 {
		t.Fatal("generator produced no edges")
	}
}

func TestHyperCube(t *testing.T) {
	g := HyperCube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: N=%d M=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 node %d degree %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Q4 diameter = %d", d)
	}
}

func TestDOTOutput(t *testing.T) {
	s := Path(3).DOT("p3")
	if !strings.Contains(s, "graph p3 {") || !strings.Contains(s, "0 -- 1;") {
		t.Fatalf("unexpected DOT output:\n%s", s)
	}
}

func TestQuickSquareContainsOriginal(t *testing.T) {
	r := prng.New(13)
	f := func(seed uint32) bool {
		rr := prng.New(uint64(seed))
		g := RandomBoundedDegree(20, 30, 4, rr)
		sq := g.Square()
		for _, e := range g.Edges() {
			if !sq.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLineGraphHandshake(t *testing.T) {
	// Sum of degrees in L(G) = 2 * number of adjacent edge pairs
	// = 2 * sum over v of C(deg(v), 2).
	f := func(seed uint32) bool {
		rr := prng.New(uint64(seed))
		g := RandomBoundedDegree(15, 25, 5, rr)
		lg := g.LineGraph()
		pairs := 0
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			pairs += d * (d - 1) / 2
		}
		return lg.M() == pairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSquare(b *testing.B) {
	r := prng.New(1)
	g, err := RandomRegular(500, 6, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Square()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(0)
	}
}
