package model

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/prng"
)

// buildPairInstance returns an instance with two fair binary variables and a
// single event "both variables are 1" (probability 1/4).
func buildPairInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	y := b.AddVariable(dist.Uniform(2), "y")
	b.AddEvent([]int{x, y}, func(vals []int) bool {
		return vals[0] == 1 && vals[1] == 1
	}, nil, "both-one")
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuilderValidation(t *testing.T) {
	t.Run("empty scope", func(t *testing.T) {
		b := NewBuilder()
		b.AddEvent(nil, func([]int) bool { return false }, nil, "e")
		if _, err := b.Build(); !errors.Is(err, ErrEmptyScope) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("variable out of range", func(t *testing.T) {
		b := NewBuilder()
		b.AddEvent([]int{0}, func([]int) bool { return false }, nil, "e")
		if _, err := b.Build(); !errors.Is(err, ErrVarRange) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate scope variable", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddVariable(dist.Uniform(2), "x")
		b.AddEvent([]int{x, x}, func([]int) bool { return false }, nil, "e")
		if _, err := b.Build(); !errors.Is(err, ErrDuplicateVar) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestUnconditionalProbability(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	if got := inst.CondProb(0, a); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Pr[E] = %v, want 0.25", got)
	}
	if got := inst.P(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P() = %v, want 0.25", got)
	}
}

func TestConditionalProbability(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	a.Fix(0, 1)
	if got := inst.CondProb(0, a); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Pr[E | x=1] = %v, want 0.5", got)
	}
	a.Unfix(0)
	a.Fix(0, 0)
	if got := inst.CondProb(0, a); got != 0 {
		t.Fatalf("Pr[E | x=0] = %v, want 0", got)
	}
}

func TestCondProbWithDoesNotMutate(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	got := inst.CondProbWith(0, a, 1, 1)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CondProbWith = %v, want 0.5", got)
	}
	if a.Fixed(1) || a.NumFixed() != 0 {
		t.Fatal("CondProbWith mutated the assignment")
	}
}

func TestIncBasics(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	if got := inst.Inc(0, a, 0, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Inc(E, x=1) = %v, want 2", got)
	}
	if got := inst.Inc(0, a, 0, 0); got != 0 {
		t.Fatalf("Inc(E, x=0) = %v, want 0", got)
	}
	// 0/0 convention: condition on x=0 so Pr[E | θ] = 0, then Inc must be 0.
	a.Fix(0, 0)
	if got := inst.Inc(0, a, 1, 1); got != 0 {
		t.Fatalf("Inc with zero base = %v, want 0", got)
	}
}

func TestViolated(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	if _, err := inst.Violated(0, a); !errors.Is(err, ErrNotFixed) {
		t.Fatalf("Violated on partial assignment: err = %v", err)
	}
	a.Fix(0, 1)
	a.Fix(1, 1)
	bad, err := inst.Violated(0, a)
	if err != nil || !bad {
		t.Fatalf("Violated = %v, %v; want true", bad, err)
	}
	n, err := inst.CountViolated(a)
	if err != nil || n != 1 {
		t.Fatalf("CountViolated = %d, %v", n, err)
	}
}

func TestDerivedStructures(t *testing.T) {
	// Three events in a path: E0 -x- E1 -y- E2, one shared variable each.
	b := NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	y := b.AddVariable(dist.Uniform(2), "y")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E0")
	b.AddEvent([]int{x, y}, func(v []int) bool { return v[0] == v[1] }, nil, "E1")
	b.AddEvent([]int{y}, func(v []int) bool { return v[0] == 0 }, nil, "E2")
	inst := b.MustBuild()

	dg := inst.DependencyGraph()
	if dg.N() != 3 || dg.M() != 2 {
		t.Fatalf("dependency graph N=%d M=%d", dg.N(), dg.M())
	}
	if !dg.HasEdge(0, 1) || !dg.HasEdge(1, 2) || dg.HasEdge(0, 2) {
		t.Fatal("dependency edges wrong")
	}
	if inst.D() != 2 {
		t.Fatalf("d = %d", inst.D())
	}
	if inst.Rank() != 2 {
		t.Fatalf("r = %d", inst.Rank())
	}
	if got := inst.Var(x).Events; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("x affects %v", got)
	}
}

func TestCriteria(t *testing.T) {
	// Single event with probability 1/4 and d=0: margin = 0.25 < 1.
	b := NewBuilder()
	x := b.AddVariable(dist.Uniform(4), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 0 }, nil, "E")
	inst := b.MustBuild()
	ok, margin := inst.ExponentialCriterion()
	if !ok || math.Abs(margin-0.25) > 1e-12 {
		t.Fatalf("exponential criterion: ok=%v margin=%v", ok, margin)
	}
	okS, val := inst.SymmetricLLLCriterion()
	if !okS || math.Abs(val-math.E*0.25) > 1e-12 {
		t.Fatalf("symmetric criterion: ok=%v val=%v", okS, val)
	}
}

// randomInstance builds a random rank<=3 instance with hash-based arbitrary
// predicates for cross-checking engine identities.
func randomInstance(seed uint64, nVars, nEvents int) *Instance {
	r := prng.New(seed)
	b := NewBuilder()
	for i := 0; i < nVars; i++ {
		k := 2 + r.Intn(2) // 2 or 3 values
		b.AddVariable(dist.Uniform(k), "")
	}
	for i := 0; i < nEvents; i++ {
		scopeSize := 1 + r.Intn(3)
		perm := r.Perm(nVars)
		scope := perm[:scopeSize]
		evSeed := r.Uint64()
		bad := func(vals []int) bool {
			h := evSeed
			for _, v := range vals {
				h = prng.Mix64(h ^ uint64(v+1))
			}
			return h%4 == 0
		}
		b.AddEvent(scope, bad, nil, "")
	}
	return b.MustBuild()
}

func TestQuickLawOfTotalProbability(t *testing.T) {
	// For any event E, variable X in its scope and partial assignment θ:
	// sum_y Pr[X=y] * Pr[E | θ, X=y] == Pr[E | θ].
	f := func(seed uint32) bool {
		inst := randomInstance(uint64(seed), 5, 4)
		r := prng.New(uint64(seed) + 1)
		a := NewAssignment(inst)
		// Fix a random subset of variables.
		for v := 0; v < inst.NumVars(); v++ {
			if r.Bool() {
				a.Fix(v, r.Intn(inst.Var(v).Dist.Size()))
			}
		}
		for eid := 0; eid < inst.NumEvents(); eid++ {
			for _, vid := range inst.Event(eid).Scope {
				if a.Fixed(vid) {
					continue
				}
				d := inst.Var(vid).Dist
				sum := 0.0
				for y := 0; y < d.Size(); y++ {
					sum += d.Prob(y) * inst.CondProbWith(eid, a, vid, y)
				}
				if math.Abs(sum-inst.CondProb(eid, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIncExpectationIsOne(t *testing.T) {
	// E_y[Inc(E, y)] = 1 whenever Pr[E | θ] > 0 (identity used in the proofs
	// of Theorem 1.1 and Lemma 3.9).
	f := func(seed uint32) bool {
		inst := randomInstance(uint64(seed)^0xabcdef, 5, 4)
		a := NewAssignment(inst)
		for eid := 0; eid < inst.NumEvents(); eid++ {
			if inst.CondProb(eid, a) == 0 {
				continue
			}
			for _, vid := range inst.Event(eid).Scope {
				d := inst.Var(vid).Dist
				sum := 0.0
				for y := 0; y < d.Size(); y++ {
					sum += d.Prob(y) * inst.Inc(eid, a, vid, y)
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConjunctionMatchesEnumeration(t *testing.T) {
	r := prng.New(77)
	for trial := 0; trial < 50; trial++ {
		// Build two identical instances: one with the closed form, one
		// relying on enumeration, and compare conditional probabilities.
		nVars := 4
		bClosed, bEnum := NewBuilder(), NewBuilder()
		dists := make([]*dist.Distribution, nVars)
		for i := 0; i < nVars; i++ {
			k := 2 + r.Intn(3)
			dists[i] = dist.Uniform(k)
			bClosed.AddVariable(dists[i], "")
			bEnum.AddVariable(dists[i], "")
		}
		scope := []int{0, 1, 2, 3}
		badSets := make([][]int, nVars)
		for i := range badSets {
			// Non-empty random subset of values.
			k := dists[i].Size()
			for {
				var set []int
				for v := 0; v < k; v++ {
					if r.Bool() {
						set = append(set, v)
					}
				}
				if len(set) > 0 {
					badSets[i] = set
					break
				}
			}
		}
		c := NewConjunction(scope, badSets, dists)
		AddConjunctionEvent(bClosed, scope, badSets, dists, "E")
		bEnum.AddEvent(scope, c.Bad, nil, "E")
		instClosed, instEnum := bClosed.MustBuild(), bEnum.MustBuild()

		aClosed, aEnum := NewAssignment(instClosed), NewAssignment(instEnum)
		for v := 0; v < nVars; v++ {
			if r.Bool() {
				val := r.Intn(dists[v].Size())
				aClosed.Fix(v, val)
				aEnum.Fix(v, val)
			}
		}
		got := instClosed.CondProb(0, aClosed)
		want := instEnum.CondProb(0, aEnum)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: closed form %v != enumeration %v", trial, got, want)
		}
	}
}

func TestConjunctionScopeCopy(t *testing.T) {
	scope := []int{0, 1}
	c := NewConjunction(scope, [][]int{{0}, {1}}, []*dist.Distribution{dist.Uniform(2), dist.Uniform(2)})
	scope[0] = 99
	if got := c.Scope(); got[0] == 99 {
		t.Fatal("Conjunction retained caller's scope slice")
	}
}

func TestAssignmentLifecycle(t *testing.T) {
	inst := buildPairInstance(t)
	a := NewAssignment(inst)
	if a.Complete() || a.NumFixed() != 0 {
		t.Fatal("fresh assignment should be empty")
	}
	a.Fix(0, 1)
	if !a.Fixed(0) || a.Value(0) != 1 || a.NumFixed() != 1 {
		t.Fatal("Fix did not register")
	}
	clone := a.Clone()
	a.Fix(1, 0)
	if clone.Fixed(1) {
		t.Fatal("Clone shares state with original")
	}
	if !a.Complete() {
		t.Fatal("assignment should be complete")
	}
	vals, fixed := a.Values()
	if vals[0] != 1 || !fixed[1] {
		t.Fatal("Values() wrong")
	}
}

func TestAssignmentPanics(t *testing.T) {
	inst := buildPairInstance(t)
	t.Run("double fix", func(t *testing.T) {
		a := NewAssignment(inst)
		a.Fix(0, 0)
		defer func() {
			if recover() == nil {
				t.Fatal("double Fix should panic")
			}
		}()
		a.Fix(0, 1)
	})
	t.Run("value of unfixed", func(t *testing.T) {
		a := NewAssignment(inst)
		defer func() {
			if recover() == nil {
				t.Fatal("Value of unfixed should panic")
			}
		}()
		a.Value(0)
	})
	t.Run("unfix of unfixed", func(t *testing.T) {
		a := NewAssignment(inst)
		defer func() {
			if recover() == nil {
				t.Fatal("Unfix of unfixed should panic")
			}
		}()
		a.Unfix(0)
	})
}

func BenchmarkCondProbEnumeration(b *testing.B) {
	inst := randomInstance(1, 6, 5)
	a := NewAssignment(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for e := 0; e < inst.NumEvents(); e++ {
			_ = inst.CondProb(e, a)
		}
	}
}

func BenchmarkCondProbClosedForm(b *testing.B) {
	bb := NewBuilder()
	dists := make([]*dist.Distribution, 8)
	scope := make([]int, 8)
	badSets := make([][]int, 8)
	for i := range dists {
		dists[i] = dist.Uniform(2)
		scope[i] = bb.AddVariable(dists[i], "")
		badSets[i] = []int{1}
	}
	AddConjunctionEvent(bb, scope, badSets, dists, "E")
	inst := bb.MustBuild()
	a := NewAssignment(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inst.CondProb(0, a)
	}
}

func TestSummarize(t *testing.T) {
	b := NewBuilder()
	x := b.AddVariable(dist.Uniform(4), "x")
	y := b.AddVariable(dist.Uniform(2), "y")
	b.AddEvent([]int{x, y}, func(v []int) bool { return v[0] == 0 && v[1] == 1 }, nil, "E0")
	b.AddEvent([]int{y}, func(v []int) bool { return v[0] == 0 }, nil, "E1")
	inst := b.MustBuild()
	s := inst.Summarize()
	if s.NumVars != 2 || s.NumEvents != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.D != 1 || s.R != 2 {
		t.Fatalf("d/r wrong: %+v", s)
	}
	if math.Abs(s.P-0.5) > 1e-12 {
		t.Fatalf("p = %v", s.P)
	}
	if math.Abs(s.ExpMargin-1.0) > 1e-12 {
		t.Fatalf("margin = %v", s.ExpMargin)
	}
	if s.MaxScope != 2 || s.MaxValues != 4 {
		t.Fatalf("scope/values wrong: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"vars=2", "events=2", "d=1", "r=2"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() missing %q: %s", want, str)
		}
	}
}
