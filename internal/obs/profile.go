package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile at <prefix>.cpu.pprof and returns a
// stop function that ends it and additionally writes a heap profile to
// <prefix>.heap.pprof (after a GC, so the numbers reflect live objects).
// The CLIs wire this behind their -profile flag.
func StartProfiles(prefix string) (stop func() error, err error) {
	cpuPath := prefix + ".cpu.pprof"
	heapPath := prefix + ".heap.pprof"
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		err := cpuF.Close()
		heapF, herr := os.Create(heapPath)
		if herr != nil {
			if err == nil {
				err = herr
			}
			return err
		}
		runtime.GC()
		if werr := pprof.WriteHeapProfile(heapF); werr != nil && err == nil {
			err = werr
		}
		if cerr := heapF.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}, nil
}
