// Package fault is the seeded, deterministic fault-injection and recovery
// layer of the repository. The paper's algorithms are distributed: the
// LOCAL model lets an adversary schedule nodes and lose messages, and the
// deterministic fixers are proved robust against adversarial fixing orders.
// This package mirrors that adversary operationally, so the engine, the
// LOCAL runtime and the job service can be exercised — and proved to
// survive — under injected panics, dropped messages and crash-stopped
// nodes.
//
// Three concerns live here because they share one recovery story:
//
//   - Injection. A Plan holds seeded fault rates; an Injector turns it into
//     stateless yes/no decisions keyed by (seed, coordinates) hashes, so a
//     decision is reproducible, independent of goroutine scheduling, and —
//     for per-node and per-message faults — independent of the engine
//     worker count.
//   - Panic capture. PanicError carries a recovered panic value together
//     with the stack of the panicking goroutine. The engine pool converts
//     worker panics into a re-panic of a *PanicError on the submitting
//     goroutine; the service scheduler recovers it into a failed job whose
//     end event carries the stack, and the daemon never dies.
//   - Recovery state. Checkpoint snapshots a runtime's resumable state
//     (assignment, progress counters, PRNG state, the fixer's φ table) so
//     a retried job continues from the last checkpoint instead of round
//     zero. Backoff computes the capped, jittered exponential delay between
//     retry attempts.
//
// Everything is deterministic by construction: capturing a checkpoint is a
// pure copy that never perturbs the runtime, and the same Plan seed always
// injects the same faults.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/prng"
)

// ErrInjected is the sentinel wrapped by every failure this package forces:
// injected shard panics unwrap to it, so tests and retry policies can tell
// a synthetic fault from an organic one with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Plan holds the seeded fault rates of one injection campaign. The zero
// Plan injects nothing. Rates are probabilities in [0, 1).
type Plan struct {
	// Seed keys every injection decision; equal seeds inject equal faults.
	Seed uint64
	// PanicRate is the probability that a compute shard panics, per shard
	// per round (exercised by the LOCAL runtime's compute phase; the panic
	// unwinds through the engine pool as a *PanicError).
	PanicRate float64
	// DropRate is the probability that a delivered message is dropped,
	// per message per round.
	DropRate float64
	// CrashRate is the probability that a node crash-stops for one round
	// (it is not stepped and sends nothing, but stays in the computation),
	// per node per round.
	CrashRate float64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.PanicRate > 0 || p.DropRate > 0 || p.CrashRate > 0
}

// Merge combines a baseline plan (e.g. daemon-wide flags) with an override
// (e.g. a job's own fault fields): rates take the maximum, and the
// override's seed wins when non-zero.
func (p Plan) Merge(o Plan) Plan {
	m := p
	if o.Seed != 0 {
		m.Seed = o.Seed
	}
	m.PanicRate = max(m.PanicRate, o.PanicRate)
	m.DropRate = max(m.DropRate, o.DropRate)
	m.CrashRate = max(m.CrashRate, o.CrashRate)
	return m
}

// Validate rejects rates outside [0, 1).
func (p Plan) Validate() error {
	for _, r := range []float64{p.PanicRate, p.DropRate, p.CrashRate} {
		if r < 0 || r >= 1 {
			return fmt.Errorf("fault: rate %v out of range [0, 1)", r)
		}
	}
	return nil
}

// Injector makes a Plan's random decisions. Decisions are stateless hashes
// of (seed, kind, coordinates): no generator state advances, so any number
// of goroutines may consult the injector concurrently and a decision never
// depends on the order in which others were made. A nil *Injector is the
// disabled injector — every decision is "no" at the cost of one nil check.
type Injector struct {
	plan Plan
}

// Decision-kind salts, arbitrary odd constants keeping the three hash
// families independent of each other.
const (
	saltPanic uint64 = 0x9e3779b97f4a7c15
	saltDrop  uint64 = 0xc2b2ae3d27d4eb4f
	saltCrash uint64 = 0x165667b19e3779f9
)

// NewInjector returns an injector for the plan, or nil when the plan
// injects nothing (the zero-cost disabled path).
func NewInjector(p Plan) *Injector {
	if !p.Enabled() {
		return nil
	}
	return &Injector{plan: p}
}

// Derive returns an injector with the same rates but the seed mixed with
// salt. Retries use it (salt = attempt number) so every attempt draws an
// independent fault pattern — otherwise a deterministic injected panic
// would recur on every retry and no job could ever recover.
func (in *Injector) Derive(salt uint64) *Injector {
	if in == nil {
		return nil
	}
	p := in.plan
	p.Seed = prng.Mix64(p.Seed ^ prng.Mix64(salt))
	return &Injector{plan: p}
}

// decide hashes (seed, salt, a, b, c) into a uniform [0, 1) draw and
// compares it against rate.
func (in *Injector) decide(rate float64, salt, a, b, c uint64) bool {
	if in == nil || rate <= 0 {
		return false
	}
	h := prng.Mix64(in.plan.Seed ^ salt)
	h = prng.Mix64(h ^ a)
	h = prng.Mix64(h ^ b)
	h = prng.Mix64(h ^ c)
	return float64(h>>11)/(1<<53) < rate
}

// PanicShard reports whether the compute shard starting at index lo should
// panic in the given round. Keyed by the shard's start index, so the
// decision depends on the sharding (and therefore the worker count) —
// panic injection is a recovery drill, not part of the determinism
// contract, and is never enabled on golden runs.
func (in *Injector) PanicShard(round, lo int) bool {
	if in == nil {
		return false
	}
	return in.decide(in.plan.PanicRate, saltPanic, uint64(round), uint64(lo), 0)
}

// DropMessage reports whether the message arriving at node's port should be
// dropped in the given round. Keyed by (round, node, port): independent of
// the worker count.
func (in *Injector) DropMessage(round, node, port int) bool {
	if in == nil {
		return false
	}
	return in.decide(in.plan.DropRate, saltDrop, uint64(round), uint64(node), uint64(port))
}

// CrashNode reports whether node crash-stops for the given round. Keyed by
// (round, node): independent of the worker count.
func (in *Injector) CrashNode(round, node int) bool {
	if in == nil {
		return false
	}
	return in.decide(in.plan.CrashRate, saltCrash, uint64(round), uint64(node), 0)
}

// Panicking / Dropping / Crashing report whether the respective fault class
// is live, letting hot loops hoist the per-item check behind one bool.
func (in *Injector) Panicking() bool { return in != nil && in.plan.PanicRate > 0 }
func (in *Injector) Dropping() bool  { return in != nil && in.plan.DropRate > 0 }
func (in *Injector) Crashing() bool  { return in != nil && in.plan.CrashRate > 0 }

// PanicError is a recovered panic promoted to an error: the original panic
// value plus the stack of the goroutine that panicked, captured at the
// recover site. The engine pool re-panics a *PanicError on the submitting
// goroutine when a worker panics; the service scheduler recovers it into a
// failed job whose end event carries the stack.
type PanicError struct {
	// Value is the original value passed to panic.
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

// Error formats the panic value; the stack is available separately so logs
// and events can choose how much to show.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap exposes an error panic value (in particular ErrInjected) to
// errors.Is / errors.As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// CapturePanic converts a recovered value into a *PanicError, capturing the
// current goroutine's stack. A value that already is a *PanicError is
// returned unchanged, so the stack of the original panic site survives
// re-panics across goroutine boundaries.
func CapturePanic(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Checkpoint is a resumable snapshot of a runtime's state, captured between
// iterations so no unit of work is ever torn. Which fields are populated
// depends on the algorithm; the service stores checkpoints opaquely in the
// job record and hands the latest one back to the runner on retry.
//
// Capturing a checkpoint is a pure copy: it never advances a PRNG stream or
// mutates runtime state, so runs with checkpointing enabled are
// bit-identical to runs without (the golden-table and equality tests pin
// this), and a resumed run continues bit-identically to the uninterrupted
// one.
//
// Checkpoints serialize to JSON for the cross-process migration path (a
// draining node exports them; another process resumes). The encoding is
// exact Go-to-Go: ints and the uint64 RNG words round-trip verbatim, and
// encoding/json emits float64s in shortest-exact form, so a checkpoint
// shipped over HTTP resumes bit-identically to one kept in memory.
type Checkpoint struct {
	// Algorithm tags the runtime that wrote the checkpoint; a runner only
	// resumes from a checkpoint taken by the same algorithm.
	Algorithm string `json:"algorithm,omitempty"`
	// Round is the runtime's progress counter in its native unit: parallel
	// resampling rounds (mtpar), resamplings (mtseq), variables fixed
	// (the sequential fixer).
	Round int `json:"round,omitempty"`
	// Resamplings is the resampling counter where distinct from Round.
	Resamplings int `json:"resamplings,omitempty"`
	// Values is the assignment value vector (complete for the resamplers;
	// meaningful only at fixed positions for the fixer, whose fixed set is
	// the order prefix of length Round).
	Values []int `json:"values,omitempty"`
	// Phi is the sequential fixer's flattened φ table (2 values per
	// dependency edge); nil for the resamplers.
	Phi []float64 `json:"phi,omitempty"`
	// Peaks / Counts are the fixer's running statistics, opaque to every
	// layer but internal/core.
	Peaks  []float64 `json:"peaks,omitempty"`
	Counts []int     `json:"counts,omitempty"`
	// RNG is the xoshiro256** state of the resampler's generator; zero for
	// the deterministic fixer.
	RNG [4]uint64 `json:"rng,omitempty"`
}

// Clone deep-copies the checkpoint, decoupling the stored snapshot from any
// buffers the runtime may keep mutating.
func (c *Checkpoint) Clone() *Checkpoint {
	if c == nil {
		return nil
	}
	d := *c
	d.Values = append([]int(nil), c.Values...)
	d.Phi = append([]float64(nil), c.Phi...)
	d.Peaks = append([]float64(nil), c.Peaks...)
	d.Counts = append([]int(nil), c.Counts...)
	return &d
}

// Backoff returns the delay before retry attempt (1-based): base·2^(attempt-1)
// capped at ceil, with a ±25% jitter drawn from r so synchronized failures
// do not retry in lockstep. A nil r disables the jitter; base <= 0 selects
// 100ms, ceil <= 0 selects 5s.
func Backoff(base, ceil time.Duration, attempt int, r *prng.Rand) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= ceil {
			d = ceil
			break
		}
	}
	if d > ceil {
		d = ceil
	}
	if r != nil {
		// Uniform in [0.75, 1.25)·d.
		d = time.Duration(float64(d) * (0.75 + r.Float64()/2))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
