package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/srep"
)

// CheckpointFix tags the checkpoints written by the sequential fixer
// (fault.Checkpoint.Algorithm); a resume is only accepted from a checkpoint
// with this tag. Unfixed variables are encoded as -1 in Checkpoint.Values,
// φ is the PStar.Snapshot flattening in Checkpoint.Phi, the running peaks
// are [PeakEdgeSum, PeakEventBound, PeakCertBound] in Checkpoint.Peaks and
// the step counters [Rank0, Rank1, Rank2, Rank3, Fallbacks] in
// Checkpoint.Counts. Round is the number of variables fixed so far — the
// resume point in the fixing order.
const CheckpointFix = "core-fix-sequential"

// Strategy selects among the feasible values when a variable is fixed. Every
// strategy preserves the correctness guarantee — feasibility is what the
// proofs need — but they differ in how much slack they leave, which the
// ablation experiment (T8) measures.
type Strategy int

const (
	// StrategyMinScore picks the feasible value with the smallest resulting
	// increase score (sum of the scaled triple components). This is the
	// natural greedy choice and the default.
	StrategyMinScore Strategy = iota + 1
	// StrategyFirst picks the first feasible value in distribution order.
	StrategyFirst
	// StrategyAdversarial picks the feasible value with the LARGEST
	// resulting increase score — the worst choice the existence lemmas
	// still permit. Used by the sharp-threshold experiment: strictly below
	// the threshold even this choice always succeeds; at the threshold it
	// manufactures failures.
	StrategyAdversarial
)

var (
	// ErrRankTooHigh indicates a variable affecting more than three events.
	ErrRankTooHigh = errors.New("core: variable affects more than 3 events (r > 3 is Conjecture 1.5)")
	// ErrBadOrder indicates an order that is not a permutation of the
	// variable identifiers.
	ErrBadOrder = errors.New("core: order is not a permutation of variables")
)

// Options configures the sequential fixers.
type Options struct {
	// Strategy selects among feasible values; 0 means StrategyMinScore.
	Strategy Strategy
	// Tol is the feasibility tolerance; 0 means srep.DefaultTol.
	Tol float64
	// Audit, when set, verifies property P* after every single fix
	// (quadratic cost; test use only).
	Audit bool
	// Trace, when non-nil, records every fixing decision (variable, value,
	// Inc factors, φ products before/after) for inspection and CSV export.
	Trace *Trace
	// Metrics, when non-nil, receives the core_* metric families: fix/step
	// counters, value-search iteration and Inc-evaluation counts, and the
	// φ edge-sum / slack / event-bound gauges. Shared by the sequential
	// fixer and the distributed machines; nil disables at zero cost.
	Metrics *obs.Registry
	// CheckpointEvery, together with OnCheckpoint, snapshots the full fixer
	// state (partial assignment, φ table, peak and rank statistics) every
	// CheckpointEvery fixes. Capturing is a pure copy — the fixer is
	// deterministic, so runs with checkpointing enabled are bit-identical to
	// runs without. 0 or a nil OnCheckpoint disables checkpointing.
	CheckpointEvery int
	OnCheckpoint    func(*fault.Checkpoint)
	// Resume, when non-nil, restores the fixer from a checkpoint taken by an
	// earlier run over the SAME instance and fixing order instead of starting
	// from the empty assignment: fixing continues at position Round of the
	// order and the result is bit-identical to the uninterrupted run. This is
	// how a retried job avoids redoing work. Metrics and Trace only observe
	// the fixes performed after the resume point.
	Resume *fault.Checkpoint
}

func (o Options) withDefaults() Options {
	if o.Strategy == 0 {
		o.Strategy = StrategyMinScore
	}
	if o.Tol == 0 {
		o.Tol = srep.DefaultTol
	}
	return o
}

// Stats records what a fixer run did.
type Stats struct {
	VarsFixed    int
	Rank0, Rank1 int // variables affecting zero / one event
	Rank2, Rank3 int // variables affecting two / three events
	// Fallbacks counts fixes where no value passed the exact feasibility
	// test (float noise only) and the least-violating value was used.
	Fallbacks int
	// MaxEdgeSum / MaxEventBound are the FINAL φ edge sums and per-event
	// φ products. Note that on solved instances these often collapse to 0
	// (once an event becomes impossible its φ values drop to 0), so the
	// Peak* fields are the informative budget metrics.
	MaxEdgeSum    float64
	MaxEventBound float64
	// PeakEdgeSum is the largest φ_e^u + φ_e^v observed on any edge at any
	// point of the run; the P* invariant caps it at 2.
	PeakEdgeSum float64
	// PeakEventBound is the largest ∏_{e∋v} φ_e^v observed for any event
	// at any point; the theorems cap it at 2^d.
	PeakEventBound float64
	// PeakCertBound is the largest Pr[E_v]·∏φ observed — the certified
	// failure bound. Strictly below 1 under the criterion p < 2^-d; it
	// reaches 1 exactly at the threshold.
	PeakCertBound       float64
	FinalViolatedEvents int
	// MaxFinalProbQuotient is the final certified bound
	// max_v Pr[E_v]·EventBound(v); < 1 guarantees success.
	MaxFinalProbQuotient float64
}

// Result is the outcome of a sequential fixing run.
type Result struct {
	Assignment *model.Assignment
	PStar      *PStar
	Stats      Stats
}

// FixSequential runs the paper's sequential deterministic process on inst,
// fixing the variables in the given order (nil means identifier order). It
// requires every variable to affect at most three events (r ≤ 3) and
// implements Theorem 1.1 for rank-2 variables and Theorem 1.3 (via the
// Variable Fixing Lemma and representable-triple decomposition) for rank-3
// variables.
//
// The process is purely local: the choice for each variable depends only on
// the conditional probabilities of the (at most three) affected events and
// the φ values on the (at most three) dependency-graph edges between them.
//
// FixSequential never aborts halfway: it always produces a complete
// assignment. If the instance satisfies p < 2^-d, the returned assignment
// provably avoids all bad events; Stats.FinalViolatedEvents reports the
// actual count (always 0 under the criterion; possibly positive at or above
// the threshold, which experiment T5 exploits).
func FixSequential(inst *model.Instance, order []int, opts Options) (*Result, error) {
	return FixSequentialCtx(context.Background(), inst, order, opts)
}

// ctxCheckStride is how many fixing steps FixSequentialCtx lets pass
// between context polls: frequent enough that cancellation is prompt even
// on million-variable instances, sparse enough that ctx.Err's mutex never
// shows up in the fixing hot path.
const ctxCheckStride = 256

// FixSequentialCtx is FixSequential with cancellation: the context is
// polled every ctxCheckStride fixing steps and, when it is done, the fixer
// stops and returns the PARTIAL Result — the assignment with the variables
// fixed so far (Stats.VarsFixed many), the peak φ bookkeeping up to that
// point, final-state fields (MaxEdgeSum, FinalViolatedEvents,
// MaxFinalProbQuotient) left zero — together with an error wrapping
// ctx.Err(). No individual fix is ever torn.
func FixSequentialCtx(ctx context.Context, inst *model.Instance, order []int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if r := inst.Rank(); r > 3 {
		return nil, fmt.Errorf("%w: rank %d", ErrRankTooHigh, r)
	}
	if order == nil {
		order = make([]int, inst.NumVars())
		for i := range order {
			order[i] = i
		}
	}
	if err := checkPermutation(order, inst.NumVars()); err != nil {
		return nil, err
	}

	g := inst.DependencyGraph()
	ps := NewPStar(g)
	a := model.NewAssignment(inst)
	orc := newOracle(inst)

	// Per-event unconditional probabilities: the bases of the P* invariant
	// and of the certified-bound peak tracking.
	base := make([]float64, inst.NumEvents())
	empty := model.NewAssignment(inst)
	for v := 0; v < inst.NumEvents(); v++ {
		base[v] = orc.CondProb(v, empty)
	}

	f := &fixer{inst: inst, orc: orc, g: g, ps: ps, a: a, opts: opts, obs: newFixObs(opts.Metrics)}
	if g.M() > 0 {
		f.stats.PeakEdgeSum = 2 // all φ start at 1
	}
	if inst.NumEvents() > 0 {
		f.stats.PeakEventBound = 1
	}
	for _, b := range base {
		if b > f.stats.PeakCertBound {
			f.stats.PeakCertBound = b
		}
	}
	start := 0
	if cp := opts.Resume; cp != nil {
		var err error
		if start, err = f.restore(cp, order); err != nil {
			return nil, err
		}
	}
	checkpointing := opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil
	for i := start; i < len(order); i++ {
		vid := order[i]
		if i%ctxCheckStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				f.stats.VarsFixed = i
				return &Result{Assignment: a, PStar: ps, Stats: f.stats},
					fmt.Errorf("core: sequential fixer cancelled after %d of %d variables: %w", i, len(order), cerr)
			}
		}
		if err := f.fixOne(vid); err != nil {
			return nil, err
		}
		f.updatePeaks(vid, base)
		if opts.Audit {
			if err := ps.Audit(inst, a, base, 1e-6); err != nil {
				return nil, fmt.Errorf("after fixing variable %d: %w", vid, err)
			}
		}
		if checkpointing && (i+1)%opts.CheckpointEvery == 0 {
			opts.OnCheckpoint(f.capture(i + 1))
		}
	}

	f.stats.VarsFixed = inst.NumVars()
	f.stats.MaxEdgeSum = ps.MaxEdgeSum()
	f.stats.MaxEventBound = ps.MaxEventBound()
	violated, err := f.orc.CountViolated(a)
	if err != nil {
		return nil, err
	}
	f.stats.FinalViolatedEvents = violated
	for v := 0; v < inst.NumEvents(); v++ {
		if q := base[v] * ps.EventBound(v); q > f.stats.MaxFinalProbQuotient {
			f.stats.MaxFinalProbQuotient = q
		}
	}
	return &Result{Assignment: a, PStar: ps, Stats: f.stats}, nil
}

// updatePeaks refreshes the running peak statistics after variable vid was
// fixed: only the edges and events of vid's hyperedge can have changed.
func (f *fixer) updatePeaks(vid int, base []float64) {
	events := f.inst.Var(vid).Events
	for i, u := range events {
		bound := f.ps.EventBound(u)
		if bound > f.stats.PeakEventBound {
			f.stats.PeakEventBound = bound
		}
		q := base[u] * bound
		if q > f.stats.PeakCertBound {
			f.stats.PeakCertBound = q
		}
		f.obs.eventBound(bound, q)
		for _, v := range events[i+1:] {
			if id, ok := f.g.EdgeBetween(u, v); ok {
				e := f.g.Edge(id)
				s := f.ps.Value(id, e.U) + f.ps.Value(id, e.V)
				if s > f.stats.PeakEdgeSum {
					f.stats.PeakEdgeSum = s
				}
				f.obs.phiEdge(s)
			}
		}
	}
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrBadOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("%w: entry %d", ErrBadOrder, v)
		}
		seen[v] = true
	}
	return nil
}

// fixer carries the mutable state of one sequential run.
type fixer struct {
	inst  *model.Instance
	orc   oracle
	g     *graph.Graph
	ps    *PStar
	a     *model.Assignment
	opts  Options
	stats Stats
	obs   *fixObs // nil when Options.Metrics is unset
}

// capture snapshots the fixer state after `fixed` variables of the order
// were fixed. Unfixed variables are encoded as -1 so the checkpoint is
// self-describing; everything is copied, nothing aliases live state.
func (f *fixer) capture(fixed int) *fault.Checkpoint {
	values, mask := f.a.Values()
	for i, ok := range mask {
		if !ok {
			values[i] = -1
		}
	}
	return &fault.Checkpoint{
		Algorithm: CheckpointFix,
		Round:     fixed,
		Values:    values,
		Phi:       f.ps.Snapshot(),
		Peaks:     []float64{f.stats.PeakEdgeSum, f.stats.PeakEventBound, f.stats.PeakCertBound},
		Counts:    []int{f.stats.Rank0, f.stats.Rank1, f.stats.Rank2, f.stats.Rank3, f.stats.Fallbacks},
	}
}

// restore rebuilds the fixer state from a checkpoint and returns the order
// position at which to resume. It cross-checks the checkpoint against the
// fixing order: the first Round entries of order must carry values, the
// rest must not — catching resumes against a different order or instance.
func (f *fixer) restore(cp *fault.Checkpoint, order []int) (int, error) {
	if cp.Algorithm != CheckpointFix {
		return 0, fmt.Errorf("core: checkpoint from %q cannot resume %q", cp.Algorithm, CheckpointFix)
	}
	if len(cp.Values) != f.inst.NumVars() {
		return 0, fmt.Errorf("core: checkpoint has %d values, instance has %d variables", len(cp.Values), f.inst.NumVars())
	}
	start := cp.Round
	if start < 0 || start > len(order) {
		return 0, fmt.Errorf("core: checkpoint round %d outside order of length %d", start, len(order))
	}
	for i, vid := range order {
		val := cp.Values[vid]
		if i < start {
			if val < 0 || val >= f.inst.Var(vid).Dist.Size() {
				return 0, fmt.Errorf("core: checkpoint value %d out of range for fixed variable %d", val, vid)
			}
			f.a.Fix(vid, val)
		} else if val >= 0 {
			return 0, fmt.Errorf("core: checkpoint fixes variable %d ahead of its order position %d", vid, i)
		}
	}
	if err := f.ps.Restore(cp.Phi); err != nil {
		return 0, err
	}
	if len(cp.Peaks) != 3 || len(cp.Counts) != 5 {
		return 0, fmt.Errorf("core: checkpoint stats malformed: %d peaks, %d counts", len(cp.Peaks), len(cp.Counts))
	}
	f.stats.PeakEdgeSum, f.stats.PeakEventBound, f.stats.PeakCertBound = cp.Peaks[0], cp.Peaks[1], cp.Peaks[2]
	f.stats.Rank0, f.stats.Rank1, f.stats.Rank2, f.stats.Rank3, f.stats.Fallbacks =
		cp.Counts[0], cp.Counts[1], cp.Counts[2], cp.Counts[3], cp.Counts[4]
	return start, nil
}

// fixOne fixes one variable, preserving property P*. It dispatches on the
// number of events the variable affects.
func (f *fixer) fixOne(vid int) error {
	events := f.inst.Var(vid).Events
	switch len(events) {
	case 0:
		f.stats.Rank0++
		f.a.Fix(vid, 0) // value irrelevant: the variable affects nothing
		return nil
	case 1:
		f.stats.Rank1++
		f.fixRank1(vid, events[0])
		return nil
	case 2:
		f.stats.Rank2++
		return f.fixRank2(vid, events[0], events[1])
	case 3:
		f.stats.Rank3++
		return f.fixRank3(vid, events[0], events[1], events[2])
	default:
		return fmt.Errorf("%w: variable %d affects %d", ErrRankTooHigh, vid, len(events))
	}
}

// fixRank1 fixes a variable affecting a single event u. A value with
// Inc(u, y) ≤ 1 always exists because E_y[Inc(u, y)] = 1; choosing it leaves
// every φ untouched and keeps P* intact. (In the paper's framing this is a
// rank-3 variable padded with two virtual events that nothing depends on.)
func (f *fixer) fixRank1(vid, u int) {
	val := chooseRank1(f.orc, f.a, vid, u, f.opts)
	f.obs.step(f.inst.Var(vid).Dist.Size(), 1, false)
	events := []int{u}
	before := f.captureBefore(vid, events)
	incs := f.captureIncs(vid, val, events)
	f.a.Fix(vid, val)
	f.record(vid, val, events, incs, before)
}

// fixRank2 fixes a variable affecting events u and v, using the weighted
// form of the Theorem 1.1 argument: with s = φ_e^u and t = φ_e^v on the
// dependency edge e = {u, v}, a value y with
// s·Inc(u,y) + t·Inc(v,y) ≤ s + t (≤ 2) exists by linearity of expectation;
// the new edge values ψ_e^u = s·Inc(u,y), ψ_e^v = t·Inc(v,y) then restore
// property P*.
func (f *fixer) fixRank2(vid, u, v int) error {
	edgeID, ok := f.g.EdgeBetween(u, v)
	if !ok {
		return fmt.Errorf("core: internal: events %d and %d share variable %d but no dependency edge", u, v, vid)
	}
	s := f.ps.Value(edgeID, u)
	t := f.ps.Value(edgeID, v)
	val, newU, newV, fallback := chooseRank2(f.orc, f.a, vid, u, v, s, t, f.opts)
	if fallback {
		f.stats.Fallbacks++
	}
	f.obs.step(f.inst.Var(vid).Dist.Size(), 2, fallback)
	events := []int{u, v}
	before := f.captureBefore(vid, events)
	incs := f.captureIncs(vid, val, events)
	f.a.Fix(vid, val)
	f.ps.Set(edgeID, u, newU)
	f.ps.Set(edgeID, v, newV)
	f.record(vid, val, events, incs, before)
	return nil
}

// fixRank3 fixes a variable affecting events u, v, w — the heart of
// Theorem 1.3. With the triangle edges e = {u,v}, e' = {u,w}, e” = {v,w}
// and the current representable triple
//
//	(a, b, c) = (φ_e^u·φ_e'^u, φ_e^v·φ_e''^v, φ_e'^w·φ_e''^w),
//
// the Variable Fixing Lemma (Lemma 3.2) guarantees a value y whose scaled
// triple (Inc(u,y)·a, Inc(v,y)·b, Inc(w,y)·c) is again representable; the
// constructive Lemma 3.5 decomposition then yields the six new edge values.
func (f *fixer) fixRank3(vid, u, v, w int) error {
	e, ok1 := f.g.EdgeBetween(u, v)
	e1, ok2 := f.g.EdgeBetween(u, w)
	e2, ok3 := f.g.EdgeBetween(v, w)
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("core: internal: events %d,%d,%d of variable %d not pairwise adjacent", u, v, w, vid)
	}
	a := f.ps.Value(e, u) * f.ps.Value(e1, u)
	b := f.ps.Value(e, v) * f.ps.Value(e2, v)
	c := f.ps.Value(e1, w) * f.ps.Value(e2, w)

	val, wit, fallback, err := chooseRank3(f.orc, f.a, vid, u, v, w, a, b, c, f.opts)
	if err != nil {
		return err
	}
	if fallback {
		f.stats.Fallbacks++
	}
	f.obs.step(f.inst.Var(vid).Dist.Size(), 3, fallback)
	events := []int{u, v, w}
	before := f.captureBefore(vid, events)
	incs := f.captureIncs(vid, val, events)
	f.a.Fix(vid, val)
	f.ps.Set(e, u, wit.A1)
	f.ps.Set(e1, u, wit.A2)
	f.ps.Set(e, v, wit.B1)
	f.ps.Set(e2, v, wit.B3)
	f.ps.Set(e1, w, wit.C2)
	f.ps.Set(e2, w, wit.C3)
	f.record(vid, val, events, incs, before)
	return nil
}
