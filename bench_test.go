// Benchmarks regenerating the paper's figures and the theorem-shaped
// experiment tables — one benchmark per artefact in the DESIGN.md
// experiment index (F1, F2, T1-T8). Each benchmark runs the corresponding
// experiment end to end and reports domain metrics via ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness
// (cmd/benchharness prints the full tables).
package lll_test

import (
	"runtime"
	"sync"
	"testing"

	lll "repro"
	"repro/internal/benchset"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/kernel"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/prng"
)

// benchSizes keeps per-iteration work small enough for stable timings.
var benchSizes = exp.Sizes{Scale: 0.5, Trials: 3}

func runExperiment(b *testing.B, run func() (*exp.Table, error)) *exp.Table {
	b.Helper()
	var tbl *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkF1_SrepSurface(b *testing.B) {
	tbl := runExperiment(b, func() (*exp.Table, error) {
		return exp.F1Surface(0.25, 5000, 1)
	})
	b.ReportMetric(float64(len(tbl.Rows)), "grid-rows")
}

func BenchmarkF2_WitnessDecompose(b *testing.B) {
	runExperiment(b, exp.F2Witness)
}

func BenchmarkT1_Rank2Fixer(b *testing.B) {
	tbl := runExperiment(b, func() (*exp.Table, error) {
		return exp.T1Rank2(uint64(b.N), benchSizes)
	})
	b.ReportMetric(float64(len(tbl.Rows)), "workloads")
}

func BenchmarkT2_DistributedRank2(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T2DistributedRank2(uint64(b.N), exp.Sizes{Scale: 0.25, Trials: 2})
	})
}

func BenchmarkT3_Rank3Fixer(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T3Rank3(uint64(b.N), benchSizes)
	})
}

func BenchmarkT4_DistributedRank3(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T4DistributedRank3(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 1})
	})
}

func BenchmarkT5_Threshold(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T5Threshold(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 50})
	})
}

func BenchmarkT6_MoserTardos(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T6MoserTardos(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 3})
	})
}

func BenchmarkT7_Applications(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T7Applications(uint64(b.N), benchSizes)
	})
}

func BenchmarkT8_Ablations(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T8Ablations(uint64(b.N), benchSizes)
	})
}

func BenchmarkT9_Conjecture(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T9Conjecture(uint64(b.N), exp.Sizes{Scale: 0.6, Trials: 2})
	})
}

func BenchmarkT10_Spectrum(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T10Spectrum(uint64(b.N), exp.Sizes{Scale: 0.6, Trials: 3})
	})
}

func BenchmarkT11_LowerBoundCertificates(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T11LowerBound(uint64(b.N), exp.Sizes{Trials: 10})
	})
}

// Engine benchmarks: the sharded worker-pool round loop vs the original
// goroutine-per-node simulation, at simulator scale (n = 100k nodes). Run
// with `-cpu 1,2,4` to see the scaling: the pool picks up GOMAXPROCS
// workers per -cpu setting. Metrics: rounds/sec and allocs/round (the pool
// reuses its buffers across rounds; the per-node variant pays one goroutine
// plus a flag slice per round).

// engineBenchRounds is the number of synchronous rounds simulated per
// benchmark iteration.
const engineBenchRounds = 4

// benchComputePhase is the per-node compute work of one simulated round: a
// few arithmetic ops and an index-addressed write, the same shape as a
// lightweight LOCAL machine step.
func benchComputePhase(v, round int, out []uint64) {
	x := uint64(v)*0x9e3779b97f4a7c15 + uint64(round)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	out[v] = x
}

// reportRoundMetrics converts raw benchmark counters into the domain
// metrics the ISSUE tracks: rounds/sec and allocs/round.
func reportRoundMetrics(b *testing.B, totalRounds int, m0, m1 *runtime.MemStats) {
	b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(totalRounds), "allocs/round")
}

func BenchmarkEngineRounds(b *testing.B) {
	const n = benchset.LargeN
	b.Run("pool", func(b *testing.B) {
		pool := engine.New(runtime.GOMAXPROCS(0))
		defer pool.Close()
		out := make([]uint64, n)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for round := 1; round <= engineBenchRounds; round++ {
				pool.ForEachShard(n, func(lo, hi int) {
					for v := lo; v < hi; v++ {
						benchComputePhase(v, round, out)
					}
				})
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		reportRoundMetrics(b, b.N*engineBenchRounds, &m0, &m1)
	})
	b.Run("goroutine-per-node", func(b *testing.B) {
		// The seed simulator's compute phase: one fresh goroutine per node
		// per round, joined by a WaitGroup barrier.
		out := make([]uint64, n)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for round := 1; round <= engineBenchRounds; round++ {
				var wg sync.WaitGroup
				for v := 0; v < n; v++ {
					wg.Add(1)
					go func(v int) {
						defer wg.Done()
						benchComputePhase(v, round, out)
					}(v)
				}
				wg.Wait()
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		reportRoundMetrics(b, b.N*engineBenchRounds, &m0, &m1)
	})
}

// floodProbe is a minimal LOCAL machine (min-ID flooding with a fixed round
// budget) used to benchmark the full runtime — compute, validation and
// delivery phases — at large n.
type floodProbe struct {
	info   local.NodeInfo
	min    uint64
	budget int
}

func (m *floodProbe) Init(info local.NodeInfo) {
	m.info = info
	m.min = info.ID
}

func (m *floodProbe) Round(round int, recv []local.Message) ([]local.Message, bool) {
	for _, msg := range recv {
		if v, ok := msg.(uint64); ok && v < m.min {
			m.min = v
		}
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = m.min
	}
	return send, round >= m.budget
}

// BenchmarkLocalSinkless100k runs the LOCAL runtime end to end on the
// dependency graph of an n = 100k sinkless-orientation instance (a cycle at
// the paper's threshold witness), with a fixed round budget per iteration.
func BenchmarkLocalSinkless100k(b *testing.B) {
	inst, err := benchset.Sinkless100k()
	if err != nil {
		b.Fatal(err)
	}
	g := inst.DependencyGraph()
	const budget = 8
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		stats, err := local.Run(g, func(v int) local.Machine {
			return &floodProbe{budget: budget}
		}, local.Options{IDSeed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += stats.Rounds
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	reportRoundMetrics(b, totalRounds, &m0, &m1)
}

// BenchmarkViolatedScan100k measures one full violated-event scan — the
// per-round product term of every resampler — on the shared n = 100k
// instance, under both paths: "generic" is the per-event
// Instance.Violated walk the resamplers used before the kernels (one
// closure dispatch and scope gather per event), "kernel" is the compiled
// CSR/bitset scan (word-parallel over the engine pool). One iteration =
// one scan = one round, so rounds/sec and allocs/round compare directly;
// cmd/benchgate pins kernel >= 2x generic rounds/sec or <= 0.5x
// allocs/round on this pair.
func BenchmarkViolatedScan100k(b *testing.B) {
	inst, err := benchset.Sinkless100k()
	if err != nil {
		b.Fatal(err)
	}
	// One fixed complete assignment, shared by both paths.
	a := model.NewAssignment(inst)
	r := prng.New(1)
	for v := 0; v < inst.NumVars(); v++ {
		a.Fix(v, inst.Var(v).Dist.Sample(r))
	}

	b.Run("generic", func(b *testing.B) {
		violated := make([]int, 0, inst.NumEvents())
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			violated = violated[:0]
			for e := 0; e < inst.NumEvents(); e++ {
				bad, err := inst.Violated(e, a)
				if err != nil {
					b.Fatal(err)
				}
				if bad {
					violated = append(violated, e)
				}
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		reportRoundMetrics(b, b.N, &m0, &m1)
	})
	b.Run("kernel", func(b *testing.B) {
		c := kernel.For(inst)
		if c == nil {
			b.Fatal("instance did not compile to a kernel")
		}
		ka := c.NewAssignment()
		ka.PackFrom(a)
		scr := c.NewScratch()
		pool := engine.New(runtime.GOMAXPROCS(0))
		defer pool.Close()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Violated(ka, pool, scr); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		reportRoundMetrics(b, b.N, &m0, &m1)
	})
}

// Micro-benchmarks of the public solver entry points, for users sizing
// their own workloads.

func BenchmarkSolveSequentialRank2(b *testing.B) {
	s, err := lll.NewSinkless(lll.NewCycle(128), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(s.Instance, lll.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}

func BenchmarkSolveSequentialRank3(b *testing.B) {
	r := lll.NewRand(1)
	h, err := lll.NewRandomRegularRank3(60, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lll.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(s.Instance, lll.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}

func BenchmarkSolveDistributedRank3(b *testing.B) {
	r := lll.NewRand(2)
	h, err := lll.NewRandomRegularRank3(18, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lll.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.SolveDistributed(s.Instance, lll.Options{}, lll.LocalOptions{IDSeed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}
