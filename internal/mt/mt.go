// Package mt implements the randomized Moser-Tardos resampling framework,
// the baseline against which the paper's deterministic fixers are compared
// (its straightforward distributed implementation is the classic
// O(log² n)-round algorithm under the criterion ep(d+1) < 1).
//
// Three algorithms are provided: the sequential resampler of [MT10], the
// parallel (round-based) variant in which an independent set of violated
// events resamples simultaneously each round, and the trivial one-shot
// sampler used by the threshold experiments to expose per-event failure
// probabilities empirically.
package mt

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/prng"
)

// CheckpointSeq / CheckpointPar tag the checkpoints written by the
// sequential and parallel resamplers (fault.Checkpoint.Algorithm); a resume
// is only accepted from a checkpoint with the matching tag.
const (
	CheckpointSeq = "mt-sequential"
	CheckpointPar = "mt-parallel"
)

// capture snapshots the resampler state between iterations: a copy of the
// complete assignment, the progress counters and the generator state.
// Pure reads only — the RNG stream is not advanced.
func capture(alg string, round, resamplings int, a *model.Assignment, r *prng.Rand) *fault.Checkpoint {
	values, _ := a.Values()
	return &fault.Checkpoint{Algorithm: alg, Round: round, Resamplings: resamplings, Values: values, RNG: r.State()}
}

// restoreCheckpoint rebuilds the resampler state from a checkpoint taken by
// the algorithm tagged alg.
func restoreCheckpoint(inst *model.Instance, cp *fault.Checkpoint, alg string) (*model.Assignment, *prng.Rand, error) {
	if cp.Algorithm != alg {
		return nil, nil, fmt.Errorf("mt: checkpoint from %q cannot resume %q", cp.Algorithm, alg)
	}
	if len(cp.Values) != inst.NumVars() {
		return nil, nil, fmt.Errorf("mt: checkpoint has %d values, instance has %d variables", len(cp.Values), inst.NumVars())
	}
	a := model.NewAssignment(inst)
	for vid, val := range cp.Values {
		if val < 0 || val >= inst.Var(vid).Dist.Size() {
			return nil, nil, fmt.Errorf("mt: checkpoint value %d out of range for variable %d", val, vid)
		}
		a.Fix(vid, val)
	}
	return a, prng.FromState(cp.RNG), nil
}

// Result is the outcome of a resampling run.
type Result struct {
	// Assignment is the final (complete) assignment.
	Assignment *model.Assignment
	// Satisfied reports whether no bad event occurs under Assignment.
	Satisfied bool
	// Resamplings counts event resamplings (each resampling redraws every
	// variable in one event's scope).
	Resamplings int
	// Rounds counts parallel rounds (Parallel only; 0 for Sequential).
	Rounds int
}

// kern bundles the per-run kernel state of a resampler: the compiled CSR
// kernel, a bit-packed mirror of the working assignment and the scan
// scratch. The model.Assignment stays the source of truth (checkpoints,
// results and restores read it unchanged); the mirror only feeds the
// word-parallel violated-event scan. nil means kernels are disabled or the
// instance is not compilable, and the generic path runs instead.
type kern struct {
	k   *kernel.Compiled
	ka  *kernel.Assignment
	scr *kernel.Scratch
}

// newKern returns the kernel state for inst, or nil for the generic path.
func newKern(inst *model.Instance) *kern {
	k := kernel.For(inst)
	if k == nil {
		return nil
	}
	return &kern{k: k, ka: k.NewAssignment(), scr: k.NewScratch()}
}

// sync overwrites the packed mirror with the model assignment; called after
// the initial sample and after a checkpoint restore, which is what makes
// checkpoints freely interchangeable between the generic and kernel paths.
func (kn *kern) sync(a *model.Assignment) {
	if kn != nil {
		kn.ka.PackFrom(a)
	}
}

// sampleAll draws every variable of inst independently from its
// distribution.
func sampleAll(inst *model.Instance, r *prng.Rand) *model.Assignment {
	a := model.NewAssignment(inst)
	for vid := 0; vid < inst.NumVars(); vid++ {
		a.Fix(vid, inst.Var(vid).Dist.Sample(r))
	}
	return a
}

// resample redraws the scope variables of event id, keeping the packed
// mirror (if any) in step.
func resample(inst *model.Instance, a *model.Assignment, id int, r *prng.Rand, kn *kern) {
	for _, vid := range inst.Event(id).Scope {
		a.Unfix(vid)
		v := inst.Var(vid).Dist.Sample(r)
		a.Fix(vid, v)
		if kn != nil {
			kn.ka.Set(vid, v)
		}
	}
}

// scanViolated returns the identifiers of all events violated under the
// complete assignment, dispatching to the kernel's word-parallel bitset
// scan when available and to the generic per-event walk otherwise. Both
// paths shard over the shared pool and return the same ascending list for
// every worker count. The kernel-path slice is reused across scans; callers
// must not retain it past the iteration, which none do.
func scanViolated(inst *model.Instance, a *model.Assignment, kn *kern, mo *mtObs) ([]int, error) {
	if kn == nil {
		return violatedEvents(inst, a, mo)
	}
	out, err := kn.k.Violated(kn.ka, engine.Shared(), kn.scr)
	if err != nil {
		return nil, err
	}
	mo.scan(inst.NumEvents(), len(out))
	return out, nil
}

// violatedEvents is the generic violated-event scan: it walks every event
// through model.Instance.Violated under the complete assignment a.
// Evaluation is read-only per event, so it is sharded over the shared
// worker pool; flags and errors are written index-addressed, keeping the
// result (including which error is reported) independent of the worker
// count. mo (may be nil) records the scan cost. The resamplers use it when
// kernels are disabled, and the differential tests keep it as the oracle
// the kernel scan must agree with.
func violatedEvents(inst *model.Instance, a *model.Assignment, mo *mtObs) ([]int, error) {
	m := inst.NumEvents()
	bad := make([]bool, m)
	errs := make([]error, m)
	engine.Shared().ForEachShard(m, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			bad[id], errs[id] = inst.Violated(id, a)
		}
	})
	var out []int
	for id := 0; id < m; id++ {
		if errs[id] != nil {
			return nil, errs[id]
		}
		if bad[id] {
			out = append(out, id)
		}
	}
	mo.scan(m, len(out))
	return out, nil
}

// OneShot samples every variable once and returns the assignment together
// with the number of violated events. It is the "just try the random
// assignment" baseline: under p = 2^-d each event still fails with its full
// probability, which is what the sharp-threshold experiment visualizes.
func OneShot(inst *model.Instance, r *prng.Rand) (*model.Assignment, int, error) {
	return oneShot(inst, r, newKern(inst))
}

// oneShot is OneShot with caller-provided kernel state, so repeated trials
// (EstimateFailureRate) reuse one packed mirror and scratch.
func oneShot(inst *model.Instance, r *prng.Rand, kn *kern) (*model.Assignment, int, error) {
	a := sampleAll(inst, r)
	kn.sync(a)
	violated, err := scanViolated(inst, a, kn, nil)
	if err != nil {
		return nil, 0, err
	}
	return a, len(violated), nil
}

// Sequential runs the Moser-Tardos sequential resampler: sample all
// variables, then repeatedly resample the lowest-indexed violated event.
// It stops after maxResamplings (0 means 10^6) without error; inspect
// Result.Satisfied.
func Sequential(inst *model.Instance, r *prng.Rand, maxResamplings int) (*Result, error) {
	return SequentialObs(inst, r, maxResamplings, Observer{})
}

// SequentialObs is Sequential with observability: o.Metrics receives the
// mt_* families and o.Trace one "mt_iteration" event per resampling
// (o.OnRound is ignored; the sequential resampler has no rounds).
func SequentialObs(inst *model.Instance, r *prng.Rand, maxResamplings int, o Observer) (*Result, error) {
	return SequentialCtx(context.Background(), inst, r, maxResamplings, o)
}

// SequentialCtx is SequentialObs with cancellation: the context is checked
// once per resampling iteration and, when it is done, the resampler stops
// and returns the PARTIAL Result accumulated so far (the current complete
// assignment, the resampling count, Satisfied false) together with an error
// wrapping ctx.Err(). No iteration is torn mid-way, so cancellation is
// observed within one iteration.
func SequentialCtx(ctx context.Context, inst *model.Instance, r *prng.Rand, maxResamplings int, o Observer) (*Result, error) {
	if maxResamplings == 0 {
		maxResamplings = 1_000_000
	}
	mo := newMTObs(ctx, o)
	var a *model.Assignment
	res := &Result{}
	if cp := o.Resume; cp != nil {
		var err error
		a, r, err = restoreCheckpoint(inst, cp, CheckpointSeq)
		if err != nil {
			return nil, err
		}
		res.Resamplings = cp.Resamplings
	} else {
		a = sampleAll(inst, r)
	}
	res.Assignment = a
	kn := newKern(inst)
	kn.sync(a)
	for res.Resamplings < maxResamplings {
		if cerr := ctx.Err(); cerr != nil {
			return res, fmt.Errorf("mt: sequential resampler cancelled after %d resamplings: %w", res.Resamplings, cerr)
		}
		t0 := mo.phaseStart()
		violated, err := scanViolated(inst, a, kn, mo)
		mo.scanDone(t0)
		if err != nil {
			return nil, err
		}
		if len(violated) == 0 {
			res.Satisfied = true
			return res, nil
		}
		t0 = mo.phaseStart()
		resample(inst, a, violated[0], r, kn)
		mo.resampleDone(t0)
		res.Resamplings++
		mo.iteration(res.Resamplings, len(violated), 1)
		if o.checkpointing() && res.Resamplings%o.CheckpointEvery == 0 {
			o.OnCheckpoint(capture(CheckpointSeq, res.Resamplings, res.Resamplings, a, r))
		}
	}
	violated, err := scanViolated(inst, a, kn, mo)
	if err != nil {
		return nil, err
	}
	res.Satisfied = len(violated) == 0
	return res, nil
}

// Parallel runs the parallel Moser-Tardos variant: in each round, every
// violated event whose identifier is smaller than those of all violated
// neighbors resamples its variables (a distributed-implementable independent
// set); the round ends when the selected events have redrawn their scopes.
// It stops after maxRounds (0 means 10^5) without error; inspect
// Result.Satisfied. Under ep(d+1) < 1 the expected number of rounds is
// O(log n) with O(log n)-factor overheads in the classic analysis.
func Parallel(inst *model.Instance, r *prng.Rand, maxRounds int) (*Result, error) {
	return ParallelObs(inst, r, maxRounds, Observer{})
}

// ParallelObs is Parallel with observability: o.Metrics receives the mt_*
// families, o.Trace one "mt_iteration" event per round, and o.OnRound is
// invoked after every round with the deterministic engine.RoundStats
// mapping described on Observer.
func ParallelObs(inst *model.Instance, r *prng.Rand, maxRounds int, o Observer) (*Result, error) {
	return ParallelCtx(context.Background(), inst, r, maxRounds, o)
}

// ParallelCtx is ParallelObs with cancellation: the context is checked once
// per parallel round and, when it is done, the resampler stops and returns
// the PARTIAL Result accumulated so far (current assignment, round and
// resampling counts, Satisfied false) together with an error wrapping
// ctx.Err(). Rounds are never torn mid-way — a cancel arriving inside a
// round lets that round's selection and resampling finish — so cancellation
// is observed within one round.
func ParallelCtx(ctx context.Context, inst *model.Instance, r *prng.Rand, maxRounds int, o Observer) (*Result, error) {
	if maxRounds == 0 {
		maxRounds = 100_000
	}
	mo := newMTObs(ctx, o)
	g := inst.DependencyGraph()
	var a *model.Assignment
	res := &Result{}
	if cp := o.Resume; cp != nil {
		var err error
		a, r, err = restoreCheckpoint(inst, cp, CheckpointPar)
		if err != nil {
			return nil, err
		}
		res.Rounds = cp.Round
		res.Resamplings = cp.Resamplings
	} else {
		a = sampleAll(inst, r)
	}
	res.Assignment = a
	kn := newKern(inst)
	kn.sync(a)
	for res.Rounds < maxRounds {
		if cerr := ctx.Err(); cerr != nil {
			return res, fmt.Errorf("mt: parallel resampler cancelled after %d rounds: %w", res.Rounds, cerr)
		}
		t0 := mo.phaseStart()
		violated, err := scanViolated(inst, a, kn, mo)
		mo.scanDone(t0)
		if err != nil {
			return nil, err
		}
		if len(violated) == 0 {
			res.Satisfied = true
			return res, nil
		}
		res.Rounds++
		t0 = mo.phaseStart()
		// Priority selection: violated events that are local minima among
		// violated neighbors resample. The set is independent, so the
		// resampled scopes are disjoint... not necessarily disjoint
		// (non-adjacent events share no variable by definition), hence
		// order within the round is irrelevant. The kernel path reads the
		// scan's violated bitset directly through the adjacency CSR; the
		// generic path materializes the same set as a map.
		selected := 0
		if kn != nil {
			vbits := kn.scr.Bits()
			for _, id := range violated {
				if !kn.k.HasLowerViolatedNeighbor(vbits, id) {
					resample(inst, a, id, r, kn)
					res.Resamplings++
					selected++
				}
			}
		} else {
			isViolated := make(map[int]bool, len(violated))
			for _, id := range violated {
				isViolated[id] = true
			}
			for _, id := range violated {
				minimum := true
				for _, u := range g.Neighbors(id) {
					if isViolated[u] && u < id {
						minimum = false
						break
					}
				}
				if minimum {
					resample(inst, a, id, r, kn)
					res.Resamplings++
					selected++
				}
			}
		}
		mo.resampleDone(t0)
		mo.iteration(res.Rounds, len(violated), selected)
		if o.OnRound != nil {
			o.OnRound(engine.RoundStats{Round: res.Rounds, Steps: selected, Active: len(violated)})
		}
		if o.checkpointing() && res.Rounds%o.CheckpointEvery == 0 {
			o.OnCheckpoint(capture(CheckpointPar, res.Rounds, res.Resamplings, a, r))
		}
	}
	violated, err := scanViolated(inst, a, kn, mo)
	if err != nil {
		return nil, err
	}
	res.Satisfied = len(violated) == 0
	return res, nil
}

// EstimateFailureRate runs trials one-shot samples and returns the fraction
// in which at least one event was violated, plus the mean violated count.
func EstimateFailureRate(inst *model.Instance, r *prng.Rand, trials int) (failRate, meanViolated float64, err error) {
	if trials <= 0 {
		return 0, 0, fmt.Errorf("mt: trials must be positive, got %d", trials)
	}
	failures, total := 0, 0
	kn := newKern(inst)
	for i := 0; i < trials; i++ {
		_, violated, err := oneShot(inst, r, kn)
		if err != nil {
			return 0, 0, err
		}
		if violated > 0 {
			failures++
		}
		total += violated
	}
	return float64(failures) / float64(trials), float64(total) / float64(trials), nil
}
