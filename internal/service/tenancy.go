package service

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/tenant"
)

// Multi-tenant serving errors. All three map to client-visible rejections:
// 429 for rate/quota (with per-tenant Retry-After), 400 for an unknown
// tenant label, 503 for the per-tenant deadline shed.
var (
	// ErrRateLimited: the tenant's token-bucket rate limit rejected the
	// submission (HTTP 429 + Retry-After).
	ErrRateLimited = errors.New("service: tenant rate limit exceeded")
	// ErrQuotaExceeded: the tenant's in-flight or queued-jobs quota
	// rejected the submission (HTTP 429 + Retry-After).
	ErrQuotaExceeded = errors.New("service: tenant quota exhausted")
	// ErrUnknownTenant: the spec names a tenant the policy does not
	// declare, and unknown tenants are not allowed (HTTP 400).
	ErrUnknownTenant = errors.New("service: unknown tenant")
	// ErrDeadlineShed: admission shed the job because the tenant's live
	// p99 run latency exceeds the job's deadline — it would burn an engine
	// slot and still miss (HTTP 503 + Retry-After). Unlike ErrShed this
	// does not wait for an SLO fast burn: the tenant's own recent latency
	// is evidence enough.
	ErrDeadlineShed = errors.New("service: admission shed: tenant live p99 run latency exceeds the job deadline")
)

// retryAfterError decorates a rejection sentinel with the client backoff
// the HTTP layer serializes into Retry-After. errors.Is sees through it.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e retryAfterError) Error() string { return e.err.Error() }
func (e retryAfterError) Unwrap() error { return e.err }

// retryAfterSeconds extracts the suggested backoff of a rejection, in
// whole seconds (minimum 1), for the Retry-After header.
func retryAfterSeconds(err error) int {
	var ra retryAfterError
	if errors.As(err, &ra) && ra.after > 0 {
		s := int((ra.after + time.Second - 1) / time.Second)
		if s >= 1 {
			return s
		}
	}
	return 1
}

// tenantShedMinSamples is the minimum long-window sample count before the
// per-tenant deadline shed trusts the live p99 — a cold tenant is never
// shed on one slow request.
const tenantShedMinSamples = 20

// AutoTuneConfig enables the AIMD MaxInFlight controller: the service
// spawns Max scheduler workers and adjusts the queue's running limit every
// Interval from the PR 2 latency histograms (interval-delta p99s of
// service_job_run_seconds / service_job_queue_seconds) and the SLO
// engine's fast-burn signal. See tenant.AutoTuner for the policy.
type AutoTuneConfig struct {
	// Min / Max bound the tuned limit. Defaults: 1 and
	// max(2×MaxInFlight, MaxInFlight+2).
	Min, Max int
	// Interval is the control tick (default 2s).
	Interval time.Duration
	// RunThreshold / QueueThreshold are the overload and backlog p99
	// triggers (defaults 2s and 500ms).
	RunThreshold   time.Duration
	QueueThreshold time.Duration
}

func (c AutoTuneConfig) withDefaults(maxInFlight int) AutoTuneConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 2 * maxInFlight
		if c.Max < maxInFlight+2 {
			c.Max = maxInFlight + 2
		}
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.RunThreshold <= 0 {
		c.RunThreshold = 2 * time.Second
	}
	if c.QueueThreshold <= 0 {
		c.QueueThreshold = 500 * time.Millisecond
	}
	return c
}

// tenantMetrics are one tenant's tenant_<name>_* instruments on the
// service registry (nil-safe throughout: with Metrics nil every field is a
// nil collector). A nil *tenantMetrics (tenancy disabled) is also valid.
type tenantMetrics struct {
	queued    *obs.Gauge
	admitted  *obs.Counter
	throttled *obs.Counter
	quota     *obs.Counter
	shed      *obs.Counter
	done      *obs.Counter
	failed    *obs.Counter
	share     *obs.Gauge
	queueSec  *obs.Histogram
	runSec    *obs.Histogram
}

func newTenantMetrics(reg *obs.Registry, name string) *tenantMetrics {
	v := reg.WithPrefix("tenant_" + tenant.MetricName(name) + "_")
	return &tenantMetrics{
		queued:    v.Gauge("queue_depth"),
		admitted:  v.Counter("admitted_total"),
		throttled: v.Counter("throttled_total"),
		quota:     v.Counter("quota_rejects_total"),
		shed:      v.Counter("shed_total"),
		done:      v.Counter("done_total"),
		failed:    v.Counter("failed_total"),
		share:     v.Gauge("share"),
		queueSec:  v.Histogram("job_queue_seconds", obs.DurationBuckets),
		runSec:    v.Histogram("job_run_seconds", obs.DurationBuckets),
	}
}

// tenancy is the service's multi-tenant state: the parsed policy, the
// admission limiter, the per-tenant live-latency engine backing the
// deadline shed, and the per-tenant metric views. Nil when Config.Tenancy
// is nil — the queue then runs a single default tenant and admission skips
// straight through.
type tenancy struct {
	cfg     *tenant.Config
	specs   []tenant.Spec
	limiter *tenant.Limiter
	// lat tracks each tenant's run latency in its own sliding-window
	// objective (named by tenant), feeding the per-tenant p99 the deadline
	// shed compares against.
	lat *slo.Engine
	tm  map[string]*tenantMetrics
}

func newTenancy(cfg *tenant.Config, reg *obs.Registry) *tenancy {
	specs := cfg.Specs()
	objectives := make([]slo.Objective, len(specs))
	for i, sp := range specs {
		objectives[i] = slo.Objective{Name: sp.Name, Kind: slo.Latency, Target: 0.99, Threshold: 2}
	}
	t := &tenancy{
		cfg:     cfg,
		specs:   specs,
		limiter: tenant.NewLimiter(specs, nil),
		lat:     slo.NewEngine(slo.Config{Objectives: objectives}),
		tm:      make(map[string]*tenantMetrics, len(specs)),
	}
	for _, sp := range specs {
		t.tm[sp.Name] = newTenantMetrics(reg, sp.Name)
	}
	return t
}

// noTenantMetrics is the disabled instrument set: all-nil collectors, so
// every field access stays valid and every method is a no-op.
var noTenantMetrics = &tenantMetrics{}

// metrics returns the named tenant's instruments; the disabled set (never
// nil) when tenancy is off or the name is unknown.
func (t *tenancy) metrics(name string) *tenantMetrics {
	if t == nil {
		return noTenantMetrics
	}
	if tm := t.tm[name]; tm != nil {
		return tm
	}
	return noTenantMetrics
}

// resolveTenant maps the spec's tenant label to the accounted tenant.
func (s *Service) resolveTenant(js JobSpec) (string, error) {
	if s.tenancy == nil {
		return tenant.DefaultName, nil
	}
	tn, err := s.tenancy.cfg.Resolve(js.Tenant)
	if err != nil {
		s.m.rejects.Inc()
		return "", fmt.Errorf("%w: %q", ErrUnknownTenant, js.Tenant)
	}
	return tn, nil
}

// admitTenant runs the tenant's admission gates in rejection-cost order:
// the deadline shed (prediction only, no state), then the limiter (quota
// before bucket — see tenant.Limiter). A nil error means the tenant was
// charged one in-flight unit that must be released when the job goes
// terminal (or admission later fails — see Submit's rollbacks).
func (s *Service) admitTenant(tn string, js JobSpec) error {
	if s.tenancy == nil {
		return nil
	}
	tm := s.tenancy.metrics(tn)
	if js.TimeoutMS > 0 {
		p99, n, ok := s.tenancy.lat.QuantileN(tn, 0.99)
		if ok && n >= tenantShedMinSamples && p99 > float64(js.TimeoutMS)/1000 {
			tm.shed.Inc()
			s.m.shed.Inc()
			s.m.rejects.Inc()
			return retryAfterError{err: ErrDeadlineShed, after: time.Second}
		}
	}
	d := s.tenancy.limiter.Admit(tn)
	switch {
	case errors.Is(d.Err, tenant.ErrThrottled):
		tm.throttled.Inc()
		s.m.rejects.Inc()
		return retryAfterError{err: ErrRateLimited, after: d.RetryAfter}
	case errors.Is(d.Err, tenant.ErrQuota):
		tm.quota.Inc()
		s.m.rejects.Inc()
		return retryAfterError{err: ErrQuotaExceeded, after: d.RetryAfter}
	case d.Err != nil:
		s.m.rejects.Inc()
		return d.Err
	}
	return nil
}

// releaseTenant returns the tenant's in-flight unit. Call exactly once per
// successful admitTenant, when the job reaches a terminal state (the
// scheduler's finish, a cancel while queued, the shutdown sweep, or a
// failed retry re-admission).
func (s *Service) releaseTenant(tn string) {
	if s.tenancy == nil {
		return
	}
	s.tenancy.limiter.Release(tn)
}

// observeTenantRun records a finished attempt's run latency against the
// tenant's metrics and live-latency objective (feeding the deadline shed),
// and refreshes the share gauges from the queue's dispatch counters.
func (s *Service) observeTenantRun(tn string, runTime time.Duration, trace string) {
	t := s.tenancy
	if t == nil {
		return
	}
	t.lat.Observe(tn, runTime.Seconds(), trace)
	t.metrics(tn).runSec.Observe(runTime.Seconds())
	var total uint64
	counts := make([]uint64, len(t.specs))
	for i, sp := range t.specs {
		counts[i] = s.queue.Popped(sp.Name)
		total += counts[i]
	}
	if total == 0 {
		return
	}
	for i, sp := range t.specs {
		t.metrics(sp.Name).share.Set(float64(counts[i]) / float64(total))
	}
}

// TenantStatus is one tenant's live accounting, served by GET /v1/tenants.
type TenantStatus struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Priority int    `json:"priority"`
	// Queued / InFlight are live queue depth and admitted-but-not-terminal
	// counts; Dispatched counts scheduler pops (the share numerator).
	Queued     int    `json:"queued"`
	InFlight   int    `json:"in_flight"`
	Dispatched uint64 `json:"dispatched"`
	// Share is the tenant's fraction of all dispatches so far.
	Share float64 `json:"share"`
	// Admitted / Throttled / QuotaRejects / Shed / Done / Failed mirror the
	// tenant_* counters (zero when the service runs without a registry).
	Admitted     int64 `json:"admitted"`
	Throttled    int64 `json:"throttled"`
	QuotaRejects int64 `json:"quota_rejects"`
	Shed         int64 `json:"shed"`
	Done         int64 `json:"done"`
	Failed       int64 `json:"failed"`
	// P99RunS is the tenant's live p99 run latency (seconds) over the
	// deadline-shed window; 0 until samples arrive.
	P99RunS float64 `json:"p99_run_s,omitempty"`
}

// TenantStatuses snapshots every tenant, sorted by name. With tenancy
// disabled it reports the single default tenant's queue state.
func (s *Service) TenantStatuses() []TenantStatus {
	t := s.tenancy
	if t == nil {
		return []TenantStatus{{
			Name:       tenant.DefaultName,
			Weight:     1,
			Queued:     s.queue.Len(),
			Dispatched: s.queue.Popped(tenant.DefaultName),
			Share:      1,
		}}
	}
	var total uint64
	out := make([]TenantStatus, len(t.specs))
	for i, sp := range t.specs {
		d := s.queue.Popped(sp.Name)
		total += d
		tm := t.metrics(sp.Name)
		out[i] = TenantStatus{
			Name:         sp.Name,
			Weight:       sp.Weight,
			Priority:     sp.Priority,
			Queued:       s.queue.LenTenant(sp.Name),
			InFlight:     t.limiter.InFlight(sp.Name),
			Dispatched:   d,
			Admitted:     tm.admitted.Value(),
			Throttled:    tm.throttled.Value(),
			QuotaRejects: tm.quota.Value(),
			Shed:         tm.shed.Value(),
			Done:         tm.done.Value(),
			Failed:       tm.failed.Value(),
		}
		if p99, n, ok := t.lat.QuantileN(sp.Name, 0.99); ok && n > 0 {
			out[i].P99RunS = p99
		}
	}
	if total > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Dispatched) / float64(total)
		}
	}
	return out
}

// tenantsHandler serves GET /v1/tenants.
func (s *Service) tenantsHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantStatuses())
}

// autotune is the AIMD control loop: every tick it derives interval p99s
// from the delta of the latency histograms (a sliding view over exactly
// the last interval's jobs), reads the SLO fast-burn alarm, and retunes
// the queue's running limit. Runs until Shutdown closes tuneStop.
func (s *Service) autotune(cfg AutoTuneConfig) {
	defer s.tuneWG.Done()
	tuner := tenant.AutoTuner{
		Min:            cfg.Min,
		Max:            cfg.Max,
		RunThreshold:   cfg.RunThreshold.Seconds(),
		QueueThreshold: cfg.QueueThreshold.Seconds(),
	}
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	prevRun := s.m.runSec.BucketCounts()
	prevQueue := s.m.queueSec.BucketCounts()
	for {
		select {
		case <-s.tuneStop:
			return
		case <-ticker.C:
		}
		curRun := s.m.runSec.BucketCounts()
		curQueue := s.m.queueSec.BucketCounts()
		sig := tenant.Signals{
			FastBurn: s.cfg.SLO.FastBurn(),
			RunP99:   deltaP99(s.m.runSec.Bounds(), prevRun, curRun),
			QueueP99: deltaP99(s.m.queueSec.Bounds(), prevQueue, curQueue),
		}
		prevRun, prevQueue = curRun, curQueue
		limit := tuner.Next(s.queue.RunningLimit(), sig)
		s.queue.SetRunningLimit(limit)
		s.m.inflightLimit.Set(float64(limit))
	}
}

// deltaP99 estimates the p99 (upper bucket bound) of the observations that
// landed between two bucket-count snapshots of one histogram. 0 when the
// interval saw no samples or the histograms are disabled (nil snapshots).
func deltaP99(bounds []float64, prev, cur []int64) float64 {
	if len(cur) == 0 || len(prev) != len(cur) {
		return 0
	}
	var total int64
	delta := make([]int64, len(cur))
	for i := range cur {
		d := cur[i] - prev[i]
		if d < 0 {
			d = 0
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	rank := total*99/100 + 1
	if rank > total {
		rank = total
	}
	var run int64
	for i, d := range delta {
		run += d
		if run >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			// +Inf bucket: report beyond the last bound.
			return bounds[len(bounds)-1] * 2
		}
	}
	return 0
}
