package core

import "repro/internal/obs"

// fixObs is the resolved observability state of one fixing run (sequential
// or distributed). All collectors are atomic, so the distributed machines
// share one fixObs across worker goroutines; a nil *fixObs (Options.Metrics
// unset) makes every method a free no-op.
type fixObs struct {
	runs, varsFixed, fallbacks *obs.Counter
	// valueIters counts candidate values scanned by the chooseRank*
	// kernels (the P* value search); incEvals counts the Inc-oracle
	// evaluations those scans performed (values × rank).
	valueIters, incEvals *obs.Counter
	// edgeSumPeak / edgeSlackMin track the φ edge sums written by fixing
	// steps: the largest sum (P* caps it at 2) and the smallest remaining
	// slack 2 − sum. eventBoundPeak / certBoundPeak track the per-event φ
	// product and the certified failure bound Pr[E_v]·∏φ (sequential only;
	// the distributed machines have no global event view).
	edgeSumPeak, edgeSlackMin     *obs.Gauge
	eventBoundPeak, certBoundPeak *obs.Gauge
}

func newFixObs(reg *obs.Registry) *fixObs {
	if reg == nil {
		return nil
	}
	fo := &fixObs{
		runs:           reg.Counter("core_fix_runs_total"),
		varsFixed:      reg.Counter("core_vars_fixed_total"),
		fallbacks:      reg.Counter("core_fallbacks_total"),
		valueIters:     reg.Counter("core_value_search_iters_total"),
		incEvals:       reg.Counter("core_inc_evals_total"),
		edgeSumPeak:    reg.Gauge("core_phi_edge_sum_peak"),
		edgeSlackMin:   reg.Gauge("core_phi_edge_slack_min"),
		eventBoundPeak: reg.Gauge("core_phi_event_bound_peak"),
		certBoundPeak:  reg.Gauge("core_cert_bound_peak"),
	}
	fo.runs.Inc()
	return fo
}

// step records one fixed variable: valuesScanned candidates were searched,
// each evaluated against rank events; fallback reports the float-noise
// least-violating path.
func (fo *fixObs) step(valuesScanned, rank int, fallback bool) {
	if fo == nil {
		return
	}
	fo.varsFixed.Inc()
	fo.valueIters.Add(int64(valuesScanned))
	fo.incEvals.Add(int64(valuesScanned * rank))
	if fallback {
		fo.fallbacks.Inc()
	}
}

// phiEdge records a φ edge sum written by a fixing step.
func (fo *fixObs) phiEdge(sum float64) {
	if fo == nil {
		return
	}
	fo.edgeSumPeak.SetMax(sum)
	fo.edgeSlackMin.SetMin(2 - sum)
}

// eventBound records an event's φ product and certified bound after a step.
func (fo *fixObs) eventBound(bound, cert float64) {
	if fo == nil {
		return
	}
	fo.eventBoundPeak.SetMax(bound)
	fo.certBoundPeak.SetMax(cert)
}
