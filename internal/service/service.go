// Package service is the long-running job subsystem of the repository: a
// bounded, weighted-fair queue with multi-tenant admission control in
// front of a scheduler that executes LLL jobs — deterministic fixers,
// Moser-Tardos resamplers, LOCAL-model runs — on the sharded engine worker
// pool, with per-job cancellation, NDJSON event streams and a retained job
// store. cmd/llld exposes it over HTTP.
//
// Concurrency model: admission (Submit) is non-blocking — a full queue
// rejects immediately with ErrQueueFull (HTTP 429) instead of building an
// unbounded backlog. With Config.Tenancy set, admission first resolves the
// job's tenant and runs its gates (token-bucket rate limit, in-flight
// quota, deadline-aware shed against the tenant's live p99 — see
// tenancy.go); the queue then interleaves tenants by stride scheduling
// over per-tenant sub-queues (weighted fair within a priority class,
// strict across classes). Without tenancy every job rides a single default
// tenant and the queue degenerates to FIFO. MaxInFlight scheduler
// goroutines pop the queue and run one job each; the job's inner
// parallelism rides the engine pool, so MaxInFlight × per-job workers is
// the compute envelope. With Config.AutoTune set, an AIMD controller
// retunes the effective in-flight limit from the latency histograms.
// Cancellation uses the context plumbed through local.Run and the
// resamplers: a running job stops within one round and keeps its partial
// result. Shutdown stops admission, cancels still-queued jobs, and drains
// the running ones.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/slo"
	"repro/internal/tenant"
)

// Sentinel errors surfaced by Submit / Get / Cancel; the HTTP layer maps
// them to status codes.
var (
	// ErrQueueFull: admission control rejected the job (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining: the service is shutting down (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound: no job with that id (HTTP 404).
	ErrNotFound = errors.New("service: no such job")
	// ErrShed: admission shed the job because the SLO engine is fast-burning
	// and the predicted p99 run latency exceeds the job's deadline — running
	// it would burn CPU on a job that cannot meet its deadline while the
	// error budget is already draining (HTTP 503).
	ErrShed = errors.New("service: admission shed: predicted p99 latency exceeds deadline under SLO fast burn")
)

// Objective names the Service feeds when Config.SLO is set; declare
// objectives under these names to activate the corresponding signal.
const (
	// SLORunLatency observes each attempt's run duration (seconds).
	SLORunLatency = "run_latency"
	// SLOQueueWait observes each job's admission-to-dispatch wait (seconds).
	SLOQueueWait = "queue_wait"
	// SLOErrorRate observes each job's terminal outcome (failed = bad).
	SLOErrorRate = "error_rate"
)

// Runner executes one job attempt under ctx, streaming events through emit
// and returning the (possibly partial) summary. The default is RunSpec;
// tests inject stubs. A Runner may panic: the scheduler recovers the panic
// into a failed (or retried) job and the daemon survives.
type Runner func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error)

// Attempt is the retry context of one Runner invocation.
type Attempt struct {
	// Number is the 1-based attempt number; retries increment it.
	Number int
	// Checkpoint is the latest snapshot saved by an earlier attempt, nil on
	// a fresh start. A runner that understands it resumes instead of redoing
	// the work.
	Checkpoint *fault.Checkpoint
	// SaveCheckpoint stores a snapshot in the job record for the next
	// attempt. Never nil for scheduler-issued attempts; safe to call
	// concurrently with readers of the job.
	SaveCheckpoint func(*fault.Checkpoint)
}

// Config parameterizes a Service. The zero value is usable: every field
// has a default sized off GOMAXPROCS.
type Config struct {
	// QueueCap bounds the number of queued (admitted, not yet running)
	// jobs; a full queue rejects with ErrQueueFull. Default 64.
	QueueCap int
	// MaxInFlight is the number of scheduler goroutines — the global cap
	// on concurrently running jobs. Default max(1, GOMAXPROCS/2): each
	// job parallelizes internally on the engine pool, so running one job
	// per core would oversubscribe it.
	MaxInFlight int
	// MaxWorkersPerJob caps the engine workers a single job may claim
	// (JobSpec.Workers is clamped to it). Default GOMAXPROCS.
	MaxWorkersPerJob int
	// Retention is the number of terminal (done/failed/cancelled) jobs
	// kept in the store; older ones are evicted FIFO. Queued and running
	// jobs are always retained. Default 256.
	Retention int
	// CacheSize is the capacity (entries) of the canonical result cache
	// serving jobs with spec field "cache": true. Default 256; negative
	// disables caching entirely.
	CacheSize int
	// Metrics, when non-nil, receives the service_* metric families and is
	// passed through to the runtime layers of every job. Trace likewise.
	Metrics *obs.Registry
	Trace   *obs.Recorder
	// SLO, when non-nil, receives the service's objective signals (run
	// latency, queue wait, error rate — see the SLO* name constants) and
	// closes the first control loop: while any objective fast-burns,
	// admission sheds deadline-carrying jobs whose deadline is below the
	// predicted p99 run latency (ErrShed). Nil disables both at zero cost.
	SLO *slo.Engine
	// Runner overrides job execution (tests); nil means RunSpec.
	Runner Runner
	// Fault is a daemon-wide fault-injection plan merged into every job's
	// own plan (rates take the maximum). The zero Plan injects nothing.
	Fault fault.Plan
	// DefaultMaxRetries is the retry budget for jobs that leave
	// JobSpec.MaxRetries zero. Default 0: failures are terminal unless the
	// job or the daemon opts in.
	DefaultMaxRetries int
	// RetryBackoff / RetryBackoffMax shape the exponential, jittered delay
	// between attempts (see fault.Backoff); zero selects 100ms / 5s.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Cluster joins this service to a multi-node llld cluster: the node
	// serves the peer cache/claim endpoints and, on a local cache miss for
	// a key another node owns, asks that home node before solving. Nil
	// (the default) runs standalone. Requires a result cache (CacheSize
	// not negative).
	Cluster *ClusterConfig
	// Tenancy declares the multi-tenant policy: per-tenant weights,
	// priority classes, rate limits and quotas (see tenant.ParseConfig).
	// Nil (the default) serves everything as one default tenant with no
	// limits — the pre-tenant behavior.
	Tenancy *tenant.Config
	// AutoTune enables the AIMD in-flight controller; nil keeps the limit
	// pinned at MaxInFlight.
	AutoTune *AutoTuneConfig
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0) / 2
		if c.MaxInFlight < 1 {
			c.MaxInFlight = 1
		}
	}
	if c.MaxWorkersPerJob <= 0 {
		c.MaxWorkersPerJob = runtime.GOMAXPROCS(0)
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// Service is the job subsystem: admission control, scheduler, job store.
// Create with New, stop with Shutdown.
type Service struct {
	cfg    Config
	runner Runner

	baseCtx    context.Context // parent of every job's run context
	baseCancel context.CancelFunc

	queue *tenant.Queue[*Job]
	wg    sync.WaitGroup // scheduler goroutines

	// tenancy is the multi-tenant admission state (nil when Config.Tenancy
	// is nil); tuneStop/tuneWG drive the AIMD in-flight controller (see
	// tenancy.go).
	tenancy  *tenancy
	tuneStop chan struct{}
	tuneWG   sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for List and retention
	nextID   int64
	draining bool
	// retryTimers holds the pending re-admission timers of jobs waiting out
	// their backoff; Shutdown stops them so a drain never races a requeue.
	retryTimers map[string]*time.Timer
	// backoffRand jitters the retry delays (guarded by mu).
	backoffRand *prng.Rand

	// cache is the canonical result cache (nil when Config.CacheSize < 0);
	// flights collapses concurrent identical cache-enabled jobs; keys
	// memoizes the spec → cache-key computation so repeated specs skip
	// the instance build + canonical hash. runOpts is the RunOptions
	// handed to RunSpec for default and batch runs.
	cache   *resultCache
	flights *flightGroup
	keys    *keyMemo
	runOpts RunOptions

	// peers is the cluster peer-cache layer (nil when standalone). tuning,
	// clusterStop and clusterWG drive the elasticity machinery — warm
	// handoffs and the hot-entry replicator (see handoff.go).
	peers       *peerLayer
	tuning      handoffTuning
	clusterStop chan struct{}
	clusterWG   sync.WaitGroup

	m svcMetrics
}

// svcMetrics are the service_* instruments; obs instruments are nil-safe,
// so a nil registry disables them at zero cost.
type svcMetrics struct {
	queueDepth  *obs.Gauge
	running     *obs.Gauge
	submitted   *obs.Counter
	rejects     *obs.Counter
	done        *obs.Counter
	failed      *obs.Counter
	cancelled   *obs.Counter
	events      *obs.Counter
	retries     *obs.Counter
	gaveup      *obs.Counter
	panics      *obs.Counter
	checkpoints *obs.Counter
	shed        *obs.Counter
	fastBurn    *obs.Gauge
	// inflightLimit tracks the queue's effective running limit — pinned at
	// MaxInFlight, or live when the AIMD auto-tuner drives it.
	inflightLimit *obs.Gauge
	queueSec      *obs.Histogram
	runSec        *obs.Histogram
}

func newSvcMetrics(reg *obs.Registry) svcMetrics {
	return svcMetrics{
		queueDepth:    reg.Gauge("service_queue_depth"),
		running:       reg.Gauge("service_jobs_running"),
		submitted:     reg.Counter("service_jobs_submitted_total"),
		rejects:       reg.Counter("service_admission_rejects_total"),
		done:          reg.Counter("service_jobs_done_total"),
		failed:        reg.Counter("service_jobs_failed_total"),
		cancelled:     reg.Counter("service_jobs_cancelled_total"),
		events:        reg.Counter("service_job_events_total"),
		retries:       reg.Counter("service_retries_total"),
		gaveup:        reg.Counter("service_gaveup_total"),
		panics:        reg.Counter("service_panics_total"),
		checkpoints:   reg.Counter("service_checkpoints_total"),
		shed:          reg.Counter("service_admission_shed_total"),
		fastBurn:      reg.Gauge("service_slo_fast_burn"),
		inflightLimit: reg.Gauge("service_inflight_limit"),
		queueSec:      reg.Histogram("service_job_queue_seconds", obs.DurationBuckets),
		runSec:        reg.Histogram("service_job_run_seconds", obs.DurationBuckets),
	}
}

// New starts a Service: its scheduler goroutines are running and Submit is
// accepting jobs as soon as it returns.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:         cfg,
		jobs:        make(map[string]*Job),
		queue:       tenant.NewQueue[*Job](cfg.QueueCap, cfg.Tenancy.Specs()),
		retryTimers: make(map[string]*time.Timer),
		backoffRand: prng.New(cfg.Fault.Seed ^ 0xb0ff),
		m:           newSvcMetrics(cfg.Metrics),
	}
	if cfg.Tenancy != nil {
		s.tenancy = newTenancy(cfg.Tenancy, cfg.Metrics)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.runOpts = RunOptions{
		Metrics:    cfg.Metrics,
		Trace:      cfg.Trace,
		MaxWorkers: cfg.MaxWorkersPerJob,
		Fault:      cfg.Fault,
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize, cfg.Metrics)
		s.flights = newFlightGroup(cfg.Metrics)
		s.keys = newKeyMemo(4 * cfg.CacheSize)
	}
	if cfg.Cluster != nil {
		if err := cfg.Cluster.validate(); err != nil {
			panic(err) // misconfiguration, caught at daemon start
		}
		if s.cache == nil {
			panic("service: Cluster requires the result cache (CacheSize >= 0)")
		}
		s.peers = newPeerLayer(cfg.Cluster, cfg.Metrics)
		s.tuning = cfg.Cluster.tuning()
		s.clusterStop = make(chan struct{})
		s.startCluster()
	}
	base := cfg.Runner
	if base == nil {
		base = func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
			return RunSpec(ctx, js, att, emit, s.runOpts)
		}
	}
	// The dispatch wrapper routes batch jobs to the packed batch runner
	// and cache-enabled jobs through the result cache + single-flight
	// layer; everything else hits the configured runner directly.
	s.runner = func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
		if len(js.Batch) > 0 {
			return s.runBatch(ctx, js, att, emit)
		}
		if s.cacheable(js) {
			return s.runCached(ctx, js, att, emit, base)
		}
		return base(ctx, js, att, emit)
	}
	// Worker pool vs effective limit: without auto-tuning the two coincide
	// and the running gate is transparent (every worker always gets a
	// slot). With auto-tuning, Max workers are parked behind the gate and
	// the AIMD controller moves the limit between Min and Max.
	workers, limit := cfg.MaxInFlight, cfg.MaxInFlight
	if cfg.AutoTune != nil {
		at := cfg.AutoTune.withDefaults(cfg.MaxInFlight)
		workers = at.Max
		if limit < at.Min {
			limit = at.Min
		}
		if limit > at.Max {
			limit = at.Max
		}
		s.tuneStop = make(chan struct{})
		s.tuneWG.Add(1)
		go s.autotune(at)
	}
	s.queue.SetRunningLimit(limit)
	s.m.inflightLimit.Set(float64(limit))
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.scheduler()
	}
	return s
}

// Submit validates the spec and admits it into the queue, returning the
// queued Job. It never blocks: a full queue returns ErrQueueFull, a
// draining service ErrDraining, a bad spec the validation error. With
// tenancy on, the tenant's own gates run first — deadline shed
// (ErrDeadlineShed), rate limit (ErrRateLimited), in-flight quota
// (ErrQuotaExceeded) — and a tenant over its queued-jobs cap gets
// ErrQuotaExceeded even when the global queue has room.
func (s *Service) Submit(js JobSpec) (*Job, error) {
	js, err := js.withDefaults()
	if err != nil {
		return nil, err
	}
	tn, err := s.resolveTenant(js)
	if err != nil {
		return nil, err
	}
	if err := s.shedCheck(js); err != nil {
		return nil, err
	}
	// A nil error from admitTenant means the tenant was charged one
	// in-flight unit: every early return below must release it.
	if err := s.admitTenant(tn, js); err != nil {
		return nil, err
	}
	tm := s.tenancy.metrics(tn)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.releaseTenant(tn)
		return nil, ErrDraining
	}
	s.nextID++
	maxRetries := js.MaxRetries
	if maxRetries == 0 {
		maxRetries = s.cfg.DefaultMaxRetries
	}
	job := newJob(fmt.Sprintf("j%06d", s.nextID), js, time.Now(), maxRetries)
	job.tenant = tn
	s.m.queueDepth.Add(1)
	tm.queued.Add(1)
	if err := s.queue.Push(tn, job); err != nil {
		s.m.queueDepth.Add(-1)
		tm.queued.Add(-1)
		s.nextID--
		s.mu.Unlock()
		s.releaseTenant(tn)
		s.m.rejects.Inc()
		switch {
		case errors.Is(err, tenant.ErrTenantFull):
			tm.quota.Inc()
			return nil, retryAfterError{err: ErrQuotaExceeded, after: time.Second}
		case errors.Is(err, tenant.ErrClosed):
			return nil, ErrDraining
		default:
			return nil, ErrQueueFull
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	s.evictLocked()
	s.mu.Unlock()
	s.m.submitted.Inc()
	tm.admitted.Inc()
	return job, nil
}

// shedCheck is the SLO control loop's admission hook: while any objective
// fast-burns, a job carrying a deadline that the predicted p99 run latency
// cannot meet is shed with ErrShed — better to reject in O(1) at admission
// than to burn an engine slot on a job destined for DeadlineExceeded while
// the error budget is already draining. Jobs without a deadline are never
// shed (nothing promises them a latency), and without an SLO engine the
// check is free.
func (s *Service) shedCheck(js JobSpec) error {
	eng := s.cfg.SLO
	if eng == nil {
		return nil
	}
	fast := eng.FastBurn()
	if fast {
		s.m.fastBurn.Set(1)
	} else {
		s.m.fastBurn.Set(0)
	}
	if !fast || js.TimeoutMS <= 0 {
		return nil
	}
	p99, ok := eng.Quantile(SLORunLatency, 0.99)
	if !ok || p99 <= float64(js.TimeoutMS)/1000 {
		return nil
	}
	s.m.shed.Inc()
	s.m.rejects.Inc()
	return ErrShed
}

// Get returns the job with the given id, or ErrNotFound after eviction.
func (s *Service) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// List returns the retained jobs in submission order.
func (s *Service) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel requests cancellation of the job: a queued job is finalized
// immediately, a running job is stopped through its context within one
// round, a terminal job is unaffected (idempotent).
func (s *Service) Cancel(id string) (*Job, error) {
	job, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	wasQueued, _ := job.requestCancel()
	if wasQueued {
		// The scheduler will pop the tombstone and skip it; account the
		// cancellation — and return the tenant's in-flight unit — here,
		// since no runner will.
		s.m.cancelled.Inc()
		s.m.queueSec.Observe(job.queueTime().Seconds())
		s.releaseTenant(job.tenant)
	}
	return job, nil
}

// QueueDepth reports the jobs currently waiting in the queue (including
// cancelled tombstones that still hold their slot until popped).
func (s *Service) QueueDepth() int { return s.queue.Len() }

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// scheduler is one worker of the in-flight pool: it pops admitted jobs
// (in the queue's weighted-fair order) and runs them — through retries, if
// the job has a budget — to a terminal state, until the queue is closed by
// Shutdown. Pop also enforces the effective in-flight limit: with the
// auto-tuner on, a worker beyond the current limit parks inside Pop.
func (s *Service) scheduler() {
	defer s.wg.Done()
	for {
		job, tn, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.m.queueDepth.Add(-1)
		tm := s.tenancy.metrics(tn)
		tm.queued.Add(-1)
		ctx, attempt, cp, ok := job.begin(s.baseCtx)
		if !ok {
			s.queue.Finish(tn)
			continue // cancelled while queued; Cancel released the tenant
		}
		att := Attempt{
			Number:     attempt,
			Checkpoint: cp,
			SaveCheckpoint: func(c *fault.Checkpoint) {
				if c == nil {
					return
				}
				s.m.checkpoints.Inc()
				job.setCheckpoint(c)
				if job.Spec.ExportCheckpoints {
					// Stream the snapshot so a router (or any follower of the
					// event stream) can resume the job elsewhere if this node
					// dies before the next export poll.
					s.m.events.Inc()
					job.Emit(Event{Kind: "checkpoint", Attempt: attempt, Round: c.Round, Checkpoint: c.Clone()})
				}
			},
		}
		queueWait := job.queueTime()
		s.m.queueSec.Observe(queueWait.Seconds())
		tm.queueSec.Observe(queueWait.Seconds())
		s.cfg.SLO.Observe(SLOQueueWait, queueWait.Seconds(), job.TraceID)
		s.emitPhase("queue_wait", queueWait, job, attempt)
		s.m.running.Add(1)
		// The attempt span wraps the whole runner invocation; ctx carries it
		// so the runner's build_instance/run spans and the runtime's round
		// events parent to it.
		sp, ctx := s.cfg.Trace.StartSpan(ctx, "attempt")
		sp = sp.WithAttempt(attempt)
		sum, err := s.runJob(ctx, job, att)
		sp.End()
		s.m.running.Add(-1)
		runTime := job.runTime()
		s.m.runSec.Observe(runTime.Seconds())
		s.cfg.SLO.Observe(SLORunLatency, runTime.Seconds(), job.TraceID)
		s.observeTenantRun(tn, runTime, job.TraceID)
		if s.maybeRetry(job, err) {
			s.queue.Finish(tn)
			continue // re-admitted; a later pop runs the next attempt
		}
		state := job.finish(sum, err)
		s.queue.Finish(tn)
		s.releaseTenant(tn)
		s.cfg.SLO.ObserveOutcome(SLOErrorRate, state != StateFailed, job.TraceID)
		switch state {
		case StateDone:
			s.m.done.Inc()
			tm.done.Inc()
		case StateFailed:
			s.m.failed.Inc()
			tm.failed.Inc()
		case StateCancelled:
			s.m.cancelled.Inc()
		}
	}
}

// emitPhase emits one already-measured phase as a "span" trace event under
// the job's trace (the queue wait is only known at dispatch, so it cannot
// be an open Span).
func (s *Service) emitPhase(phase string, d time.Duration, job *Job, attempt int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace.Emit(obs.Event{
		Kind: "span", Phase: phase, DurNS: d.Nanoseconds(),
		Trace: job.TraceID, Span: obs.NewSpanID(), Job: job.ID, Attempt: attempt,
	})
}

// runJob invokes the runner with panic isolation: a panic anywhere in the
// attempt — an injected shard panic re-raised by the engine pool, or an
// organic bug — is recovered into a *fault.PanicError carrying the original
// stack, so the scheduler goroutine (and with it the daemon) survives and
// the failure flows through the ordinary retry/finalize path.
func (s *Service) runJob(ctx context.Context, job *Job, att Attempt) (sum *Summary, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			err = fault.CapturePanic(r)
		}
	}()
	return s.runner(ctx, job.Spec, att, func(e Event) {
		s.m.events.Inc()
		job.Emit(e)
	})
}

// maybeRetry decides whether the attempt's failure is retried and, if so,
// schedules the re-admission after a jittered exponential backoff. Not
// retryable: success, cancellation (the user or a drain asked for the stop;
// context.DeadlineExceeded IS retried — with checkpointing on, the next
// attempt resumes the timed-out run's progress), an exhausted budget, a
// draining service.
func (s *Service) maybeRetry(job *Job, err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	attempt, remaining, cancelled := job.retryInfo()
	if cancelled {
		return false
	}
	if remaining <= 0 {
		if job.maxRetries > 0 {
			s.m.gaveup.Inc()
		}
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	delay := fault.Backoff(s.cfg.RetryBackoff, s.cfg.RetryBackoffMax, attempt, s.backoffRand)
	if !job.retry(err, delay) {
		return false
	}
	s.m.retries.Inc()
	s.retryTimers[job.ID] = time.AfterFunc(delay, func() { s.requeue(job) })
	return true
}

// requeue re-admits a retry-waiting job once its backoff elapses. A drain
// that started in the meantime cancels the job instead (mirroring the
// queued-job sweep in Shutdown); a full queue fails it — the retry budget
// does not entitle a job to a queue slot others are rejected for.
func (s *Service) requeue(job *Job) {
	s.mu.Lock()
	delete(s.retryTimers, job.ID)
	if s.draining {
		s.mu.Unlock()
		if wasQueued, _ := job.requestCancel(); wasQueued {
			s.m.cancelled.Inc()
			s.releaseTenant(job.tenant)
		}
		return
	}
	tm := s.tenancy.metrics(job.tenant)
	s.m.queueDepth.Add(1)
	tm.queued.Add(1)
	// A retrying job re-enters its tenant's sub-queue but not the limiter:
	// its in-flight unit is still held from the original admission.
	if err := s.queue.Push(job.tenant, job); err != nil {
		s.m.queueDepth.Add(-1)
		tm.queued.Add(-1)
		s.mu.Unlock()
		s.m.gaveup.Inc()
		if job.failQueued("service: retry re-admission rejected: queue full") {
			s.m.failed.Inc()
			tm.failed.Inc()
			s.releaseTenant(job.tenant)
		}
		return
	}
	s.mu.Unlock()
}

// evictLocked enforces Config.Retention: while more than Retention terminal
// jobs are stored, the oldest terminal ones are dropped (queued/running
// jobs are never evicted). Callers hold s.mu.
func (s *Service) evictLocked() {
	terminal := 0
	for _, j := range s.order {
		if j.State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.cfg.Retention {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if terminal > s.cfg.Retention && j.State().Terminal() {
			delete(s.jobs, j.ID)
			terminal--
			continue
		}
		kept = append(kept, j)
	}
	// Zero the tail so evicted jobs are collectable.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// Shutdown drains the service: admission stops (ErrDraining), queued jobs
// are cancelled, and running jobs are given until ctx is done to finish.
// When ctx expires first, the remaining jobs are cancelled through their
// run contexts (stopping within one round, partial results retained) and
// Shutdown returns ctx.Err() after they unwind. Idempotent calls beyond
// the first wait for the same drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var queued []*Job
	if !already {
		// Stop the pending retry timers: draining is set, so a timer that
		// already fired and is waiting on s.mu will see it and cancel its
		// job instead of enqueueing. Retry-waiting jobs are StateQueued and
		// are finalized by the sweep below like any other queued job.
		for id, t := range s.retryTimers {
			t.Stop()
			delete(s.retryTimers, id)
		}
		for _, j := range s.order {
			if j.State() == StateQueued {
				queued = append(queued, j)
			}
		}
	}
	s.mu.Unlock()
	if !already {
		if s.peers != nil {
			s.stopCluster()
		}
		if s.tuneStop != nil {
			close(s.tuneStop)
			s.tuneWG.Wait()
		}
		for _, j := range queued {
			if wasQueued, _ := j.requestCancel(); wasQueued {
				s.m.cancelled.Inc()
				s.releaseTenant(j.tenant)
			}
		}
		s.queue.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // hard-cancel the still-running jobs
		<-done
		return ctx.Err()
	}
}
