// Package coloring provides the colouring substrate the paper's distributed
// corollaries depend on: proper vertex colourings computed in the LOCAL
// model in O(poly Δ + log* n) rounds (Linial-style colour reduction followed
// by Kuhn-Wattenhofer block halving), edge colourings via the line graph,
// distance-2 colourings via the square graph, the classic Cole-Vishkin
// procedure on cycles, and sequential baselines and verifiers.
//
// Substitution note (see DESIGN.md): the paper invokes [FHK16] for a 2-hop
// colouring in Õ(d) + log* n rounds and [PR01] for an O(d) edge colouring in
// O(d + log* n) rounds. This package reproduces the same *shape* —
// poly(Δ) + log*(n) — with simpler classic machinery; only the polynomial
// degree differs.
package coloring

import (
	"fmt"

	"repro/internal/graph"
)

// Greedy returns a proper colouring of g with at most Δ+1 colours, assigning
// each node (in identifier order) the smallest colour unused by its already
// coloured neighbors. It is the sequential baseline.
func Greedy(g *graph.Graph) []int {
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.MaxDegree()+2)
	for v := 0; v < g.N(); v++ {
		for i := range used {
			used[i] = false
		}
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		for c := range used {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}

// Verify checks that colors is a proper colouring of g: every node has a
// non-negative colour different from all its neighbors'.
func Verify(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colours for %d nodes", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			return fmt.Errorf("coloring: node %d uncoloured", v)
		}
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[u] {
				return fmt.Errorf("coloring: adjacent nodes %d and %d share colour %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// VerifyDistance2 checks that colors is a distance-2 colouring of g (proper
// on the square graph).
func VerifyDistance2(g *graph.Graph, colors []int) error {
	return Verify(g.Square(), colors)
}

// CountColors returns the number of distinct colours used.
func CountColors(colors []int) int {
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// MaxColor returns the largest colour used, or -1 for an empty slice.
func MaxColor(colors []int) int {
	m := -1
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}

// VerifyEdgeColoring checks that edgeColors (indexed by edge identifier) is
// a proper edge colouring of g: edges sharing an endpoint have different
// colours.
func VerifyEdgeColoring(g *graph.Graph, edgeColors []int) error {
	if len(edgeColors) != g.M() {
		return fmt.Errorf("coloring: %d colours for %d edges", len(edgeColors), g.M())
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]int)
		for _, id := range g.IncidentEdges(v) {
			c := edgeColors[id]
			if c < 0 {
				return fmt.Errorf("coloring: edge %d uncoloured", id)
			}
			if other, dup := seen[c]; dup {
				return fmt.Errorf("coloring: edges %d and %d at node %d share colour %d", other, id, v, c)
			}
			seen[c] = id
		}
	}
	return nil
}
