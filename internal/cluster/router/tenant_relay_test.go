package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/tenant"
)

// tenantTestPolicy is the multi-tenant policy installed on every node in
// the relay tests: two named tenants, strict (unknown labels rejected).
const tenantTestPolicy = `{"tenants":[
	{"name":"gold","weight":3},
	{"name":"tight","rate":0.5,"burst":1}]}`

func tenantNodes(t *testing.T, n int) (map[string]*testNode, map[string]string) {
	t.Helper()
	tc, err := tenant.ParseConfig([]byte(tenantTestPolicy))
	if err != nil {
		t.Fatal(err)
	}
	return startNodes(t, n, func(cfg *service.Config) {
		cfg.Tenancy = tc
		cfg.Runner = func(ctx context.Context, js service.JobSpec, att service.Attempt, emit func(service.Event)) (*service.Summary, error) {
			return &service.Summary{Algorithm: js.Algorithm, Satisfied: true}, nil
		}
	})
}

// TestRouterTenantRelay: the X-Tenant header survives the router hop (the
// router folds it into the forwarded spec), a body-carried tenant wins over
// the header, and GET /cluster reports the per-tenant balance.
func TestRouterTenantRelay(t *testing.T) {
	_, urls := tenantNodes(t, 2)
	_, ts, _ := startRouter(t, urls)

	post := func(body, header string) (service.View, int) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("X-Tenant", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v service.View
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
		}
		return v, resp.StatusCode
	}

	// Header-attributed submission: the routed job's spec must carry the
	// tenant, proving the node saw (and accounted) it.
	v, code := post(`{}`, "gold")
	if code != http.StatusAccepted {
		t.Fatalf("header-labelled submit = %d, want 202", code)
	}
	if v.Spec.Tenant != "gold" {
		t.Fatalf("routed spec tenant = %q, want gold (header relay lost)", v.Spec.Tenant)
	}

	// Body wins over header.
	v, code = post(`{"tenant":"gold"}`, "tight")
	if code != http.StatusAccepted {
		t.Fatalf("body-labelled submit = %d, want 202", code)
	}
	if v.Spec.Tenant != "gold" {
		t.Fatalf("body-labelled tenant = %q, want gold", v.Spec.Tenant)
	}

	// Unlabelled submission lands in the default tenant.
	if _, code = post(`{}`, ""); code != http.StatusAccepted {
		t.Fatalf("unlabelled submit = %d, want 202", code)
	}

	// An unknown tenant is a spec error on every node: fail fast with 400.
	if _, code = post(`{}`, "who-dis"); code != http.StatusBadRequest {
		t.Fatalf("unknown tenant via router = %d, want 400", code)
	}

	// Per-tenant balance on GET /cluster.
	resp, err := http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PerTenant["gold"] != 2 || st.PerTenant[tenant.DefaultName] != 1 {
		t.Fatalf("per_tenant = %v, want gold:2 default:1", st.PerTenant)
	}
}

// TestRouterTenantThrottleSpill: a tenant throttled on every node (the
// per-node token buckets all reject) surfaces as a 429 through the router
// after the spill sweep — the router does not mask tenant rate limits.
func TestRouterTenantThrottleSpill(t *testing.T) {
	_, urls := tenantNodes(t, 2)
	r, ts, _ := startRouter(t, urls)

	// Burst 1 per node: the first two submissions may each land on a
	// different node (or spill); from the third on every bucket is empty.
	throttled := 0
	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"tenant":"tight"}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("throttled relay lost the Retry-After header")
			}
		}
	}
	if throttled < 3 {
		t.Fatalf("throttled %d of 5 submissions, want >= 3 (burst 1 × 2 nodes)", throttled)
	}
	// The spill counter proves the router tried the other node before
	// giving up.
	if got := r.m.spills.Value(); got < 1 {
		t.Errorf("spills = %d, want >= 1 (throttle should spill before 429)", got)
	}
}
