// Package router is the cluster routing tier of llld: a single front door
// over N llld nodes that places every job on its cache key's home node
// (consistent hashing, so isomorphic resubmissions always land where the
// warm entry lives), spills to the next preferred node when the home node
// is saturated or shedding, relays each job's event stream with continuous
// sequence numbers, and — when a node drains or dies mid-job — migrates
// the job's latest checkpoint to a surviving node, where it resumes
// bit-identically under the same trace ID. cmd/lllrouter serves it.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes is the cluster membership, node name → base URL. Required.
	Nodes map[string]string
	// VNodes is the consistent-hash virtual-node count; must match the
	// nodes' own ClusterConfig (cluster.DefaultVNodes when 0).
	VNodes int
	// BoundedLoadFactor caps proactive placement imbalance: a candidate
	// whose router-tracked outstanding jobs exceed factor × (mean + 1) is
	// skipped in favor of the next preferred node — unless every candidate
	// is over, in which case the least loaded one is used (the cluster
	// never rejects what a node would accept). Default 2.
	BoundedLoadFactor float64
	// ProbeInterval is the health/load poll period (default 500ms).
	ProbeInterval time.Duration
	// Detector shapes the failure detector over those probes (suspect/down
	// thresholds, flap damping); zero fields take cluster.DetectorConfig
	// defaults.
	Detector cluster.DetectorConfig
	// SyncInterval is the membership anti-entropy cadence: the router polls
	// each node's GET /cluster, adopts any newer epoch it sees, and pushes
	// its own membership to nodes reporting an older one. Default 4×
	// ProbeInterval.
	SyncInterval time.Duration
	// MaxMigrations bounds how many times one job may be moved before the
	// router fails it (default 3).
	MaxMigrations int
	// Retention bounds the terminal routed jobs kept (default 1024).
	Retention int
	// Metrics receives the router_* families (nil disables).
	Metrics *obs.Registry
	// Client overrides the node-facing HTTP client; nil uses a default
	// with no overall timeout (event streams are long-lived).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.BoundedLoadFactor <= 0 {
		c.BoundedLoadFactor = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 4 * c.ProbeInterval
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 3
	}
	if c.Retention <= 0 {
		c.Retention = 1024
	}
	return c
}

// Router is the routing tier. Create with New, stop with Shutdown.
// Membership is mutable: the router adopts newer epochs pushed through
// POST /cluster/members or discovered on node GET /cluster polls, and
// rebuilds its ring without a restart.
type Router struct {
	cfg     Config
	members *cluster.Members
	client  *http.Client

	memMu sync.Mutex
	mem   cluster.Membership
	ring  *cluster.Ring

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*routedJob
	order  []*routedJob
	nextID int64

	m routerMetrics
}

type routerMetrics struct {
	jobs       *obs.Counter
	spills     *obs.Counter
	migrations *obs.Counter
	lost       *obs.Counter
	relayed    *obs.Counter
	rejected   *obs.Counter
	reloads    *obs.Counter // memberships adopted at runtime
	epoch      *obs.Gauge   // current membership epoch
}

// routedJob is the router's record of one job: where it currently lives,
// the relayed event buffer (continuous Seq across migrations), and the
// latest checkpoint it would move with.
type routedJob struct {
	id      string
	spec    service.JobSpec // as submitted (router adjustments applied)
	key     uint64          // placement key
	created time.Time

	mu        sync.Mutex
	trace     string
	node      string // current node
	nodeJobID string // id on that node
	nodeSeen  int    // events consumed from the current node's stream
	events    []service.Event
	more      chan struct{} // closed+replaced on every append
	state     service.State
	errMsg    string
	result    *service.Summary
	ckpt      *fault.Checkpoint
	migrated  int
	cancelled bool // cancel came through the router
}

// New builds and starts a Router: membership probing begins immediately.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("router: no nodes configured")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	mem := cluster.Membership{Epoch: 0, Nodes: map[string]string{}}
	for name, url := range cfg.Nodes {
		mem.Nodes[name] = url
	}
	r := &Router{
		cfg:     cfg,
		mem:     mem,
		ring:    mem.Ring(cfg.VNodes),
		members: cluster.NewMembers(cfg.Nodes, &http.Client{Timeout: 2 * time.Second}),
		client:  client,
		jobs:    make(map[string]*routedJob),
		m: routerMetrics{
			jobs:       cfg.Metrics.Counter("router_jobs_total"),
			spills:     cfg.Metrics.Counter("router_spills_total"),
			migrations: cfg.Metrics.Counter("router_migrations_total"),
			lost:       cfg.Metrics.Counter("router_jobs_lost_total"),
			relayed:    cfg.Metrics.Counter("router_events_relayed_total"),
			rejected:   cfg.Metrics.Counter("router_rejects_total"),
			reloads:    cfg.Metrics.Counter("router_membership_reloads_total"),
			epoch:      cfg.Metrics.Gauge("router_membership_epoch"),
		},
	}
	r.members.SetDetector(cfg.Detector)
	r.members.Instrument(cfg.Metrics)
	r.baseCtx, r.baseCancel = context.WithCancel(context.Background())
	r.members.Start(cfg.ProbeInterval)
	r.wg.Add(1)
	go r.syncMembership()
	return r, nil
}

// ringNow returns the current ring (immutable once built).
func (r *Router) ringNow() *cluster.Ring {
	r.memMu.Lock()
	defer r.memMu.Unlock()
	return r.ring
}

// Membership returns the router's current membership (a deep copy).
func (r *Router) Membership() cluster.Membership {
	r.memMu.Lock()
	defer r.memMu.Unlock()
	return r.mem.Clone()
}

// AdoptMembership installs mem if it is newer than the current set:
// the ring is rebuilt and the health table follows (joined nodes start
// unknown — immediately routable — and departed nodes are dropped).
// Reports whether a swap happened. Safe from any goroutine.
func (r *Router) AdoptMembership(mem cluster.Membership) bool {
	r.memMu.Lock()
	if !mem.Newer(r.mem) {
		r.memMu.Unlock()
		return false
	}
	r.mem = mem.Clone()
	r.ring = r.mem.Ring(r.cfg.VNodes)
	r.memMu.Unlock()
	r.members.SetNodes(mem.Nodes)
	r.m.reloads.Inc()
	r.m.epoch.Set(float64(mem.Epoch))
	return true
}

// syncMembership is the anti-entropy loop: poll each member's GET
// /cluster, adopt any newer epoch found there, and push the router's
// membership back to members reporting an older epoch — so a node that
// missed a fan-out (it was down during a join) converges without gossip.
func (r *Router) syncMembership() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-r.baseCtx.Done():
			return
		case <-t.C:
		}
		cur := r.Membership()
		var stale []string // base URLs holding an older epoch
		for _, name := range r.members.Names() {
			url := r.members.URL(name)
			if url == "" || r.members.State(name) == cluster.StateDown {
				continue
			}
			mem, ok := r.fetchNodeMembership(url)
			if !ok {
				continue
			}
			if mem.Newer(cur) {
				if r.AdoptMembership(mem) {
					cur = r.Membership()
				}
			} else if cur.Newer(mem) {
				stale = append(stale, url)
			}
		}
		for _, url := range stale {
			r.pushMembership(url, cur)
		}
	}
}

// fetchNodeMembership reads one node's membership view from GET /cluster.
func (r *Router) fetchNodeMembership(base string) (cluster.Membership, bool) {
	req, err := http.NewRequestWithContext(r.baseCtx, http.MethodGet, base+"/cluster", nil)
	if err != nil {
		return cluster.Membership{}, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return cluster.Membership{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return cluster.Membership{}, false
	}
	var status struct {
		Epoch int64             `json:"epoch"`
		Nodes map[string]string `json:"nodes"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&status) != nil {
		return cluster.Membership{}, false
	}
	if len(status.Nodes) == 0 {
		return cluster.Membership{}, false
	}
	return cluster.Membership{Epoch: status.Epoch, Nodes: status.Nodes}, true
}

// pushMembership best-effort repairs one stale node.
func (r *Router) pushMembership(base string, mem cluster.Membership) {
	body, err := json.Marshal(cluster.MembershipUpdate{From: "router", Membership: mem})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(r.baseCtx, http.MethodPost, base+"/v1/peer/membership", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Shutdown stops the router: probing ends, follower goroutines unwind.
// Jobs already on nodes keep running there — the router is stateless
// about execution; a restarted router simply no longer tracks them.
func (r *Router) Shutdown(ctx context.Context) error {
	r.baseCancel()
	r.members.Stop()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitError maps a routing failure onto an HTTP status.
type submitError struct {
	status int
	msg    string
}

func (e *submitError) Error() string { return e.msg }

// Submit places a job: preferred nodes in ring order, bounded-load and
// health filtered, spilling on saturation. Returns the routed job.
func (r *Router) Submit(js service.JobSpec) (*routedJob, error) {
	key, err := service.PlacementKeyFor(js)
	if err != nil {
		r.m.rejected.Inc()
		return nil, &submitError{status: http.StatusBadRequest, msg: err.Error()}
	}
	// Checkpoints must stream to the router for crash migration to have
	// anything to move; jobs without checkpointing migrate from scratch
	// (determinism still makes the rerun bit-identical).
	if js.CheckpointEvery > 0 {
		js.ExportCheckpoints = true
	}
	job := &routedJob{spec: js, key: key, created: time.Now(), more: make(chan struct{})}

	node, view, serr := r.place(job, "")
	if serr != nil {
		r.m.rejected.Inc()
		return nil, serr
	}
	r.mu.Lock()
	r.nextID++
	job.id = fmt.Sprintf("r%06d", r.nextID)
	r.jobs[job.id] = job
	r.order = append(r.order, job)
	r.evictLocked()
	r.mu.Unlock()
	r.m.jobs.Inc()

	job.mu.Lock()
	job.node = node
	job.nodeJobID = view.ID
	job.trace = view.TraceID
	job.state = view.State
	job.mu.Unlock()

	r.wg.Add(1)
	go r.follow(job)
	return job, nil
}

// place POSTs the job's spec to the best available node, in preference
// order: ring order filtered by health, bounded load applied proactively,
// 429/503/transport failures spilling to the next candidate reactively.
// skip excludes a node (the one the job just died on). Detector-down
// nodes are skipped outright — never contacted, never counted toward the
// bounded-load baseline — so a dead node cannot eat a connection timeout
// per job or distort the balance target; a connection refused on a
// still-routable node is reported to the detector as failure evidence
// rather than an instant hard down (one refused connection must not shed
// a node a probe would vouch for).
func (r *Router) place(job *routedJob, skip string) (string, *service.View, *submitError) {
	ring := r.ringNow()
	prefer := ring.Prefer(job.key, ring.Len())
	candidates := prefer[:0:0]
	for _, name := range prefer {
		if name == skip || !r.members.State(name).Usable() {
			continue
		}
		candidates = append(candidates, name)
	}
	if len(candidates) == 0 {
		// Health says nobody is usable. Draining nodes may still be finishing
		// their drain window and the poller may lag a recovery, so trust the
		// wire over the poller for them — but detector-down nodes stay
		// excluded: down is the one verdict the router must honor outright.
		for _, name := range prefer {
			if name != skip && r.members.State(name) != cluster.StateDown {
				candidates = append(candidates, name)
			}
		}
	}
	// Bounded load: demote overloaded candidates behind the rest without
	// dropping them — order stays preference-stable within each class.
	// Suspect nodes (missed probes, flap-damped) are demoted the same way:
	// still routable, but only after the clean candidates.
	mean := r.members.MeanOutstanding()
	limit := int64(r.cfg.BoundedLoadFactor * (mean + 1))
	rank := func(name string) int {
		n := 0
		if r.members.Outstanding(name) > limit {
			n += 2
		}
		if r.members.State(name) == cluster.StateSuspect {
			n++
		}
		return n
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return rank(candidates[i]) < rank(candidates[j])
	})

	body, err := json.Marshal(job.spec)
	if err != nil {
		return "", nil, &submitError{status: http.StatusBadRequest, msg: err.Error()}
	}
	var lastMsg string
	lastStatus := http.StatusServiceUnavailable
	for i, name := range candidates {
		if i > 0 {
			r.m.spills.Inc()
		}
		resp, err := r.client.Post(r.members.URL(name)+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			r.members.ReportFailure(name, err)
			lastMsg = err.Error()
			continue
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var view service.View
			if err := json.Unmarshal(payload, &view); err != nil {
				lastMsg = "bad node response: " + err.Error()
				continue
			}
			r.members.AddOutstanding(name, 1)
			return name, &view, nil
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			lastStatus, lastMsg = resp.StatusCode, string(bytes.TrimSpace(payload))
			continue // saturated or shedding: spill
		default:
			// A 400 is the spec's fault on every node — fail fast.
			return "", nil, &submitError{status: resp.StatusCode, msg: string(bytes.TrimSpace(payload))}
		}
	}
	if lastMsg == "" {
		lastMsg = "router: no node accepted the job"
	}
	return "", nil, &submitError{status: lastStatus, msg: lastMsg}
}

// append adds one relayed event to the job's buffer with a continuous
// router-scope Seq and wakes stream readers.
func (j *routedJob) append(e service.Event) {
	j.mu.Lock()
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.more)
	j.more = make(chan struct{})
	j.mu.Unlock()
}

// eventsSince snapshots the buffer from seq on, with the wake channel and
// current state (mirrors service.Job.EventsSince for the stream handler).
func (j *routedJob) eventsSince(seq int) ([]service.Event, <-chan struct{}, service.State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []service.Event
	if seq < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.more, j.state
}

// view synthesizes the router-scope job view from the local mirror.
func (j *routedJob) view() service.View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return service.View{
		ID:       j.id,
		TraceID:  j.trace,
		State:    j.state,
		Spec:     j.spec,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		Events:   len(j.events),
		Error:    j.errMsg,
		Result:   j.result,
		Node:     j.node,
		Migrated: j.migrated,
	}
}

// finalize records a terminal state reached outside a node's own "end"
// event (migration budget exhausted, no surviving node).
func (r *Router) finalize(job *routedJob, state service.State, msg string) {
	job.mu.Lock()
	job.state = state
	job.errMsg = msg
	trace := job.trace
	job.mu.Unlock()
	job.append(service.Event{Kind: "end", State: state, Err: msg, Trace: trace})
}

// evictLocked enforces Config.Retention over terminal routed jobs.
func (r *Router) evictLocked() {
	terminal := 0
	for _, j := range r.order {
		if j.terminal() {
			terminal++
		}
	}
	if terminal <= r.cfg.Retention {
		return
	}
	kept := r.order[:0]
	for _, j := range r.order {
		if terminal > r.cfg.Retention && j.terminal() {
			delete(r.jobs, j.id)
			terminal--
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(r.order); i++ {
		r.order[i] = nil
	}
	r.order = kept
}

func (j *routedJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// Cancel forwards a cancellation to the job's current node.
func (r *Router) Cancel(id string) (*routedJob, error) {
	r.mu.Lock()
	job, ok := r.jobs[id]
	r.mu.Unlock()
	if !ok {
		return nil, service.ErrNotFound
	}
	job.mu.Lock()
	job.cancelled = true
	node, nodeID := job.node, job.nodeJobID
	job.mu.Unlock()
	req, err := http.NewRequestWithContext(r.baseCtx, http.MethodDelete,
		r.members.URL(node)+"/v1/jobs/"+nodeID, nil)
	if err == nil {
		if resp, derr := r.client.Do(req); derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return job, nil
}

// follow relays the job's event stream from its current node until the job
// is terminal, migrating it when the node drains or dies. One goroutine
// per routed job.
func (r *Router) follow(job *routedJob) {
	defer r.wg.Done()
	streamFailures := 0
	for {
		terminal, err := r.streamOnce(job)
		job.mu.Lock()
		node := job.node
		job.mu.Unlock()
		if terminal {
			r.members.AddOutstanding(node, -1)
			return
		}
		if r.baseCtx.Err() != nil {
			return
		}
		migrate := false
		if err != nil {
			// Stream broke without a terminal event: transient hiccup or a
			// dead node? Ask the node directly — the poller may lag.
			if r.probeAlive(node) {
				streamFailures++
				if streamFailures <= 3 {
					time.Sleep(100 * time.Millisecond)
					continue // reattach via ?from=, no events lost
				}
			}
			r.members.MarkDown(node, err)
			migrate = true
		} else {
			// Terminal "cancelled" on a draining/dead node with no cancel
			// from our side: the drain took the job; move it.
			migrate = true
		}
		if !migrate {
			return
		}
		streamFailures = 0
		r.members.AddOutstanding(node, -1)
		if !r.migrate(job, node) {
			return
		}
	}
}

// streamOnce attaches to the current node's event stream (resuming at the
// last consumed index) and relays events until the stream ends. Returns
// terminal=true when the job finished for good: done, failed, or cancelled
// by an actual cancel request. A false return with err=nil means the job
// was cancelled out from under us by a drain — the caller migrates it.
func (r *Router) streamOnce(job *routedJob) (terminal bool, err error) {
	job.mu.Lock()
	node, nodeID, from := job.node, job.nodeJobID, job.nodeSeen
	job.mu.Unlock()
	url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", r.members.URL(node), nodeID, from)
	req, err := http.NewRequestWithContext(r.baseCtx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The node is up but no longer knows the job (restarted): treat as
		// a dead stream so the job migrates with its checkpoint.
		return false, fmt.Errorf("router: node %s: events status %d", node, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e service.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return false, fmt.Errorf("router: bad event from %s: %w", node, err)
		}
		job.mu.Lock()
		job.nodeSeen++
		if e.Trace != "" && job.trace == "" {
			job.trace = e.Trace
		}
		if e.Kind == "checkpoint" && e.Checkpoint != nil {
			// Router plumbing, not client payload: keep the snapshot for
			// migration and strip the event from the relayed stream.
			job.ckpt = e.Checkpoint
			job.mu.Unlock()
			continue
		}
		cancelled := job.cancelled
		job.mu.Unlock()

		if e.Kind == "end" {
			if e.State == service.StateCancelled && !cancelled {
				// Drain or forced shutdown took the job — migrate rather
				// than surface a cancellation nobody asked for. The "end"
				// event is swallowed; the migrated stream continues.
				return false, nil
			}
			r.fetchResult(job, node, nodeID)
			job.mu.Lock()
			job.state = e.State
			job.errMsg = e.Err
			job.mu.Unlock()
			e.Node = node
			r.m.relayed.Inc()
			job.append(e)
			return true, nil
		}
		if e.Kind == "queued" || e.Kind == "start" {
			job.mu.Lock()
			job.state = map[string]service.State{
				"queued": service.StateQueued, "start": service.StateRunning,
			}[e.Kind]
			job.mu.Unlock()
		}
		e.Node = node
		r.m.relayed.Inc()
		job.append(e)
	}
	if serr := sc.Err(); serr != nil {
		return false, serr
	}
	return false, fmt.Errorf("router: node %s: event stream ended without a terminal event", node)
}

// fetchResult pulls the terminal job view from the node so the router can
// serve the result after the node is gone.
func (r *Router) fetchResult(job *routedJob, node, nodeID string) {
	resp, err := r.client.Get(r.members.URL(node) + "/v1/jobs/" + nodeID)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var v service.View
	if json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&v) != nil {
		return
	}
	job.mu.Lock()
	job.result = v.Result
	job.mu.Unlock()
}

// probeAlive asks the node's /healthz directly (200 or 503-draining both
// mean the process is alive; only transport failure means dead).
func (r *Router) probeAlive(node string) bool {
	client := &http.Client{Timeout: time.Second}
	resp, err := client.Get(r.members.URL(node) + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return true
}

// migrate moves the job to a surviving node: resubmit the spec with the
// latest checkpoint (bit-identical resume) under the original trace ID,
// emit a synthetic "migrated" event, and let the follower reattach.
// Reports whether the job is live on a new node.
func (r *Router) migrate(job *routedJob, deadNode string) bool {
	job.mu.Lock()
	job.migrated++
	migrations := job.migrated
	js := job.spec
	js.TraceID = job.trace
	js.Resume = job.ckpt
	ckpt := job.ckpt
	trace := job.trace
	job.mu.Unlock()
	if migrations > r.cfg.MaxMigrations {
		r.m.lost.Inc()
		r.finalize(job, service.StateFailed,
			fmt.Sprintf("router: job exceeded %d migrations", r.cfg.MaxMigrations))
		return false
	}
	if len(js.Batch) > 0 {
		js.Resume = nil // batch jobs hold no resumable sub-state; rerun
	}

	// The surviving nodes may briefly all report down (poller lag) or be
	// saturated absorbing the failover; retry placement for a while before
	// declaring the job lost.
	reJob := &routedJob{spec: js, key: job.key}
	deadline := time.Now().Add(15 * time.Second)
	for {
		node, view, serr := r.place(reJob, deadNode)
		if serr == nil {
			r.m.migrations.Inc()
			job.append(service.Event{
				Kind: "migrated", Node: node, Trace: trace,
				Checkpoint: ckpt, Resumed: ckpt != nil,
			})
			job.mu.Lock()
			job.node = node
			job.nodeJobID = view.ID
			job.nodeSeen = 0
			job.state = service.StateQueued
			job.mu.Unlock()
			return true
		}
		if time.Now().After(deadline) || r.baseCtx.Err() != nil {
			r.m.lost.Inc()
			r.finalize(job, service.StateFailed, "router: migration failed: "+serr.msg)
			return false
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-r.baseCtx.Done():
		}
	}
}
