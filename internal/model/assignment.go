package model

import "fmt"

// Assignment is a partial assignment of values to the variables of one
// instance. Values are identified by their index in the variable's
// distribution. The zero Assignment is not usable; construct instances with
// NewAssignment.
type Assignment struct {
	values   []int
	fixed    []bool
	numFixed int
}

// NewAssignment returns an empty (nothing fixed) assignment for inst.
func NewAssignment(inst *Instance) *Assignment {
	return &Assignment{
		values: make([]int, inst.NumVars()),
		fixed:  make([]bool, inst.NumVars()),
	}
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		values:   make([]int, len(a.values)),
		fixed:    make([]bool, len(a.fixed)),
		numFixed: a.numFixed,
	}
	copy(c.values, a.values)
	copy(c.fixed, a.fixed)
	return c
}

// Fixed reports whether variable id has been fixed.
func (a *Assignment) Fixed(id int) bool { return a.fixed[id] }

// Value returns the value index fixed for variable id. It panics if the
// variable is not fixed — reading an unfixed variable is always a bug.
func (a *Assignment) Value(id int) int {
	if !a.fixed[id] {
		panic(fmt.Sprintf("model: Value of unfixed variable %d", id))
	}
	return a.values[id]
}

// Fix fixes variable id to the given value index. Re-fixing an
// already-fixed variable panics: the paper's processes never revisit a
// value, and silently allowing it would hide bugs in the fixers.
func (a *Assignment) Fix(id, value int) {
	if a.fixed[id] {
		panic(fmt.Sprintf("model: variable %d fixed twice", id))
	}
	a.fixed[id] = true
	a.values[id] = value
	a.numFixed++
}

// Unfix reverts a Fix. It exists so that randomized baselines
// (Moser-Tardos) can resample variables; the deterministic fixers never call
// it.
func (a *Assignment) Unfix(id int) {
	if !a.fixed[id] {
		panic(fmt.Sprintf("model: Unfix of unfixed variable %d", id))
	}
	a.fixed[id] = false
	a.numFixed--
}

// NumFixed returns the number of fixed variables.
func (a *Assignment) NumFixed() int { return a.numFixed }

// Complete reports whether every variable is fixed.
func (a *Assignment) Complete() bool { return a.numFixed == len(a.values) }

// Values returns a copy of the value vector together with the fixed mask.
func (a *Assignment) Values() (values []int, fixed []bool) {
	values = make([]int, len(a.values))
	fixed = make([]bool, len(a.fixed))
	copy(values, a.values)
	copy(fixed, a.fixed)
	return values, fixed
}
