package mt

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Observer configures observability for the resamplers. The zero value
// disables everything and is what the plain Sequential / Parallel entry
// points use; callers that want instrumented runs go through
// SequentialObs / ParallelObs. The distributed resampler is instrumented
// through the local.Options it already receives.
type Observer struct {
	// Metrics receives the mt_* metric families: run/resampling/round
	// counters, violated-event scan cost (mt_scans_total /
	// mt_scan_events_total) and the mt_violated_per_scan histogram. Nil
	// disables metrics at zero cost.
	Metrics *obs.Registry
	// Trace receives one "mt_iteration" event per resampling iteration
	// (sequential) or parallel round, tagged with a fresh run id.
	Trace *obs.Recorder
	// OnRound observes each parallel resampling round (Parallel only),
	// mapped onto the engine's round shape: Round is the 1-based round,
	// Steps the events resampled this round, Active the violated events
	// found by the scan that opened the round. All fields are
	// deterministic — identical for every engine worker count.
	OnRound func(engine.RoundStats)
	// CheckpointEvery, together with OnCheckpoint, snapshots the full
	// resampler state every CheckpointEvery resamplings (sequential) or
	// rounds (parallel): the complete assignment, the progress counters
	// and the generator state. Capturing is a pure copy — it never
	// advances the RNG stream or changes the result, so runs with
	// checkpointing enabled are bit-identical to runs without. 0 or a nil
	// OnCheckpoint disables checkpointing.
	CheckpointEvery int
	OnCheckpoint    func(*fault.Checkpoint)
	// Resume, when non-nil, restores the resampler from a checkpoint taken
	// by an earlier run of the SAME algorithm instead of drawing the
	// initial sample: the assignment, counters and RNG state continue
	// exactly where the checkpoint was captured, so the resumed run is
	// bit-identical to the uninterrupted one from that point on (the
	// caller-supplied generator is ignored). This is how a retried job
	// avoids redoing work: the service hands the runner the last
	// checkpoint of the failed attempt.
	Resume *fault.Checkpoint
}

// checkpointing reports whether the observer wants checkpoints.
func (o Observer) checkpointing() bool {
	return o.CheckpointEvery > 0 && o.OnCheckpoint != nil
}

// mtObs is the per-run resolved observer state; nil means disabled and
// every method is a no-op.
type mtObs struct {
	rec   *obs.Recorder
	runID int64
	// trace / parent / job tag every emitted event with the request trace
	// the resampler runs under (from the context handed to SequentialCtx /
	// ParallelCtx); zero when untraced.
	trace, parent, job string

	runs, resamplings, rounds *obs.Counter
	scans, scanEvents         *obs.Counter
	violatedPerScan           *obs.Histogram
	scanSec, resampleSec      *obs.Histogram

	// Scratch timing of the iteration in flight: the violated-event scan
	// and the resampling work are timed separately so per-iteration trace
	// events attribute latency between the two (scan_ns / resample_ns).
	scanNS, resampleNS int64
}

func newMTObs(ctx context.Context, o Observer) *mtObs {
	if o.Metrics == nil && o.Trace == nil {
		return nil
	}
	mo := &mtObs{rec: o.Trace}
	if tc := obs.TraceFrom(ctx); tc.Valid() {
		mo.trace, mo.parent, mo.job = tc.Trace, tc.Span, tc.Job
	}
	if m := o.Metrics; m != nil {
		mo.runs = m.Counter("mt_runs_total")
		mo.resamplings = m.Counter("mt_resamplings_total")
		mo.rounds = m.Counter("mt_rounds_total")
		mo.scans = m.Counter("mt_scans_total")
		mo.scanEvents = m.Counter("mt_scan_events_total")
		mo.violatedPerScan = m.Histogram("mt_violated_per_scan", obs.CountBuckets)
		mo.scanSec = m.Histogram("mt_scan_seconds", obs.DurationBuckets)
		mo.resampleSec = m.Histogram("mt_resample_seconds", obs.DurationBuckets)
	}
	if mo.rec != nil {
		mo.runID = mo.rec.NextRun()
	}
	mo.runs.Inc()
	return mo
}

// phaseStart opens a timed phase (scan or resample). The zero time on a
// nil receiver keeps the disabled path free of clock calls.
func (mo *mtObs) phaseStart() time.Time {
	if mo == nil {
		return time.Time{}
	}
	return time.Now()
}

// scanDone closes the scan phase opened by phaseStart.
func (mo *mtObs) scanDone(t0 time.Time) {
	if mo == nil {
		return
	}
	mo.scanNS = time.Since(t0).Nanoseconds()
	mo.scanSec.Observe(float64(mo.scanNS) / 1e9)
}

// resampleDone closes the resample phase opened by phaseStart.
func (mo *mtObs) resampleDone(t0 time.Time) {
	if mo == nil {
		return
	}
	mo.resampleNS = time.Since(t0).Nanoseconds()
	mo.resampleSec.Observe(float64(mo.resampleNS) / 1e9)
}

// scan records one violatedEvents sweep: events evaluated and how many
// came back violated.
func (mo *mtObs) scan(events, violated int) {
	if mo == nil {
		return
	}
	mo.scans.Inc()
	mo.scanEvents.Add(int64(events))
	mo.violatedPerScan.Observe(float64(violated))
}

// iteration records one resampling iteration (a sequential resampling or a
// parallel round): iter is the 1-based iteration, violated the scan's
// violated count, resampled the events redrawn.
func (mo *mtObs) iteration(iter, violated, resampled int) {
	if mo == nil {
		return
	}
	mo.rounds.Inc()
	mo.resamplings.Add(int64(resampled))
	if mo.rec != nil {
		mo.rec.Emit(obs.Event{
			Kind: "mt_iteration", Run: mo.runID, Round: iter,
			Active: violated, Steps: resampled,
			ScanNS: mo.scanNS, ResampleNS: mo.resampleNS,
			Trace: mo.trace, Parent: mo.parent, Job: mo.job,
		})
	}
	mo.scanNS, mo.resampleNS = 0, 0
}
