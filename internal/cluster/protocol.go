package cluster

import (
	"encoding/json"
	"strconv"
)

// The node-to-node peer protocol rides the existing llld HTTP surface:
//
//	GET /v1/peer/cache/{key}?claim=1&wait_ms=N   peer cache fill + claim
//	PUT /v1/peer/cache/{key}                     write-through store
//	GET /v1/jobs/{id}/checkpoint                 checkpoint export
//
// Keys are the canonical result-cache keys, encoded as 16-digit
// lowercase hex so they round-trip through URLs without sign issues.
// The payload types below are shared by the service (server side) and
// any peer/router (client side); the summary and checkpoint payloads
// stay raw JSON here so this package needs no service types.

// PeerCacheResponse is the body of GET /v1/peer/cache/{key}.
type PeerCacheResponse struct {
	// Found reports a cache hit; Summary then carries the stored result,
	// bit-identical to what the owning node would serve locally.
	Found bool `json:"found"`
	// Leader reports that the caller was granted the cluster-wide
	// single-flight claim for the key: it should solve and write the result
	// back with PUT (which releases the claim). False with Found false
	// means another claimer is in flight and the wait timed out — the
	// caller may retry or solve locally (duplicate work, never incorrect).
	Leader bool `json:"leader,omitempty"`
	// Summary is the stored result when Found.
	Summary json.RawMessage `json:"summary,omitempty"`
}

// FormatKey / ParseKey are the canonical key encoding of the peer URLs.
func FormatKey(key uint64) string {
	return strconv.FormatUint(key, 16)
}

// ParseKey parses a peer-URL key; ok is false on malformed input.
func ParseKey(s string) (uint64, bool) {
	key, err := strconv.ParseUint(s, 16, 64)
	return key, err == nil
}
