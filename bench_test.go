// Benchmarks regenerating the paper's figures and the theorem-shaped
// experiment tables — one benchmark per artefact in the DESIGN.md
// experiment index (F1, F2, T1-T8). Each benchmark runs the corresponding
// experiment end to end and reports domain metrics via ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness
// (cmd/benchharness prints the full tables).
package lll_test

import (
	"testing"

	lll "repro"
	"repro/internal/exp"
)

// benchSizes keeps per-iteration work small enough for stable timings.
var benchSizes = exp.Sizes{Scale: 0.5, Trials: 3}

func runExperiment(b *testing.B, run func() (*exp.Table, error)) *exp.Table {
	b.Helper()
	var tbl *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkF1_SrepSurface(b *testing.B) {
	tbl := runExperiment(b, func() (*exp.Table, error) {
		return exp.F1Surface(0.25, 5000, 1)
	})
	b.ReportMetric(float64(len(tbl.Rows)), "grid-rows")
}

func BenchmarkF2_WitnessDecompose(b *testing.B) {
	runExperiment(b, exp.F2Witness)
}

func BenchmarkT1_Rank2Fixer(b *testing.B) {
	tbl := runExperiment(b, func() (*exp.Table, error) {
		return exp.T1Rank2(uint64(b.N), benchSizes)
	})
	b.ReportMetric(float64(len(tbl.Rows)), "workloads")
}

func BenchmarkT2_DistributedRank2(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T2DistributedRank2(uint64(b.N), exp.Sizes{Scale: 0.25, Trials: 2})
	})
}

func BenchmarkT3_Rank3Fixer(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T3Rank3(uint64(b.N), benchSizes)
	})
}

func BenchmarkT4_DistributedRank3(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T4DistributedRank3(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 1})
	})
}

func BenchmarkT5_Threshold(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T5Threshold(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 50})
	})
}

func BenchmarkT6_MoserTardos(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T6MoserTardos(uint64(b.N), exp.Sizes{Scale: 0.5, Trials: 3})
	})
}

func BenchmarkT7_Applications(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T7Applications(uint64(b.N), benchSizes)
	})
}

func BenchmarkT8_Ablations(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T8Ablations(uint64(b.N), benchSizes)
	})
}

func BenchmarkT9_Conjecture(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T9Conjecture(uint64(b.N), exp.Sizes{Scale: 0.6, Trials: 2})
	})
}

func BenchmarkT10_Spectrum(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T10Spectrum(uint64(b.N), exp.Sizes{Scale: 0.6, Trials: 3})
	})
}

func BenchmarkT11_LowerBoundCertificates(b *testing.B) {
	runExperiment(b, func() (*exp.Table, error) {
		return exp.T11LowerBound(uint64(b.N), exp.Sizes{Trials: 10})
	})
}

// Micro-benchmarks of the public solver entry points, for users sizing
// their own workloads.

func BenchmarkSolveSequentialRank2(b *testing.B) {
	s, err := lll.NewSinkless(lll.NewCycle(128), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(s.Instance, lll.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}

func BenchmarkSolveSequentialRank3(b *testing.B) {
	r := lll.NewRand(1)
	h, err := lll.NewRandomRegularRank3(60, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lll.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(s.Instance, lll.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}

func BenchmarkSolveDistributedRank3(b *testing.B) {
	r := lll.NewRand(2)
	h, err := lll.NewRandomRegularRank3(18, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lll.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lll.SolveDistributed(s.Instance, lll.Options{}, lll.LocalOptions{IDSeed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			b.Fatal("violations")
		}
	}
}
