// Rank-4 conjecture: explore Conjecture 1.5 beyond the proven r ≤ 3 regime.
// The paper proves the sharp threshold for variables affecting at most
// three events and conjectures it persists for any number; "the only
// challenge" left open is a convexity argument for the rank-r analogue of
// the representable-triple set. This example runs the generalized fixer —
// the same bookkeeping with a numeric feasibility search over the K_r edge
// values — on a rank-4 instance strictly below the threshold, sequentially
// and distributed, and reports the conjecture-relevant counters.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rank4_conjecture:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-uniform hypergraph where every node lies in exactly 2 hyperedges;
	// with slack 0.6 the margin is (2(1-δ))^deg = 0.64 < 1.
	r := lll.NewRand(17)
	h, err := lll.NewRandomRegularUniform(24, 2, 4, r)
	if err != nil {
		return err
	}
	s, err := lll.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		return err
	}
	p, d, rank := s.Instance.Params()
	_, margin := lll.CheckExponentialCriterion(s.Instance)
	fmt.Printf("hypergraph: %d nodes, %d hyperedges, rank r = %d (beyond the proven r <= 3!)\n",
		h.N(), h.M(), rank)
	fmt.Printf("instance:   p=%.5f d=%d  margin p*2^d=%.4f\n", p, d, margin)

	// Sequential generalized fixer, in a few random orders.
	for trial := 0; trial < 3; trial++ {
		var order []int
		if trial > 0 {
			order = r.Perm(s.Instance.NumVars())
		}
		res, err := lll.SolveAnyRank(s.Instance, order)
		if err != nil {
			return err
		}
		fmt.Printf("sequential trial %d: violated=%d infeasible-steps=%d peak-cert-bound=%.4g\n",
			trial, res.Stats.FinalViolatedEvents, res.Stats.Infeasible, res.Stats.PeakCertBound)
		if res.Stats.FinalViolatedEvents != 0 {
			return fmt.Errorf("conjecture counterexample material! violated events with margin %v", margin)
		}
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			return fmt.Errorf("sinks: %v", sinks)
		}
	}

	// The distributed algorithm Conjecture 1.5 claims: distance-2 colour
	// classes plus the numeric representability search.
	dres, err := lll.SolveDistributedAnyRank(s.Instance, lll.LocalOptions{IDSeed: 17})
	if err != nil {
		return err
	}
	fmt.Printf("distributed: violated=%d  rounds: colouring=%d + fixing=%d = %d (classes=%d)\n",
		dres.ViolatedEvents, dres.ColoringRounds, dres.FixingRounds, dres.TotalRounds, dres.Classes)
	if dres.ViolatedEvents != 0 {
		return fmt.Errorf("distributed run violated events")
	}

	fmt.Println()
	fmt.Println("every run avoided all bad events with zero infeasible steps —")
	fmt.Println("empirical support for Conjecture 1.5 (evidence, not a proof: the")
	fmt.Println("numeric feasibility search replaces the missing convexity argument).")
	return nil
}
