package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// NodeState is a member's health as seen by the prober.
type NodeState string

const (
	// StateUp: /healthz answered 200.
	StateUp NodeState = "up"
	// StateDraining: /healthz answered 503 — the node is shutting down
	// gracefully; in-flight jobs finish but new ones are refused.
	StateDraining NodeState = "draining"
	// StateDown: the probe could not reach the node at all.
	StateDown NodeState = "down"
	// StateUnknown: never probed yet. Placement treats unknown as up so a
	// router is usable before its first poll completes.
	StateUnknown NodeState = "unknown"
)

// Usable reports whether a placement decision may send new work to a node
// in this state.
func (s NodeState) Usable() bool { return s == StateUp || s == StateUnknown }

// NodeStatus is one member's health and load snapshot.
type NodeStatus struct {
	// Name / URL identify the member.
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the last probe's verdict.
	State NodeState `json:"state"`
	// Queue / Running are the node's service_queue_depth and
	// service_jobs_running gauges from its /debug/vars snapshot (0 when the
	// node is unreachable or does not export them).
	Queue   float64 `json:"queue"`
	Running float64 `json:"running"`
	// Outstanding is the caller-side in-flight count (jobs routed to the
	// node and not yet terminal) — the bounded-load signal that needs no
	// probe round-trip.
	Outstanding int64 `json:"outstanding"`
	// Err is the last probe error, cleared on success.
	Err string `json:"err,omitempty"`
	// LastProbe is when the state was last refreshed.
	LastProbe time.Time `json:"last_probe"`
}

// Members tracks the health and load of a fixed set of nodes. Probing is
// explicit (Poll) or background (Start/Stop); the outstanding counters are
// updated by the caller as it routes and completes jobs. Safe for
// concurrent use.
type Members struct {
	client *http.Client

	mu     sync.Mutex
	status map[string]*NodeStatus
	names  []string
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewMembers builds the membership table for nodes (name → base URL).
// client may be nil (a 2s-timeout default is used).
func NewMembers(nodes map[string]string, client *http.Client) *Members {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	m := &Members{client: client, status: make(map[string]*NodeStatus, len(nodes))}
	for name, url := range nodes {
		m.status[name] = &NodeStatus{Name: name, URL: url, State: StateUnknown}
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m
}

// URL returns the base URL of a member ("" for unknown names).
func (m *Members) URL(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.URL
	}
	return ""
}

// State returns a member's current state (StateDown for unknown names).
func (m *Members) State(name string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.State
	}
	return StateDown
}

// AddOutstanding adjusts the caller-side in-flight counter of a member.
func (m *Members) AddOutstanding(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		st.Outstanding += delta
		if st.Outstanding < 0 {
			st.Outstanding = 0
		}
	}
}

// Outstanding returns a member's in-flight counter.
func (m *Members) Outstanding(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		return st.Outstanding
	}
	return 0
}

// MeanOutstanding returns the mean in-flight count over the usable
// members (all members when none is usable), the bounded-load baseline.
func (m *Members) MeanOutstanding() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum, n float64
	for _, st := range m.status {
		if st.State.Usable() {
			sum += float64(st.Outstanding)
			n++
		}
	}
	if n == 0 {
		for _, st := range m.status {
			sum += float64(st.Outstanding)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Snapshot returns a copy of every member's status, sorted by name.
func (m *Members) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.names))
	for _, name := range m.names {
		out = append(out, *m.status[name])
	}
	return out
}

// MarkDown forces a member to StateDown immediately — the router calls it
// when a request to the node fails, so placement reacts faster than the
// next poll tick. The next successful probe restores it.
func (m *Members) MarkDown(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[name]; ok {
		st.State = StateDown
		if err != nil {
			st.Err = err.Error()
		}
		st.LastProbe = time.Now()
	}
}

// Poll probes every member once, in parallel: /healthz decides the state
// (200 up, 503 draining, unreachable down) and /debug/vars refreshes the
// queue/running gauges of reachable nodes.
func (m *Members) Poll(ctx context.Context) {
	m.mu.Lock()
	names := append([]string(nil), m.names...)
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m.probe(ctx, name)
		}(name)
	}
	wg.Wait()
}

func (m *Members) probe(ctx context.Context, name string) {
	url := m.URL(name)
	state, err := m.probeHealth(ctx, url)
	var queue, running float64
	if state != StateDown {
		queue, running = m.probeLoad(ctx, url)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.status[name]
	if !ok {
		return
	}
	st.State = state
	st.Queue = queue
	st.Running = running
	st.LastProbe = time.Now()
	if err != nil {
		st.Err = err.Error()
	} else {
		st.Err = ""
	}
}

func (m *Members) probeHealth(ctx context.Context, url string) (NodeState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return StateDown, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return StateDown, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateUp, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return StateDraining, nil
	default:
		return StateDown, nil
	}
}

// probeLoad reads the service_queue_depth / service_jobs_running gauges
// from the node's /debug/vars JSON snapshot; missing endpoint or fields
// simply yield zeros.
func (m *Members) probeLoad(ctx context.Context, url string) (queue, running float64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/debug/vars", nil)
	if err != nil {
		return 0, 0
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap) != nil {
		return 0, 0
	}
	return snap.Gauges["service_queue_depth"], snap.Gauges["service_jobs_running"]
}

// Start launches a background poller at the given interval (default 500ms
// when interval <= 0). Stop stops it; Start after Stop is not supported.
func (m *Members) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	stop := m.stop
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			m.Poll(ctx)
			cancel()
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts the background poller and waits for it to exit.
func (m *Members) Stop() {
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	m.wg.Wait()
}
