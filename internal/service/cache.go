package service

import (
	"container/list"
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync"

	"repro/internal/batch"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/prng"
)

// cacheKey derives the result-cache key of a normalized spec over its built
// instance. It folds together everything that can influence the Summary:
// the instance-determining spec fields (family, size, generation parameters
// and — for family "inline" — the raw instance bytes), the canonical
// instance hash on top of them, the algorithm, the seed driving the
// generators, resamplers and LOCAL identifiers, and the termination budgets.
// The WL hash alone is NOT sufficient as an instance identity: it is
// complete only up to WL distinguishability, and mtseq/seq results depend
// on event index order, which relabeling changes — so WL-indistinguishable
// but distinct instances (e.g. two relabeled inline submissions) must not
// share an entry. Folding the generation parameters makes the key exact
// (the builders are deterministic functions of them) while the WL hash
// still collapses provably-identical builds that differ only in spec
// encoding. Deliberately EXCLUDED: Workers (the engine determinism contract
// makes results identical for every worker count, so jobs differing only in
// workers share an entry), retry/timeout/checkpoint plumbing (they change
// how a result is produced, not what it is — failed or partial results are
// never cached), and the batch/cache fields themselves.
func cacheKey(js JobSpec, h uint64) uint64 {
	k := prng.Mix64(h ^ 0xcac4e)
	mixBytes := func(b []byte) {
		k = prng.Mix64(k ^ uint64(len(b)))
		for _, c := range b {
			k = prng.Mix64(k ^ uint64(c))
		}
	}
	mixBytes([]byte(js.Family))
	k = prng.Mix64(k ^ uint64(js.N))
	k = prng.Mix64(k ^ uint64(js.Degree))
	k = prng.Mix64(k ^ math.Float64bits(js.Margin))
	k = prng.Mix64(k ^ math.Float64bits(js.Slack))
	k = prng.Mix64(k ^ uint64(js.Colors))
	mixBytes(js.Instance)
	mixBytes([]byte(js.Algorithm))
	k = prng.Mix64(k ^ js.Seed)
	k = prng.Mix64(k ^ uint64(js.MaxRounds))
	k = prng.Mix64(k ^ uint64(js.MaxResamplings))
	k = prng.Mix64(k ^ uint64(js.MaxIters))
	return k
}

// cacheable reports whether a job's result may be served from / stored
// into the cache: the spec must opt in, and the merged fault-injection
// plan must be inert (injected faults make runs attempt-dependent).
func (s *Service) cacheable(js JobSpec) bool {
	if !js.Cache || s.cache == nil {
		return false
	}
	plan := s.cfg.Fault.Merge(js.faultPlan())
	return plan.PanicRate == 0 && plan.DropRate == 0 && plan.CrashRate == 0
}

// specIdent is the memoization identity of a normalized spec: its JSON
// encoding. Two specs with the same identity build the same instance and
// therefore share the same cache key, so the key computation (instance
// build + canonical hash) only ever runs once per distinct spec.
func specIdent(js JobSpec) string {
	b, err := json.Marshal(js)
	if err != nil {
		return "" // unmemoizable; the caller computes the key directly
	}
	return string(b)
}

// keyMemo is the bounded spec-identity → cache-key memo. The mapping is a
// pure function of the spec, so entries never invalidate; when the memo
// fills up it is simply reset.
type keyMemo struct {
	mu  sync.Mutex
	cap int
	m   map[string]uint64
}

func newKeyMemo(capacity int) *keyMemo {
	return &keyMemo{cap: capacity, m: make(map[string]uint64, capacity)}
}

func (k *keyMemo) get(id string) (uint64, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	key, ok := k.m[id]
	return key, ok
}

func (k *keyMemo) put(id string, key uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.m) >= k.cap {
		k.m = make(map[string]uint64, k.cap)
	}
	k.m[id] = key
}

// jobKeyInst resolves the spec's cache key. On a memo hit the key comes
// straight from the spec-identity memo and no instance is built (inst is
// nil) — this is what makes a warm cache hit orders of magnitude cheaper
// than a solve. On a miss the instance is built and canonically hashed;
// the built instance is returned so callers that need it anyway (the batch
// packer) do not build twice.
func (s *Service) jobKeyInst(js JobSpec) (key uint64, inst *model.Instance, err error) {
	id := specIdent(js)
	if id != "" {
		if key, ok := s.keys.get(id); ok {
			return key, nil, nil
		}
	}
	inst, err = buildInstance(js)
	if err != nil {
		return 0, nil, err
	}
	key = cacheKey(js, batch.Hash(inst))
	if id != "" {
		s.keys.put(id, key)
	}
	return key, inst, nil
}

// resultCache is an LRU map from cache keys to completed job Summaries.
// Entries are deep-copied on both put and get, so cached results are
// immutable and every hit returns bit-identical bytes.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[uint64]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	stores    *obs.Counter
	entries   *obs.Gauge
}

type cacheEntry struct {
	key uint64
	sum Summary
	// hits counts get() hits on this entry — the hot-entry signal driving
	// replication to the ring successor. Seeded (not reset) by warm
	// handoffs so a migrated entry keeps its heat.
	hits int64
}

// hotEntry is one cache entry exported for handoff / replication.
type hotEntry struct {
	key  uint64
	hits int64
	sum  *Summary
}

func newResultCache(capacity int, reg *obs.Registry) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[uint64]*list.Element, capacity),
		hits:      reg.Counter("cache_hits_total"),
		misses:    reg.Counter("cache_misses_total"),
		evictions: reg.Counter("cache_evictions_total"),
		stores:    reg.Counter("cache_stores_total"),
		entries:   reg.Gauge("cache_entries"),
	}
}

// get returns a copy of the cached summary for key, if present, and marks
// the entry most recently used.
func (c *resultCache) get(key uint64) (*Summary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	entry := el.Value.(*cacheEntry)
	entry.hits++
	sum := cloneSummary(&entry.sum)
	return sum, true
}

// put stores a copy of sum under key, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) put(key uint64, sum *Summary) {
	c.putHot(key, sum, 0)
}

// putHot stores a copy of sum under key with a starting hit count —
// warm handoffs use it so a migrated entry keeps its heat. The hit count
// only ever grows (a replica landing on a node that already served the
// entry must not cool it down).
func (c *resultCache) putHot(key uint64, sum *Summary, hits int64) {
	if sum == nil {
		return
	}
	cp := cloneSummary(sum)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*cacheEntry)
		entry.sum = *cp
		if hits > entry.hits {
			entry.hits = hits
		}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sum: *cp, hits: hits})
	c.stores.Inc()
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(float64(c.ll.Len()))
}

// snapshotIf returns copies of every entry whose key passes the filter
// (nil matches all) — the handoff export. Entries come out in LRU order,
// most recently used first, so a rate-bounded transfer that is cut short
// has already moved the entries most likely to be asked for.
func (c *resultCache) snapshotIf(filter func(key uint64) bool) []hotEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]hotEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		if filter != nil && !filter(entry.key) {
			continue
		}
		out = append(out, hotEntry{key: entry.key, hits: entry.hits, sum: cloneSummary(&entry.sum)})
	}
	return out
}

// topHot returns copies of the k hottest entries passing the filter,
// hit-count descending — the replication candidate set.
func (c *resultCache) topHot(k int, filter func(key uint64) bool) []hotEntry {
	if k <= 0 {
		return nil
	}
	all := c.snapshotIf(filter)
	sort.SliceStable(all, func(i, j int) bool { return all[i].hits > all[j].hits })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cloneSummary deep-copies a Summary (Instances included).
func cloneSummary(s *Summary) *Summary {
	cp := *s
	if s.Instances != nil {
		cp.Instances = append([]InstanceSummary(nil), s.Instances...)
	}
	return &cp
}

// flightGroup collapses concurrent identical jobs: the first job to reach
// the scheduler with a given cache key becomes the leader and solves; jobs
// with the same key that start while the leader is in flight wait for it
// and receive the leader's stored summary directly from the flight entry.
// Handing the result over in the entry (instead of re-reading the cache)
// makes followers immune to LRU eviction racing the leader's store: an
// entry evicted between the leader's put and the follower's wake-up can
// neither lose the result nor force a second solve — the concurrency test
// TestCacheEvictRacesSingleFlight pins this. Followers only ever wait on
// a job that is already running in another scheduler slot, so the wait
// graph has depth one and cannot deadlock; a follower whose leader fails
// (or whose own context is cancelled) falls back to solving itself.
type flightGroup struct {
	mu      sync.Mutex
	flights map[uint64]*flight
	waits   *obs.Counter
}

// flight is one in-progress solve. done is closed on completion; sum is
// the leader's completed summary (nil when the leader failed or produced
// a partial result), written before done closes.
type flight struct {
	done chan struct{}
	sum  *Summary
}

// result returns a deep copy of the leader's stored summary (nil when the
// leader failed). Only valid after done is closed.
func (f *flight) result() *Summary {
	if f.sum == nil {
		return nil
	}
	return cloneSummary(f.sum)
}

func newFlightGroup(reg *obs.Registry) *flightGroup {
	return &flightGroup{
		flights: make(map[uint64]*flight),
		waits:   reg.Counter("cache_singleflight_waits_total"),
	}
}

// begin either registers the caller as the leader for key (leader=true) or
// returns the in-flight leader's flight entry to wait on.
func (f *flightGroup) begin(key uint64) (fl *flight, leader bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fl, ok := f.flights[key]; ok {
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	f.flights[key] = fl
	return fl, true
}

// complete releases the leadership for key, stores the leader's summary
// (nil for failed/partial attempts) in the entry and wakes all waiting
// followers.
func (f *flightGroup) complete(key uint64, sum *Summary) {
	f.mu.Lock()
	fl := f.flights[key]
	delete(f.flights, key)
	f.mu.Unlock()
	if fl != nil {
		fl.sum = sum
		close(fl.done)
	}
}

// wait blocks until the leader completes or ctx is done.
func (f *flightGroup) wait(ctx context.Context, fl *flight) error {
	f.waits.Inc()
	select {
	case <-fl.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runCached wraps one attempt of a cache-enabled single job: serve from the
// cache when possible, otherwise solve as the single-flight leader (or wait
// for one) and populate the cache with the completed result. In a cluster,
// a leader on a non-owner node first asks the key's home node through the
// peer fill protocol — a warm entry anywhere in the cluster is served
// without re-solving, and a completed solve is written through to the home
// node so later jobs find it wherever they land.
func (s *Service) runCached(ctx context.Context, js JobSpec, att Attempt, emit func(Event), run Runner) (*Summary, error) {
	key, _, err := s.jobKeyInst(js)
	if err != nil {
		return nil, err
	}
	var fl *flight
	for {
		if sum, ok := s.cache.get(key); ok {
			sum.CacheHit = true
			emit(Event{Kind: "cache_hit", Attempt: att.Number})
			return sum, nil
		}
		var leader bool
		fl, leader = s.flights.begin(key)
		if leader {
			break
		}
		if err := s.flights.wait(ctx, fl); err != nil {
			return nil, err
		}
		if sum := fl.result(); sum != nil {
			sum.CacheHit = true
			emit(Event{Kind: "cache_hit", Attempt: att.Number})
			return sum, nil
		}
		// Leader failed: loop and retry leadership ourselves.
	}
	// Local leader. Hold the cluster claim too (when clustered and this
	// node owns the key), so peers asking the owner wait instead of
	// double-solving.
	heldClaim := false
	if s.peers != nil {
		heldClaim = s.peers.claimLocal(key)
		if sum, ok := s.peers.fill(ctx, key); ok {
			s.cache.put(key, sum)
			stored := cloneSummary(sum)
			s.flights.complete(key, stored)
			if heldClaim {
				s.peers.releaseLocal(key)
			}
			sum.CacheHit = true
			emit(Event{Kind: "cache_hit", Attempt: att.Number, Peer: true})
			return sum, nil
		}
	}
	sum, err := run(ctx, js, att, emit)
	stored := err == nil && sum != nil && !sum.Partial
	if stored {
		s.cache.put(key, sum)
		s.flights.complete(key, sum)
	} else {
		s.flights.complete(key, nil)
	}
	if heldClaim {
		s.peers.releaseLocal(key)
	}
	if stored && s.peers != nil {
		s.peers.store(ctx, key, sum)
	}
	return sum, err
}
