// Package local implements a synchronous message-passing runtime for the
// LOCAL model of distributed computing, the model in which the paper's
// distributed corollaries are stated.
//
// The network is an undirected graph; computation proceeds in synchronous
// rounds. In every round each node may send one message of unbounded size to
// each neighbor, receive the messages sent to it, and perform unbounded
// local computation. The complexity measure is the number of rounds.
//
// Nodes are driven by user-provided Machines. Each round the runtime steps
// every still-running machine concurrently on a persistent sharded worker
// pool (internal/engine): workers pull contiguous node shards off an atomic
// cursor, so goroutine creation is amortised across rounds and the outbox /
// halt-flag buffers are reused round over round. Message delivery is
// likewise sharded, by destination node. A machine halts by returning done;
// the run finishes when every machine has halted. Determinism is guaranteed
// bit-for-bit for every worker count because machines own disjoint state
// and every phase writes only to index-addressed slices (the golden-table
// tests in internal/exp assert byte-identical experiment output for
// Workers ∈ {1, 2, GOMAXPROCS}).
//
// Identifiers: every node receives a unique ID. By default IDs are a
// deterministic pseudo-random permutation of a polynomial ID space, matching
// the standard LOCAL assumption that IDs are arbitrary distinct O(log n)-bit
// numbers (adversarially chosen, so algorithms must not rely on them being
// 0..n-1).
package local

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prng"
)

// Message is an arbitrary value exchanged between neighbors. Messages must
// be treated as immutable by both sender and receiver: the runtime passes
// them by reference for efficiency, so mutating a received message is a data
// race by design. A nil Message means "no message".
type Message any

// NodeInfo is the static knowledge a node has at wake-up: its own ID and
// degree, the IDs of its neighbors (indexed by port 0..Degree-1), and the
// global parameters n and Δ that LOCAL algorithms customarily assume known.
type NodeInfo struct {
	// ID is the node's unique identifier.
	ID uint64
	// Port i connects to the neighbor with ID NeighborIDs[i].
	NeighborIDs []uint64
	// N is the number of nodes in the network.
	N int
	// MaxDegree is the maximum degree Δ of the network.
	MaxDegree int
}

// Degree returns the number of neighbors.
func (n *NodeInfo) Degree() int { return len(n.NeighborIDs) }

// Machine is the program run by one node.
type Machine interface {
	// Init is called once before the first round.
	Init(info NodeInfo)
	// Round is called once per synchronous round with the messages received
	// from each port (nil for "no message"; indexed like NeighborIDs). It
	// returns the messages to send per port (nil slice means "send
	// nothing") and whether the machine halts after this round. A halted
	// machine is never called again and sends nothing in later rounds.
	Round(round int, recv []Message) (send []Message, done bool)
}

// Stats summarizes a run.
//
// When Run fails mid-round (a machine sent a message slice of the wrong
// length), the returned Stats is still well defined: Rounds includes the
// failing round, Steps includes its compute phase, MessagesSent excludes
// the failing round entirely (no partial deliveries), and machines that
// halted in the failing round are retired before the error is reported.
// On ErrRoundLimit, Stats reflects the MaxRounds completed rounds. On
// cancellation (Options.Ctx) Stats reflects exactly the rounds completed
// before the context was observed done: the runtime checks the context
// between rounds, so a cancel arriving mid-round lets that round finish
// and is acted on before the next one starts.
type Stats struct {
	// Rounds is the number of synchronous rounds until the last machine
	// halted.
	Rounds int
	// MessagesSent counts all non-nil messages over the whole run.
	MessagesSent int
	// Steps counts Machine.Round invocations over the whole run.
	Steps int
	// MessagesDropped counts messages removed by fault injection
	// (Options.Fault); they are excluded from MessagesSent. Zero without an
	// injector.
	MessagesDropped int
	// CrashSteps counts node-rounds lost to injected crash-stops: a crashed
	// node is not stepped and sends nothing for that round but stays in the
	// computation. Zero without an injector.
	CrashSteps int
}

// ErrRoundLimit indicates that the round limit was reached before all
// machines halted.
var ErrRoundLimit = errors.New("local: round limit exceeded")

// Options configures a run.
type Options struct {
	// Ctx, if non-nil, makes the run cancellable: the runtime checks the
	// context once per round (before the compute phase) and, when it is
	// done, stops and returns the partial Stats of the completed rounds
	// together with an error wrapping ctx.Err() (test with errors.Is
	// against context.Canceled / context.DeadlineExceeded). Rounds are
	// never torn mid-phase, so the partial Stats obey the same contract as
	// a mid-round failure and cancellation is observed within one round.
	// Every layer that threads Options through to Run — the colouring
	// machines, the distributed fixers, the distributed Moser-Tardos
	// resampler, the experiment harness — inherits cancellation from this
	// field. Nil means the run is not cancellable.
	Ctx context.Context
	// MaxRounds aborts the run with ErrRoundLimit if some machine is still
	// running after this many rounds. 0 means the default of 10^6.
	MaxRounds int
	// IDSeed seeds the pseudo-random ID assignment. Runs with equal seeds
	// get equal IDs.
	IDSeed uint64
	// SequentialIDs assigns IDs 0..n-1 in node order instead of random
	// ones. Tests use this for reproducible worst cases.
	SequentialIDs bool
	// PresetIDs, if non-nil, assigns IDs[v] to node v verbatim (they must
	// be distinct). It overrides IDSeed and SequentialIDs. Callers use it
	// when machines need to be configured with the IDs of specific other
	// nodes (e.g. an input orientation) before the run starts.
	PresetIDs []uint64
	// Workers sets the worker count of the sharded execution engine.
	// 0 uses the process-wide shared pool (GOMAXPROCS workers); 1 runs
	// fully inline. Results are bit-for-bit identical for every value.
	Workers int
	// OnRound, if non-nil, observes per-round execution stats after each
	// round's delivery phase. It is called from the coordinating goroutine,
	// in round order. The stream is deterministic: identical for every
	// Workers value.
	OnRound func(engine.RoundStats)
	// Metrics, if non-nil, receives the runtime's metric families: local_*
	// counters and histograms (rounds, steps, messages, per-round
	// message/halt histograms, per-phase compute/deliver timings) and the
	// engine_* sharding counters (shards executed / stolen). Collection is
	// race-clean and never changes results; when nil the runtime skips all
	// timing calls (the disabled path costs nothing).
	Metrics *obs.Registry
	// Trace, if non-nil, receives one structured JSONL event per round
	// (kind "round") bracketed by "run_start" / "run_end" markers, all
	// tagged with a per-run id. Like Metrics it never changes results.
	Trace *obs.Recorder
	// Fault, if non-nil, injects seeded faults into the run: messages are
	// dropped in the delivery phase (DropMessage), nodes crash-stop for
	// single rounds in the compute phase (CrashNode), and whole compute
	// shards panic (PanicShard) — the panic unwinds through the engine pool
	// as a *fault.PanicError and is NOT recovered here, so callers that
	// must survive it (the job service) recover it themselves. Drop and
	// crash decisions are keyed per (round, node[, port]), so the faulty
	// execution is itself deterministic and worker-count independent;
	// Stats.MessagesDropped / Stats.CrashSteps account the damage. Nil
	// injects nothing at no cost.
	Fault *fault.Injector
}

// IDSpace returns the size of the identifier space used for the random ID
// assignment of a run on n nodes: the standard LOCAL assumption of
// polynomially bounded IDs (here n³, floored at 1024). Colour-reduction
// algorithms use it as the initial palette size.
func IDSpace(n int) uint64 {
	space := uint64(n) * uint64(n) * uint64(n)
	if space < 1024 {
		space = 1024
	}
	return space
}

// Run executes one machine per node of g until all machines halt.
// newMachine is called once per node, in node order, to construct the
// machines.
func Run(g *graph.Graph, newMachine func(node int) Machine, opts Options) (Stats, error) {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1_000_000
	}
	n := g.N()
	ids := assignIDs(n, opts)

	machines := make([]Machine, n)
	infos := make([]NodeInfo, n)
	maxDeg := g.MaxDegree()
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		nbrIDs := make([]uint64, len(nbrs))
		for i, u := range nbrs {
			nbrIDs[i] = ids[u]
		}
		infos[v] = NodeInfo{ID: ids[v], NeighborIDs: nbrIDs, N: n, MaxDegree: maxDeg}
		machines[v] = newMachine(v)
		machines[v].Init(infos[v])
	}

	// reversePort[v][i] is the port on which neighbor i of v sees v.
	reversePort := make([][]int, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		reversePort[v] = make([]int, len(nbrs))
		for i, u := range nbrs {
			reversePort[v][i] = portOf(g, u, v)
		}
	}

	inbox := make([][]Message, n)
	for v := 0; v < n; v++ {
		inbox[v] = make([]Message, g.Degree(v))
	}
	// Buffers reused across every round: the per-node outboxes, halt flags
	// and the running set. The engine shards index ranges over them; every
	// write is index-addressed, so results are independent of the worker
	// count and of shard scheduling.
	outbox := make([][]Message, n)
	doneFlags := make([]bool, n)
	running := make([]bool, n)
	numRunning := n
	for v := range running {
		running[v] = true
	}

	pool, release := runPool(opts)
	defer release()
	inj := opts.Fault

	// Observability: resolved once per run; nil when disabled, in which
	// case the round loop takes no timestamps and tracks no shard stats.
	ro := newRunObs(opts, n, pool.Workers())
	ro.runStart()

	// markHalted retires machines that returned done this round and
	// reports how many it retired. It runs on both the success and the
	// error path, so Stats and the running set stay consistent even when a
	// round fails mid-way.
	markHalted := func() int {
		halted := 0
		for v := 0; v < n; v++ {
			if running[v] && doneFlags[v] {
				running[v] = false
				numRunning--
				halted++
			}
		}
		return halted
	}

	var stats Stats
	for round := 1; numRunning > 0; round++ {
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				err := fmt.Errorf("local: run cancelled after %d rounds, %d machines still running: %w", stats.Rounds, numRunning, cerr)
				ro.runEnd(stats, err)
				return stats, err
			}
		}
		if round > opts.MaxRounds {
			err := fmt.Errorf("%w: %d rounds, %d machines still running", ErrRoundLimit, opts.MaxRounds, numRunning)
			ro.runEnd(stats, err)
			return stats, err
		}
		stats.Rounds = round
		ro.roundBegin()

		// Compute phase: workers pull contiguous node shards and step every
		// running machine. Machines own disjoint state; outbox and
		// doneFlags are written at the machine's own index only. The fault
		// checks are hoisted behind per-class booleans so the fault-free
		// path costs one predictable branch per node at most.
		var steps, crashes atomic.Int64
		crashing := inj.Crashing()
		panicking := inj.Panicking()
		pool.ForEachShardStats(n, func(lo, hi int) {
			// Panic with the bare error: the engine's shard recover (or the
			// service scheduler on the inline path) wraps it into a
			// *fault.PanicError, capturing the stack at THIS panic site.
			if panicking && inj.PanicShard(round, lo) {
				panic(fmt.Errorf("%w: compute shard [%d, %d) round %d", fault.ErrInjected, lo, hi, round))
			}
			stepped, crashed := 0, 0
			for v := lo; v < hi; v++ {
				if !running[v] {
					outbox[v] = nil
					continue
				}
				if crashing && inj.CrashNode(round, v) {
					// Crash-stop for this round: no step, no sends; the
					// machine stays in the computation and resumes next
					// round having missed a step (its inbox for this round
					// is overwritten unread).
					outbox[v] = nil
					doneFlags[v] = false
					crashed++
					continue
				}
				send, done := machines[v].Round(round, inbox[v])
				outbox[v] = send
				doneFlags[v] = done
				stepped++
			}
			steps.Add(int64(stepped))
			if crashed > 0 {
				crashes.Add(int64(crashed))
			}
		}, ro.computeStats())
		stats.Steps += int(steps.Load())
		stats.CrashSteps += int(crashes.Load())
		ro.computeDone()

		// Validation: a machine that returns a message slice of the wrong
		// length poisons the round. Scan serially so the reported node is
		// the lowest offender regardless of worker count, retire machines
		// that halted this round, and return the (well-defined) partial
		// Stats: this round's compute is counted, its messages are not.
		for v := 0; v < n; v++ {
			if outbox[v] != nil && len(outbox[v]) != g.Degree(v) {
				markHalted()
				err := fmt.Errorf("local: node %d sent %d messages, degree is %d", v, len(outbox[v]), g.Degree(v))
				ro.runEnd(stats, err)
				return stats, err
			}
		}

		// Delivery phase, sharded by destination: node v's inbox slot i is
		// filled from the outbox of its port-i neighbour, on the port under
		// which that neighbour sees v. Each inbox is written by exactly one
		// shard, so delivery is race-free; the message count is accumulated
		// per shard and folded in atomically (order-independent sum).
		// Injected drops happen here, on the receiver side: the message is
		// replaced by nil exactly as if the sender had stayed silent.
		var delivered, dropped atomic.Int64
		dropping := inj.Dropping()
		pool.ForEachShardStats(n, func(lo, hi int) {
			count, drops := 0, 0
			for v := lo; v < hi; v++ {
				in := inbox[v]
				nbrs := g.Neighbors(v)
				rp := reversePort[v]
				for i := range in {
					ob := outbox[nbrs[i]]
					if ob == nil {
						in[i] = nil
						continue
					}
					msg := ob[rp[i]]
					if msg != nil && dropping && inj.DropMessage(round, v, i) {
						msg = nil
						drops++
					}
					in[i] = msg
					if msg != nil {
						count++
					}
				}
			}
			delivered.Add(int64(count))
			if drops > 0 {
				dropped.Add(int64(drops))
			}
		}, ro.deliverStats())
		roundMsgs := int(delivered.Load())
		stats.MessagesSent += roundMsgs
		stats.MessagesDropped += int(dropped.Load())

		halted := markHalted()
		rs := engine.RoundStats{
			Round:    round,
			Steps:    int(steps.Load()),
			Messages: roundMsgs,
			Active:   numRunning,
			Halted:   halted,
			Dropped:  int(dropped.Load()),
			Crashed:  int(crashes.Load()),
		}
		ro.roundEnd(rs)
		if opts.OnRound != nil {
			opts.OnRound(rs)
		}
	}
	ro.runEnd(stats, nil)
	return stats, nil
}

// runObs is the per-run observability state: the resolved metric
// collectors, the trace recorder, and the scratch timing/sharding state of
// the round in flight. A nil *runObs (observability disabled) makes every
// hook a no-op and keeps the round loop free of time and atomic-stat calls.
type runObs struct {
	rec   *obs.Recorder
	runID int64
	// trace / parent / job tag every emitted event with the request trace
	// the run executes under (zero when Options.Ctx carries no trace), so a
	// trace ID recovered from an NDJSON end event or an SLO exemplar finds
	// the run's full round history in the JSONL stream.
	trace, parent, job string

	runs, rounds, steps, messages *obs.Counter
	dropped, crashed              *obs.Counter
	shards, stolen                *obs.Counter
	roundMsgs, roundHalts         *obs.Histogram
	computeSec, deliverSec        *obs.Histogram

	// Scratch state of the round in flight.
	phaseStart       time.Time
	computeNS        int64
	computeRS, delRS engine.RunStats
}

// newRunObs resolves the run's collectors; it returns nil when both
// observability channels are off.
func newRunObs(opts Options, n, workers int) *runObs {
	if opts.Metrics == nil && opts.Trace == nil {
		return nil
	}
	ro := &runObs{rec: opts.Trace}
	if tc := obs.TraceFrom(opts.Ctx); tc.Valid() {
		ro.trace, ro.parent, ro.job = tc.Trace, tc.Span, tc.Job
	}
	if m := opts.Metrics; m != nil {
		ro.runs = m.Counter("local_runs_total")
		ro.rounds = m.Counter("local_rounds_total")
		ro.steps = m.Counter("local_steps_total")
		ro.messages = m.Counter("local_messages_total")
		ro.dropped = m.Counter("local_messages_dropped_total")
		ro.crashed = m.Counter("local_crash_steps_total")
		ro.shards = m.Counter("engine_shards_total")
		ro.stolen = m.Counter("engine_shards_stolen_total")
		ro.roundMsgs = m.Histogram("local_round_messages", obs.CountBuckets)
		ro.roundHalts = m.Histogram("local_round_halted", obs.CountBuckets)
		ro.computeSec = m.Histogram("local_compute_seconds", obs.DurationBuckets)
		ro.deliverSec = m.Histogram("local_deliver_seconds", obs.DurationBuckets)
	}
	if ro.rec != nil {
		ro.runID = ro.rec.NextRun()
	}
	ro.runs.Inc()
	if ro.rec != nil {
		ro.rec.Emit(obs.Event{
			Kind: "run_start", Run: ro.runID, Nodes: n, Workers: workers,
			Trace: ro.trace, Parent: ro.parent, Job: ro.job,
		})
	}
	return ro
}

func (ro *runObs) runStart() {} // run_start is emitted by newRunObs

// roundBegin stamps the compute phase's start.
func (ro *runObs) roundBegin() {
	if ro == nil {
		return
	}
	ro.phaseStart = time.Now()
}

// computeStats returns the RunStats slot for the compute phase (nil when
// disabled, selecting the engine's zero-overhead path).
func (ro *runObs) computeStats() *engine.RunStats {
	if ro == nil {
		return nil
	}
	return &ro.computeRS
}

// computeDone closes the compute phase's timing and opens the delivery
// phase's.
func (ro *runObs) computeDone() {
	if ro == nil {
		return
	}
	now := time.Now()
	ro.computeNS = now.Sub(ro.phaseStart).Nanoseconds()
	ro.phaseStart = now
}

// deliverStats returns the RunStats slot for the delivery phase.
func (ro *runObs) deliverStats() *engine.RunStats {
	if ro == nil {
		return nil
	}
	return &ro.delRS
}

// roundEnd folds the finished round into the metric families and emits its
// trace event.
func (ro *runObs) roundEnd(rs engine.RoundStats) {
	if ro == nil {
		return
	}
	deliverNS := time.Since(ro.phaseStart).Nanoseconds()
	ro.rounds.Inc()
	ro.steps.Add(int64(rs.Steps))
	ro.messages.Add(int64(rs.Messages))
	ro.dropped.Add(int64(rs.Dropped))
	ro.crashed.Add(int64(rs.Crashed))
	ro.shards.Add(int64(ro.computeRS.Shards + ro.delRS.Shards))
	ro.stolen.Add(int64(ro.computeRS.Stolen + ro.delRS.Stolen))
	ro.roundMsgs.Observe(float64(rs.Messages))
	ro.roundHalts.Observe(float64(rs.Halted))
	ro.computeSec.Observe(float64(ro.computeNS) / 1e9)
	ro.deliverSec.Observe(float64(deliverNS) / 1e9)
	if ro.rec != nil {
		ro.rec.Emit(obs.Event{
			Kind:      "round",
			Run:       ro.runID,
			Round:     rs.Round,
			Steps:     rs.Steps,
			Messages:  rs.Messages,
			Active:    rs.Active,
			Halted:    rs.Halted,
			Dropped:   rs.Dropped,
			Crashed:   rs.Crashed,
			Shards:    ro.computeRS.Shards + ro.delRS.Shards,
			Stolen:    ro.computeRS.Stolen + ro.delRS.Stolen,
			ComputeNS: ro.computeNS,
			DeliverNS: deliverNS,
			Trace:     ro.trace,
			Parent:    ro.parent,
			Job:       ro.job,
		})
	}
}

// runEnd emits the run_end trace marker (with the failure, if any).
func (ro *runObs) runEnd(stats Stats, err error) {
	if ro == nil || ro.rec == nil {
		return
	}
	e := obs.Event{
		Kind: "run_end", Run: ro.runID, Rounds: stats.Rounds,
		Steps: stats.Steps, Messages: stats.MessagesSent,
		Trace: ro.trace, Parent: ro.parent, Job: ro.job,
	}
	if err != nil {
		e.Err = err.Error()
	}
	ro.rec.Emit(e)
}

// runPool selects the execution pool for one run: the process-wide shared
// pool by default, or a transient pool (closed by release) for an explicit
// non-default worker count.
func runPool(opts Options) (pool *engine.Pool, release func()) {
	switch {
	case opts.Workers == 0 || opts.Workers == engine.Shared().Workers():
		return engine.Shared(), func() {}
	default:
		p := engine.New(opts.Workers)
		return p, p.Close
	}
}

// portOf returns the port index under which node u sees node v.
func portOf(g *graph.Graph, u, v int) int {
	nbrs := g.Neighbors(u)
	i := sort.SearchInts(nbrs, v)
	if i >= len(nbrs) || nbrs[i] != v {
		panic(fmt.Sprintf("local: %d and %d are not adjacent", u, v))
	}
	return i
}

// assignIDs produces the unique node identifiers for a run.
func assignIDs(n int, opts Options) []uint64 {
	ids := make([]uint64, n)
	if opts.PresetIDs != nil {
		if len(opts.PresetIDs) != n {
			panic(fmt.Sprintf("local: %d preset IDs for %d nodes", len(opts.PresetIDs), n))
		}
		copy(ids, opts.PresetIDs)
		seen := make(map[uint64]bool, n)
		for _, id := range ids {
			if seen[id] {
				panic(fmt.Sprintf("local: duplicate preset ID %d", id))
			}
			seen[id] = true
		}
		return ids
	}
	if opts.SequentialIDs {
		for v := range ids {
			ids[v] = uint64(v)
		}
		return ids
	}
	// Random distinct IDs from the space [0, n^3): polynomially bounded, as
	// the LOCAL model assumes, and adversarially scrambled relative to the
	// topology.
	r := prng.New(opts.IDSeed ^ 0x1015_1015_1015_1015)
	space := IDSpace(n)
	seen := make(map[uint64]bool, n)
	for v := 0; v < n; v++ {
		for {
			id := r.Uint64() % space
			if !seen[id] {
				seen[id] = true
				ids[v] = id
				break
			}
		}
	}
	return ids
}
