package lb

import "testing"

// TestRadius3FrontierExact extends the exact frontier to a third radius:
// the full-cycle window m = 9 is solvable, m = 10 is certified impossible
// (a 1.8M-variable 2-SAT instance).
func TestRadius3FrontierExact(t *testing.T) {
	if testing.Short() {
		t.Skip("radius-3 decision (~6s) skipped in short mode")
	}
	for _, m := range []int{9, 10} {
		c, err := Decide(3, m)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("radius=3 m=%d vars=%d clauses=%d solvable=%v", m, c.Vars, c.Clauses, c.Solvable)
		if want := m == 9; c.Solvable != want {
			t.Fatalf("radius=3 m=%d solvable=%v, want %v", m, c.Solvable, want)
		}
	}
}
