package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 97, 101, 7919}
	composites := []int{-3, 0, 1, 4, 6, 9, 15, 91, 7917}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {7908, 7919},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestNewRejectsComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(6) should panic")
		}
	}()
	New(6)
}

func TestFieldAxiomsQuick(t *testing.T) {
	f := New(101)
	assoc := func(a, b, c int16) bool {
		x, y, z := f.Norm(int(a)), f.Norm(int(b)), f.Norm(int(c))
		return f.Mul(f.Mul(x, y), z) == f.Mul(x, f.Mul(y, z)) &&
			f.Add(f.Add(x, y), z) == f.Add(x, f.Add(y, z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Fatal(err)
	}
	distrib := func(a, b, c int16) bool {
		x, y, z := f.Norm(int(a)), f.Norm(int(b)), f.Norm(int(c))
		return f.Mul(x, f.Add(y, z)) == f.Add(f.Mul(x, y), f.Mul(x, z))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Fatal(err)
	}
	subInverse := func(a, b int16) bool {
		x, y := f.Norm(int(a)), f.Norm(int(b))
		return f.Add(f.Sub(x, y), y) == x
	}
	if err := quick.Check(subInverse, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7, 11, 13, 101} {
		f := New(q)
		for a := 1; a < q; a++ {
			inv := f.Inv(a)
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(%d): %d * %d != 1", q, a, inv)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	New(7).Inv(0)
}

func TestPow(t *testing.T) {
	f := New(13)
	if got := f.Pow(2, 0); got != 1 {
		t.Fatalf("2^0 = %d", got)
	}
	if got := f.Pow(2, 10); got != 1024%13 {
		t.Fatalf("2^10 = %d, want %d", got, 1024%13)
	}
	// Fermat's little theorem.
	for a := 1; a < 13; a++ {
		if f.Pow(a, 12) != 1 {
			t.Fatalf("%d^12 != 1 mod 13", a)
		}
	}
}

func TestEvalHorner(t *testing.T) {
	f := New(17)
	// p(x) = 3 + 2x + x^2 at x = 5: 3 + 10 + 25 = 38 = 4 mod 17.
	if got := f.Eval([]int{3, 2, 1}, 5); got != 4 {
		t.Fatalf("Eval = %d, want 4", got)
	}
	// Empty polynomial is zero.
	if got := f.Eval(nil, 9); got != 0 {
		t.Fatalf("Eval(nil) = %d", got)
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	f := func(v uint16, qRaw uint8) bool {
		q := int(qRaw%29) + 2
		t := 1
		for pow := q; pow <= int(v); pow *= q {
			t++
		}
		digits := Digits(int(v), q, t)
		back := 0
		mul := 1
		for _, d := range digits {
			if d < 0 || d >= q {
				return false
			}
			back += d * mul
			mul *= q
		}
		return back == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctPolynomialsAgreeRarely(t *testing.T) {
	// The property Linial's reduction depends on: two distinct degree-<t
	// polynomials agree on at most t-1 points.
	f := New(11)
	tDeg := 3
	coeffsA := []int{1, 2, 3}
	coeffsB := []int{1, 5, 3}
	agree := 0
	for x := 0; x < f.Q(); x++ {
		if f.Eval(coeffsA, x) == f.Eval(coeffsB, x) {
			agree++
		}
	}
	if agree > tDeg-1 {
		t.Fatalf("distinct polynomials agree on %d points, max %d", agree, tDeg-1)
	}
}

func BenchmarkEval(b *testing.B) {
	f := New(101)
	coeffs := []int{3, 1, 4, 1, 5}
	for i := 0; i < b.N; i++ {
		_ = f.Eval(coeffs, i%101)
	}
}
