// Quickstart: build a relaxed sinkless-orientation LLL instance on a cycle,
// check the paper's criterion p < 2^-d, solve it with the deterministic
// sequential fixer (Theorem 1.1) and print the resulting orientation.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Topology: a cycle of 16 nodes. Every edge carries one random
	//    variable (its orientation), every node one bad event ("I am a
	//    sink"), so variables affect exactly two events: the r = 2 setting.
	g := lll.NewCycle(16)

	// 2. Instance: slack 0.25 relaxes the orientation (edges may point at
	//    nobody), pushing the failure probability strictly below 2^-d.
	s, err := lll.NewSinkless(g, 0.25)
	if err != nil {
		return err
	}

	// 3. The criterion of the paper: p·2^d < 1.
	ok, margin := lll.CheckExponentialCriterion(s.Instance)
	p, d, r := s.Instance.Params()
	fmt.Printf("instance: p=%.4f d=%d r=%d  margin p*2^d=%.4f  criterion holds: %v\n",
		p, d, r, margin, ok)
	if err := lll.Validate(s.Instance); err != nil {
		return err
	}

	// 4. Solve deterministically. The guarantee: zero violated events, for
	//    ANY fixing order, without ever revisiting a value.
	res, err := lll.Solve(s.Instance, lll.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("solved:   violated events=%d  certified bound=%.4f (< 1)\n",
		res.Stats.FinalViolatedEvents, res.Stats.MaxFinalProbQuotient)

	// 5. Interpret the assignment in domain terms.
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		head := s.OrientationOf(id, res.Assignment)
		if head < 0 {
			fmt.Printf("  edge {%2d,%2d}: unoriented\n", e.U, e.V)
		} else {
			fmt.Printf("  edge {%2d,%2d}: -> %d\n", e.U, e.V, head)
		}
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) > 0 {
		return fmt.Errorf("unexpected sinks: %v", sinks)
	}
	fmt.Println("no node is a sink — sinkless orientation found deterministically")
	return nil
}
