package coloring

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

// cvMachine runs the Cole-Vishkin colour-reduction procedure on an oriented
// cycle: starting from unique IDs, each iteration replaces a node's colour
// by 2i + b, where i is the lowest bit position in which the node's colour
// differs from its successor's and b is the node's bit at that position.
// Palettes shrink as K → 2·⌈log₂K⌉, reaching 6 colours after O(log* n)
// iterations; three final rounds reduce 6 → 3 greedily.
type cvMachine struct {
	info       local.NodeInfo
	succID     uint64
	succPort   int
	color      uint64
	iterations int
	err        error
}

// cvIterations returns the number of CV steps needed to go from a palette
// of k0 colours to at most 6, computable identically by every node.
func cvIterations(k0 uint64) int {
	iters := 0
	k := k0
	for k > 6 {
		k = 2 * uint64(bits.Len64(k-1))
		iters++
	}
	return iters
}

func (m *cvMachine) Init(info local.NodeInfo) {
	m.info = info
	m.color = info.ID
	m.succPort = -1
	for i, id := range info.NeighborIDs {
		if id == m.succID {
			m.succPort = i
		}
	}
	if m.succPort < 0 {
		m.err = fmt.Errorf("coloring: successor %d is not a neighbour of %d", m.succID, m.info.ID)
	}
}

func (m *cvMachine) totalRounds() int { return 1 + m.iterations + 3 }

func (m *cvMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	if round > 1 {
		step := round - 2
		switch {
		case step < m.iterations:
			succColor, ok := recv[m.succPort].(uint64)
			if !ok {
				m.err = fmt.Errorf("coloring: missing successor colour in round %d", round)
				return nil, true
			}
			if succColor == m.color {
				m.err = fmt.Errorf("coloring: successor shares colour %d", m.color)
				return nil, true
			}
			i := bits.TrailingZeros64(m.color ^ succColor)
			b := (m.color >> uint(i)) & 1
			m.color = uint64(2*i) + b
		default:
			// Reduce classes 5, 4, 3 (one per round) to a free colour in
			// {0, 1, 2}; a cycle node has only two neighbours, so one of
			// the three is free.
			class := uint64(5 - (step - m.iterations))
			if m.color == class {
				var blocked []int
				for _, msg := range recv {
					if c, ok := msg.(uint64); ok {
						blocked = append(blocked, int(c))
					}
				}
				free := smallestFree(3, blocked)
				if free < 0 {
					m.err = fmt.Errorf("coloring: no free colour in {0,1,2}")
					return nil, true
				}
				m.color = uint64(free)
			}
		}
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = m.color
	}
	return send, round >= m.totalRounds()
}

// ColeVishkinCycle 3-colours the cycle C_n in O(log* n) LOCAL rounds using
// the classic Cole-Vishkin procedure. The orientation (each node's
// successor) is provided as input, as the procedure requires. It returns the
// colouring indexed by node together with run statistics.
func ColeVishkinCycle(n int, seed uint64) (*Result, error) {
	if n < 3 {
		return nil, fmt.Errorf("coloring: cycle needs n >= 3, got %d", n)
	}
	g := graph.Cycle(n)

	// Draw distinct IDs ourselves so each machine can be told its
	// successor's ID (the orientation input).
	r := prng.New(seed ^ 0xc01e_517c)
	space := local.IDSpace(n)
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for v := range ids {
		for {
			id := r.Uint64() % space
			if !seen[id] {
				seen[id] = true
				ids[v] = id
				break
			}
		}
	}

	iters := cvIterations(space)
	machines := make([]*cvMachine, n)
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = &cvMachine{succID: ids[(v+1)%n], iterations: iters}
		return machines[v]
	}, local.Options{PresetIDs: ids})
	if err != nil {
		return nil, err
	}
	colors := make([]int, n)
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("coloring: node %d failed: %w", v, m.err)
		}
		colors[v] = int(m.color)
	}
	if err := Verify(g, colors); err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   3,
		Rounds:    stats.Rounds,
		SimFactor: 1,
		Messages:  stats.MessagesSent,
	}, nil
}
