package engine

import (
	"sync"
	"testing"
)

// collectSegments runs ForEachSegments and records, per global index, which
// segment it was reported under (and that it was covered exactly once).
func collectSegments(t *testing.T, p *Pool, offsets []int) []int {
	t.Helper()
	total := offsets[len(offsets)-1]
	got := make([]int, total)
	for i := range got {
		got[i] = -1
	}
	var mu sync.Mutex
	p.ForEachSegments(offsets, func(seg, lo, hi int) {
		if lo >= hi {
			t.Errorf("empty sub-range: seg=%d [%d,%d)", seg, lo, hi)
		}
		if lo < offsets[seg] || hi > offsets[seg+1] {
			t.Errorf("sub-range [%d,%d) escapes segment %d = [%d,%d)", lo, hi, seg, offsets[seg], offsets[seg+1])
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			if got[i] != -1 {
				t.Errorf("index %d covered twice (segments %d and %d)", i, got[i], seg)
			}
			got[i] = seg
		}
		mu.Unlock()
	})
	return got
}

func TestForEachSegmentsCoverage(t *testing.T) {
	layouts := [][]int{
		{0},
		{0, 0},
		{0, 7},
		{0, 3, 3, 3, 10},       // empty segments in the middle
		{0, 1, 2, 3, 4, 5},     // many tiny segments
		{0, 1000, 1001, 2500},  // mixed sizes
		{0, 0, 0, 64, 64, 128}, // empty prefix and duplicates
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, offsets := range layouts {
			got := collectSegments(t, p, offsets)
			for i, seg := range got {
				if seg == -1 {
					t.Fatalf("workers=%d offsets=%v: index %d not covered", workers, offsets, i)
				}
				if i < offsets[seg] || i >= offsets[seg+1] {
					t.Fatalf("workers=%d offsets=%v: index %d attributed to segment %d", workers, offsets, i, seg)
				}
			}
		}
		p.Close()
	}
}

func TestForEachSegmentsNilPool(t *testing.T) {
	var p *Pool
	got := collectSegments(t, p, []int{0, 5, 9})
	for i, seg := range got {
		want := 0
		if i >= 5 {
			want = 1
		}
		if seg != want {
			t.Fatalf("index %d: segment %d, want %d", i, seg, want)
		}
	}
}

func TestForEachSegmentsBadOffsets(t *testing.T) {
	p := New(1)
	defer p.Close()
	for _, offsets := range [][]int{{1, 2}, {0, 5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("offsets %v: expected panic", offsets)
				}
			}()
			p.ForEachSegments(offsets, func(_, _, _ int) {})
		}()
	}
}
