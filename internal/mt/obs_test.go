package mt

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/prng"
)

// TestDistributedOnRoundWorkerIndependence pins the OnRound contract for
// resampling runs on the LOCAL runtime: the per-round engine.RoundStats
// stream is deterministic, so the distributed resampler must produce the
// byte-identical stream at Workers = 1 and Workers = GOMAXPROCS.
func TestDistributedOnRoundWorkerIndependence(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(16), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []engine.RoundStats {
		var stream []engine.RoundStats
		res, err := Distributed(s.Instance, 1, 20, local.Options{
			IDSeed:  2,
			Workers: workers,
			OnRound: func(rs engine.RoundStats) { stream = append(stream, rs) },
		})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(stream) != res.Rounds {
			t.Fatalf("Workers=%d: %d OnRound calls for %d rounds", workers, len(stream), res.Rounds)
		}
		return stream
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("no rounds observed")
	}
	for i, rs := range want {
		if rs.Round != i+1 {
			t.Fatalf("stream not in round order: entry %d has Round=%d", i, rs.Round)
		}
	}
	got := run(runtime.GOMAXPROCS(0))
	if len(got) != len(want) {
		t.Fatalf("stream lengths differ: Workers=1 saw %d rounds, GOMAXPROCS saw %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d stats differ between worker counts:\nWorkers=1:        %+v\nWorkers=GOMAXPROCS: %+v",
				i+1, want[i], got[i])
		}
	}
}

// TestParallelObsOnRoundStream checks the parallel resampler's OnRound
// mapping: the stream is consistent with the Result (rounds dense, resampled
// counts summing to Resamplings, Active > 0 every round) and reproducible
// for a fixed seed.
func TestParallelObsOnRoundStream(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(20), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]engine.RoundStats, *Result) {
		var stream []engine.RoundStats
		res, err := ParallelObs(s.Instance, prng.New(11), 0, Observer{
			OnRound: func(rs engine.RoundStats) { stream = append(stream, rs) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return stream, res
	}
	stream, res := run()
	if len(stream) != res.Rounds {
		t.Fatalf("%d OnRound calls for %d rounds", len(stream), res.Rounds)
	}
	total := 0
	for i, rs := range stream {
		if rs.Round != i+1 {
			t.Fatalf("entry %d has Round=%d, want %d", i, rs.Round, i+1)
		}
		if rs.Active == 0 || rs.Steps == 0 {
			t.Fatalf("round %d: zero Active/Steps in a round that ran: %+v", rs.Round, rs)
		}
		total += rs.Steps
	}
	if total != res.Resamplings {
		t.Fatalf("OnRound Steps sum to %d, Result.Resamplings = %d", total, res.Resamplings)
	}
	again, _ := run()
	if len(again) != len(stream) {
		t.Fatalf("repeat run stream length %d != %d", len(again), len(stream))
	}
	for i := range stream {
		if again[i] != stream[i] {
			t.Fatalf("repeat run diverges at round %d: %+v vs %+v", i+1, again[i], stream[i])
		}
	}
}

// TestObserverMetricsAndTrace checks that SequentialObs / ParallelObs
// actually feed the mt_* metric families and the trace stream, and that the
// counters agree with the Result.
func TestObserverMetricsAndTrace(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(16), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var traced bytes.Buffer
	rec := obs.NewRecorder(&traced)
	res, err := SequentialObs(s.Instance, prng.New(5), 0, Observer{Metrics: reg, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mt_runs_total").Value(); got != 1 {
		t.Errorf("mt_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("mt_resamplings_total").Value(); got != int64(res.Resamplings) {
		t.Errorf("mt_resamplings_total = %d, Result.Resamplings = %d", got, res.Resamplings)
	}
	if got := reg.Counter("mt_scans_total").Value(); got == 0 {
		t.Error("mt_scans_total stayed 0")
	}
	if res.Resamplings > 0 && traced.Len() == 0 {
		t.Error("trace output empty despite resamplings")
	}

	reg2 := obs.NewRegistry()
	pres, err := ParallelObs(s.Instance, prng.New(6), 0, Observer{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("mt_rounds_total").Value(); got != int64(pres.Rounds) {
		t.Errorf("mt_rounds_total = %d, Result.Rounds = %d", got, pres.Rounds)
	}
	if got := reg2.Counter("mt_resamplings_total").Value(); got != int64(pres.Resamplings) {
		t.Errorf("mt_resamplings_total = %d, Result.Resamplings = %d", got, pres.Resamplings)
	}
}

// TestDistributedPartialStatsOnFailure checks the failure contract localsim
// relies on: when the LOCAL run dies mid-round, the DistResult still carries
// the partial execution record.
func TestDistributedPartialStatsOnFailure(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(12), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-round limit cannot fit even one 3-round resampling iteration.
	res, err := Distributed(s.Instance, 1, 5, local.Options{IDSeed: 2, MaxRounds: 2})
	if err == nil {
		t.Fatal("expected a round-limit error")
	}
	if res == nil {
		t.Fatal("failed run returned nil DistResult — partial stats lost")
	}
	if res.LocalStats.Rounds == 0 || res.LocalStats.Steps == 0 {
		t.Fatalf("partial LocalStats empty: %+v", res.LocalStats)
	}
	if res.Rounds != res.LocalStats.Rounds {
		t.Fatalf("Rounds=%d disagrees with LocalStats.Rounds=%d", res.Rounds, res.LocalStats.Rounds)
	}
}
