package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/slo"
)

// TestHTTPSLOEndpoint: the service handler mounts /slo when an engine is
// configured — JSON by default, Prometheus text with trace-ID exemplars on
// ?format=prom — and the trace IDs in the exemplars are the jobs' own.
func TestHTTPSLOEndpoint(t *testing.T) {
	eng := slo.NewEngine(slo.Config{
		Objectives: []slo.Objective{
			{Name: SLORunLatency, Kind: slo.Latency, Target: 0.99, Threshold: 10},
			{Name: SLOErrorRate, Kind: slo.Ratio, Target: 0.99},
		},
	})
	r := newStubRunner()
	_, ts := newTestServer(t, Config{QueueCap: 4, MaxInFlight: 1, SLO: eng, Runner: r.run})

	v, resp := postJob(t, ts, `{}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitViewState(t, ts, v.ID, StateDone)

	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /slo: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/slo content type = %q", ct)
	}
	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/slo JSON: %v\n%s", err, body)
	}
	var run *slo.ObjectiveStatus
	for i := range st.Objectives {
		if st.Objectives[i].Name == SLORunLatency {
			run = &st.Objectives[i]
		}
	}
	if run == nil || run.Good == 0 {
		t.Fatalf("/slo has no run_latency observations: %s", body)
	}
	found := false
	for _, ex := range run.Exemplars {
		if ex.Trace == v.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exemplar carries the job's trace %q: %s", v.TraceID, body)
	}

	resp, err = http.Get(ts.URL + "/slo?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/slo?format=prom content type = %q", ct)
	}
	if !strings.Contains(string(prom), `trace_id="`+v.TraceID+`"`) {
		t.Fatalf("prom exposition lacks the job's trace exemplar:\n%s", prom)
	}
	if !strings.Contains(string(prom), "slo_run_latency_seconds_bucket") {
		t.Fatalf("prom exposition lacks the latency histogram:\n%s", prom)
	}
}

// TestHTTPSLOWithoutEngine: without an engine the endpoint still answers
// with an empty status instead of 404 — dashboards can poll unconditionally.
func TestHTTPSLOWithoutEngine(t *testing.T) {
	r := newStubRunner()
	_, ts := newTestServer(t, Config{QueueCap: 2, MaxInFlight: 1, Runner: r.run})
	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /slo without engine: %d", resp.StatusCode)
	}
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/slo JSON: %v", err)
	}
	if len(st.Objectives) != 0 || st.FastBurn {
		t.Fatalf("empty engine status = %+v", st)
	}
}

// TestHTTPShed503: under SLO fast burn, a deadline'd submit is shed with
// 503 on both the solo and the batch endpoint.
func TestHTTPShed503(t *testing.T) {
	eng := sloEngineTripped(t)
	r := newStubRunner()
	_, ts := newTestServer(t, Config{QueueCap: 8, MaxInFlight: 1, SLO: eng, Runner: r.run})

	_, resp := postJob(t, ts, `{"timeout_ms":50}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline'd submit under fast burn: %d, want 503", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json",
		strings.NewReader(`{"template":{},"count":2,"timeout_ms":50}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline'd batch submit under fast burn: %d, want 503", resp.StatusCode)
	}

	// Deadline-less jobs still flow.
	v, resp := postJob(t, ts, `{}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline-less submit under fast burn: %d, want 202", resp.StatusCode)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitViewState(t, ts, v.ID, StateDone)
}

// waitViewState polls the job view over HTTP until it reaches the wanted
// state, covering the trace_id field of the view JSON on the way.
func waitViewState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.TraceID == "" {
			t.Fatalf("view %s has no trace_id", id)
		}
		if v.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, v.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}
