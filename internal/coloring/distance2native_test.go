package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

func TestDistance2NativeProper(t *testing.T) {
	r := prng.New(31)
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.Grid(4, 5),
		mustRegular(t, 24, 4, r),
		graph.CompleteBinaryTree(15),
	} {
		res, err := DistributedDistance2Native(g, local.Options{IDSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyDistance2(g, res.Colors); err != nil {
			t.Fatal(err)
		}
		d := g.MaxDegree()
		if res.Palette > d*d+1 {
			t.Fatalf("palette %d exceeds Δ²+1 = %d", res.Palette, d*d+1)
		}
		if m := MaxColor(res.Colors); m >= res.Palette {
			t.Fatalf("colour %d outside palette %d", m, res.Palette)
		}
		if res.SimFactor != 1 {
			t.Fatalf("native machine must report SimFactor 1, got %d", res.SimFactor)
		}
	}
}

func TestDistance2NativeMatchesSquareSimulation(t *testing.T) {
	// Both implementations must produce valid distance-2 colourings with
	// comparable native-round costs (the square-based one claims
	// Rounds × SimFactor; the native one pays rounds directly).
	g := graph.Cycle(24)
	sq, err := DistributedDistance2Coloring(g, local.Options{IDSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := DistributedDistance2Native(g, local.Options{IDSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sqCost := sq.Rounds * sq.SimFactor
	natCost := nat.Rounds
	// The native protocol pays 2 rounds per logical step but computes its
	// schedule from the worst case Δ² rather than the realized square
	// degree; allow a 4x band in both directions.
	if natCost > 4*sqCost || sqCost > 4*natCost {
		t.Fatalf("native cost %d vs simulated cost %d diverge", natCost, sqCost)
	}
}

func TestDistance2NativeDeterministic(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() []int {
		res, err := DistributedDistance2Native(g, local.Options{IDSeed: 33})
		if err != nil {
			t.Fatal(err)
		}
		return res.Colors
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("native distance-2 colouring not deterministic")
		}
	}
}

func TestDistance2NativeLogStarGrowth(t *testing.T) {
	rounds := func(n int) int {
		res, err := DistributedDistance2Native(graph.Cycle(n), local.Options{IDSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	small, big := rounds(16), rounds(512)
	if big-small > 8 {
		t.Fatalf("rounds grew from %d to %d; expected log* growth", small, big)
	}
}

func BenchmarkDistance2Native(b *testing.B) {
	g := graph.Cycle(64)
	for i := 0; i < b.N; i++ {
		if _, err := DistributedDistance2Native(g, local.Options{IDSeed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEdgeColoringNativeProper(t *testing.T) {
	r := prng.New(41)
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.Grid(4, 5),
		mustRegular(t, 24, 4, r),
		graph.Path(2),
	} {
		res, err := DistributedEdgeColoringNative(g, local.Options{IDSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyEdgeColoring(g, res.Colors); err != nil {
			t.Fatal(err)
		}
		d := g.MaxDegree()
		if d > 1 && res.Palette > 2*d-1 {
			t.Fatalf("palette %d exceeds 2Δ-1 = %d", res.Palette, 2*d-1)
		}
		if res.SimFactor != 1 {
			t.Fatalf("native machine must report SimFactor 1, got %d", res.SimFactor)
		}
	}
}

func TestEdgeColoringNativeMatchesLineGraphSimulation(t *testing.T) {
	g := graph.Cycle(24)
	sim, err := DistributedEdgeColoring(g, local.Options{IDSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := DistributedEdgeColoringNative(g, local.Options{IDSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	simCost := sim.Rounds * sim.SimFactor
	natCost := nat.Rounds
	if natCost > 4*simCost || simCost > 4*natCost {
		t.Fatalf("native cost %d vs simulated cost %d diverge", natCost, simCost)
	}
}

func TestEdgeColoringNativeDeterministic(t *testing.T) {
	g := graph.Grid(3, 5)
	run := func() []int {
		res, err := DistributedEdgeColoringNative(g, local.Options{IDSeed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return res.Colors
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("native edge colouring not deterministic")
		}
	}
}

func TestEdgeColoringNativeLogStarGrowth(t *testing.T) {
	rounds := func(n int) int {
		res, err := DistributedEdgeColoringNative(graph.Cycle(n), local.Options{IDSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	small, big := rounds(16), rounds(512)
	if big-small > 8 {
		t.Fatalf("rounds grew from %d to %d; expected log* growth", small, big)
	}
}
