package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/conjecture"
	"repro/internal/hypergraph"
	"repro/internal/prng"
	"repro/internal/srep"
)

// T9Conjecture explores Conjecture 1.5: the generalized fixing process
// (numeric representability over the K_r edge values instead of the r = 3
// closed form) on instances of rank 4 and 5 strictly below the threshold.
// The conjecture predicts zero violations and zero infeasible steps on
// every run; the numeric solver is additionally cross-validated against the
// exact r = 3 surface.
func T9Conjecture(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:    "T9",
		Title: "Conjecture 1.5 - generalized fixer for rank r >= 4 (numeric representability)",
		Note: "Empirical evidence only: the r >= 4 representability test is a numeric concave-feasibility " +
			"search, sound (every accepted witness is verified) but heuristic in completeness. " +
			"'infeasible' > 0 would be counterexample material; the conjecture predicts all zeros below the threshold.",
		Header: []string{"rank r", "n", "deg", "d", "margin", "runs", "violations", "infeasible steps", "peak cert bound"},
	}
	r := prng.New(seed)

	// Cross-validation row: numeric solver vs the exact r = 3 surface.
	agr, tot := 0, 0
	for i := 0; i < 2000; i++ {
		a := r.Float64() * 4.2
		b := r.Float64() * 4.2
		c := r.Float64() * 4.2
		exact := srep.IsRepresentable(a, b, c, srep.DefaultTol)
		if nearBoundary(a, b, c) {
			continue
		}
		tot++
		if _, numeric := conjecture.Feasible([]float64{a, b, c}); numeric == exact {
			agr++
		}
	}
	t.AddRow("3 (validation)", "-", "-", "-", "-", tot, fmt.Sprintf("solver/exact agree %d/%d", agr, tot), 0, "-")
	if agr != tot {
		return t, fmt.Errorf("exp: T9: numeric solver disagrees with the exact r=3 surface")
	}

	type workload struct {
		rank, deg int
		slack     float64
	}
	for _, w := range []workload{{4, 2, 0.6}, {4, 3, 0.6}, {5, 2, 0.75}} {
		n := sz.scale(24)
		for n*w.deg%w.rank != 0 {
			n++
		}
		h, err := hypergraph.RandomRegularUniform(n, w.deg, w.rank, r)
		if err != nil {
			return nil, err
		}
		s, err := apps.NewHyperSinklessUniform(h, w.rank, w.slack)
		if err != nil {
			return nil, err
		}
		ok, margin := s.Instance.ExponentialCriterion()
		if !ok {
			return nil, fmt.Errorf("exp: T9 rank=%d deg=%d: margin %v >= 1", w.rank, w.deg, margin)
		}
		runs := sz.trials(8)
		worstViol, worstInf, worstPeak := 0, 0, 0.0
		for i := 0; i < runs; i++ {
			var order []int
			if i > 0 {
				order = r.Perm(s.Instance.NumVars())
			}
			res, err := conjecture.FixSequentialR(s.Instance, order)
			if err != nil {
				return nil, err
			}
			worstViol = maxInt(worstViol, res.Stats.FinalViolatedEvents)
			worstInf = maxInt(worstInf, res.Stats.Infeasible)
			if res.Stats.PeakCertBound > worstPeak {
				worstPeak = res.Stats.PeakCertBound
			}
		}
		t.AddRow(w.rank, n, w.deg, s.Instance.D(), margin, runs, worstViol, worstInf, worstPeak)
		if worstViol != 0 {
			return t, fmt.Errorf("exp: T9 rank=%d deg=%d: violations (conjecture counterexample?)", w.rank, w.deg)
		}
		// Also exercise the DISTRIBUTED generalized fixer once per
		// workload: Conjecture 1.5 explicitly claims a distributed
		// algorithm, not just a sequential process.
		dres, err := conjecture.FixDistributedR(s.Instance, sz.lopts(seed))
		if err != nil {
			return t, fmt.Errorf("exp: T9 rank=%d deg=%d distributed: %w", w.rank, w.deg, err)
		}
		t.AddRow(fmt.Sprintf("%d (distributed)", w.rank), n, w.deg, s.Instance.D(), margin, 1,
			dres.ViolatedEvents, "-", fmt.Sprintf("rounds=%d", dres.TotalRounds))
		if dres.ViolatedEvents != 0 {
			return t, fmt.Errorf("exp: T9 rank=%d deg=%d: distributed violations", w.rank, w.deg)
		}
	}
	return t, nil
}

func nearBoundary(a, b, c float64) bool {
	const margin = 0.02
	if a+b <= 4 {
		aa, bb := a, b
		if aa > 4 {
			aa = 4
		}
		if bb > 4 {
			bb = 4
		}
		f := srep.F(aa, bb)
		return absf(c-f) < margin || absf(a+b-4) < margin
	}
	return a+b-4 < margin
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
