package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/prng"
)

// Sizes tunes the experiment workloads; the zero value selects the defaults
// used by the CLI tools. Benchmarks shrink them to keep iterations fast.
type Sizes struct {
	// Scale shrinks (<1) or grows (>1) instance sizes. 0 means 1.
	Scale float64
	// Trials is the number of randomized repetitions where applicable.
	// 0 means the per-experiment default.
	Trials int
	// Workers is the worker count of the LOCAL simulator's sharded
	// execution engine for the distributed experiments (0 = shared
	// GOMAXPROCS pool). Tables are byte-identical for every value — the
	// golden-table tests assert this.
	Workers int
	// Metrics, when non-nil, receives every metric family the experiment's
	// runtimes produce (local_*, engine_*, core_*, mt_*). RunByID and
	// AllParallel give each experiment its own <id>_ prefix view of the
	// registry. Observability never changes table bytes — the golden tests
	// re-render with it enabled.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the structured JSONL events of every
	// run the experiment performs.
	Trace *obs.Recorder
	// Ctx, when non-nil, makes every LOCAL run of the experiment
	// cancellable (threaded into local.Options.Ctx). A live context never
	// changes table bytes — the golden tests re-render with one attached.
	Ctx context.Context
	// Checkpoint, when > 0, makes every sequential fixer run snapshot its
	// state after that many fixed variables (threaded into
	// core.Options.CheckpointEvery with a discard sink). Checkpoint
	// capture is a pure copy, so it never changes table bytes — the
	// golden tests re-render with it active.
	Checkpoint int
}

// lopts builds the LOCAL-runtime options the distributed experiments share.
func (s Sizes) lopts(seed uint64) local.Options {
	return local.Options{Ctx: s.Ctx, IDSeed: seed, Workers: s.Workers, Metrics: s.Metrics, Trace: s.Trace}
}

// copts builds the fixer options the experiments share, carrying the
// metrics registry into the sequential fixer and the distributed machines.
func (s Sizes) copts(strategy core.Strategy) core.Options {
	o := core.Options{Strategy: strategy, Metrics: s.Metrics}
	if s.Checkpoint > 0 {
		o.CheckpointEvery = s.Checkpoint
		o.OnCheckpoint = func(*fault.Checkpoint) {}
	}
	return o
}

func (s Sizes) scale(n int) int {
	f := s.Scale
	if f == 0 {
		f = 1
	}
	v := int(math.Round(float64(n) * f))
	if v < 4 {
		v = 4
	}
	return v
}

func (s Sizes) trials(def int) int {
	if s.Trials == 0 {
		return def
	}
	return s.Trials
}

// T1Rank2 validates Theorem 1.1: the sequential deterministic fixer solves
// every rank-2 instance strictly below the threshold, in arbitrary
// (adversarial) orders, with the certified bound p·2^d < 1.
func T1Rank2(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "Theorem 1.1 - sequential deterministic fixing, r = 2",
		Note:   "Every row must show 0 violated events, peak edge sums <= 2 and a peak certified bound < 1; 'orders' counts random permutations all of which succeeded.",
		Header: []string{"family", "n", "d", "margin p*2^d", "orders", "violations", "peak edge sum", "peak cert bound"},
	}
	r := prng.New(seed)
	type workload struct {
		family string
		build  func() (*apps.Sinkless, error)
	}
	var ws []workload
	for _, m := range []float64{0.5, 0.9, 0.99} {
		m := m
		ws = append(ws, workload{
			family: fmt.Sprintf("cycle slack m=%.4g", m),
			build:  func() (*apps.Sinkless, error) { return apps.NewSinklessWithMargin(graph.Cycle(sz.scale(64)), m) },
		})
	}
	for _, alpha := range []float64{0.35, 0.45} {
		alpha := alpha
		ws = append(ws, workload{
			family: fmt.Sprintf("cycle biased a=%.4g", alpha),
			build:  func() (*apps.Sinkless, error) { return apps.NewSinklessBiasedCycle(sz.scale(64), alpha) },
		})
	}
	g4, err := graph.RandomRegular(sz.scale(32), 4, r)
	if err != nil {
		return nil, err
	}
	g6, err := graph.RandomRegular(sz.scale(24), 6, r)
	if err != nil {
		return nil, err
	}
	torus := graph.Torus(sz.scale(6), sz.scale(6))
	ws = append(ws,
		workload{"4-regular slack", func() (*apps.Sinkless, error) { return apps.NewSinklessWithMargin(g4, 0.9) }},
		workload{"6-regular slack", func() (*apps.Sinkless, error) { return apps.NewSinklessWithMargin(g6, 0.9) }},
		workload{"torus slack", func() (*apps.Sinkless, error) { return apps.NewSinklessWithMargin(torus, 0.9) }},
	)

	orders := sz.trials(12)
	for _, w := range ws {
		s, err := w.build()
		if err != nil {
			return nil, fmt.Errorf("exp: T1 %s: %w", w.family, err)
		}
		_, margin := s.Instance.ExponentialCriterion()
		worstViol, worstEdge, worstBound := 0, 0.0, 0.0
		for i := 0; i < orders; i++ {
			var order []int
			if i > 0 {
				order = r.Perm(s.Instance.NumVars())
			}
			res, err := core.FixSequential(s.Instance, order, sz.copts(0))
			if err != nil {
				return nil, fmt.Errorf("exp: T1 %s: %w", w.family, err)
			}
			if res.Stats.FinalViolatedEvents > worstViol {
				worstViol = res.Stats.FinalViolatedEvents
			}
			if res.Stats.PeakEdgeSum > worstEdge {
				worstEdge = res.Stats.PeakEdgeSum
			}
			if res.Stats.PeakCertBound > worstBound {
				worstBound = res.Stats.PeakCertBound
			}
		}
		t.AddRow(w.family, s.Instance.NumEvents(), s.Instance.D(), margin, orders, worstViol, worstEdge, worstBound)
		if worstViol != 0 {
			return t, fmt.Errorf("exp: T1 %s: violations below threshold", w.family)
		}
		if worstBound >= 1 {
			return t, fmt.Errorf("exp: T1 %s: peak certified bound %v >= 1 below the threshold", w.family, worstBound)
		}
	}
	return t, nil
}

// T2DistributedRank2 validates Corollary 1.2: the distributed fixer's round
// complexity scales like poly(d) + log*(n) — constant-ish in n for fixed d,
// polynomial in d for fixed n.
func T2DistributedRank2(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "Corollary 1.2 - distributed deterministic LLL, r = 2, rounds vs n and d",
		Note:   "For fixed d (cycles) total rounds must be flat in n up to the log* term; the d-sweep shows the poly(d) term. violations must be 0.",
		Header: []string{"graph", "n", "d", "classes", "colour rounds", "fix rounds", "total", "violations"},
	}
	for _, n := range []int{16, 64, 256, 1024} {
		n = sz.scale(n)
		s, err := apps.NewSinkless(graph.Cycle(n), 0.2)
		if err != nil {
			return nil, err
		}
		res, err := core.FixDistributed2(s.Instance, sz.copts(0), sz.lopts(seed))
		if err != nil {
			return nil, err
		}
		t.AddRow("cycle", n, s.Instance.D(), res.Classes, res.ColoringRounds, res.FixingRounds, res.TotalRounds, res.ViolatedEvents)
		if res.ViolatedEvents != 0 {
			return t, fmt.Errorf("exp: T2: violations on cycle n=%d", n)
		}
	}
	r := prng.New(seed)
	for _, d := range []int{3, 4, 5, 6} {
		n := sz.scale(24)
		if n < d+2 {
			n = d + 2
		}
		if n*d%2 != 0 {
			n++
		}
		g, err := graph.RandomRegular(n, d, r)
		if err != nil {
			return nil, err
		}
		s, err := apps.NewSinkless(g, 0.3)
		if err != nil {
			return nil, err
		}
		res, err := core.FixDistributed2(s.Instance, sz.copts(0), sz.lopts(seed))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d-regular", d), n, s.Instance.D(), res.Classes, res.ColoringRounds, res.FixingRounds, res.TotalRounds, res.ViolatedEvents)
		if res.ViolatedEvents != 0 {
			return t, fmt.Errorf("exp: T2: violations on %d-regular", d)
		}
	}
	return t, nil
}

// T3Rank3 validates Theorem 1.3: the sequential fixer with P* bookkeeping
// solves rank-3 instances below the threshold in arbitrary orders, with zero
// numeric fallbacks (the Variable Fixing Lemma in action).
func T3Rank3(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  "Theorem 1.3 - sequential deterministic fixing with P*, r = 3",
		Note:   "Every row must show 0 violations and 0 fallbacks; the peak certified bound max Pr[E]*prod(phi) stays < 1 and the peak event bound <= 2^d.",
		Header: []string{"instance", "n", "deg", "d", "margin", "orders", "violations", "fallbacks", "peak event bound", "2^d", "peak cert bound"},
	}
	r := prng.New(seed)
	orders := sz.trials(10)
	for _, deg := range []int{2, 3, 4} {
		n := sz.scale(30)
		for n*deg%3 != 0 {
			n++
		}
		h, err := hypergraph.RandomRegularRank3(n, deg, r)
		if err != nil {
			return nil, err
		}
		s, err := apps.NewHyperSinkless(h, 0.4)
		if err != nil {
			return nil, err
		}
		_, margin := s.Instance.ExponentialCriterion()
		worstViol, worstFall, worstEvent, worstBound := 0, 0, 0.0, 0.0
		for i := 0; i < orders; i++ {
			var order []int
			if i > 0 {
				order = r.Perm(s.Instance.NumVars())
			}
			res, err := core.FixSequential(s.Instance, order, sz.copts(0))
			if err != nil {
				return nil, err
			}
			worstViol = maxInt(worstViol, res.Stats.FinalViolatedEvents)
			worstFall = maxInt(worstFall, res.Stats.Fallbacks)
			worstEvent = math.Max(worstEvent, res.Stats.PeakEventBound)
			worstBound = math.Max(worstBound, res.Stats.PeakCertBound)
		}
		d := s.Instance.D()
		t.AddRow(fmt.Sprintf("hyper-sinkless deg=%d", deg), n, deg, d, margin, orders,
			worstViol, worstFall, worstEvent, math.Pow(2, float64(d)), worstBound)
		if worstViol != 0 || worstFall != 0 {
			return t, fmt.Errorf("exp: T3 deg=%d: violations or fallbacks", deg)
		}
	}
	return t, nil
}

// T4DistributedRank3 validates Corollary 1.4: round complexity of the
// distributed rank-3 fixer (distance-2 colouring + classes).
func T4DistributedRank3(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "Corollary 1.4 - distributed deterministic LLL, r = 3, rounds vs n",
		Note:   "Rounds are dominated by the poly(d) colouring term; for fixed deg the totals must be flat in n (log* growth). violations must be 0.",
		Header: []string{"n", "deg", "d", "classes", "colour rounds", "fix rounds", "total", "violations"},
	}
	r := prng.New(seed)
	for _, n := range []int{12, 36, 90} {
		n = sz.scale(n)
		for n*2%3 != 0 {
			n++
		}
		h, err := hypergraph.RandomRegularRank3(n, 2, r)
		if err != nil {
			return nil, err
		}
		s, err := apps.NewHyperSinkless(h, 0.4)
		if err != nil {
			return nil, err
		}
		res, err := core.FixDistributed3(s.Instance, sz.copts(0), sz.lopts(seed))
		if err != nil {
			return nil, err
		}
		t.AddRow(n, 2, s.Instance.D(), res.Classes, res.ColoringRounds, res.FixingRounds, res.TotalRounds, res.ViolatedEvents)
		if res.ViolatedEvents != 0 {
			return t, fmt.Errorf("exp: T4: violations at n=%d", n)
		}
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// T5Threshold demonstrates the sharp threshold of the paper's title: for
// every margin p·2^d < 1 the deterministic fixer succeeds even with the
// worst feasible (adversarial) choices, while AT the threshold (margin 1,
// sinkless orientation) the adversarial strategy produces sinks and the
// one-shot randomized baseline keeps failing at its full probability.
func T5Threshold(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: "Sharp threshold at p = 2^-d (sinkless orientation, two relaxation knobs)",
		Note: "Two families approach the threshold: 'slack' (edges may point at nobody; the greedy escape) and " +
			"'biased' (edges commit to a real orientation with probability alpha vs 1-alpha; margin = 4a(1-a), " +
			"no escape value). Below margin 1: zero violations under EVERY strategy and peak certified bound < 1. " +
			"At margin 1 the bound degenerates to 1 and the adversarial strategy fails. One-shot sampling keeps " +
			"violating ~n*p events throughout - randomness alone does not solve the instance.",
		Header: []string{"family", "margin p*2^d", "greedy viol", "adversarial viol", "peak cert bound (adv)", "one-shot mean viol"},
	}
	r := prng.New(seed)
	n := sz.scale(64)
	trials := sz.trials(200)

	type workload struct {
		family string
		build  func() (*apps.Sinkless, error)
	}
	var ws []workload
	for _, margin := range []float64{0.5, 0.9, 0.99, 1.0} {
		margin := margin
		ws = append(ws, workload{
			family: fmt.Sprintf("slack m=%.4g", margin),
			build:  func() (*apps.Sinkless, error) { return apps.NewSinklessWithMargin(graph.Cycle(n), margin) },
		})
	}
	for _, alpha := range []float64{0.35, 0.45, 0.49, 0.5} {
		alpha := alpha
		ws = append(ws, workload{
			family: fmt.Sprintf("biased a=%.4g", alpha),
			build:  func() (*apps.Sinkless, error) { return apps.NewSinklessBiasedCycle(n, alpha) },
		})
	}

	for _, w := range ws {
		s, err := w.build()
		if err != nil {
			return nil, err
		}
		_, margin := s.Instance.ExponentialCriterion()
		greedy, err := core.FixSequential(s.Instance, nil, sz.copts(core.StrategyMinScore))
		if err != nil {
			return nil, err
		}
		adv, err := core.FixSequential(s.Instance, nil, sz.copts(core.StrategyAdversarial))
		if err != nil {
			return nil, err
		}
		totalViolated := 0
		for i := 0; i < trials; i++ {
			a := model.NewAssignment(s.Instance)
			for vid := 0; vid < s.Instance.NumVars(); vid++ {
				a.Fix(vid, s.Instance.Var(vid).Dist.Sample(r))
			}
			violated, err := s.Instance.CountViolated(a)
			if err != nil {
				return nil, err
			}
			totalViolated += violated
		}
		t.AddRow(w.family, margin, greedy.Stats.FinalViolatedEvents, adv.Stats.FinalViolatedEvents,
			adv.Stats.PeakCertBound, float64(totalViolated)/float64(trials))
		if margin < 1-1e-9 && (greedy.Stats.FinalViolatedEvents != 0 || adv.Stats.FinalViolatedEvents != 0) {
			return t, fmt.Errorf("exp: T5 %s: violations strictly below the threshold (margin %v)", w.family, margin)
		}
	}
	return t, nil
}
