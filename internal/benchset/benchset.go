// Package benchset is the single source of truth for the repository's
// pinned benchmark evidence: the shared workload definitions (so the
// benchmarks in bench_test.go and the tooling in cmd/benchjson and
// cmd/benchgate all measure the same instances instead of re-deriving
// sizes independently), the JSON schema of the BENCH_*.json documents, and
// the regression rules the CI gate enforces against the committed
// trajectory.
package benchset

import (
	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/model"
)

// LargeN is the shared large-workload size: every n = 100k benchmark —
// engine rounds, LOCAL runtime, violated-event scan — runs at exactly this
// n, and the gate's rules refer to these workloads by name.
const LargeN = 100_000

// SinklessSlack is the slack of the shared n = 100k sinkless-orientation
// instance (a cycle at the paper's threshold witness).
const SinklessSlack = 0.2

// Sinkless100k builds the shared n = 100k benchmark instance: sinkless
// orientation on a cycle of LargeN nodes with SinklessSlack. Both
// BenchmarkLocalSinkless100k (its dependency graph) and
// BenchmarkViolatedScan100k (its event scan) measure this one instance.
func Sinkless100k() (*model.Instance, error) {
	s, err := apps.NewSinkless(graph.Cycle(LargeN), SinklessSlack)
	if err != nil {
		return nil, err
	}
	return s.Instance, nil
}

// Required lists the benchmark names (benchjson Name field, CPU suffix
// stripped) that `make bench-json` must produce for the gate to have its
// evidence. cmd/benchjson -require fails when any is missing from the
// stream, so a renamed or silently-skipped benchmark breaks the build
// instead of eroding the trajectory.
func Required() []string {
	return []string{
		"BenchmarkCacheHitPath/local",
		"BenchmarkCacheHitPath/peer",
		"BenchmarkEngineRounds/pool",
		"BenchmarkLocalSinkless100k",
		"BenchmarkObsDisabled",
		"BenchmarkRouterPlacement",
		"BenchmarkViolatedScan100k/generic",
		"BenchmarkViolatedScan100k/kernel",
	}
}

// Result is one parsed benchmark line of a BENCH_*.json document.
type Result struct {
	// Name is the benchmark name with the -CPUS suffix stripped
	// (e.g. "BenchmarkEngineRounds/pool").
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS the run used (the -N suffix; 1 if absent).
	CPUs int `json:"cpus"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line
	// (ns/op, B/op, allocs/op, rounds/sec, allocs/round, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is a BENCH_*.json document: the benchmark stream's header lines plus
// one Result per line, in stream order.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkgs       []string `json:"pkgs,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Find returns the results with the given name, in document order.
func (d *Doc) Find(name string) []Result {
	var out []Result
	for _, r := range d.Benchmarks {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}
