package router

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mt"
	"repro/internal/prng"
	"repro/internal/service"
)

// slowCheckpointRunner simulates a deterministic long solve: `total` steps
// of `step` each, checkpointing after every step. A resumed attempt picks
// up exactly at the checkpoint's counter with the checkpoint's rolling
// state, so the final AssignmentHash is a pure function of (seed, total) —
// bit-identical whether the run was interrupted anywhere or not, exactly
// like the real resamplers under the golden resume contract.
func slowCheckpointRunner(total int, step time.Duration) service.Runner {
	return func(ctx context.Context, js service.JobSpec, att service.Attempt, emit func(service.Event)) (*service.Summary, error) {
		i, h := 0, js.Seed
		if cp := att.Checkpoint; cp != nil {
			i, h = cp.Resamplings, cp.RNG[0]
		}
		for i < total {
			select {
			case <-time.After(step):
			case <-ctx.Done():
				return &service.Summary{Partial: true, Resamplings: i}, ctx.Err()
			}
			i++
			h = prng.Mix64(h ^ uint64(i))
			att.SaveCheckpoint(&fault.Checkpoint{
				Algorithm: mt.CheckpointSeq, Round: i, Resamplings: i, RNG: [4]uint64{h},
			})
			emit(service.Event{Kind: "round", Round: i})
		}
		return &service.Summary{Satisfied: true, Resamplings: total, AssignmentHash: h}, nil
	}
}

// expectedHash is what slowCheckpointRunner reports for an uninterrupted
// (or correctly resumed) run.
func expectedHash(seed uint64, total int) uint64 {
	h := seed
	for i := 1; i <= total; i++ {
		h = prng.Mix64(h ^ uint64(i))
	}
	return h
}

const migrateSpecFmt = `{"family":"sinkless","n":24,"algorithm":"mtseq","seed":%d,"checkpoint_every":1}`

// checkMigratedRun asserts the full migration contract on a finished
// router job: terminal done, final hash bit-identical to the uninterrupted
// run, one continuous trace, a synthetic "migrated" event carrying the
// checkpoint, node stamps switching at it, and strictly increasing rounds
// (no step re-executed after the resume point).
func checkMigratedRun(t *testing.T, ts *httptest.Server, id string, seed uint64, total int, fromNode string) {
	t.Helper()
	events := collectEvents(t, ts, id)
	view := routerView(t, ts, id)

	if view.State != service.StateDone {
		t.Fatalf("migrated job ended %q (%s), want done", view.State, view.Error)
	}
	if view.Migrated < 1 {
		t.Fatalf("view.Migrated = %d, want >= 1", view.Migrated)
	}
	if view.Result == nil || view.Result.AssignmentHash != expectedHash(seed, total) {
		t.Fatalf("migrated result = %+v, want assignment hash %#x (bit-identical to solo run)",
			view.Result, expectedHash(seed, total))
	}
	if view.Result.Resamplings != total {
		t.Errorf("resumed run reports %d total steps, want %d", view.Result.Resamplings, total)
	}

	migratedAt := -1
	lastRound := 0
	traces := map[string]bool{}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: stream lost continuity across migration", i, e.Seq)
		}
		if e.Trace != "" {
			traces[e.Trace] = true
		}
		switch e.Kind {
		case "migrated":
			migratedAt = i
			if !e.Resumed || e.Checkpoint == nil {
				t.Errorf("migrated event did not move a checkpoint: %+v", e)
			}
			if e.Node == fromNode {
				t.Errorf("job migrated back onto the dead node %q", fromNode)
			}
		case "round":
			if e.Round <= lastRound {
				t.Errorf("round %d relayed after round %d: step re-executed or stream reordered",
					e.Round, lastRound)
			}
			lastRound = e.Round
			if migratedAt >= 0 && e.Node == fromNode {
				t.Errorf("round %d still stamped with the dead node after migration", e.Round)
			}
		case "checkpoint":
			t.Errorf("internal checkpoint event leaked into the client stream: %+v", e)
		}
	}
	if migratedAt < 0 {
		t.Fatal("no migrated event in the stream")
	}
	if len(traces) != 1 {
		t.Fatalf("trace IDs across migration: %v, want exactly one", traces)
	}
	if view.TraceID == "" || !traces[view.TraceID] {
		t.Fatalf("view trace %q not the stream's trace %v", view.TraceID, traces)
	}
}

// TestRouterMigratesOnNodeCrash: SIGKILL semantics — the node holding a
// running job disappears mid-run (server closed, sockets severed). The
// router must move the job's latest checkpoint to a surviving node, where
// it resumes bit-identically under the same trace.
func TestRouterMigratesOnNodeCrash(t *testing.T) {
	const total, seed = 40, uint64(909)
	nodes, urls := startNodes(t, 3, func(cfg *service.Config) {
		cfg.Runner = slowCheckpointRunner(total, 20*time.Millisecond)
	})
	_, ts, reg := startRouter(t, urls)

	v, status := postRouterJob(t, ts, fmt.Sprintf(migrateSpecFmt, seed))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}

	// Let it make some progress, then kill its node abruptly.
	waitForProgress(t, ts, v.ID, 5)
	victim := nodes[v.Node]
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	checkMigratedRun(t, ts, v.ID, seed, total, v.Node)
	if got := reg.Counter("router_migrations_total").Value(); got < 1 {
		t.Errorf("router_migrations_total = %d, want >= 1", got)
	}
	if got := reg.Counter("router_jobs_lost_total").Value(); got != 0 {
		t.Errorf("router_jobs_lost_total = %d, want 0", got)
	}
}

// TestRouterMigratesOnDrain: SIGTERM semantics — the node holding a
// running job drains; the forced shutdown cancels the job mid-run. The
// router must treat that cancellation as a migration, not surface it.
func TestRouterMigratesOnDrain(t *testing.T) {
	const total, seed = 40, uint64(707)
	nodes, urls := startNodes(t, 3, func(cfg *service.Config) {
		cfg.Runner = slowCheckpointRunner(total, 20*time.Millisecond)
	})
	_, ts, _ := startRouter(t, urls)

	v, status := postRouterJob(t, ts, fmt.Sprintf(migrateSpecFmt, seed))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	waitForProgress(t, ts, v.ID, 5)

	// Drain the node with an already-tight deadline: running jobs are
	// hard-cancelled (keeping their checkpoints), like llld under SIGTERM
	// with a short grace period.
	victim := nodes[v.Node]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	victim.svc.Shutdown(ctx)
	cancel()

	checkMigratedRun(t, ts, v.ID, seed, total, v.Node)
}

// TestRouterCancelIsNotMigrated: a cancel that comes through the router is
// the client's own ask — the job must end cancelled, not resurrect on
// another node.
func TestRouterCancelIsNotMigrated(t *testing.T) {
	const total = 200
	_, urls := startNodes(t, 2, func(cfg *service.Config) {
		cfg.Runner = slowCheckpointRunner(total, 20*time.Millisecond)
	})
	_, ts, reg := startRouter(t, urls)

	v, status := postRouterJob(t, ts, fmt.Sprintf(migrateSpecFmt, 5))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	waitForProgress(t, ts, v.ID, 2)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	events := collectEvents(t, ts, v.ID)
	last := events[len(events)-1]
	if last.Kind != "end" || last.State != service.StateCancelled {
		t.Fatalf("terminal event = %+v, want end/cancelled", last)
	}
	for _, e := range events {
		if e.Kind == "migrated" {
			t.Fatal("router migrated a job the client cancelled")
		}
	}
	if got := reg.Counter("router_migrations_total").Value(); got != 0 {
		t.Errorf("router_migrations_total = %d, want 0", got)
	}
}

// waitForProgress blocks until the router has relayed at least n "round"
// events for the job — the job is genuinely mid-run on its node.
func waitForProgress(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		v := routerView(t, ts, id)
		if v.Events >= n+2 { // queued + start + n rounds
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s made no progress (%d events)", id, v.Events)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
