package cluster

import (
	"encoding/json"
	"strconv"
)

// The node-to-node peer protocol rides the existing llld HTTP surface:
//
//	GET /v1/peer/cache/{key}?claim=1&wait_ms=N   peer cache fill + claim
//	PUT /v1/peer/cache/{key}                     write-through store
//	GET /v1/jobs/{id}/checkpoint                 checkpoint export
//	POST /v1/peer/membership                     membership fan-out (epoch'd)
//	POST /v1/peer/handoff                        warm-cache handoff chunks
//	POST /cluster/members                        admin join/leave (node+router)
//
// Keys are the canonical result-cache keys, encoded as 16-digit
// lowercase hex so they round-trip through URLs without sign issues.
// The payload types below are shared by the service (server side) and
// any peer/router (client side); the summary and checkpoint payloads
// stay raw JSON here so this package needs no service types.

// PeerCacheResponse is the body of GET /v1/peer/cache/{key}.
type PeerCacheResponse struct {
	// Found reports a cache hit; Summary then carries the stored result,
	// bit-identical to what the owning node would serve locally.
	Found bool `json:"found"`
	// Leader reports that the caller was granted the cluster-wide
	// single-flight claim for the key: it should solve and write the result
	// back with PUT (which releases the claim). False with Found false
	// means another claimer is in flight and the wait timed out — the
	// caller may retry or solve locally (duplicate work, never incorrect).
	Leader bool `json:"leader,omitempty"`
	// Summary is the stored result when Found.
	Summary json.RawMessage `json:"summary,omitempty"`
}

// MemberChange is the body of the admin POST /cluster/members endpoint —
// the operator's (or a joining node's) request to alter the membership.
type MemberChange struct {
	// Action is "join" or "leave".
	Action string `json:"action"`
	// Name is the member to add/remove; URL is required for "join".
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
}

// MembershipUpdate is the body of POST /v1/peer/membership: the full
// epoch'd membership, fanned out by whichever process coordinated a
// change and adopted by every receiver holding an older epoch. Carrying
// the full set (not a delta) makes the update idempotent and
// order-insensitive — two concurrent updates resolve by Membership.Newer.
type MembershipUpdate struct {
	// From names the sender (diagnostics only).
	From       string     `json:"from,omitempty"`
	Membership Membership `json:"membership"`
}

// HandoffEntry is one cache entry in a warm-handoff chunk.
type HandoffEntry struct {
	// Key is the canonical cache key in FormatKey encoding.
	Key string `json:"key"`
	// Hits is the entry's hit count at the sender — the receiver seeds its
	// own hot-entry accounting from it.
	Hits int64 `json:"hits,omitempty"`
	// Summary is the stored result, bit-identical to a local solve.
	Summary json.RawMessage `json:"summary"`
}

// HandoffRequest is the body of POST /v1/peer/handoff: one chunk of a
// warm-cache handoff stream. Chunks are idempotent (entries are keyed
// puts), so a failed chunk is simply re-sent — that is the whole resume
// protocol. Seq counts chunks within one transfer for logs/metrics.
type HandoffRequest struct {
	// From names the sending node.
	From string `json:"from"`
	// Epoch is the membership epoch the sender computed the transfer
	// under; receivers accept any epoch (entries are valid regardless) but
	// expose it for diagnostics.
	Epoch int64 `json:"epoch"`
	// Seq is the 0-based chunk number within this transfer.
	Seq int `json:"seq"`
	// Done marks the final chunk of the transfer.
	Done bool `json:"done,omitempty"`
	// Entries are the cache entries in this chunk.
	Entries []HandoffEntry `json:"entries"`
}

// HandoffResponse is the body answering a handoff chunk.
type HandoffResponse struct {
	// Accepted counts entries stored from this chunk (duplicates count —
	// storing an already-present key is a harmless overwrite with the same
	// bits).
	Accepted int `json:"accepted"`
}

// FormatKey / ParseKey are the canonical key encoding of the peer URLs.
func FormatKey(key uint64) string {
	return strconv.FormatUint(key, 16)
}

// ParseKey parses a peer-URL key; ok is false on malformed input.
func ParseKey(s string) (uint64, bool) {
	key, err := strconv.ParseUint(s, 16, 64)
	return key, err == nil
}
