package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// flakyRunner fails with errOrPanic until attempt number succeedAt, then
// returns a satisfied summary. It records the Attempt values it saw.
type flakyRunner struct {
	succeedAt int
	panics    bool
	mu        chan struct{} // 1-token mutex usable in tests
	attempts  []Attempt
}

func newFlakyRunner(succeedAt int, panics bool) *flakyRunner {
	r := &flakyRunner{succeedAt: succeedAt, panics: panics, mu: make(chan struct{}, 1)}
	r.mu <- struct{}{}
	return r
}

func (r *flakyRunner) run(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
	<-r.mu
	r.attempts = append(r.attempts, att)
	r.mu <- struct{}{}
	emit(Event{Kind: "round", Round: att.Number})
	if att.Number < r.succeedAt || r.succeedAt == 0 {
		att.SaveCheckpoint(&fault.Checkpoint{Algorithm: "stub", Round: att.Number * 10})
		if r.panics {
			panic(boomPayload(att.Number))
		}
		return nil, errors.New("attempt doomed")
	}
	return &Summary{Algorithm: js.Algorithm, Satisfied: true}, nil
}

// boomPayload builds a recognizable panic payload per attempt (n < 10).
func boomPayload(n int) string { return "boom-" + string(rune('0'+n)) }

func retryConfig(reg *obs.Registry, runner Runner, maxRetries int) Config {
	return Config{
		QueueCap:          8,
		MaxInFlight:       1,
		Metrics:           reg,
		Runner:            runner,
		DefaultMaxRetries: maxRetries,
		RetryBackoff:      time.Millisecond,
		RetryBackoffMax:   4 * time.Millisecond,
	}
}

// TestRetryThenSucceed: an attempt that fails is retried after backoff and
// the job completes on the second attempt, with the full retry story in the
// event stream and the metrics.
func TestRetryThenSucceed(t *testing.T) {
	reg := obs.NewRegistry()
	r := newFlakyRunner(2, false)
	s := New(retryConfig(reg, r.run, 3))
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	events, _, _ := j.EventsSince(0)
	var retries, starts int
	var retryEv, endEv *Event
	for i := range events {
		switch events[i].Kind {
		case "retry":
			retries++
			retryEv = &events[i]
		case "start":
			starts++
		case "end":
			endEv = &events[i]
		}
	}
	if retries != 1 || starts != 2 {
		t.Fatalf("saw %d retry / %d start events, want 1 / 2", retries, starts)
	}
	if retryEv.Attempt != 1 || retryEv.Err == "" {
		t.Errorf("retry event = %+v, want attempt 1 with the failure message", retryEv)
	}
	if endEv == nil || endEv.Attempt != 2 || endEv.State != StateDone {
		t.Errorf("end event = %+v, want attempt 2 done", endEv)
	}
	if v := j.View(); v.Attempts != 2 {
		t.Errorf("view attempts = %d, want 2", v.Attempts)
	}
	if got := reg.Counter("service_retries_total").Value(); got != 1 {
		t.Errorf("retries counter = %d, want 1", got)
	}
	if got := reg.Counter("service_gaveup_total").Value(); got != 0 {
		t.Errorf("gaveup counter = %d, want 0", got)
	}
}

// TestRetryExhaustion: a job that fails every attempt consumes its whole
// retry budget, then lands in failed with the give-up accounted.
func TestRetryExhaustion(t *testing.T) {
	reg := obs.NewRegistry()
	r := newFlakyRunner(0, false) // never succeeds
	s := New(retryConfig(reg, r.run, 2))
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)

	<-r.mu
	n := len(r.attempts)
	r.mu <- struct{}{}
	if n != 3 {
		t.Errorf("runner executed %d attempts, want 3 (1 + 2 retries)", n)
	}
	if got := reg.Counter("service_retries_total").Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := reg.Counter("service_gaveup_total").Value(); got != 1 {
		t.Errorf("gaveup counter = %d, want 1", got)
	}
	if v := j.View(); v.Error == "" || v.Attempts != 3 {
		t.Errorf("view = %+v, want 3 attempts and an error", v)
	}
}

// TestCheckpointHandoff: a checkpoint saved by a failing attempt is handed
// back (as a decoupled clone) to the next attempt, and the latest
// checkpoint round is visible in the job view.
func TestCheckpointHandoff(t *testing.T) {
	r := newFlakyRunner(3, false)
	s := New(retryConfig(obs.NewRegistry(), r.run, 3))
	defer s.Shutdown(context.Background())

	j, _ := s.Submit(JobSpec{})
	waitState(t, j, StateDone)

	<-r.mu
	attempts := append([]Attempt(nil), r.attempts...)
	r.mu <- struct{}{}
	if len(attempts) != 3 {
		t.Fatalf("%d attempts, want 3", len(attempts))
	}
	if attempts[0].Checkpoint != nil {
		t.Error("first attempt received a checkpoint")
	}
	for i, wantRound := range []int{10, 20} {
		cp := attempts[i+1].Checkpoint
		if cp == nil || cp.Round != wantRound {
			t.Errorf("attempt %d checkpoint = %+v, want round %d", i+2, cp, wantRound)
		}
	}
	if v := j.View(); v.CheckpointRound != 20 {
		t.Errorf("view checkpoint round = %d, want 20", v.CheckpointRound)
	}
}

// TestPanicBecomesFailedJob: a panicking runner produces a failed job whose
// end event carries the panic stack; the scheduler survives, keeps
// accepting jobs, and no goroutines leak.
func TestPanicBecomesFailedJob(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	r := newFlakyRunner(0, true) // panics on every attempt
	s := New(retryConfig(reg, r.run, 1))

	j, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)

	events, _, _ := j.EventsSince(0)
	end := events[len(events)-1]
	if end.Kind != "end" || end.State != StateFailed {
		t.Fatalf("last event = %+v, want a failed end", end)
	}
	if !strings.Contains(end.Stack, "flakyRunner") {
		t.Errorf("end event stack does not point at the panic site:\n%s", end.Stack)
	}
	if !strings.Contains(end.Err, "boom-2") {
		t.Errorf("end event error %q does not carry the panic value of the final attempt", end.Err)
	}
	if got := reg.Counter("service_panics_total").Value(); got != 2 {
		t.Errorf("panics counter = %d, want 2 (one per attempt)", got)
	}

	// The scheduler must still be alive and serving.
	jb, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	waitState(t, jb, StateFailed) // same panicking runner, but it *ran*

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after panics: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelNotRetried: a cancelled job is never retried even with budget
// left — cancellation wins over the retry policy.
func TestCancelNotRetried(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(retryConfig(reg, r.run, 5))
	defer s.Shutdown(context.Background())

	j, _ := s.Submit(JobSpec{})
	waitStarted(t, r)
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
	time.Sleep(10 * time.Millisecond) // a wrong retry would need the timer to fire
	if got := reg.Counter("service_retries_total").Value(); got != 0 {
		t.Errorf("cancelled job was retried %d times", got)
	}
	if st := j.State(); st != StateCancelled {
		t.Errorf("state after cancel = %q", st)
	}
}

// TestShutdownSweepsRetryWait: a job waiting out its retry backoff is
// finalized by Shutdown instead of being left queued forever.
func TestShutdownSweepsRetryWait(t *testing.T) {
	r := newFlakyRunner(0, false)
	cfg := retryConfig(obs.NewRegistry(), r.run, 8)
	cfg.RetryBackoff = time.Hour // the retry would fire long after the test
	cfg.RetryBackoffMax = time.Hour
	s := New(cfg)

	j, _ := s.Submit(JobSpec{})
	waitState(t, j, StateQueued) // submitted → running → failed attempt → queued for retry
	for {
		if v := j.View(); v.Attempts >= 1 && j.State() == StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Errorf("retry-waiting job drained into %q, want %q", st, StateCancelled)
	}
}

// TestSpecRetryFieldsValidation: the retry/fault spec fields are validated
// at admission.
func TestSpecRetryFieldsValidation(t *testing.T) {
	s := New(Config{QueueCap: 2, MaxInFlight: 1, Runner: newStubRunner().run})
	defer s.Shutdown(context.Background())
	for _, js := range []JobSpec{
		{MaxRetries: -1},
		{MaxRetries: 17},
		{CheckpointEvery: -1},
		{FaultPanicRate: 1.0},
		{FaultDropRate: -0.5},
		{FaultCrashRate: 2},
	} {
		if _, err := s.Submit(js); err == nil {
			t.Errorf("spec %+v admitted, want validation error", js)
		}
	}
}

// TestRunSpecInjectedPanicRecovers: the real runner under a 100%-ish panic
// plan fails with a *fault.PanicError unwrapping ErrInjected — through the
// service path this becomes a failed job rather than a dead process.
func TestRunSpecInjectedPanicRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		QueueCap:    2,
		MaxInFlight: 1,
		Metrics:     reg,
		Fault:       fault.Plan{Seed: 1, PanicRate: 0.9},
	})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{Family: FamilySinkless, N: 256, Margin: 0.9, Algorithm: AlgDist, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	events, _, _ := j.EventsSince(0)
	end := events[len(events)-1]
	if end.Stack == "" {
		t.Error("injected panic left no stack in the end event")
	}
	if !strings.Contains(end.Err, "injected") {
		t.Errorf("end error %q does not name the injected fault", end.Err)
	}
	if got := reg.Counter("service_panics_total").Value(); got == 0 {
		t.Error("panics counter stayed 0")
	}
}

// TestRunSpecCheckpointResumeRealRunner: the real mtseq runner checkpoints
// through SaveCheckpoint and a second attempt resumes from it, reproducing
// the uninterrupted result.
func TestRunSpecCheckpointResumeRealRunner(t *testing.T) {
	spec := JobSpec{Family: FamilySinkless, N: 64, Algorithm: AlgMTSeq, Seed: 2, CheckpointEvery: 2}
	var sink atomic.Pointer[fault.Checkpoint]
	save := func(cp *fault.Checkpoint) { sink.Store(cp) }

	base, err := RunSpec(context.Background(), spec, Attempt{Number: 1, SaveCheckpoint: save}, func(Event) {}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp := sink.Load()
	if cp == nil {
		t.Skip("run finished before the first checkpoint")
	}
	resumed, err := RunSpec(context.Background(), spec, Attempt{Number: 2, Checkpoint: cp, SaveCheckpoint: save}, func(Event) {}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Satisfied != resumed.Satisfied || base.Resamplings != resumed.Resamplings {
		t.Errorf("resumed summary (sat=%v res=%d) differs from baseline (sat=%v res=%d)",
			resumed.Satisfied, resumed.Resamplings, base.Satisfied, base.Resamplings)
	}
}
