package kernel

import "repro/internal/model"

// The fixers drive their value choices through Inc(·,·) = Pr[E | θ, X=y] /
// Pr[E | θ], two conditional-probability queries per candidate value per
// dependent event. The generic path allocates two scope-sized slices per
// query and dispatches through the event's CondProb closure; the kernel
// answers the closed-form families (Conjunction, AllEqual) straight from
// the flat tables with the exact float operation order of the closures, so
// every probability — and therefore every choice a fixer makes — is
// bitwise identical. Events without a compiled closed form delegate to the
// instance's own engine.

// CondProb returns Pr[event e | the variables fixed in ma], bit-identical
// to model.Instance.CondProb.
func (c *Compiled) CondProb(e int, ma *model.Assignment) float64 {
	switch c.kind[e] {
	case kindConj:
		return c.conjCondProb(e, ma, -1, 0)
	case kindAllEqual:
		return c.allEqualCondProb(e, ma, -1, 0)
	default:
		return c.inst.CondProb(e, ma)
	}
}

// CondProbWith returns CondProb(e, ma) with variable varID additionally
// fixed to value (overriding ma), bit-identical to
// model.Instance.CondProbWith. ma is not modified.
func (c *Compiled) CondProbWith(e int, ma *model.Assignment, varID, value int) float64 {
	switch c.kind[e] {
	case kindConj:
		return c.conjCondProb(e, ma, varID, value)
	case kindAllEqual:
		return c.allEqualCondProb(e, ma, varID, value)
	default:
		return c.inst.CondProbWith(e, ma, varID, value)
	}
}

// Inc returns the probability increase factor of event e when variable
// varID is fixed to value, with the paper's 0/0 := 0 convention, matching
// model.Instance.Inc bitwise.
func (c *Compiled) Inc(e int, ma *model.Assignment, varID, value int) float64 {
	base := c.CondProb(e, ma)
	if base == 0 {
		return 0
	}
	return c.CondProbWith(e, ma, varID, value) / base
}

// slotValue resolves scope slot j against ma with the optional varID
// override (varID < 0 disables it), mirroring the fixed/vals construction
// of the generic CondProb/CondProbWith entry points: the override wins even
// over a fixed variable.
func (c *Compiled) slotValue(j int32, ma *model.Assignment, varID, value int) (int, bool) {
	vid := int(c.scopeVar[j])
	switch {
	case vid == varID:
		return value, true
	case ma.Fixed(vid):
		return ma.Value(vid), true
	default:
		return 0, false
	}
}

// conjCondProb is Conjunction.CondProb over the flat tables: iterate the
// scope in order; a fixed slot outside its bad set kills the product, an
// unfixed slot multiplies its precomputed set probability.
func (c *Compiled) conjCondProb(e int, ma *model.Assignment, varID, value int) float64 {
	p := 1.0
	for j := c.scopeOff[e]; j < c.scopeOff[e+1]; j++ {
		if v, fixed := c.slotValue(j, ma, varID, value); fixed {
			if c.conjMask[j]>>uint(v)&1 == 0 {
				return 0
			}
			continue
		}
		p *= c.conjSetP[j]
	}
	return p
}

// allEqualCondProb is AllEqual.CondProb over the flat tables: find the
// common fixed value (0 on conflict); with one, multiply the unfixed
// marginals; with none, sum the all-equal products over the value space.
func (c *Compiled) allEqualCondProb(e int, ma *model.Assignment, varID, value int) float64 {
	lo, hi := c.scopeOff[e], c.scopeOff[e+1]
	common, haveCommon := 0, false
	for j := lo; j < hi; j++ {
		v, fixed := c.slotValue(j, ma, varID, value)
		if !fixed {
			continue
		}
		if haveCommon && v != common {
			return 0
		}
		common, haveCommon = v, true
	}
	if haveCommon {
		p := 1.0
		for j := lo; j < hi; j++ {
			if _, fixed := c.slotValue(j, ma, varID, value); fixed {
				continue
			}
			off, size := c.distFor(c.scopeVar[j])
			if common >= int(size) {
				return 0 // the common value is outside this variable's range
			}
			p *= c.probs[off+int32(common)]
		}
		return p
	}
	total := 0.0
	for cv := int32(0); cv < c.evAux[e]; cv++ {
		p := 1.0
		for j := lo; j < hi; j++ {
			off, size := c.distFor(c.scopeVar[j])
			if cv >= size {
				p = 0
				break
			}
			p *= c.probs[off+cv]
		}
		total += p
	}
	return total
}
