# Development entry points for the LLL reproduction.

GO ?= go

.PHONY: build test test-race vet vet-cluster bench bench-json bench-gate harness cover fuzz fuzz-short clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Fast-fail gate over the cluster tier: vet plus a doubled race pass on the
# membership/ring/detector/router packages. The failure detector and the
# membership hot-reload are all timing and shared state — -count=2 reruns
# every test with a warmed scheduler so ordering flakes surface here, not
# in the full suite.
vet-cluster:
	$(GO) vet ./internal/cluster/...
	$(GO) test -race -count=2 ./internal/cluster/...

# Race-detector pass over the sharded execution engine and its consumers
# (the LOCAL runtime, distributed Moser-Tardos, the distributed fixers), the
# observability layer they report into (including the SLO burn-rate engine),
# the fault-injection/recovery layer, the packed batch runners, the
# multi-tenant fair scheduler, the job service on top, and the cluster tier
# (ring, membership, router).
test-race:
	$(GO) test -race ./internal/local/... ./internal/mt/... ./internal/core/... ./internal/engine/... ./internal/obs/... ./internal/slo/... ./internal/fault/... ./internal/batch/... ./internal/tenant/... ./internal/service/... ./internal/kernel/... ./internal/cluster/...

# One benchmark per paper figure/table plus solver micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark evidence: the n = 100k engine, LOCAL-runtime
# and violated-scan benchmarks at 1/2/4 workers (-cpu sets GOMAXPROCS, the
# pool follows), the obs hot-path micro-benches, and the serving-path
# benchmarks — repeated identical jobs cold vs warm cache, the 64-instance
# batch against one solo instance, and the packed runners — plus the
# cluster-tier latencies: the router's placement decision and the warm
# cache-hit path served locally vs through the peer fill — parsed into
# BENCH_pr8.json. The workload sizes and required benchmark names live in
# internal/benchset; -require fails the parse if any pinned benchmark went
# missing. `make bench-gate` diffs the result against the committed
# trajectory.
bench-json:
	$(GO) test -run=NONE -bench 'BenchmarkEngineRounds|BenchmarkLocalSinkless100k|BenchmarkViolatedScan100k' -benchmem -cpu 1,2,4 . > bench.out
	$(GO) test -run=NONE -bench 'BenchmarkObs' -benchmem ./internal/obs >> bench.out
	$(GO) test -run=NONE -bench 'BenchmarkServiceRepeatedJobs|BenchmarkServiceBatch64' -benchtime 30x ./internal/service >> bench.out
	$(GO) test -run=NONE -bench 'BenchmarkCacheHitPath' -benchmem -benchtime 50x ./internal/service >> bench.out
	$(GO) test -run=NONE -bench 'BenchmarkPackedBatch' -benchtime 10x ./internal/batch >> bench.out
	$(GO) test -run=NONE -bench 'BenchmarkRouterPlacement' -benchmem ./internal/cluster/router >> bench.out
	$(GO) run ./cmd/benchjson -require -out BENCH_pr8.json < bench.out
	rm -f bench.out

# The CI benchmark-regression gate: regenerated evidence must stay inside
# the tolerance bands of the committed trajectory (and the kernel scan must
# beat the generic scan by the pinned intra-run ratio).
bench-gate:
	$(GO) run ./cmd/benchgate -baseline BENCH_pr6.json -current BENCH_pr8.json

# Regenerate every experiment table (F1, F2, T1..T11).
harness:
	$(GO) run ./cmd/benchharness

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the geometry and the numeric solver.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecompose -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzSurfaceConvexity -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzFeasibleSoundness -fuzztime=10s ./internal/conjecture/

# The core-invariant fuzz targets at the 30s acceptance budget: property
# P* under every strategy and family, representable-triple membership
# against the closed-form surface, the bit-packed assignment's
# pack/unpack/flip round-trip against model.Assignment, and the tenant
# policy parser's invariants (normalization idempotence, default tenant
# materialization, limit validation). Nightly CI runs the same targets for
# 5 minutes each.
fuzz-short:
	$(GO) test -run=NONE -fuzz='^FuzzPStarInvariant$$' -fuzztime=30s ./internal/core/
	$(GO) test -run=NONE -fuzz='^FuzzRepresentableTriple$$' -fuzztime=30s ./internal/srep/
	$(GO) test -run=NONE -fuzz='^FuzzAssignmentPackRoundTrip$$' -fuzztime=30s ./internal/kernel/
	$(GO) test -run=NONE -fuzz='^FuzzTenantSpec$$' -fuzztime=30s ./internal/tenant/

clean:
	$(GO) clean -testcache
