package exp

import (
	"bytes"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

// The golden-table regression harness: every case renders an experiment
// table to CSV with the LOCAL engine at Workers=1 and compares it byte for
// byte against a checked-in golden under testdata/, then re-renders at
// Workers ∈ {2, 4, GOMAXPROCS} and demands the identical bytes. This is
// the executable form of the engine's determinism contract (index-addressed
// writes ⇒ worker-count independence) AND a regression pin on the
// experiment outputs themselves.
//
// Regenerate the goldens with:
//
//	go test ./internal/exp -run TestGoldenTables -update

var updateGolden = flag.Bool("update", false, "rewrite golden tables under testdata")

// goldenSizes keeps the golden workloads small enough for fast test runs
// while still covering every distributed code path (both colouring
// substrates, both fixers, cycles and irregular random-regular graphs).
var goldenSizes = Sizes{Scale: 0.5, Trials: 2}

type goldenCase struct {
	name string
	run  func(workers int) (*Table, error)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"T2", func(workers int) (*Table, error) {
			sz := goldenSizes
			sz.Workers = workers
			return T2DistributedRank2(1, sz)
		}},
		{"T4", func(workers int) (*Table, error) {
			sz := goldenSizes
			sz.Trials = 1
			sz.Workers = workers
			return T4DistributedRank3(1, sz)
		}},
		{"coloring", func(workers int) (*Table, error) {
			return coloringTable(1, workers)
		}},
	}
}

// coloringTable exercises the LOCAL coloring machines directly (vertex,
// edge and distance-2 colouring) and pins palette, rounds, messages and a
// digest of the full colour vector per workload.
func coloringTable(seed uint64, workers int) (*Table, error) {
	t := &Table{
		ID:     "COL",
		Title:  "LOCAL coloring machines - determinism pin",
		Note:   "colour digest is an FNV-1a hash of the full colour vector; identical digests mean identical colourings.",
		Header: []string{"graph", "algorithm", "n", "palette", "rounds", "sim factor", "messages", "colour digest"},
	}
	r := prng.New(seed)
	g4, err := graph.RandomRegular(24, 4, r)
	if err != nil {
		return nil, err
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-48", graph.Cycle(48)},
		{"torus-5x5", graph.Torus(5, 5)},
		{"4-regular-24", g4},
	}
	lopts := local.Options{IDSeed: seed, Workers: workers}
	for _, gr := range graphs {
		algos := []struct {
			name string
			run  func() (*coloring.Result, error)
		}{
			{"vertex", func() (*coloring.Result, error) {
				return coloring.DistributedVertexColoring(gr.g, lopts, gr.g.MaxDegree()+1)
			}},
			{"edge-native", func() (*coloring.Result, error) {
				return coloring.DistributedEdgeColoringNative(gr.g, lopts)
			}},
			{"distance2-native", func() (*coloring.Result, error) {
				return coloring.DistributedDistance2Native(gr.g, lopts)
			}},
		}
		for _, al := range algos {
			res, err := al.run()
			if err != nil {
				return nil, fmt.Errorf("exp: coloring golden %s/%s: %w", gr.name, al.name, err)
			}
			t.AddRow(gr.name, al.name, gr.g.N(), res.Palette, res.Rounds, res.SimFactor,
				res.Messages, colorDigest(res.Colors))
		}
	}
	return t, nil
}

// colorDigest hashes a colour vector into a short stable hex string.
func colorDigest(colors []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range colors {
		v := uint64(c)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func renderCSV(t *testing.T, tbl *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTables(t *testing.T) {
	workerSweep := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			tbl, err := gc.run(1)
			if err != nil {
				t.Fatal(err)
			}
			got := renderCSV(t, tbl)

			path := filepath.Join("testdata", gc.name+".golden.csv")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Workers=1 output deviates from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}

			// Determinism sweep: every worker count must reproduce the
			// Workers=1 bytes exactly.
			for _, workers := range workerSweep {
				tbl, err := gc.run(workers)
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				if out := renderCSV(t, tbl); !bytes.Equal(out, got) {
					t.Errorf("Workers=%d output differs from Workers=1:\ngot:\n%s\nwant:\n%s", workers, out, got)
				}
			}
		})
	}
}
