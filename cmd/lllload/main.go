// Command lllload is a closed-loop load generator for the llld daemon:
// each of -c workers repeatedly submits a job and follows its NDJSON event
// stream to the terminal state before submitting the next one. 429
// rejections count toward the reject rate and back off briefly. At the end
// it prints throughput, the end-to-end latency distribution (p50/p95/p99)
// and the per-outcome counts.
//
// Usage:
//
//	lllload -addr http://localhost:8080 -c 8 -duration 30s \
//	        -spec '{"family":"sinkless","n":1024,"degree":3,"algorithm":"dist"}'
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lllload:", err)
		os.Exit(1)
	}
}

// outcome is one completed submit attempt.
type outcome struct {
	latency time.Duration // submit → terminal event (successful jobs only)
	state   string        // terminal state, or "reject" / "error"
}

type collector struct {
	mu       sync.Mutex
	outcomes []outcome
}

func (c *collector) add(o outcome) {
	c.mu.Lock()
	c.outcomes = append(c.outcomes, o)
	c.mu.Unlock()
}

func run() error {
	addr := flag.String("addr", "http://localhost:8080", "llld base URL")
	concurrency := flag.Int("c", 4, "closed-loop workers (in-flight submissions)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	specJSON := flag.String("spec", `{"family":"sinkless","n":512,"degree":3,"algorithm":"dist"}`, "job spec submitted by every worker")
	seedStep := flag.Bool("vary-seed", true, "give every submission a distinct seed")
	flag.Parse()

	var spec map[string]any
	if err := json.Unmarshal([]byte(*specJSON), &spec); err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{}
	col := &collector{}
	var seq int64
	var seqMu sync.Mutex
	nextSeed := func() int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		seq++
		return seq
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				col.add(submitAndFollow(ctx, client, *addr, spec, *seedStep, nextSeed))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(col.outcomes, elapsed, *concurrency)
	return nil
}

// submitAndFollow runs one closed-loop iteration: POST the spec, then
// stream events until the terminal "end" line. The reported latency spans
// submit to terminal.
func submitAndFollow(ctx context.Context, client *http.Client, addr string, spec map[string]any, varySeed bool, nextSeed func() int64) outcome {
	if varySeed {
		s := make(map[string]any, len(spec)+1)
		for k, v := range spec {
			s[k] = v
		}
		s["seed"] = nextSeed()
		spec = s
	}
	body, _ := json.Marshal(spec)

	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return outcome{state: "error"}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return outcome{state: "error"}
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Closed loop: back off briefly so a saturated queue is retried,
		// not hammered.
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
		return outcome{state: "reject"}
	default:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return outcome{state: "error"}
	}
	var view struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil || view.ID == "" {
		return outcome{state: "error"}
	}

	// Follow the event stream to the end. The stream request deliberately
	// has no deadline: a job admitted before the load window closes is
	// followed to completion so its latency is measured.
	sreq, err := http.NewRequest(http.MethodGet, addr+"/v1/jobs/"+view.ID+"/events", nil)
	if err != nil {
		return outcome{state: "error"}
	}
	sresp, err := client.Do(sreq)
	if err != nil {
		return outcome{state: "error"}
	}
	defer sresp.Body.Close()
	state := "error"
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e struct {
			Kind  string `json:"kind"`
			State string `json:"state"`
		}
		if json.Unmarshal(sc.Bytes(), &e) == nil && e.Kind == "end" {
			state = e.State
		}
	}
	return outcome{latency: time.Since(begin), state: state}
}

func report(outcomes []outcome, elapsed time.Duration, concurrency int) {
	var latencies []time.Duration
	counts := map[string]int{}
	for _, o := range outcomes {
		counts[o.state]++
		if o.state == "done" {
			latencies = append(latencies, o.latency)
		}
	}
	total := len(outcomes)
	rejects := counts["reject"]
	attempts := total
	fmt.Printf("duration:    %v  (%d workers, closed loop)\n", elapsed.Round(time.Millisecond), concurrency)
	fmt.Printf("attempts:    %d  (%.1f/s)\n", attempts, float64(attempts)/elapsed.Seconds())
	fmt.Printf("completed:   %d  (%.1f/s)\n", len(latencies), float64(len(latencies))/elapsed.Seconds())
	if attempts > 0 {
		fmt.Printf("reject rate: %.2f%%  (%d of %d)\n", 100*float64(rejects)/float64(attempts), rejects, attempts)
	}
	var states []string
	for s := range counts {
		states = append(states, s)
	}
	sort.Strings(states)
	var parts []string
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%d", s, counts[s]))
	}
	fmt.Printf("outcomes:    %s\n", strings.Join(parts, " "))
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("latency:     p50=%v p95=%v p99=%v max=%v\n",
		percentile(latencies, 0.50).Round(time.Microsecond),
		percentile(latencies, 0.95).Round(time.Microsecond),
		percentile(latencies, 0.99).Round(time.Microsecond),
		latencies[len(latencies)-1].Round(time.Microsecond))
}

// percentile returns the nearest-rank percentile of the sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
