package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                       (cancel before dispatch)
//
// Terminal states never change again.
type State string

const (
	// StateQueued: accepted by admission control, waiting for a scheduler
	// slot.
	StateQueued State = "queued"
	// StateRunning: executing on the engine worker pool.
	StateRunning State = "running"
	// StateDone: completed without error (the result may still report an
	// unsatisfied instance — that is an experiment outcome, not a job
	// failure).
	StateDone State = "done"
	// StateFailed: the runner returned a non-cancellation error (bad
	// generator parameters, rank too high for the fixer, deadline
	// exceeded, ...).
	StateFailed State = "failed"
	// StateCancelled: cancelled while queued, cancelled while running, or
	// killed by a forced shutdown.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one record of a job's event stream, served as NDJSON (one JSON
// object per line) by GET /v1/jobs/{id}/events. Kinds: "queued" (admission),
// "start" (dispatch of one attempt), "round" (one synchronous round of the
// underlying runtime, carrying the deterministic engine.RoundStats fields),
// "retry" (a failed attempt re-admitted with backoff, carrying the failure
// and the delay), "end" (terminal transition, carrying the final state and
// error if any — plus the captured stack when the failure was a panic).
type Event struct {
	// Seq is the 0-based position in the job's stream (dense, strictly
	// increasing).
	Seq int `json:"seq"`
	// Kind is the event type: queued | start | round | retry | end.
	Kind string `json:"kind"`
	// TimeMS is milliseconds since the job was accepted.
	TimeMS int64 `json:"t_ms"`
	// Attempt is the 1-based attempt number: on "start" the attempt being
	// dispatched, on "retry" the attempt that just failed, on "end" the
	// attempt that produced the terminal state.
	Attempt int `json:"attempt,omitempty"`
	// BackoffMS is the delay before the next attempt ("retry" events).
	BackoffMS int64 `json:"backoff_ms,omitempty"`
	// Round / Steps / Messages / Active / Halted mirror engine.RoundStats
	// for "round" events; Dropped / Crashed carry the round's injected
	// faults (zero without injection).
	Round    int `json:"round,omitempty"`
	Steps    int `json:"steps,omitempty"`
	Messages int `json:"messages,omitempty"`
	Active   int `json:"active,omitempty"`
	Halted   int `json:"halted,omitempty"`
	Dropped  int `json:"dropped,omitempty"`
	Crashed  int `json:"crashed,omitempty"`
	// Instance is the 1-based batch instance id of an "instance_end"
	// event; the NDJSON stream of a batch job is multiplexed over it
	// (0 = a job-level event).
	Instance int `json:"instance,omitempty"`
	// CacheHit marks a "cache_hit" or "instance_end" event served from the
	// canonical result cache instead of a fresh solve.
	CacheHit bool `json:"cache_hit,omitempty"`
	// State is the job's state after an "end" event.
	State State `json:"state,omitempty"`
	// Err carries the failure or cancellation cause of an "end" or "retry"
	// event.
	Err string `json:"err,omitempty"`
	// Stack is the panicking goroutine's stack when the failure of an "end"
	// event was a recovered panic.
	Stack string `json:"stack,omitempty"`
	// Node is the cluster node that produced the event, stamped by the
	// router on federated streams (empty on a node's own stream).
	Node string `json:"node,omitempty"`
	// Peer marks a "cache_hit" served through the peer cache-fill protocol
	// (the entry came from the key's home node, not the local cache).
	Peer bool `json:"peer,omitempty"`
	// Resumed marks the "queued" event of a job seeded with a migrated
	// checkpoint (JobSpec.Resume); Round then echoes the checkpoint's
	// progress counter.
	Resumed bool `json:"resumed,omitempty"`
	// Checkpoint carries the full serialized snapshot on "checkpoint"
	// events (jobs with export_checkpoints only) and on the router's
	// synthetic "migrated" events (the snapshot the job moved with).
	Checkpoint *fault.Checkpoint `json:"checkpoint,omitempty"`
	// Trace is the job's trace ID, stamped on "queued" and "end" events; its
	// spans (queue_wait, attempt, build_instance, run, rounds) are on the
	// daemon's JSONL trace stream under the same ID.
	Trace string `json:"trace,omitempty"`
	// QueueMS / RunMS summarize the job's latency split on "end" events:
	// admission-to-dispatch wait and last-attempt run time.
	QueueMS int64 `json:"queue_ms,omitempty"`
	RunMS   int64 `json:"run_ms,omitempty"`
	// Flight is the flight-recorder dump — the job's last recorded moments
	// (rounds, faults, retries, checkpoints) — included in the "end" event
	// of a failed or cancelled job so post-mortems need no debugger.
	// FlightTotal counts all entries ever recorded; when it exceeds
	// len(Flight) the older ones were overwritten by the bounded ring.
	Flight      []obs.FlightEntry `json:"flight,omitempty"`
	FlightTotal int64             `json:"flight_total,omitempty"`
}

// Summary is the result of a completed (or partially completed) job run.
// Fields that do not apply to the chosen algorithm stay zero and are
// omitted from the JSON.
type Summary struct {
	// Algorithm / Family echo the spec after defaulting.
	Algorithm string `json:"algorithm"`
	Family    string `json:"family"`
	// NumEvents / NumVars describe the built instance.
	NumEvents int `json:"num_events"`
	NumVars   int `json:"num_vars"`
	// Satisfied reports whether the final assignment avoids all bad
	// events; ViolatedEvents is the violated count (-1 when unknown, e.g.
	// a cancelled distributed run that produced no assignment).
	Satisfied      bool `json:"satisfied"`
	ViolatedEvents int  `json:"violated_events"`
	// Rounds is the LOCAL/parallel round count; ColoringRounds,
	// FixingRounds and Classes detail the distributed fixers.
	Rounds         int `json:"rounds,omitempty"`
	ColoringRounds int `json:"coloring_rounds,omitempty"`
	FixingRounds   int `json:"fixing_rounds,omitempty"`
	Classes        int `json:"classes,omitempty"`
	Messages       int `json:"messages,omitempty"`
	Resamplings    int `json:"resamplings,omitempty"`
	Iterations     int `json:"iterations,omitempty"`
	VarsFixed      int `json:"vars_fixed,omitempty"`
	Steps          int `json:"steps,omitempty"`
	// AssignmentHash is a 64-bit fold of the complete final assignment
	// (0 when the run stopped before completing one). Because runs are
	// deterministic and checkpoint resume is bit-identical, a migrated
	// job's hash must equal the uninterrupted solo run's — the cluster
	// smoke and the cross-process resume test assert exactly this.
	AssignmentHash uint64 `json:"assignment_hash,omitempty"`
	// Partial marks a summary assembled from a cancelled or failed run:
	// the counters cover only the work completed before the stop.
	Partial bool `json:"partial,omitempty"`
	// CacheHit marks a summary served from the canonical result cache; the
	// payload is bit-identical to the cold solve that populated the entry.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Instances carries the per-instance results of a batch job, in batch
	// order; the aggregate fields above sum (or, for Rounds, max) over
	// them.
	Instances []InstanceSummary `json:"instances,omitempty"`
}

// InstanceSummary is the result of one instance of a batch job.
type InstanceSummary struct {
	// Index is the 1-based position in the batch (matches Event.Instance).
	Index int `json:"index"`
	// Algorithm / Seed echo the instance's normalized sub-spec.
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Satisfied / ViolatedEvents / Rounds / Resamplings / VarsFixed mirror
	// the corresponding Summary fields for this instance alone.
	Satisfied      bool `json:"satisfied"`
	ViolatedEvents int  `json:"violated_events"`
	Rounds         int  `json:"rounds,omitempty"`
	Resamplings    int  `json:"resamplings,omitempty"`
	VarsFixed      int  `json:"vars_fixed,omitempty"`
	// CacheHit marks an instance served from the canonical result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Err is the instance's own failure; other instances are unaffected.
	Err string `json:"err,omitempty"`
}

// Job is one unit of work tracked by the Service. All fields except ID and
// Spec are guarded by mu; read them through the accessor methods.
type Job struct {
	// ID is the service-assigned job identifier.
	ID string
	// TraceID is the request trace minted at admission; every span and
	// runtime event executed for this job carries it on the JSONL trace
	// stream, and the NDJSON "queued"/"end" events echo it.
	TraceID string
	// Spec is the normalized job specification.
	Spec JobSpec

	created time.Time
	// tenant is the resolved tenant the job is accounted to. Written once
	// by Submit before the job becomes visible (so no lock), read by the
	// scheduler, cancel and shutdown paths for limiter release and
	// per-tenant accounting.
	tenant string
	// flight is the job's bounded flight recorder (see obs.Flight): event
	// appends and checkpoint saves mirror into it, and finish dumps it into
	// the end event of a failed or cancelled job.
	flight *obs.Flight

	mu              sync.Mutex
	state           State
	started         time.Time
	finished        time.Time
	cancelRequested bool
	cancel          context.CancelFunc // set while running
	events          []Event
	more            chan struct{} // closed and replaced on every append
	summary         *Summary
	errMsg          string
	// attempt counts the attempts started (1 after the first begin);
	// maxRetries is the resolved retry budget (spec value or service
	// default); checkpoint is the latest snapshot saved by any attempt,
	// handed to the next attempt's runner.
	attempt    int
	maxRetries int
	checkpoint *fault.Checkpoint
}

// flightRing is the per-job flight-recorder depth: the last flightRing
// events (rounds, faults, retries, checkpoints) survive into a failed
// job's end-event dump. Memory per job is bounded by construction.
const flightRing = 64

// newJob creates a queued job and records its "queued" event (safe: the
// job is not yet visible to any other goroutine). A spec-carried trace ID
// (migration) overrides the minted one, and a spec-carried Resume
// checkpoint seeds the job record so the first attempt continues where
// the exporting process stopped.
func newJob(id string, spec JobSpec, now time.Time, maxRetries int) *Job {
	trace := spec.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	j := &Job{
		ID: id, TraceID: trace, Spec: spec, created: now,
		state: StateQueued, more: make(chan struct{}), maxRetries: maxRetries,
		flight: obs.NewFlight(flightRing),
	}
	queued := Event{Seq: 0, Kind: "queued", Trace: j.TraceID}
	if spec.Resume != nil {
		j.checkpoint = spec.Resume.Clone()
		queued.Resumed = true
		queued.Round = j.checkpoint.Round
	}
	j.events = append(j.events, queued)
	return j
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Emit appends one event to the job's stream, stamping Seq and TimeMS, and
// wakes all waiting subscribers. It is the sink handed to the Runner.
func (j *Job) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(e)
}

func (j *Job) emitLocked(e Event) {
	e.Seq = len(j.events)
	e.TimeMS = time.Since(j.created).Milliseconds()
	j.events = append(j.events, e)
	close(j.more)
	j.more = make(chan struct{})
	// Mirror the event into the flight recorder — except the "end" event,
	// which is where the dump itself rides.
	if e.Kind != "end" {
		detail := e.Err
		if e.Kind == "retry" {
			detail = fmt.Sprintf("%s (backoff %dms)", e.Err, e.BackoffMS)
		}
		j.flight.Record(obs.FlightEntry{
			Kind: e.Kind, Attempt: e.Attempt, Round: e.Round, Steps: e.Steps,
			Active: e.Active, Dropped: e.Dropped, Crashed: e.Crashed,
			Instance: e.Instance, Detail: detail,
		})
	}
}

// EventsSince returns a copy of the events from position from on, together
// with the job's current state and a channel that is closed on the next
// append. The channel is captured atomically with the snapshot, so a
// subscriber that drains the returned events and then waits on the channel
// never misses a wake-up.
func (j *Job) EventsSince(from int) (events []Event, more <-chan struct{}, state State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		events = append(events, j.events[from:]...)
	}
	return events, j.more, j.state
}

// begin transitions queued → running for the next attempt and returns the
// run context plus the attempt number and the checkpoint to resume from
// (nil on the first attempt or when no checkpoint was saved). It returns
// ok=false (and does nothing) when the job is no longer queued — i.e. it
// was cancelled while waiting — which is how the scheduler skips tombstones
// in the queue. The per-job timeout restarts on every attempt: it bounds
// one attempt's wall clock, not the job's lifetime.
func (j *Job) begin(parent context.Context) (ctx context.Context, attempt int, cp *fault.Checkpoint, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, 0, nil, false
	}
	if ms := j.Spec.TimeoutMS; ms > 0 {
		ctx, j.cancel = context.WithTimeout(parent, time.Duration(ms)*time.Millisecond)
	} else {
		ctx, j.cancel = context.WithCancel(parent)
	}
	// Every layer below — the runner, the batch packer, local.Run, the
	// resamplers — reads the trace from this context and tags its events.
	ctx = obs.WithTrace(ctx, obs.TraceContext{Trace: j.TraceID, Job: j.ID})
	j.state = StateRunning
	j.started = time.Now()
	j.attempt++
	j.emitLocked(Event{Kind: "start", Attempt: j.attempt})
	return ctx, j.attempt, j.checkpoint, true
}

// setCheckpoint stores the latest snapshot; the next attempt resumes from
// it. The checkpoint is cloned so the stored state cannot alias buffers the
// runtime keeps mutating.
func (j *Job) setCheckpoint(cp *fault.Checkpoint) {
	if cp == nil {
		return
	}
	cp = cp.Clone()
	j.mu.Lock()
	j.checkpoint = cp
	j.mu.Unlock()
	j.flight.Record(obs.FlightEntry{
		Kind: "checkpoint", Round: cp.Round,
		Detail: fmt.Sprintf("resamplings=%d", cp.Resamplings),
	})
}

// Checkpoint returns a clone of the job's latest saved checkpoint (nil
// when none was taken). It is the pull side of the migration protocol:
// GET /v1/jobs/{id}/checkpoint serves it so a router — or an operator —
// can move an interrupted job to another process.
func (j *Job) Checkpoint() *fault.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint.Clone()
}

// retryInfo reports the attempts started so far, the retries left in the
// budget and whether cancellation was requested.
func (j *Job) retryInfo() (attempt, remaining int, cancelled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt, j.maxRetries - (j.attempt - 1), j.cancelRequested
}

// retry transitions running → queued for the next attempt, recording the
// failed attempt and the backoff as a "retry" event. It returns false when
// the job is no longer running (cancelled concurrently), in which case the
// caller finalizes instead.
func (j *Job) retry(err error, backoff time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.cancelRequested {
		return false
	}
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.state = StateQueued
	j.emitLocked(Event{Kind: "retry", Attempt: j.attempt, BackoffMS: backoff.Milliseconds(), Err: err.Error()})
	return true
}

// failQueued finalizes a queued job as failed without running it (retry
// re-admission hit a full queue). Reports whether the transition happened.
func (j *Job) failQueued(msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateFailed
	j.errMsg = msg
	j.finished = time.Now()
	j.emitLocked(j.endEventLocked(Event{Kind: "end", State: j.state, Attempt: j.attempt, Err: j.errMsg}))
	return true
}

// endEventLocked decorates an "end" event with the trace ID, the latency
// split and — for failed/cancelled jobs — the flight-recorder dump.
// Callers hold j.mu.
func (j *Job) endEventLocked(e Event) Event {
	e.Trace = j.TraceID
	if !j.started.IsZero() {
		e.QueueMS = j.started.Sub(j.created).Milliseconds()
		if !j.finished.IsZero() {
			e.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	} else if !j.finished.IsZero() {
		e.QueueMS = j.finished.Sub(j.created).Milliseconds()
	}
	if j.state != StateDone {
		e.Flight = j.flight.Dump()
		e.FlightTotal = j.flight.Total()
	}
	return e
}

// finish records the runner's outcome and transitions to the terminal
// state: cancelled when the run was stopped through its context, failed on
// any other error (including a per-job deadline or a recovered panic), done
// otherwise. The partial summary of a stopped run is kept and marked
// Partial; a panic failure's end event carries the panicking goroutine's
// stack.
func (j *Job) finish(sum *Summary, err error) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	var stack string
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
		var pe *fault.PanicError
		if errors.As(err, &pe) {
			stack = string(pe.Stack)
		}
	}
	if err != nil {
		j.errMsg = err.Error()
		if sum != nil {
			sum.Partial = true
		}
	}
	j.summary = sum
	j.finished = time.Now()
	j.emitLocked(j.endEventLocked(Event{Kind: "end", State: j.state, Attempt: j.attempt, Err: j.errMsg, Stack: stack}))
	return j.state
}

// requestCancel implements DELETE /v1/jobs/{id}: a queued job is finalized
// immediately (the scheduler will skip it), a running job has its context
// cancelled (the runner observes it within one round), a terminal job is
// left untouched. It reports which transition happened.
func (j *Job) requestCancel() (wasQueued, wasRunning bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.state = StateCancelled
		j.finished = time.Now()
		j.errMsg = "cancelled while queued"
		j.emitLocked(j.endEventLocked(Event{Kind: "end", State: j.state, Err: j.errMsg}))
		return true, false
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return false, true
	default:
		return false, false
	}
}

// queueTime returns how long the job waited in the queue; runTime how long
// it ran (so far, for a running job).
func (j *Job) queueTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.started.IsZero():
		return j.started.Sub(j.created)
	case j.state.Terminal(): // cancelled while queued
		return j.finished.Sub(j.created)
	default:
		return time.Since(j.created)
	}
}

func (j *Job) runTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.started.IsZero():
		return 0
	case j.finished.IsZero():
		return time.Since(j.started)
	default:
		return j.finished.Sub(j.started)
	}
}

// View is the JSON representation of a job served by the HTTP API.
type View struct {
	ID string `json:"id"`
	// TraceID is the job's request trace; grep it in the daemon's JSONL
	// trace file (llld -trace) to reconstruct the job's full span tree.
	TraceID string  `json:"trace_id"`
	State   State   `json:"state"`
	Spec    JobSpec `json:"spec"`
	Created string  `json:"created"`
	// QueueMS / RunMS are the queue wait and run duration in milliseconds
	// (live values for a non-terminal job).
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms,omitempty"`
	// Events is the current length of the event stream.
	Events int      `json:"events"`
	Error  string   `json:"error,omitempty"`
	Result *Summary `json:"result,omitempty"`
	// Attempts is the number of attempts started; CheckpointRound the
	// progress counter of the latest saved checkpoint (0 when none).
	Attempts        int `json:"attempts,omitempty"`
	CheckpointRound int `json:"checkpoint_round,omitempty"`
	// Node is the cluster node currently holding the job, stamped by the
	// router (empty on a node's own view). Migrated counts the times the
	// router moved the job to a surviving node.
	Node     string `json:"node,omitempty"`
	Migrated int    `json:"migrated,omitempty"`
}

// View snapshots the job for the HTTP API.
func (j *Job) View() View {
	queueMS := j.queueTime().Milliseconds()
	runMS := j.runTime().Milliseconds()
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:       j.ID,
		TraceID:  j.TraceID,
		State:    j.state,
		Spec:     j.Spec,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		QueueMS:  queueMS,
		RunMS:    runMS,
		Events:   len(j.events),
		Error:    j.errMsg,
		Attempts: j.attempt,
	}
	if j.checkpoint != nil {
		v.CheckpointRound = j.checkpoint.Round
	}
	if j.summary != nil {
		s := *j.summary
		v.Result = &s
	}
	return v
}
