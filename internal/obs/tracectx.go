package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// TraceContext identifies one causal chain through the serving stack: a
// trace ID minted at admission and a span ID naming the current phase. It
// travels through context.Context (WithTrace / TraceFrom), so every layer
// that already receives a context — the scheduler, the retry loop, the
// batch packer, the LOCAL runtime, the resamplers — can tag its trace
// events without new plumbing. The zero TraceContext means "untraced" and
// every consumer treats it as absent.
//
// IDs are opaque hex strings. They are generated from a process-local
// sequence mixed with a per-process random base, so they are unique within
// a daemon's lifetime and collide across daemons only with hash
// probability; they carry no information and never influence results — the
// golden-table determinism contract is indifferent to them.
type TraceContext struct {
	// Trace is the 16-hex-digit trace ID shared by every span of one job.
	Trace string
	// Span is the 16-hex-digit ID of the current span; child spans record
	// it as their parent.
	Span string
	// Job is the service job ID the trace belongs to ("" outside the job
	// service).
	Job string
}

// Valid reports whether the context carries a trace.
func (tc TraceContext) Valid() bool { return tc.Trace != "" }

// Child returns a copy of tc with a fresh span ID, for entering a subphase.
func (tc TraceContext) Child() TraceContext {
	if !tc.Valid() {
		return tc
	}
	tc.Span = NewSpanID()
	return tc
}

// traceKey is the context key under which a TraceContext is stored.
type traceKey struct{}

// WithTrace returns a context carrying tc. An invalid tc returns ctx
// unchanged.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFrom extracts the TraceContext carried by ctx, or the zero
// TraceContext when ctx is nil or untraced.
func TraceFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceKey{}).(TraceContext)
	return tc
}

// idState is the process-local ID sequence. The base folds in the process
// start time so two daemons minting the same sequence numbers still
// produce distinct IDs.
var idState struct {
	base uint64
	seq  atomic.Uint64
}

func init() {
	idState.base = mix64(uint64(time.Now().UnixNano()))
}

// NewTraceID mints a fresh trace ID.
func NewTraceID() string { return nextID() }

// NewSpanID mints a fresh span ID.
func NewSpanID() string { return nextID() }

func nextID() string {
	v := mix64(idState.base ^ idState.seq.Add(1))
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StartSpan opens a traced span on the recorder: the span inherits the
// trace and job of ctx's TraceContext, records ctx's current span as its
// parent, and End emits one "span" event carrying all three. On a nil
// recorder or an untraced ctx it degrades to the plain Span behavior (a
// nil-recorder span is the disabled zero Span). The returned context
// carries the new span's TraceContext, so nested StartSpan calls build a
// parent chain.
func (r *Recorder) StartSpan(ctx context.Context, phase string) (Span, context.Context) {
	if r == nil {
		return Span{}, ctx
	}
	tc := TraceFrom(ctx)
	sp := Span{rec: r, phase: phase, start: time.Now(), trace: tc.Trace, parent: tc.Span, job: tc.Job}
	if tc.Valid() {
		child := tc.Child()
		sp.span = child.Span
		ctx = WithTrace(ctx, child)
	}
	return sp, ctx
}
