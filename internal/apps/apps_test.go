package apps

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

func TestSinklessThresholdInstance(t *testing.T) {
	s, err := NewSinkless(graph.Cycle(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := s.Instance
	p, d, r := inst.Params()
	if math.Abs(p-0.25) > 1e-12 || d != 2 || r != 2 {
		t.Fatalf("params = (%v, %d, %d), want (0.25, 2, 2)", p, d, r)
	}
	ok, margin := inst.ExponentialCriterion()
	if ok || math.Abs(margin-1) > 1e-12 {
		t.Fatalf("threshold instance: ok=%v margin=%v, want false/1", ok, margin)
	}
}

func TestSinklessRelaxedInstance(t *testing.T) {
	s, err := NewSinkless(graph.Cycle(6), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ok, margin := s.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("relaxed instance should satisfy criterion, margin = %v", margin)
	}
	// margin = (1-δ)^d = 0.8^2.
	if math.Abs(margin-0.64) > 1e-9 {
		t.Fatalf("margin = %v, want 0.64", margin)
	}
}

func TestSinklessWithMargin(t *testing.T) {
	for _, m := range []float64{0.5, 0.9, 0.99, 1.0} {
		s, err := NewSinklessWithMargin(graph.Cycle(8), m)
		if err != nil {
			t.Fatal(err)
		}
		_, got := s.Instance.ExponentialCriterion()
		if math.Abs(got-m) > 1e-9 {
			t.Fatalf("requested margin %v, got %v", m, got)
		}
	}
	if _, err := NewSinklessWithMargin(graph.Path(4), 0.5); err == nil {
		t.Fatal("irregular graph should be rejected")
	}
	if _, err := NewSinklessWithMargin(graph.Cycle(4), 1.5); err == nil {
		t.Fatal("margin > 1 should be rejected")
	}
}

func TestSinklessRejectsIsolatedNode(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSinkless(b.Build(), 0); err == nil {
		t.Fatal("degree-0 node should be rejected")
	}
}

func TestSinklessOrientationAndSinks(t *testing.T) {
	g := graph.Cycle(4)
	s, err := NewSinkless(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(s.Instance)
	// Orient every edge towards its higher endpoint: cyclic orientation,
	// except edge {3,0} whose V endpoint... Edge {0,3} normalized has U=0.
	// Point every edge at V: edges {0,1}->1, {1,2}->2, {2,3}->3, {0,3}->3.
	for id := 0; id < g.M(); id++ {
		a.Fix(s.EdgeVar[id], ToV)
	}
	sinks := s.Sinks(a)
	if len(sinks) != 1 || sinks[0] != 3 {
		t.Fatalf("sinks = %v, want [3]", sinks)
	}
	violated, err := s.Instance.CountViolated(a)
	if err != nil || violated != 1 {
		t.Fatalf("CountViolated = %d, %v; want 1", violated, err)
	}
	if got := s.OrientationOf(0, a); got != g.Edge(0).V {
		t.Fatalf("OrientationOf(0) = %d", got)
	}
}

func TestSinklessFreeOrientation(t *testing.T) {
	g := graph.Cycle(3)
	s, err := NewSinkless(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(s.Instance)
	for id := 0; id < g.M(); id++ {
		a.Fix(s.EdgeVar[id], Free)
	}
	if got := s.OrientationOf(0, a); got != -1 {
		t.Fatalf("free edge orientation = %d, want -1", got)
	}
	if sinks := s.Sinks(a); len(sinks) != 0 {
		t.Fatalf("free orientation has sinks %v", sinks)
	}
}

func TestHyperSinklessParams(t *testing.T) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularRank3(30, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, d, rank := s.Instance.Params()
	if rank != 3 {
		t.Fatalf("rank = %d, want 3", rank)
	}
	// p = ((1-0.4)/3)^3 = 0.2^3.
	if math.Abs(p-0.008) > 1e-12 {
		t.Fatalf("p = %v, want 0.008", p)
	}
	if d > 6 {
		t.Fatalf("d = %d > 2*deg = 6", d)
	}
	ok, margin := s.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("criterion should hold, margin = %v", margin)
	}
}

func TestHyperSinklessSinks(t *testing.T) {
	b := hypergraph.NewBuilder(5)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(3, 4, 0); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	s, err := NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(s.Instance)
	// Point every hyperedge at node 0 when it contains 0, else at its first
	// member.
	for id := 0; id < h.M(); id++ {
		target := 0
		if !h.Contains(id, 0) {
			target = h.Edge(id)[0]
		}
		a.Fix(s.EdgeVar[id], memberIndex(h.Edge(id), target))
	}
	sinks := s.Sinks(a)
	if len(sinks) == 0 || sinks[0] != 0 {
		t.Fatalf("sinks = %v, want node 0 among them", sinks)
	}
	if got := s.HeadOf(0, a); got != 0 {
		t.Fatalf("HeadOf(0) = %d", got)
	}
}

func TestHyperSinklessValidation(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil { // rank-2 edge
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHyperSinkless(b.Build(), 0.4); err == nil {
		t.Fatal("non-3-uniform hypergraph should be rejected")
	}
	r := prng.New(2)
	h, err := hypergraph.RandomRegularRank3(9, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHyperSinkless(h, 0); err == nil {
		t.Fatal("slack 0 should be rejected")
	}
}

func TestThreeOrientationsProbability(t *testing.T) {
	r := prng.New(3)
	h, err := hypergraph.RandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	to, err := NewThreeOrientations(h)
	if err != nil {
		t.Fatal(err)
	}
	// Every node has degree 2: p = 3q^2 - 2q^3 with q = 1/9.
	q := 1.0 / 9
	want := 3*q*q - 2*q*q*q
	p := to.Instance.P()
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
	ok, margin := to.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("criterion should hold for deg 2, margin = %v", margin)
	}
	if to.Instance.Rank() != 3 {
		t.Fatalf("rank = %d", to.Instance.Rank())
	}
}

func TestThreeOrientationsClosedFormMatchesEnumeration(t *testing.T) {
	// Rebuild the same events without the closed form and compare
	// conditional probabilities on random partial assignments.
	b := hypergraph.NewBuilder(4)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	to, err := NewThreeOrientations(h)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the closed forms by rebuilding the instance with Bad only.
	stripped := model.NewBuilder()
	for v := 0; v < to.Instance.NumVars(); v++ {
		stripped.AddVariable(to.Instance.Var(v).Dist, "")
	}
	for e := 0; e < to.Instance.NumEvents(); e++ {
		ev := to.Instance.Event(e)
		stripped.AddEvent(ev.Scope, ev.Bad, nil, "")
	}
	enumInst := stripped.MustBuild()

	r := prng.New(7)
	for trial := 0; trial < 30; trial++ {
		a1 := model.NewAssignment(to.Instance)
		a2 := model.NewAssignment(enumInst)
		for v := 0; v < to.Instance.NumVars(); v++ {
			if r.Bool() {
				val := r.Intn(27)
				a1.Fix(v, val)
				a2.Fix(v, val)
			}
		}
		for e := 0; e < to.Instance.NumEvents(); e++ {
			got := to.Instance.CondProb(e, a1)
			want := enumInst.CondProb(e, a2)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d event %d: closed form %v != enumeration %v", trial, e, got, want)
			}
		}
	}
}

func TestThreeOrientationsSinkCount(t *testing.T) {
	b := hypergraph.NewBuilder(5)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 4, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 4, 0); err != nil {
		t.Fatal(err)
	}
	to, err := NewThreeOrientations(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(to.Instance)
	// Encode all three heads towards node 0's member index in edges
	// containing 0 (edges 0, 1, 4), elsewhere member 0.
	for id := 0; id < to.Hyper.M(); id++ {
		idx := 0
		if to.Hyper.Contains(id, 0) {
			idx = memberIndex(to.Hyper.Edge(id), 0)
		}
		val := idx + 3*idx + 9*idx // same head in all three orientations
		a.Fix(to.EdgeVar[id], val)
	}
	if got := to.SinkCount(0, a); got != 3 {
		t.Fatalf("SinkCount(0) = %d, want 3", got)
	}
	viol := to.Violations(a)
	found := false
	for _, v := range viol {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 0 missing from violations %v", viol)
	}
}

func TestThreeOrientationsRejectsLowDegree(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewThreeOrientations(b.Build()); err == nil {
		t.Fatal("degree-1 nodes should be rejected")
	}
}

func TestWeakSplittingParams(t *testing.T) {
	r := prng.New(11)
	adj, err := RandomBiregular(10, 3, 10, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWeakSplitting(adj, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Instance.P()
	want := math.Pow(16, -2) // 16^(1-k), k = 3
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
	if w.Instance.Rank() > 3 {
		t.Fatalf("rank = %d", w.Instance.Rank())
	}
	ok, margin := w.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("criterion should hold, margin = %v", margin)
	}
}

func TestWeakSplittingClosedFormMatchesEnumeration(t *testing.T) {
	adj := [][]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}}
	w, err := NewWeakSplitting(adj, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	stripped := model.NewBuilder()
	for v := 0; v < w.Instance.NumVars(); v++ {
		stripped.AddVariable(w.Instance.Var(v).Dist, "")
	}
	for e := 0; e < w.Instance.NumEvents(); e++ {
		ev := w.Instance.Event(e)
		stripped.AddEvent(ev.Scope, ev.Bad, nil, "")
	}
	enumInst := stripped.MustBuild()
	r := prng.New(13)
	for trial := 0; trial < 40; trial++ {
		a1 := model.NewAssignment(w.Instance)
		a2 := model.NewAssignment(enumInst)
		for v := 0; v < w.Instance.NumVars(); v++ {
			if r.Bool() {
				val := r.Intn(4)
				a1.Fix(v, val)
				a2.Fix(v, val)
			}
		}
		for e := 0; e < w.Instance.NumEvents(); e++ {
			got := w.Instance.CondProb(e, a1)
			want := enumInst.CondProb(e, a2)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d event %d: closed form %v != enumeration %v", trial, e, got, want)
			}
		}
	}
}

func TestWeakSplittingMonochromatic(t *testing.T) {
	adj := [][]int{{0, 1}, {1, 2}}
	w, err := NewWeakSplitting(adj, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(w.Instance)
	a.Fix(w.UVar[0], 1)
	a.Fix(w.UVar[1], 1)
	a.Fix(w.UVar[2], 2)
	mono := w.Monochromatic(a)
	if len(mono) != 1 || mono[0] != 0 {
		t.Fatalf("monochromatic = %v, want [0]", mono)
	}
	if got := w.ColorOf(2, a); got != 2 {
		t.Fatalf("ColorOf(2) = %d", got)
	}
}

func TestWeakSplittingValidation(t *testing.T) {
	if _, err := NewWeakSplitting([][]int{{0}}, 1, 16); err == nil {
		t.Fatal("single-neighbour V-node should be rejected")
	}
	if _, err := NewWeakSplitting([][]int{{0, 0}}, 1, 16); err == nil {
		t.Fatal("duplicate neighbour should be rejected")
	}
	if _, err := NewWeakSplitting([][]int{{0, 5}}, 2, 16); err == nil {
		t.Fatal("out-of-range U-node should be rejected")
	}
	// U-node 0 appears in four lists: r = 4 > 3.
	adj := [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	if _, err := NewWeakSplitting(adj, 5, 16); err == nil {
		t.Fatal("U-degree 4 should be rejected")
	}
	if _, err := NewWeakSplitting([][]int{{0, 1}}, 2, 1); err == nil {
		t.Fatal("palette of 1 should be rejected")
	}
}

func TestRandomBiregular(t *testing.T) {
	r := prng.New(17)
	adj, err := RandomBiregular(12, 3, 9, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(adj) != 12 {
		t.Fatalf("got %d V-nodes", len(adj))
	}
	uDeg := make([]int, 9)
	for v, nbrs := range adj {
		if len(nbrs) != 3 {
			t.Fatalf("V-node %d degree %d", v, len(nbrs))
		}
		seen := make(map[int]bool)
		for _, u := range nbrs {
			if seen[u] {
				t.Fatalf("V-node %d has duplicate neighbour %d", v, u)
			}
			seen[u] = true
			uDeg[u]++
		}
	}
	for u, d := range uDeg {
		if d != 4 {
			t.Fatalf("U-node %d degree %d, want 4", u, d)
		}
	}
	if _, err := RandomBiregular(3, 2, 4, 2, r); err == nil {
		t.Fatal("stub mismatch should be rejected")
	}
}

func TestHyperSinklessMixed(t *testing.T) {
	b := hypergraph.NewBuilder(6)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(5, 0); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	s, err := NewHyperSinklessMixed(h, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instance.Rank() != 3 {
		t.Fatalf("rank = %d", s.Instance.Rank())
	}
	// Heads decode correctly for both sizes, including the free value.
	a := model.NewAssignment(s.Instance)
	a.Fix(s.EdgeVar[0], 1) // triangle {0,1,2} -> head 1
	a.Fix(s.EdgeVar[1], 2) // pair {2,3} -> free (value k=2)
	a.Fix(s.EdgeVar[2], 0) // triangle {3,4,5} -> head 3
	a.Fix(s.EdgeVar[3], 1) // pair {0,5} -> head 5
	if got := s.HeadOf(0, a); got != 1 {
		t.Fatalf("HeadOf(0) = %d", got)
	}
	if got := s.HeadOf(1, a); got != -1 {
		t.Fatalf("HeadOf(1) = %d, want -1", got)
	}
	if got := s.HeadOf(3, a); got != 5 {
		t.Fatalf("HeadOf(3) = %d", got)
	}
	// Validation: size-1 or oversized hyperedges rejected.
	b2 := hypergraph.NewBuilder(3)
	if err := b2.AddEdge(0); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHyperSinklessMixed(b2.Build(), 3, 0.7); err == nil {
		t.Fatal("size-1 hyperedge accepted")
	}
}

func TestNoisySinklessProbability(t *testing.T) {
	g := graph.Cycle(8)
	s, err := NewNoisySinkless(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// p = noise + (1-noise)·2^-2 = 0.1 + 0.9*0.25 = 0.325.
	if p := s.Instance.P(); math.Abs(p-0.325) > 1e-12 {
		t.Fatalf("p = %v, want 0.325", p)
	}
	if ok, margin := s.Instance.ExponentialCriterion(); ok || margin <= 1 {
		t.Fatalf("noisy instance must sit above the threshold, margin = %v", margin)
	}
	if s.Instance.Rank() != 2 {
		t.Fatalf("rank = %d", s.Instance.Rank())
	}
}

func TestNoisySinklessWithP(t *testing.T) {
	g := graph.Cycle(10)
	for _, p := range []float64{0.3, 0.5, 0.8} {
		s, err := NewNoisySinklessWithP(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Instance.P(); math.Abs(got-p) > 1e-12 {
			t.Fatalf("requested p=%v, got %v", p, got)
		}
	}
	if _, err := NewNoisySinklessWithP(g, 0.2); err == nil {
		t.Fatal("p below 2^-deg accepted")
	}
	if _, err := NewNoisySinklessWithP(graph.Path(4), 0.5); err == nil {
		t.Fatal("irregular graph accepted")
	}
}

func TestNoisySinklessClosedFormMatchesEnumeration(t *testing.T) {
	g := graph.Cycle(5)
	s, err := NewNoisySinkless(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	stripped := model.NewBuilder()
	for v := 0; v < s.Instance.NumVars(); v++ {
		stripped.AddVariable(s.Instance.Var(v).Dist, "")
	}
	for e := 0; e < s.Instance.NumEvents(); e++ {
		ev := s.Instance.Event(e)
		stripped.AddEvent(ev.Scope, ev.Bad, nil, "")
	}
	enumInst := stripped.MustBuild()
	r := prng.New(77)
	for trial := 0; trial < 40; trial++ {
		a1 := model.NewAssignment(s.Instance)
		a2 := model.NewAssignment(enumInst)
		for v := 0; v < s.Instance.NumVars(); v++ {
			if r.Bool() {
				val := r.Intn(s.Instance.Var(v).Dist.Size())
				a1.Fix(v, val)
				a2.Fix(v, val)
			}
		}
		for e := 0; e < s.Instance.NumEvents(); e++ {
			got := s.Instance.CondProb(e, a1)
			want := enumInst.CondProb(e, a2)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d event %d: %v vs %v", trial, e, got, want)
			}
		}
	}
}

func TestSinklessBiasedCycleBalanced(t *testing.T) {
	s, err := NewSinklessBiasedCycle(9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced construction: every node's probability is alpha(1-alpha).
	want := 0.3 * 0.7
	a := model.NewAssignment(s.Instance)
	for e := 0; e < s.Instance.NumEvents(); e++ {
		if got := s.Instance.CondProb(e, a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("event %d: p = %v, want %v", e, got, want)
		}
	}
	_, margin := s.Instance.ExponentialCriterion()
	if math.Abs(margin-4*want) > 1e-12 {
		t.Fatalf("margin = %v, want %v", margin, 4*want)
	}
}

func TestSinklessBiasedValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := NewSinklessBiased(g, 0, nil); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewSinklessBiased(g, 1, nil); err == nil {
		t.Fatal("alpha 1 accepted")
	}
	if _, err := NewSinklessBiased(g, 0.4, []int{0}); err == nil {
		t.Fatal("wrong head count accepted")
	}
	heads := make([]int, g.M())
	for i := range heads {
		heads[i] = 4 // node 4 is not an endpoint of every edge
	}
	if _, err := NewSinklessBiased(g, 0.4, heads); err == nil {
		t.Fatal("non-endpoint head accepted")
	}
	// Default heads (nil) work.
	s, err := NewSinklessBiased(g, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instance.NumVars() != g.M() {
		t.Fatal("variable count wrong")
	}
	// Isolated node rejected.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSinklessBiased(b.Build(), 0.4, nil); err == nil {
		t.Fatal("degree-0 node accepted")
	}
}

func TestRandomConjunctionCalibration(t *testing.T) {
	r := prng.New(91)
	h, err := hypergraph.RandomRegularRank3(18, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRandomConjunction(h, 3, 0.8, r)
	if err != nil {
		t.Fatal(err)
	}
	// Every event's probability must equal margin·2^-d_v exactly.
	dg := rc.Instance.DependencyGraph()
	a := model.NewAssignment(rc.Instance)
	for e := 0; e < rc.Instance.NumEvents(); e++ {
		want := 0.8 * math.Pow(2, -float64(dg.Degree(e)))
		if got := rc.Instance.CondProb(e, a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("event %d: p=%v, want %v", e, got, want)
		}
	}
	// The per-event (local) criterion is exactly the calibrated margin; the
	// coarser symmetric global criterion can exceed 1 on irregular degrees,
	// which is precisely why the local form is the right notion.
	ok, margin := rc.Instance.LocalExponentialCriterion()
	if !ok || math.Abs(margin-0.8) > 1e-9 {
		t.Fatalf("local margin = %v, ok=%v", margin, ok)
	}
	if rc.Instance.Rank() != 3 {
		t.Fatalf("rank = %d", rc.Instance.Rank())
	}
}

func TestRandomConjunctionValidation(t *testing.T) {
	r := prng.New(93)
	h, err := hypergraph.RandomRegularRank3(9, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandomConjunction(h, 1, 0.5, r); err == nil {
		t.Fatal("values=1 accepted")
	}
	if _, err := NewRandomConjunction(h, 3, 0, r); err == nil {
		t.Fatal("margin 0 accepted")
	}
	if _, err := NewRandomConjunction(h, 3, 1, r); err == nil {
		t.Fatal("margin 1 accepted")
	}
	// Degree-1 nodes: d_v = 2, target = margin/4; conj = 1/values; with
	// values=2 and margin 0.9: coinP = 0.9/4 / (1/2) = 0.45 < 1: fine. But
	// with values=2, deg 1, dependency degree could be 2 -> works; force
	// the failure with an impossible combination: margin high, values big
	// deg... use values=2, margin=0.99 on a dense hypergraph where some
	// node has d_v small relative to degree... Construct directly: a
	// single hyperedge (d_v = 2 for all three nodes, degree 1):
	b := hypergraph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// conj = 1/2, target = 0.99/4 -> coinP ≈ 0.495 < 1: still fine. The
	// overflow arm needs target > conj: margin·2^-d > values^-deg. With
	// values=2, deg=1, d=2: 0.99/4 < 1/2 — cannot trigger on uniform
	// structures where d >= deg. Verify the builder succeeds instead.
	if _, err := NewRandomConjunction(b.Build(), 2, 0.99, r); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestRandomConjunctionSolvedByAllPaths(t *testing.T) {
	// The stress family: arbitrary bad tuples, per-event margins 0.9. The
	// fixer must succeed under the LOCAL criterion even when the symmetric
	// global one fails. Degenerate hypergraphs (a node whose dependency
	// degree is too small for the calibration) are skipped.
	r := prng.New(95)
	solved := 0
	for trial := 0; trial < 12 && solved < 5; trial++ {
		h, err := hypergraph.RandomRegularRank3(15, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := NewRandomConjunction(h, 2, 0.9, r)
		if err != nil {
			continue // calibration impossible on this topology
		}
		if ok, _ := rc.Instance.LocalExponentialCriterion(); !ok {
			t.Fatal("calibrated instance fails the local criterion")
		}
		res, err := core.FixSequential(rc.Instance, r.Perm(rc.Instance.NumVars()), core.Options{Audit: solved == 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 || res.Stats.Fallbacks != 0 {
			t.Fatalf("trial %d: %+v", trial, res.Stats)
		}
		solved++
	}
	if solved < 3 {
		t.Fatalf("only %d instances were solvable-calibratable", solved)
	}
}
