package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestFlightRingKeepsLastK: recording past the capacity evicts the oldest
// entries; Dump returns exactly the last K in chronological order and Total
// counts everything ever recorded.
func TestFlightRingKeepsLastK(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < 100; i++ {
		f.Record(FlightEntry{Kind: "round", Round: i})
	}
	got := f.Dump()
	if len(got) != 8 {
		t.Fatalf("dump length = %d, want 8", len(got))
	}
	for i, e := range got {
		if e.Kind != "round" || e.Round != 92+i {
			t.Fatalf("dump[%d] = %+v, want round %d", i, e, 92+i)
		}
		if i > 0 && e.TNS < got[i-1].TNS {
			t.Fatalf("dump not chronological: t_ns[%d]=%d < t_ns[%d]=%d", i, e.TNS, i-1, got[i-1].TNS)
		}
	}
	if f.Total() != 100 {
		t.Fatalf("total = %d, want 100", f.Total())
	}
	if f.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", f.Cap())
	}
}

// TestFlightPartialRing: fewer entries than capacity dump as-is, in order.
func TestFlightPartialRing(t *testing.T) {
	f := NewFlight(8)
	if f.Dump() != nil {
		t.Fatal("empty recorder should dump nil")
	}
	f.Record(FlightEntry{Kind: "start"})
	f.Record(FlightEntry{Kind: "round", Round: 1})
	got := f.Dump()
	if len(got) != 2 || got[0].Kind != "start" || got[1].Round != 1 {
		t.Fatalf("dump = %+v", got)
	}
	// Dump is a copy: recording after the dump must not mutate it.
	f.Record(FlightEntry{Kind: "round", Round: 2})
	if len(got) != 2 {
		t.Fatalf("dump aliases the ring: %+v", got)
	}
}

// TestFlightNilAndFloor: the nil recorder is a total no-op and silly
// capacities are floored to one entry.
func TestFlightNilAndFloor(t *testing.T) {
	var f *Flight
	f.Record(FlightEntry{Kind: "round"}) // must not panic
	if f.Dump() != nil || f.Total() != 0 || f.Cap() != 0 {
		t.Fatalf("nil flight: dump=%v total=%d cap=%d", f.Dump(), f.Total(), f.Cap())
	}
	g := NewFlight(0)
	if g.Cap() != 1 {
		t.Fatalf("floored cap = %d, want 1", g.Cap())
	}
	g.Record(FlightEntry{Kind: "a"})
	g.Record(FlightEntry{Kind: "b"})
	if d := g.Dump(); len(d) != 1 || d[0].Kind != "b" {
		t.Fatalf("cap-1 dump = %+v, want just b", d)
	}
}

// TestFlightConcurrentRaceClean: concurrent Record and Dump under -race,
// with the invariant that a dump never exceeds the capacity and total
// accounts for every record.
func TestFlightConcurrentRaceClean(t *testing.T) {
	f := NewFlight(16)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightEntry{Kind: "round", Round: i, Attempt: w})
				if i%64 == 0 {
					if d := f.Dump(); len(d) > 16 {
						panic(fmt.Sprintf("dump overflow: %d", len(d)))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != workers*per {
		t.Fatalf("total = %d, want %d", f.Total(), workers*per)
	}
	if d := f.Dump(); len(d) != 16 {
		t.Fatalf("final dump = %d entries, want 16", len(d))
	}
}

// TestFlightChurnBoundedMemoryNoGoroutines: creating and dropping many
// flight recorders and traced spans — the per-job churn of a long-lived
// daemon — leaves no goroutines behind and does not accumulate memory
// beyond the live set. This pins the "no background workers, bounded
// by construction" design of both recorders.
func TestFlightChurnBoundedMemoryNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	rec := NewRecorder(discardWriter{})
	for i := 0; i < 5000; i++ {
		f := NewFlight(64)
		for j := 0; j < 128; j++ {
			f.Record(FlightEntry{Kind: "round", Round: j, Detail: "churn"})
		}
		ctx := WithTrace(context.Background(), TraceContext{Trace: NewTraceID(), Job: "j"})
		sp, sctx := rec.StartSpan(ctx, "attempt")
		inner, _ := rec.StartSpan(sctx, "run")
		inner.End()
		sp.End()
		_ = f.Dump()
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	if ms1.HeapAlloc > ms0.HeapAlloc && ms1.HeapAlloc-ms0.HeapAlloc > 16<<20 {
		t.Fatalf("heap grew by %d bytes across churn, want < 16MiB", ms1.HeapAlloc-ms0.HeapAlloc)
	}
	// Allow scheduler jitter: the count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d → %d across recorder churn", before, after)
	}
}

// discardWriter is io.Discard without the SGR fast paths, so the recorder's
// writes actually run their encoding.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// syncBuffer is a mutex-guarded bytes.Buffer, safe as a Recorder sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf...)
}

// decodeEvents parses a JSONL byte stream into events.
func decodeEvents(t *testing.T, data []byte) []Event {
	t.Helper()
	var events []Event
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		events = append(events, e)
	}
	return events
}

// TestTraceIDsUniqueAndWellFormed: IDs are 16 lowercase hex digits and do
// not collide over a large draw, including concurrent minting.
func TestTraceIDsUniqueAndWellFormed(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, n/4)
			for i := 0; i < n/4; i++ {
				local = append(local, NewTraceID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if len(id) != 16 {
					t.Errorf("id %q: not 16 chars", id)
					return
				}
				for _, c := range id {
					if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
						t.Errorf("id %q: bad digit %q", id, c)
						return
					}
				}
				if seen[id] {
					t.Errorf("duplicate id %q", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

// TestStartSpanBuildsParentChain: StartSpan inherits the ambient trace,
// threads a fresh span ID through the returned context, and emits span
// events whose parent is the enclosing span.
func TestStartSpanBuildsParentChain(t *testing.T) {
	var buf syncBuffer
	rec := NewRecorder(&buf)
	root := TraceContext{Trace: NewTraceID(), Job: "j000042"}
	ctx := WithTrace(context.Background(), root)

	outer, octx := rec.StartSpan(ctx, "attempt")
	inner, _ := rec.StartSpan(octx, "run")
	inner.End()
	outer.End()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events := decodeEvents(t, buf.Bytes())
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (inner, outer)", len(events))
	}
	in, out := events[0], events[1]
	if in.Phase != "run" || out.Phase != "attempt" {
		t.Fatalf("phases = %q, %q", in.Phase, out.Phase)
	}
	for _, e := range events {
		if e.Kind != "span" {
			t.Fatalf("kind = %q, want span", e.Kind)
		}
		if e.Trace != root.Trace || e.Job != root.Job {
			t.Fatalf("event %+v lost the ambient trace %q/%q", e, root.Trace, root.Job)
		}
		if e.Span == "" {
			t.Fatalf("event %+v has no span id", e)
		}
	}
	if in.Parent != out.Span {
		t.Fatalf("inner parent = %q, want outer span %q", in.Parent, out.Span)
	}
	if out.Parent != "" {
		t.Fatalf("outer parent = %q, want root (empty)", out.Parent)
	}
}

// TestStartSpanDegradesGracefully: a nil recorder returns the disabled span
// and the unchanged context; an untraced context yields span events without
// trace fields.
func TestStartSpanDegradesGracefully(t *testing.T) {
	var rec *Recorder
	ctx := context.Background()
	sp, out := rec.StartSpan(ctx, "attempt")
	if out != ctx {
		t.Fatal("nil recorder must return the context unchanged")
	}
	sp.End() // no-op, must not panic

	var buf syncBuffer
	live := NewRecorder(&buf)
	sp2, out2 := live.StartSpan(ctx, "attempt")
	if TraceFrom(out2).Valid() {
		t.Fatal("untraced context must stay untraced")
	}
	sp2.End()
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	events := decodeEvents(t, buf.Bytes())
	if len(events) != 1 || events[0].Trace != "" || events[0].Span != "" {
		t.Fatalf("untraced span event = %+v", events)
	}
}

// TestTraceContextHelpers covers the context plumbing edge cases.
func TestTraceContextHelpers(t *testing.T) {
	if TraceFrom(nil).Valid() {
		t.Fatal("nil context must be untraced")
	}
	if TraceFrom(context.Background()).Valid() {
		t.Fatal("fresh context must be untraced")
	}
	zero := TraceContext{}
	if WithTrace(context.Background(), zero) != context.Background() {
		t.Fatal("zero TraceContext must not wrap the context")
	}
	if child := zero.Child(); child != zero {
		t.Fatal("child of the zero TraceContext must stay zero")
	}
	tc := TraceContext{Trace: "abc", Span: "s1", Job: "j1"}
	child := tc.Child()
	if child.Trace != tc.Trace || child.Job != tc.Job || child.Span == tc.Span || child.Span == "" {
		t.Fatalf("child = %+v of %+v", child, tc)
	}
}
