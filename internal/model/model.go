// Package model defines the representation of distributed LLL instances and
// the exact probability engine that backs the deterministic fixing
// algorithms of the paper.
//
// An Instance consists of discrete random variables (each with a finite
// distribution from internal/dist) and bad events. Every event declares its
// scope: the variables it depends on. From the instance we derive the two
// combinatorial objects of the paper:
//
//   - the dependency graph (one node per event, events adjacent iff they
//     share a variable), whose maximum degree is the LLL parameter d, and
//   - the variable hypergraph H = (V, F) (one hyperedge per variable over
//     the events it affects), whose rank is the parameter r.
//
// The engine computes exact conditional probabilities
// Pr[E | X_1 = x_1, ..., X_z = x_z] for a partially fixed assignment, either
// by enumerating the joint distribution of the still-unfixed scope variables
// or through an event-specific closed form (used by the application
// workloads and cross-checked against the enumerator in tests).
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

var (
	// ErrVarRange indicates a variable identifier outside the instance.
	ErrVarRange = errors.New("model: variable out of range")
	// ErrEmptyScope indicates an event with no variables.
	ErrEmptyScope = errors.New("model: event with empty scope")
	// ErrDuplicateVar indicates an event scope listing a variable twice.
	ErrDuplicateVar = errors.New("model: duplicate variable in scope")
	// ErrNotFixed indicates an operation that requires a fully fixed
	// assignment was called on a partial one.
	ErrNotFixed = errors.New("model: assignment not fully fixed")
)

// Variable is a discrete random variable of an LLL instance.
type Variable struct {
	// ID is the dense identifier of the variable within its instance.
	ID int
	// Name is an optional human-readable label.
	Name string
	// Dist is the distribution of the variable. Values are identified by
	// their index 0..Dist.Size()-1.
	Dist *dist.Distribution
	// Events lists the identifiers of the events whose scope contains this
	// variable, in event order. Its length is the rank of the variable.
	Events []int
}

// CondProbFunc is an optional closed-form conditional probability for an
// event. vals and fixed are indexed parallel to the event's scope: fixed[i]
// reports whether scope variable i is fixed and vals[i] holds its value
// index if so. The function must return
// Pr[event | the fixed scope variables have the given values].
type CondProbFunc func(vals []int, fixed []bool) float64

// Event is a bad event of an LLL instance.
type Event struct {
	// ID is the dense identifier of the event within its instance.
	ID int
	// Name is an optional human-readable label.
	Name string
	// Scope lists the identifiers of the variables the event depends on.
	Scope []int
	// Bad is the defining predicate: it receives the value indices of the
	// scope variables (parallel to Scope) and reports whether the bad event
	// occurs.
	Bad func(vals []int) bool
	// CondProb, if non-nil, is a closed-form conditional probability that
	// the engine uses instead of enumeration. It must agree with Bad.
	CondProb CondProbFunc
	// Spec, if non-nil, is a serializable description of the event (a
	// ConjunctionSpec or AllEqualSpec); events built by the helper
	// families carry one, hand-written predicates do not.
	Spec any
}

// Instance is an immutable LLL instance.
type Instance struct {
	vars   []*Variable
	events []*Event

	depGraph *graph.Graph
	varHyper *hypergraph.Hypergraph
}

// Builder accumulates variables and events and produces an Instance.
type Builder struct {
	vars   []*Variable
	events []*Event
	err    error
}

// NewBuilder returns an empty instance builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVariable registers a variable with the given distribution and returns
// its identifier.
func (b *Builder) AddVariable(d *dist.Distribution, name string) int {
	id := len(b.vars)
	b.vars = append(b.vars, &Variable{ID: id, Name: name, Dist: d})
	return id
}

// AddEvent registers a bad event over the given scope. bad receives value
// indices parallel to scope. condProb may be nil. AddEvent returns the event
// identifier; scope errors are deferred to Build.
func (b *Builder) AddEvent(scope []int, bad func(vals []int) bool, condProb CondProbFunc, name string) int {
	id := len(b.events)
	scopeCopy := make([]int, len(scope))
	copy(scopeCopy, scope)
	b.events = append(b.events, &Event{
		ID:       id,
		Name:     name,
		Scope:    scopeCopy,
		Bad:      bad,
		CondProb: condProb,
	})
	if b.err == nil {
		if len(scope) == 0 {
			b.err = fmt.Errorf("%w: event %d (%s)", ErrEmptyScope, id, name)
			return id
		}
		seen := make(map[int]bool, len(scope))
		for _, v := range scope {
			if v < 0 || v >= len(b.vars) {
				b.err = fmt.Errorf("%w: event %d references variable %d", ErrVarRange, id, v)
				return id
			}
			if seen[v] {
				b.err = fmt.Errorf("%w: event %d, variable %d", ErrDuplicateVar, id, v)
				return id
			}
			seen[v] = true
		}
	}
	return id
}

// Build validates and finalizes the instance.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	inst := &Instance{vars: b.vars, events: b.events}
	for _, v := range inst.vars {
		v.Events = v.Events[:0]
	}
	for _, e := range inst.events {
		for _, vid := range e.Scope {
			inst.vars[vid].Events = append(inst.vars[vid].Events, e.ID)
		}
	}
	// Derive the variable hypergraph. Variables affecting no event get no
	// hyperedge (they are irrelevant to the LLL and can be fixed freely).
	hb := hypergraph.NewBuilder(len(inst.events))
	for _, v := range inst.vars {
		if len(v.Events) == 0 {
			continue
		}
		if err := hb.AddEdge(v.Events...); err != nil {
			return nil, fmt.Errorf("model: building variable hypergraph: %w", err)
		}
	}
	inst.varHyper = hb.Build()
	inst.depGraph = inst.varHyper.DependencyGraph()
	return inst, nil
}

// MustBuild is Build but panics on error; for statically valid construction.
func (b *Builder) MustBuild() *Instance {
	inst, err := b.Build()
	if err != nil {
		panic(err)
	}
	return inst
}

// NumVars returns the number of variables.
func (inst *Instance) NumVars() int { return len(inst.vars) }

// NumEvents returns the number of events.
func (inst *Instance) NumEvents() int { return len(inst.events) }

// Var returns the variable with identifier id.
func (inst *Instance) Var(id int) *Variable { return inst.vars[id] }

// Event returns the event with identifier id.
func (inst *Instance) Event(id int) *Event { return inst.events[id] }

// DependencyGraph returns the dependency graph over events. The returned
// graph is shared and immutable.
func (inst *Instance) DependencyGraph() *graph.Graph { return inst.depGraph }

// VariableHypergraph returns the hypergraph H = (V, F) with one hyperedge
// per (event-affecting) variable. Note: hyperedge identifiers do NOT equal
// variable identifiers when some variables affect no event; use
// Var(id).Events for per-variable scopes instead.
func (inst *Instance) VariableHypergraph() *hypergraph.Hypergraph { return inst.varHyper }

// D returns the LLL dependency parameter d: the maximum degree of the
// dependency graph.
func (inst *Instance) D() int { return inst.depGraph.MaxDegree() }

// Rank returns r: the maximum number of events any variable affects.
func (inst *Instance) Rank() int {
	r := 0
	for _, v := range inst.vars {
		if len(v.Events) > r {
			r = len(v.Events)
		}
	}
	return r
}

// P returns the symmetric LLL probability bound p: the maximum, over all
// events, of the unconditional probability that the event occurs.
func (inst *Instance) P() float64 {
	a := NewAssignment(inst)
	p := 0.0
	for _, e := range inst.events {
		if q := inst.CondProb(e.ID, a); q > p {
			p = q
		}
	}
	return p
}

// Params returns (p, d, r) in one call, at the cost of one full probability
// sweep.
func (inst *Instance) Params() (p float64, d, r int) {
	return inst.P(), inst.D(), inst.Rank()
}

// ExponentialCriterion reports whether the instance satisfies the paper's
// threshold criterion p < 2^-d, and returns the margin p·2^d (which must be
// strictly below 1 for the deterministic fixers to be guaranteed to work).
func (inst *Instance) ExponentialCriterion() (ok bool, margin float64) {
	p, d, _ := inst.Params()
	margin = p * math.Pow(2, float64(d))
	return margin < 1, margin
}

// LocalExponentialCriterion reports whether the PER-EVENT form of the
// threshold criterion holds: Pr[E_v]·2^(d_v) < 1 for every event v, where
// d_v is v's own dependency degree. This is the inequality the paper's
// proofs actually use (each event's budget is 2^deg(v)); it is weaker than
// the symmetric p·2^d < 1 on irregular instances, and the fixers' guarantee
// holds under it.
func (inst *Instance) LocalExponentialCriterion() (ok bool, maxMargin float64) {
	a := NewAssignment(inst)
	for _, e := range inst.events {
		margin := inst.CondProb(e.ID, a) * math.Pow(2, float64(inst.depGraph.Degree(e.ID)))
		if margin > maxMargin {
			maxMargin = margin
		}
	}
	return maxMargin < 1, maxMargin
}

// SymmetricLLLCriterion reports whether e·p·(d+1) < 1 holds.
func (inst *Instance) SymmetricLLLCriterion() (ok bool, value float64) {
	p, d, _ := inst.Params()
	value = math.E * p * float64(d+1)
	return value < 1, value
}

// Violated reports whether event id occurs under the fully fixed assignment.
func (inst *Instance) Violated(id int, a *Assignment) (bool, error) {
	e := inst.events[id]
	vals := make([]int, len(e.Scope))
	for i, vid := range e.Scope {
		if !a.Fixed(vid) {
			return false, fmt.Errorf("%w: event %d, variable %d", ErrNotFixed, id, vid)
		}
		vals[i] = a.Value(vid)
	}
	return e.Bad(vals), nil
}

// CountViolated returns the number of events that occur under the fully
// fixed assignment a.
func (inst *Instance) CountViolated(a *Assignment) (int, error) {
	count := 0
	for _, e := range inst.events {
		bad, err := inst.Violated(e.ID, a)
		if err != nil {
			return 0, err
		}
		if bad {
			count++
		}
	}
	return count, nil
}

// CondProb returns the exact probability that event id occurs, conditioned
// on the variables fixed in a (restricted to the event's scope; variables
// outside the scope are irrelevant by definition).
func (inst *Instance) CondProb(id int, a *Assignment) float64 {
	e := inst.events[id]
	vals := make([]int, len(e.Scope))
	fixed := make([]bool, len(e.Scope))
	for i, vid := range e.Scope {
		if a.Fixed(vid) {
			fixed[i] = true
			vals[i] = a.Value(vid)
		}
	}
	if e.CondProb != nil {
		return e.CondProb(vals, fixed)
	}
	return inst.enumCondProb(e, vals, fixed)
}

// enumCondProb computes the conditional probability by enumerating the joint
// distribution of the unfixed scope variables.
func (inst *Instance) enumCondProb(e *Event, vals []int, fixed []bool) float64 {
	var free []int // scope positions that are unfixed
	for i := range e.Scope {
		if !fixed[i] {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		if e.Bad(vals) {
			return 1
		}
		return 0
	}
	dists := make([]*dist.Distribution, len(free))
	for i, pos := range free {
		dists[i] = inst.vars[e.Scope[pos]].Dist
	}
	total := 0.0
	dist.Enumerate(dists, func(tuple []int, p float64) {
		for i, pos := range free {
			vals[pos] = tuple[i]
		}
		if e.Bad(vals) {
			total += p
		}
	})
	return total
}

// CondProbWith returns CondProb(id, a) with variable varID additionally
// fixed to value. The assignment a is not modified. It is the quantity
// Pr[E | θ, X = y] from the paper's Inc(·,·) definition.
func (inst *Instance) CondProbWith(id int, a *Assignment, varID, value int) float64 {
	e := inst.events[id]
	vals := make([]int, len(e.Scope))
	fixed := make([]bool, len(e.Scope))
	for i, vid := range e.Scope {
		switch {
		case vid == varID:
			fixed[i] = true
			vals[i] = value
		case a.Fixed(vid):
			fixed[i] = true
			vals[i] = a.Value(vid)
		}
	}
	if e.CondProb != nil {
		return e.CondProb(vals, fixed)
	}
	return inst.enumCondProb(e, vals, fixed)
}

// Summary is a human-readable one-stop description of an instance's LLL
// parameters, used by the CLI tools and diagnostics.
type Summary struct {
	NumVars   int
	NumEvents int
	P         float64 // max event probability
	D         int     // dependency degree
	R         int     // max variable rank
	// ExpMargin is p·2^d; the deterministic guarantee needs < 1.
	ExpMargin float64
	// MTValue is e·p·(d+1); the Moser-Tardos guarantee needs < 1.
	MTValue float64
	// MaxScope is the largest event scope (variables per event).
	MaxScope int
	// MaxValues is the largest variable value-space size.
	MaxValues int
}

// Summarize computes the instance summary (one probability sweep).
func (inst *Instance) Summarize() Summary {
	p, d, r := inst.Params()
	s := Summary{
		NumVars:   inst.NumVars(),
		NumEvents: inst.NumEvents(),
		P:         p,
		D:         d,
		R:         r,
		ExpMargin: p * math.Pow(2, float64(d)),
		MTValue:   math.E * p * float64(d+1),
	}
	for _, e := range inst.events {
		if len(e.Scope) > s.MaxScope {
			s.MaxScope = len(e.Scope)
		}
	}
	for _, v := range inst.vars {
		if v.Dist.Size() > s.MaxValues {
			s.MaxValues = v.Dist.Size()
		}
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("vars=%d events=%d p=%.4g d=%d r=%d p*2^d=%.4g e*p*(d+1)=%.4g maxScope=%d maxValues=%d",
		s.NumVars, s.NumEvents, s.P, s.D, s.R, s.ExpMargin, s.MTValue, s.MaxScope, s.MaxValues)
}

// Inc returns the probability increase factor of event id when variable
// varID is fixed to value, given the already-fixed assignment a:
//
//	Inc = Pr[E | θ, X = y] / Pr[E | θ].
//
// Following the paper's convention, Inc is 0 when Pr[E | θ] = 0.
func (inst *Instance) Inc(id int, a *Assignment, varID, value int) float64 {
	base := inst.CondProb(id, a)
	if base == 0 {
		return 0
	}
	return inst.CondProbWith(id, a, varID, value) / base
}
