package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/srep"
)

// The choose* functions are the pure decision kernels of the paper's
// processes: given the conditional-probability oracle (instance + optional
// compiled kernel + partial assignment) and the current bookkeeping values, they pick a value for one
// variable and return the updated bookkeeping. Both the sequential fixer
// (FixSequential) and the distributed machines (Corollaries 1.2 and 1.4)
// call them, which guarantees the two implementations make identical
// choices from identical local views.

// chooseRank1 picks a value for a variable affecting only event u. A value
// with Inc(u, y) ≤ 1 exists because E_y[Inc(u, y)] = 1.
func chooseRank1(orc oracle, a *model.Assignment, vid, u int, opts Options) int {
	d := orc.inst.Var(vid).Dist
	bestVal, bestInc := 0, math.Inf(1)
	worstVal, worstInc := 0, math.Inf(-1)
	for y := 0; y < d.Size(); y++ {
		inc := orc.Inc(u, a, vid, y)
		if inc < bestInc {
			bestVal, bestInc = y, inc
		}
		if inc <= 1+opts.Tol && inc > worstInc {
			worstVal, worstInc = y, inc
		}
	}
	if opts.Strategy == StrategyAdversarial && !math.IsInf(worstInc, -1) {
		return worstVal
	}
	return bestVal
}

// chooseRank2 picks a value for a variable affecting events u and v, given
// the current bookkeeping values s = φ_e^u and t = φ_e^v on the dependency
// edge e = {u, v}. It returns the chosen value, the new edge values
// (ψ_e^u, ψ_e^v) with ψ_e^u + ψ_e^v ≤ s + t, and whether the float-noise
// fallback was taken. This is the weighted Theorem 1.1 step.
func chooseRank2(orc oracle, a *model.Assignment, vid, u, v int, s, t float64, opts Options) (val int, newU, newV float64, fallback bool) {
	d := orc.inst.Var(vid).Dist
	budget := s + t
	type cand struct {
		val        int
		score      float64
		incU, incV float64
	}
	var best, worst, first *cand
	bestAny := cand{val: 0, score: math.Inf(1)}
	for y := 0; y < d.Size(); y++ {
		c := cand{
			val:  y,
			incU: orc.Inc(u, a, vid, y),
			incV: orc.Inc(v, a, vid, y),
		}
		c.score = s*c.incU + t*c.incV
		if c.score < bestAny.score {
			bestAny = c
		}
		if c.score <= budget+opts.Tol {
			cc := c
			if first == nil {
				first = &cc
			}
			if best == nil || c.score < best.score {
				best = &cc
			}
			if worst == nil || c.score > worst.score {
				worst = &cc
			}
		}
	}
	chosen := best
	switch opts.Strategy {
	case StrategyFirst:
		chosen = first
	case StrategyAdversarial:
		chosen = worst
	}
	if chosen == nil {
		// Theorem 1.1 guarantees a feasible value; reaching this branch is
		// pure float noise. Use the least-violating value.
		fallback = true
		chosen = &bestAny
	}
	newU = s * chosen.incU
	newV = t * chosen.incV
	if sum := newU + newV; sum > budget && sum > 0 {
		scale := budget / sum
		newU *= scale
		newV *= scale
	}
	return chosen.val, math.Min(newU, 2), math.Min(newV, 2), fallback
}

// chooseRank3 picks a value for a variable affecting events u, v, w, given
// the current representable triple
//
//	(ta, tb, tc) = (φ_e^u·φ_e'^u, φ_e^v·φ_e''^v, φ_e'^w·φ_e''^w)
//
// on the triangle edges e = {u,v}, e' = {u,w}, e” = {v,w}. It returns the
// chosen value together with the witness decomposition of the new triple
// (which supplies the six new edge values), and whether the float-noise
// fallback was taken. This is the Lemma 3.2 step.
func chooseRank3(orc oracle, a *model.Assignment, vid, u, v, w int, ta, tb, tc float64, opts Options) (val int, wit srep.Witness, fallback bool, err error) {
	d := orc.inst.Var(vid).Dist
	type cand struct {
		val        int
		ta, tb, tc float64
		score      float64
	}
	var best, worst, first *cand
	var bestAny cand
	bestAnyExcess := math.Inf(1)
	for y := 0; y < d.Size(); y++ {
		c3 := cand{
			val: y,
			ta:  orc.Inc(u, a, vid, y) * ta,
			tb:  orc.Inc(v, a, vid, y) * tb,
			tc:  orc.Inc(w, a, vid, y) * tc,
		}
		c3.score = c3.ta + c3.tb + c3.tc
		if srep.IsRepresentable(c3.ta, c3.tb, c3.tc, opts.Tol) {
			cc := c3
			if first == nil {
				first = &cc
			}
			if best == nil || c3.score < best.score {
				best = &cc
			}
			if worst == nil || c3.score > worst.score {
				worst = &cc
			}
		}
		excess := math.Max(0, c3.ta+c3.tb-4)
		if c3.ta+c3.tb <= 4 {
			excess += math.Max(0, c3.tc-srep.F(math.Min(c3.ta, 4), math.Min(c3.tb, 4)))
		} else {
			excess += c3.tc
		}
		if excess < bestAnyExcess {
			bestAnyExcess = excess
			bestAny = c3
		}
	}
	chosen := best
	switch opts.Strategy {
	case StrategyFirst:
		chosen = first
	case StrategyAdversarial:
		chosen = worst
	}
	if chosen == nil {
		// Lemma 3.2 guarantees a feasible value; this is float noise.
		fallback = true
		bestAny.ta = math.Min(bestAny.ta, 4)
		bestAny.tb = math.Min(bestAny.tb, math.Max(0, 4-bestAny.ta))
		bestAny.tc = math.Min(bestAny.tc, srep.F(bestAny.ta, bestAny.tb))
		chosen = &bestAny
	}
	wit, derr := srep.Decompose(chosen.ta, chosen.tb, chosen.tc)
	if derr != nil {
		return 0, srep.Witness{}, fallback, fmt.Errorf("core: decomposing triple for variable %d: %w", vid, derr)
	}
	return chosen.val, wit, fallback, nil
}
