package exp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/prng"
)

// The golden-table regression harness: every case renders an experiment
// table to CSV with the LOCAL engine at Workers=1 and compares it byte for
// byte against a checked-in golden under testdata/, then re-renders at
// Workers ∈ {2, 4, GOMAXPROCS} and demands the identical bytes. This is
// the executable form of the engine's determinism contract (index-addressed
// writes ⇒ worker-count independence) AND a regression pin on the
// experiment outputs themselves.
//
// Regenerate the goldens with:
//
//	go test ./internal/exp -run TestGoldenTables -update

var updateGolden = flag.Bool("update", false, "rewrite golden tables under testdata")

// goldenSizes keeps the golden workloads small enough for fast test runs
// while still covering every distributed code path (both colouring
// substrates, both fixers, cycles and irregular random-regular graphs).
var goldenSizes = Sizes{Scale: 0.5, Trials: 2}

type goldenCase struct {
	name string
	// run renders the case's table; obs.Workers, obs.Metrics and obs.Trace
	// are merged into the case's own workload sizes.
	run func(obs Sizes) (*Table, error)
}

func goldenCases() []goldenCase {
	merge := func(base, obs Sizes) Sizes {
		base.Workers = obs.Workers
		base.Metrics = obs.Metrics
		base.Trace = obs.Trace
		base.Ctx = obs.Ctx
		base.Checkpoint = obs.Checkpoint
		return base
	}
	return []goldenCase{
		{"T2", func(obs Sizes) (*Table, error) {
			return T2DistributedRank2(1, merge(goldenSizes, obs))
		}},
		{"T4", func(obs Sizes) (*Table, error) {
			sz := goldenSizes
			sz.Trials = 1
			return T4DistributedRank3(1, merge(sz, obs))
		}},
		{"coloring", func(obs Sizes) (*Table, error) {
			return coloringTable(1, obs)
		}},
	}
}

// coloringTable exercises the LOCAL coloring machines directly (vertex,
// edge and distance-2 colouring) and pins palette, rounds, messages and a
// digest of the full colour vector per workload.
func coloringTable(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "COL",
		Title:  "LOCAL coloring machines - determinism pin",
		Note:   "colour digest is an FNV-1a hash of the full colour vector; identical digests mean identical colourings.",
		Header: []string{"graph", "algorithm", "n", "palette", "rounds", "sim factor", "messages", "colour digest"},
	}
	r := prng.New(seed)
	g4, err := graph.RandomRegular(24, 4, r)
	if err != nil {
		return nil, err
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-48", graph.Cycle(48)},
		{"torus-5x5", graph.Torus(5, 5)},
		{"4-regular-24", g4},
	}
	lopts := sz.lopts(seed)
	for _, gr := range graphs {
		algos := []struct {
			name string
			run  func() (*coloring.Result, error)
		}{
			{"vertex", func() (*coloring.Result, error) {
				return coloring.DistributedVertexColoring(gr.g, lopts, gr.g.MaxDegree()+1)
			}},
			{"edge-native", func() (*coloring.Result, error) {
				return coloring.DistributedEdgeColoringNative(gr.g, lopts)
			}},
			{"distance2-native", func() (*coloring.Result, error) {
				return coloring.DistributedDistance2Native(gr.g, lopts)
			}},
		}
		for _, al := range algos {
			res, err := al.run()
			if err != nil {
				return nil, fmt.Errorf("exp: coloring golden %s/%s: %w", gr.name, al.name, err)
			}
			t.AddRow(gr.name, al.name, gr.g.N(), res.Palette, res.Rounds, res.SimFactor,
				res.Messages, colorDigest(res.Colors))
		}
	}
	return t, nil
}

// colorDigest hashes a colour vector into a short stable hex string.
func colorDigest(colors []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range colors {
		v := uint64(c)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func renderCSV(t *testing.T, tbl *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTables(t *testing.T) {
	workerSweep := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			tbl, err := gc.run(Sizes{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := renderCSV(t, tbl)

			path := filepath.Join("testdata", gc.name+".golden.csv")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Workers=1 output deviates from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}

			// Determinism sweep: every worker count must reproduce the
			// Workers=1 bytes exactly.
			for _, workers := range workerSweep {
				tbl, err := gc.run(Sizes{Workers: workers})
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				if out := renderCSV(t, tbl); !bytes.Equal(out, got) {
					t.Errorf("Workers=%d output differs from Workers=1:\ngot:\n%s\nwant:\n%s", workers, out, got)
				}
			}
		})
	}
}

// TestGoldenTablesWithObservability is the tentpole invariant of the obs
// layer: with a live metrics registry AND a JSONL trace recorder attached,
// every golden case still reproduces its checked-in bytes exactly, at
// Workers ∈ {1, 2, GOMAXPROCS}.
func TestGoldenTablesWithObservability(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			path := filepath.Join("testdata", gc.name+".golden.csv")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenTables with -update first): %v", err)
			}
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				reg := obs.NewRegistry()
				var traced bytes.Buffer
				rec := obs.NewRecorder(&traced)
				tbl, err := gc.run(Sizes{Workers: workers, Metrics: reg, Trace: rec})
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				if err := rec.Flush(); err != nil {
					t.Fatalf("Workers=%d: trace flush: %v", workers, err)
				}
				if got := renderCSV(t, tbl); !bytes.Equal(got, want) {
					t.Errorf("Workers=%d with observability deviates from %s:\ngot:\n%s\nwant:\n%s", workers, path, got, want)
				}
				// The instrumentation must actually have observed the run.
				if reg.Counter("local_rounds_total").Value() == 0 {
					t.Errorf("Workers=%d: local_rounds_total stayed 0 — metrics not plumbed", workers)
				}
				if traced.Len() == 0 {
					t.Errorf("Workers=%d: trace output empty — recorder not plumbed", workers)
				}
			}
		})
	}
}

// TestGoldenTablesWithContext is the cancellation counterpart of the
// observability invariant: with a LIVE context attached to every LOCAL run
// (Sizes.Ctx, threaded through the fixers and colouring machines into
// local.Options.Ctx), each golden case still reproduces its checked-in
// bytes exactly — the per-round context poll must never perturb results.
func TestGoldenTablesWithContext(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			path := filepath.Join("testdata", gc.name+".golden.csv")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenTables with -update first): %v", err)
			}
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				ctx, cancel := context.WithCancel(context.Background())
				tbl, err := gc.run(Sizes{Workers: workers, Ctx: ctx})
				cancel()
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				if got := renderCSV(t, tbl); !bytes.Equal(got, want) {
					t.Errorf("Workers=%d with ctx attached deviates from %s:\ngot:\n%s\nwant:\n%s", workers, path, got, want)
				}
			}
		})
	}
}

// TestGoldenTablesWithCheckpointing is the recovery-layer counterpart of
// the observability invariant: with checkpointing active on every
// sequential fixer run (Sizes.Checkpoint → core.Options.CheckpointEvery),
// each golden case still reproduces its checked-in bytes exactly. Capture
// is a pure copy, so snapshots must never perturb results. The sweep runs
// twice — once on the compiled CSR/bitset kernel path (the default) and
// once with kernels disabled — because the checked-in bytes pin BOTH paths:
// the kernels' strict-equivalence contract says no golden may move when
// they are switched off.
func TestGoldenTablesWithCheckpointing(t *testing.T) {
	prev := kernel.SetEnabled(true)
	defer kernel.SetEnabled(prev)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			path := filepath.Join("testdata", gc.name+".golden.csv")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenTables with -update first): %v", err)
			}
			for _, kernels := range []bool{true, false} {
				kernel.SetEnabled(kernels)
				for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
					tbl, err := gc.run(Sizes{Workers: workers, Checkpoint: 4})
					if err != nil {
						t.Fatalf("kernels=%v Workers=%d: %v", kernels, workers, err)
					}
					if got := renderCSV(t, tbl); !bytes.Equal(got, want) {
						t.Errorf("kernels=%v Workers=%d with checkpointing deviates from %s:\ngot:\n%s\nwant:\n%s",
							kernels, workers, path, got, want)
					}
				}
			}
			kernel.SetEnabled(true)
		})
	}
	t.Run("cross-path-resume", testGoldenCheckpointCrossPathResume)
}

// testGoldenCheckpointCrossPathResume proves the checkpoint-interchange
// half of the kernel equivalence contract at the fixer level: a checkpoint
// captured on the generic path resumes bit-identically on the CSR kernel
// path and vice versa. The workload is the T1 substrate (sinkless cycle,
// sequential fixer), where a checkpoint carries the full φ state.
func testGoldenCheckpointCrossPathResume(t *testing.T) {
	prev := kernel.SetEnabled(true)
	defer kernel.SetEnabled(prev)
	s, err := apps.NewSinklessWithMargin(graph.Cycle(64), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	inst := s.Instance

	sameFix := func(label string, got, want *core.Result) {
		t.Helper()
		if got.Stats != want.Stats {
			t.Fatalf("%s: stats %+v differ from baseline %+v", label, got.Stats, want.Stats)
		}
		gv, _ := got.Assignment.Values()
		wv, _ := want.Assignment.Values()
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("%s: assignment[%d] = %d, want %d", label, i, gv[i], wv[i])
			}
		}
	}
	capture := func(kernels bool) (*core.Result, []*fault.Checkpoint) {
		kernel.SetEnabled(kernels)
		var cps []*fault.Checkpoint
		res, err := core.FixSequential(inst, nil, core.Options{
			CheckpointEvery: 5,
			OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, cps
	}
	resume := func(kernels bool, cp *fault.Checkpoint) *core.Result {
		kernel.SetEnabled(kernels)
		res, err := core.FixSequential(inst, nil, core.Options{Resume: cp})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	baseline, genCps := capture(false)
	kernelRun, kerCps := capture(true)
	sameFix("kernel uninterrupted", kernelRun, baseline)
	if len(genCps) == 0 || len(kerCps) == 0 {
		t.Fatal("fixer finished before the first checkpoint — enlarge the workload")
	}
	sameFix("generic->kernel resume", resume(true, genCps[len(genCps)/2]), baseline)
	sameFix("kernel->generic resume", resume(false, kerCps[len(kerCps)/2]), baseline)
}

// TestSequentialTableCheckpointingByteIdentical drives the invariant
// through the sequential fixer, which the golden (distributed) cases do
// not exercise: the T1 table rendered with live checkpointing is byte-
// identical to the table rendered without.
func TestSequentialTableCheckpointingByteIdentical(t *testing.T) {
	sz := Sizes{Scale: 0.5, Trials: 2}
	plain, err := T1Rank2(1, sz)
	if err != nil {
		t.Fatal(err)
	}
	szCp := sz
	szCp.Checkpoint = 3
	checkpointed, err := T1Rank2(1, szCp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderCSV(t, checkpointed), renderCSV(t, plain); !bytes.Equal(got, want) {
		t.Errorf("T1 with checkpointing deviates:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceJSONLSchema runs a small T2 workload with tracing enabled and
// validates the JSONL stream: every line parses, carries the mandatory
// fields, uses an established kind, has strictly increasing seq numbers,
// and within each tagged run the round events are dense and strictly
// ordered between one run_start and one run_end.
func TestTraceJSONLSchema(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	sz := goldenSizes
	sz.Metrics = obs.NewRegistry()
	sz.Trace = rec
	if _, err := T2DistributedRank2(1, sz); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{"run_start": true, "round": true, "run_end": true, "mt_iteration": true, "span": true}
	type runState struct {
		started, ended bool
		lastRound      int
	}
	runs := map[int64]*runState{}
	lastSeq := int64(-1)
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lines++
		// Schema: only known keys, mandatory keys present.
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			t.Fatalf("line %d: invalid JSON: %v\n%s", lines, err, line)
		}
		for _, key := range []string{"kind", "seq", "t_ns"} {
			if _, ok := raw[key]; !ok {
				t.Fatalf("line %d: missing mandatory field %q: %s", lines, key, line)
			}
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d: does not match the Event schema: %v", lines, err)
		}
		if !kinds[e.Kind] {
			t.Fatalf("line %d: unknown event kind %q", lines, e.Kind)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("line %d: seq %d not strictly increasing (previous %d)", lines, e.Seq, lastSeq)
		}
		lastSeq = e.Seq

		if e.Kind == "span" || e.Kind == "mt_iteration" {
			continue
		}
		rs := runs[e.Run]
		if rs == nil {
			rs = &runState{}
			runs[e.Run] = rs
		}
		switch e.Kind {
		case "run_start":
			if rs.started {
				t.Fatalf("run %d: duplicate run_start", e.Run)
			}
			rs.started = true
		case "round":
			if !rs.started || rs.ended {
				t.Fatalf("run %d: round %d outside run_start/run_end bracket", e.Run, e.Round)
			}
			if e.Round != rs.lastRound+1 {
				t.Fatalf("run %d: round %d after round %d — not dense/ordered", e.Run, e.Round, rs.lastRound)
			}
			rs.lastRound = e.Round
		case "run_end":
			if !rs.started || rs.ended {
				t.Fatalf("run %d: unmatched run_end", e.Run)
			}
			rs.ended = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace produced no events")
	}
	for id, rs := range runs {
		if !rs.ended {
			t.Errorf("run %d: missing run_end", id)
		}
		if rs.lastRound == 0 {
			t.Errorf("run %d: no round events", id)
		}
	}
}
