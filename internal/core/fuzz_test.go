package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// FuzzPStarInvariant is the property P* (Definition 3.1) under fuzz: for
// arbitrary below-threshold instances of several families, the sequential
// fixer must maintain φ_e^u, φ_e^v ∈ [0, 2] and φ_e^u + φ_e^v ≤ 2 after
// EVERY fix step (Options.Audit re-verifies the full invariant — including
// the conditional-probability bound Pr[E_v | a] ≤ Pr[E_v]·∏φ — after each
// of the n fixes), and the completed run must certify success with
// PeakEdgeSum ≤ 2 and a final bound below 1.
//
// Inputs: family selects the instance builder, size and seed shape it,
// marginPct ∈ (0, 100) scales the criterion margin, strategy sweeps the
// value-selection strategies (including the adversarial one — the invariant
// must hold for every feasible choice).
func FuzzPStarInvariant(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(12), uint64(90), uint64(0))
	f.Add(uint64(2), uint64(1), uint64(16), uint64(75), uint64(1))
	f.Add(uint64(3), uint64(2), uint64(18), uint64(60), uint64(2))
	f.Add(uint64(7), uint64(3), uint64(15), uint64(95), uint64(0))
	f.Add(uint64(11), uint64(0), uint64(5), uint64(10), uint64(2))
	f.Fuzz(func(t *testing.T, seed, family, size, marginPct, strategy uint64) {
		n := 4 + int(size%29) // 4..32: small enough for the quadratic audit
		margin := 0.05 + 0.9*float64(marginPct%100)/100
		r := prng.New(seed)

		var inst *model.Instance
		switch family % 4 {
		case 0: // rank-2 variables on a cycle
			s, err := apps.NewSinklessWithMargin(graph.Cycle(n), margin)
			if err != nil {
				return
			}
			inst = s.Instance
		case 1: // rank-2 variables on a random 3-regular graph
			g, err := graph.RandomRegular(n-n%2, 3, r)
			if err != nil {
				return
			}
			s, err := apps.NewSinklessWithMargin(g, margin)
			if err != nil {
				return
			}
			inst = s.Instance
		case 2: // rank-3 variables on a random rank-3 hypergraph
			m := n - n%3
			h, err := hypergraph.RandomRegularRank3(m, 2, r)
			if err != nil {
				return
			}
			s, err := apps.NewHyperSinkless(h, 1-margin)
			if err != nil {
				return
			}
			inst = s.Instance
		case 3: // calibrated random conjunctions on a rank-3 hypergraph
			m := n - n%3
			h, err := hypergraph.RandomRegularRank3(m, 2, r)
			if err != nil {
				return
			}
			s, err := apps.NewRandomConjunction(h, 3, margin, r)
			if err != nil {
				return
			}
			inst = s.Instance
		}
		ok, _ := inst.LocalExponentialCriterion()
		if !ok {
			return // above-threshold builds are not covered by the theorems
		}

		opts := Options{Strategy: Strategy(1 + strategy%3), Audit: true}
		res, err := FixSequential(inst, nil, opts)
		if err != nil {
			t.Fatalf("P* violated (family %d, n %d, margin %.3f, strategy %d): %v",
				family%4, n, margin, opts.Strategy, err)
		}
		if res.Stats.PeakEdgeSum > 2+1e-9 {
			t.Fatalf("peak edge sum %v > 2", res.Stats.PeakEdgeSum)
		}
		if res.Stats.MaxFinalProbQuotient >= 1+1e-9 {
			t.Fatalf("final certified bound %v >= 1 below the threshold", res.Stats.MaxFinalProbQuotient)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			t.Fatalf("%d violated events below the threshold", res.Stats.FinalViolatedEvents)
		}

		// Re-audit the terminal state independently of the in-loop audits.
		empty := model.NewAssignment(inst)
		base := make([]float64, inst.NumEvents())
		for v := range base {
			base[v] = inst.CondProb(v, empty)
		}
		if err := res.PStar.Audit(inst, res.Assignment, base, 1e-6); err != nil {
			t.Fatalf("terminal P* audit: %v", err)
		}
		for id := 0; id < inst.DependencyGraph().M(); id++ {
			e := inst.DependencyGraph().Edge(id)
			u, v := res.PStar.Value(id, e.U), res.PStar.Value(id, e.V)
			if u < -1e-9 || u > 2+1e-9 || v < -1e-9 || v > 2+1e-9 || math.IsNaN(u) || math.IsNaN(v) {
				t.Fatalf("edge %d has φ values (%v, %v) outside [0,2]", id, u, v)
			}
			if u+v > 2+1e-9 {
				t.Fatalf("edge %d has φ sum %v > 2", id, u+v)
			}
		}
	})
}
