// Hypergraph orientations: the paper's rank-3 application. On a 3-uniform
// hypergraph, compute THREE simultaneous orientations such that no node is
// a sink (head of all its hyperedges) in two or more of them — a problem
// that sits strictly below the exponential threshold with no relaxation
// knob, solved here by the Theorem 1.3 fixer and, for comparison, by the
// distributed Corollary 1.4 algorithm.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hypergraph_orientations:", err)
		os.Exit(1)
	}
}

func run() error {
	// A random 3-uniform hypergraph on 24 nodes where every node lies in
	// exactly 2 hyperedges (the minimum degree for which the criterion
	// p < 2^-d holds — the paper's parameter discussion).
	r := lll.NewRand(7)
	h, err := lll.NewRandomRegularRank3(24, 2, r)
	if err != nil {
		return err
	}
	t, err := lll.NewThreeOrientations(h)
	if err != nil {
		return err
	}
	p, d, rank := t.Instance.Params()
	_, margin := lll.CheckExponentialCriterion(t.Instance)
	fmt.Printf("hypergraph: %d nodes, %d hyperedges, rank %d\n", h.N(), h.M(), rank)
	fmt.Printf("instance:   p=%.6f d=%d  margin p*2^d=%.4f\n", p, d, margin)

	// Sequential deterministic solve (Theorem 1.3, property P*).
	seq, err := lll.Solve(t.Instance, lll.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("sequential: violated=%d  event bound=%.3f <= 2^d=%d\n",
		seq.Stats.FinalViolatedEvents, seq.Stats.MaxEventBound, 1<<uint(d))

	// Distributed solve (Corollary 1.4: distance-2 colouring + classes).
	dist, err := lll.SolveDistributed(t.Instance, lll.Options{}, lll.LocalOptions{IDSeed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("distributed: violated=%d  rounds: colouring=%d + fixing=%d = %d (classes=%d)\n",
		dist.ViolatedEvents, dist.ColoringRounds, dist.FixingRounds, dist.TotalRounds, dist.Classes)

	// Show the three orientations of the first few hyperedges and the
	// per-node sink counts.
	fmt.Println("first hyperedges (heads in orientations 1/2/3):")
	for id := 0; id < h.M() && id < 6; id++ {
		m := h.Edge(id)
		fmt.Printf("  {%2d,%2d,%2d}: %d / %d / %d\n", m[0], m[1], m[2],
			t.HeadOf(id, 0, seq.Assignment), t.HeadOf(id, 1, seq.Assignment), t.HeadOf(id, 2, seq.Assignment))
	}
	worst := 0
	for v := 0; v < h.N(); v++ {
		if c := t.SinkCount(v, seq.Assignment); c > worst {
			worst = c
		}
	}
	fmt.Printf("max sink count over nodes: %d (must be <= 1)\n", worst)
	if viol := t.Violations(seq.Assignment); len(viol) > 0 {
		return fmt.Errorf("violating nodes: %v", viol)
	}
	return nil
}
