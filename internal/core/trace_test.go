package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/prng"
)

func TestTraceRecordsEveryStep(t *testing.T) {
	s, err := apps.NewSinklessBiasedCycle(10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	res := mustFix(t, s.Instance, nil, Options{Trace: trace})
	assertSolved(t, res)
	if len(trace.Steps) != s.Instance.NumVars() {
		t.Fatalf("%d steps for %d variables", len(trace.Steps), s.Instance.NumVars())
	}
	for i, step := range trace.Steps {
		if step.Index != i {
			t.Fatalf("step %d has index %d", i, step.Index)
		}
		if step.Rank != 2 || len(step.Events) != 2 {
			t.Fatalf("step %d: rank %d events %v", i, step.Rank, step.Events)
		}
		if len(step.Incs) != 2 || len(step.Before) != 2 || len(step.After) != 2 {
			t.Fatalf("step %d: slice lengths wrong", i)
		}
		// The recorded products must respect the invariant: the after
		// product is at most Inc * before within tolerance... in fact the
		// rank-2 update sets it exactly (modulo clamping).
		for j := range step.Events {
			want := step.Incs[j] * step.Before[j]
			if step.After[j] > want+1e-9 && want <= 2 {
				t.Fatalf("step %d event %d: after %v exceeds Inc*before %v", i, j, step.After[j], want)
			}
		}
	}
}

func TestTraceRank3Bookkeeping(t *testing.T) {
	r := prng.New(61)
	h, err := hypergraph.RandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	res := mustFix(t, s.Instance, nil, Options{Trace: trace})
	assertSolved(t, res)
	for i, step := range trace.Steps {
		if step.Rank != 3 {
			t.Fatalf("step %d rank %d", i, step.Rank)
		}
		// Lemma 3.2: the new clique products dominate Inc * old products.
		for j := range step.Events {
			want := step.Incs[j] * step.Before[j]
			if step.After[j] < want-1e-6 {
				t.Fatalf("step %d event %d: after %v < Inc*before %v (P* update wrong)",
					i, j, step.After[j], want)
			}
		}
		// And the expectation identity: the Inc of the chosen value must
		// be finite and non-negative.
		for _, inc := range step.Incs {
			if inc < 0 || math.IsInf(inc, 0) || math.IsNaN(inc) {
				t.Fatalf("step %d: bad Inc %v", i, inc)
			}
		}
	}
}

func TestTraceCSV(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(4), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := FixSequential(s.Instance, nil, Options{Trace: trace}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := trace.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+s.Instance.NumVars() {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+s.Instance.NumVars())
	}
	if !strings.HasPrefix(lines[0], "index,var,rank,value") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ";") {
		t.Fatalf("expected ';'-joined lists in %q", lines[1])
	}
}

func TestNoTraceNoOverhead(t *testing.T) {
	// Without a trace the fixer must not allocate step records.
	s, err := apps.NewSinkless(graph.Cycle(6), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res := mustFix(t, s.Instance, nil, Options{})
	assertSolved(t, res)
}
