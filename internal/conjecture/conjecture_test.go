package conjecture

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/prng"
	"repro/internal/srep"
)

func TestWitnessBasics(t *testing.T) {
	w, ok := Feasible([]float64{1, 1, 1})
	if !ok {
		t.Fatal("(1,1,1) must be feasible (all sides 1)")
	}
	if !w.Valid(1e-12) {
		t.Fatalf("invalid witness: %+v", w)
	}
	if !w.Dominates([]float64{1, 1, 1}, 1e-9) {
		t.Fatalf("witness products %v do not dominate", w.Products())
	}
}

func TestFeasibleRejectsImpossible(t *testing.T) {
	// a_i <= 2^(r-1) is necessary; far beyond that must fail.
	if _, ok := Feasible([]float64{5, 0, 0}); ok {
		t.Fatal("(5,0,0) accepted for r=3 (max product is 4)")
	}
	if _, ok := Feasible([]float64{4, 4, 4}); ok {
		t.Fatal("(4,4,4) accepted (pairwise sums forbid it)")
	}
	if _, ok := Feasible([]float64{-1, 0, 0}); ok {
		t.Fatal("negative target accepted")
	}
	if _, ok := Feasible([]float64{1}); ok {
		t.Fatal("r=1 accepted")
	}
}

func TestFeasibleRank2MatchesTheory(t *testing.T) {
	// For r = 2 the condition is the existence of x+y <= 2 with x >= a,
	// y >= b... actually products are single values: feasible iff
	// a <= 2, b <= 2, and a + b <= 2? No: the two sides are x_{12}^1 and
	// x_{12}^2 with x+y <= 2 and x >= a, y >= b, so feasibility is
	// exactly a + b <= 2 (plus range).
	r := prng.New(1)
	for i := 0; i < 2000; i++ {
		a := r.Float64() * 2.5
		b := r.Float64() * 2.5
		_, got := Feasible([]float64{a, b})
		want := a+b <= 2+1e-9 && a <= 2 && b <= 2
		if got != want {
			t.Fatalf("Feasible(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestFeasibleRank3MatchesClosedForm(t *testing.T) {
	// The numeric solver must agree with the paper's exact surface on
	// points comfortably inside / outside S_rep. (Points within eps of the
	// boundary may go either way numerically.)
	r := prng.New(2)
	const margin = 0.02
	agree, checked := 0, 0
	for i := 0; i < 3000; i++ {
		a := r.Float64() * 4.2
		b := r.Float64() * 4.2
		c := r.Float64() * 4.2
		exact := srep.IsRepresentable(a, b, c, srep.DefaultTol)
		// Skip near-boundary points.
		if a+b <= 4 {
			f := srep.F(math.Min(a, 4), math.Min(b, 4))
			if math.Abs(c-f) < margin || math.Abs(a+b-4) < margin {
				continue
			}
		} else if a+b-4 < margin {
			continue
		}
		checked++
		_, numeric := Feasible([]float64{a, b, c})
		if numeric == exact {
			agree++
		} else if exact && !numeric {
			// A feasible point the solver missed is a real solver failure.
			t.Fatalf("solver missed representable (%v, %v, %v)", a, b, c)
		} else {
			// Solver claiming feasibility outside S_rep would be a
			// soundness bug: the witness validation must prevent it.
			t.Fatalf("solver accepted non-representable (%v, %v, %v)", a, b, c)
		}
	}
	if checked == 0 || agree != checked {
		t.Fatalf("agreement %d/%d", agree, checked)
	}
}

func TestFeasibleSoundnessRank4(t *testing.T) {
	// Every accepted witness must be genuinely valid and dominating —
	// soundness is unconditional even where completeness is heuristic.
	r := prng.New(3)
	for i := 0; i < 3000; i++ {
		target := []float64{
			r.Float64() * 8, r.Float64() * 8, r.Float64() * 8, r.Float64() * 8,
		}
		if w, ok := Feasible(target); ok {
			if !w.Valid(1e-9) {
				t.Fatalf("invalid witness accepted for %v", target)
			}
			if !w.Dominates(target, 1e-6) {
				t.Fatalf("non-dominating witness accepted for %v: %v", target, w.Products())
			}
		}
	}
}

func TestFeasibleAllOnesAnyRank(t *testing.T) {
	for r := 2; r <= 8; r++ {
		target := make([]float64, r)
		for i := range target {
			target[i] = 1
		}
		if _, ok := Feasible(target); !ok {
			t.Fatalf("all-ones infeasible at r=%d", r)
		}
	}
}

func TestFixSequentialRMatchesRank3Theory(t *testing.T) {
	// On rank-3 instances the experimental fixer must match the proven
	// one: zero violations, zero infeasibilities.
	r := prng.New(5)
	h, err := hypergraph.RandomRegularRank3(24, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		var order []int
		if trial > 0 {
			order = r.Perm(s.Instance.NumVars())
		}
		res, err := FixSequentialR(s.Instance, order)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.FinalViolatedEvents != 0 {
			t.Fatalf("trial %d: %d violations", trial, res.Stats.FinalViolatedEvents)
		}
		if res.Stats.Infeasible != 0 {
			t.Fatalf("trial %d: %d infeasibilities on a rank-3 instance", trial, res.Stats.Infeasible)
		}
		if res.Stats.PeakCertBound >= 1 {
			t.Fatalf("trial %d: peak bound %v >= 1", trial, res.Stats.PeakCertBound)
		}
	}
}

func TestConjecture15OnRank4Instances(t *testing.T) {
	// The empirical content of Conjecture 1.5: rank-4 instances strictly
	// below the threshold are always solved with no infeasibilities.
	r := prng.New(7)
	for _, deg := range []int{2, 3} {
		n := 24
		for n*deg%4 != 0 {
			n++
		}
		h, err := hypergraph.RandomRegularUniform(n, deg, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		// margin: ((1-δ)/4)^deg · 2^(3·deg) = (2(1-δ))^deg needs δ > 1/2.
		s, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if ok, margin := s.Instance.ExponentialCriterion(); !ok {
			t.Fatalf("deg=%d: criterion fails, margin %v", deg, margin)
		}
		if s.Instance.Rank() != 4 {
			t.Fatalf("rank = %d", s.Instance.Rank())
		}
		for trial := 0; trial < 5; trial++ {
			var order []int
			if trial > 0 {
				order = r.Perm(s.Instance.NumVars())
			}
			res, err := FixSequentialR(s.Instance, order)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.FinalViolatedEvents != 0 {
				t.Fatalf("deg=%d trial %d: %d violations (conjecture counterexample?)",
					deg, trial, res.Stats.FinalViolatedEvents)
			}
			if res.Stats.Infeasible != 0 {
				t.Fatalf("deg=%d trial %d: %d infeasibilities", deg, trial, res.Stats.Infeasible)
			}
			if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
				t.Fatalf("deg=%d trial %d: sinks %v", deg, trial, sinks)
			}
		}
	}
}

func TestConjecture15OnRank5Instance(t *testing.T) {
	r := prng.New(11)
	h, err := hypergraph.RandomRegularUniform(20, 2, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	// margin: ((1-δ)/5)^2 · 2^8 < 1 needs (1-δ) < 5/16: δ > 11/16.
	s, err := apps.NewHyperSinklessUniform(h, 5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if ok, margin := s.Instance.ExponentialCriterion(); !ok {
		t.Fatalf("criterion fails, margin %v", margin)
	}
	res, err := FixSequentialR(s.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 || res.Stats.Infeasible != 0 {
		t.Fatalf("rank-5 run failed: %+v", res.Stats)
	}
}

func TestFixSequentialRMixedWithGraphInstance(t *testing.T) {
	// Sanity: the generalized fixer also handles plain rank-2 instances.
	s, err := apps.NewSinkless(graph.Cycle(12), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixSequentialR(s.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("%d violations", res.Stats.FinalViolatedEvents)
	}
}

func BenchmarkFeasibleRank4(b *testing.B) {
	target := []float64{1.2, 0.8, 1.5, 0.6}
	for i := 0; i < b.N; i++ {
		if _, ok := Feasible(target); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkFixSequentialRank4(b *testing.B) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularUniform(24, 2, 4, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixSequentialR(s.Instance, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWitnessString(t *testing.T) {
	w, ok := Feasible([]float64{1, 1, 1})
	if !ok {
		t.Fatal("all-ones infeasible")
	}
	s := w.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String() = %q", s)
	}
}

func TestFixDistributedRWithPrivateVars(t *testing.T) {
	// An instance with rank-1 private coins alongside rank-4 hyperedges:
	// the distributed machine's fixPrivate path.
	r := prng.New(31)
	h, err := hypergraph.RandomRegularUniform(16, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	// Build a hyper-sinkless instance, then append one private coin per
	// event whose bad set never fires alone (keeps the criterion intact).
	base, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// FixDistributedR on the base instance itself must fix rank-1 vars if
	// any existed; here we just re-run to execute the path with an order
	// where some classes are empty.
	res, err := FixDistributedR(base.Instance, local.Options{IDSeed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
}
