package service

import (
	"testing"
)

// BenchmarkCacheHitPath pins the serving-latency ladder the cluster tier
// is built around: a warm resubmit served from the node's own result
// cache ("local") versus the same warm entry pulled across the peer-fill
// HTTP hop from its home node ("peer"). Both paths go through the full
// job lifecycle — submit, queue, scheduler, event stream — so the delta
// is exactly the price of a remote hit: one localhost round trip plus a
// summary decode. The peer path must stay far below a re-solve (that is
// the point of the fill), and the gate tracks both ns/op trajectories so
// neither path silently gains a network- or lock-shaped regression.
func BenchmarkCacheHitPath(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		svcs, _ := clusterPair(b)
		sa := svcs["a"]
		seed, _ := seedOwnedBy(b, sa, "a")
		js := cacheSpec(seed)
		benchRun(b, sa, js) // cold solve warms the owner's cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sum := benchRun(b, sa, js); !sum.CacheHit {
				b.Fatal("warm resubmit on the owner missed the cache")
			}
		}
	})

	b.Run("peer", func(b *testing.B) {
		svcs, _ := clusterPair(b)
		sa, sb := svcs["a"], svcs["b"]
		seed, key := seedOwnedBy(b, sa, "a")
		js := cacheSpec(seed)
		benchRun(b, sa, js) // warm the entry on its home node
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Evict the fill's local copy so every iteration misses on b
			// and is served through the peer protocol again. The eviction
			// puts are map operations, noise next to the HTTP round trip.
			for k := uint64(0); k < 8; k++ {
				if evict := ^k; evict != key {
					sb.cache.put(evict, &Summary{Satisfied: true})
				}
			}
			if sum := benchRun(b, sb, js); !sum.CacheHit {
				b.Fatal("non-owner resubmit was not served by the peer fill")
			}
		}
	})
}
