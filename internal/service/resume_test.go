package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// resumeSpec is the mtseq workload the cross-process resume test drives:
// checkpointed every resampling so an interrupt can land anywhere.
func resumeSpec(seed uint64) JobSpec {
	return JobSpec{
		Family: FamilySinkless, N: 24, Algorithm: AlgMTSeq, Seed: seed,
		CheckpointEvery: 1,
	}
}

// findResumeSeed picks a seed whose uninterrupted mtseq run needs enough
// resamplings that cutting it off after interruptBudget leaves real work
// for the resumed process, and returns that seed with its baseline summary.
func findResumeSeed(t *testing.T, s *Service, interruptBudget int) (uint64, *Summary) {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		sum := runJob(t, s, resumeSpec(seed))
		if sum.Satisfied && sum.Resamplings >= interruptBudget+3 {
			return seed, sum
		}
	}
	t.Fatalf("no seed in [1,200) needs more than %d resamplings", interruptBudget)
	return 0, nil
}

// childOutput is what the re-exec'd resume process reports back.
type childOutput struct {
	TraceID string   `json:"trace_id"`
	Result  *Summary `json:"result"`
	Error   string   `json:"error,omitempty"`
}

// TestCrossProcessCheckpointResume is the migration contract end to end
// across real process boundaries: a job interrupted mid-run exports its
// fault.Checkpoint over HTTP, a SECOND PROCESS (this test binary re-exec'd)
// resumes it through its own service's HTTP API, and the resumed run's
// final assignment is bit-identical — same AssignmentHash, same total
// resampling count — to an uninterrupted run of the same spec in the first
// process. The job's trace ID survives the migration.
func TestCrossProcessCheckpointResume(t *testing.T) {
	const interruptBudget = 5

	// Uninterrupted baseline, solved entirely in this process.
	baselineSvc := New(Config{QueueCap: 64, MaxInFlight: 2})
	defer baselineSvc.Shutdown(context.Background())
	seed, baseline := findResumeSeed(t, baselineSvc, interruptBudget)
	if baseline.AssignmentHash == 0 {
		t.Fatal("baseline run reported no assignment hash")
	}

	// Interrupted run: same spec, budget cut to interruptBudget, served
	// over HTTP like a real node. The budget exhausts, the last checkpoint
	// sits exactly at the cutoff, and the job finishes unsatisfied.
	_, ts := newTestServer(t, Config{QueueCap: 64, MaxInFlight: 2})
	spec := resumeSpec(seed)
	spec.MaxResamplings = interruptBudget
	body, _ := json.Marshal(spec)
	v, resp := postJob(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interrupted submit status = %d", resp.StatusCode)
	}
	waitViewDone(t, ts, v.ID)

	// Export the checkpoint over the wire — this JSON blob is all the
	// second process gets.
	cpResp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	exportJSON, err := io.ReadAll(cpResp.Body)
	cpResp.Body.Close()
	if err != nil || cpResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint export: status %d, err %v", cpResp.StatusCode, err)
	}
	var export CheckpointExport
	if err := json.Unmarshal(exportJSON, &export); err != nil {
		t.Fatalf("decoding export: %v", err)
	}
	if !export.Found || export.Checkpoint == nil {
		t.Fatalf("no checkpoint in export: %s", exportJSON)
	}
	if export.Checkpoint.Resamplings != interruptBudget {
		t.Fatalf("checkpoint at %d resamplings, want %d", export.Checkpoint.Resamplings, interruptBudget)
	}

	// Re-exec this test binary as the resuming process.
	dir := t.TempDir()
	exportPath := filepath.Join(dir, "export.json")
	outPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(exportPath, exportJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestResumeChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"LLL_RESUME_CHILD=1",
		"LLL_RESUME_EXPORT="+exportPath,
		"LLL_RESUME_OUT="+outPath,
	)
	var childLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childLog, &childLog
	if err := cmd.Run(); err != nil {
		t.Fatalf("resume child failed: %v\n%s", err, childLog.String())
	}
	outJSON, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("child wrote no output: %v\n%s", err, childLog.String())
	}
	var out childOutput
	if err := json.Unmarshal(outJSON, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" {
		t.Fatalf("child reported: %s", out.Error)
	}

	if out.TraceID != export.TraceID {
		t.Errorf("trace ID not preserved across processes: %q -> %q", export.TraceID, out.TraceID)
	}
	if out.Result == nil || !out.Result.Satisfied {
		t.Fatalf("resumed run not satisfied: %+v", out.Result)
	}
	if out.Result.AssignmentHash != baseline.AssignmentHash {
		t.Errorf("resumed assignment hash %#x != uninterrupted baseline %#x",
			out.Result.AssignmentHash, baseline.AssignmentHash)
	}
	if out.Result.Resamplings != baseline.Resamplings {
		t.Errorf("resumed total resamplings %d != baseline %d",
			out.Result.Resamplings, baseline.Resamplings)
	}
}

// TestResumeChildProcess is not a standalone test: it is the second process
// of TestCrossProcessCheckpointResume, re-exec'd with LLL_RESUME_CHILD=1.
// It reads the CheckpointExport, submits the resume spec to its OWN service
// over HTTP, and writes the terminal view to LLL_RESUME_OUT.
func TestResumeChildProcess(t *testing.T) {
	if os.Getenv("LLL_RESUME_CHILD") != "1" {
		t.Skip("helper process for TestCrossProcessCheckpointResume")
	}
	outPath := os.Getenv("LLL_RESUME_OUT")
	fail := func(format string, args ...any) {
		blob, _ := json.Marshal(childOutput{Error: fmt.Sprintf(format, args...)})
		os.WriteFile(outPath, blob, 0o644)
		t.Fatalf(format, args...)
	}
	exportJSON, err := os.ReadFile(os.Getenv("LLL_RESUME_EXPORT"))
	if err != nil {
		fail("reading export: %v", err)
	}
	var export CheckpointExport
	if err := json.Unmarshal(exportJSON, &export); err != nil {
		fail("decoding export: %v", err)
	}

	spec := export.ResumeSpec()
	spec.MaxResamplings = 0 // lift the interrupting budget: run to completion
	body, err := json.Marshal(spec)
	if err != nil {
		fail("encoding resume spec: %v", err)
	}

	_, ts := newTestServer(t, Config{QueueCap: 16, MaxInFlight: 2, Metrics: obs.NewRegistry()})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fail("submitting resume job: %v", err)
	}
	var v View
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fail("resume submit status %d: %s", resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		resp.Body.Close()
		fail("decoding job view: %v", err)
	}
	resp.Body.Close()
	final := waitViewDone(t, ts, v.ID)

	blob, err := json.MarshalIndent(childOutput{TraceID: final.TraceID, Result: final.Result}, "", "  ")
	if err != nil {
		fail("encoding output: %v", err)
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fail("writing output: %v", err)
	}
}

// waitViewDone polls the job view over HTTP until the job is terminal,
// failing unless that terminal state is done.
func waitViewDone(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != StateDone {
				t.Fatalf("job %s ended %q (%s), want done", id, v.State, v.Error)
			}
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
