package tenant

// Signals are the live latency observations one AutoTuner step consumes.
// The service derives RunP99/QueueP99 from interval deltas of the PR 2
// latency histograms (service_job_run_seconds / service_job_queue_seconds),
// so the controller sees a sliding-window view, and FastBurn from the SLO
// engine's multi-window burn rate.
type Signals struct {
	// FastBurn: the SLO engine's fast-burn alarm is tripped.
	FastBurn bool
	// RunP99 / QueueP99 are interval p99s in seconds (0 when no samples
	// landed in the interval — treated as "no signal", never as "fast").
	RunP99   float64
	QueueP99 float64
}

// AutoTuner is the AIMD controller that tunes the scheduler's running
// limit (MaxInFlight): multiplicative decrease while the system shows
// overload (SLO fast burn, or run p99 above the threshold — concurrency
// beyond the engine pool's capacity inflates every job), additive increase
// while jobs queue up with healthy run latency (spare capacity is being
// left idle). The asymmetry is deliberate: back off fast, probe slowly.
//
// The zero value is not useful; fill Min/Max (and optionally the
// thresholds) and call Next on each control tick. AutoTuner is pure —
// state lives in the caller's current limit — so it is trivially testable.
type AutoTuner struct {
	// Min / Max bound the limit (Min >= 1).
	Min, Max int
	// RunThreshold is the run-latency p99 (seconds) above which the tuner
	// treats the system as overloaded; 0 disables the latency trigger
	// (fast burn still decreases).
	RunThreshold float64
	// QueueThreshold is the queue-wait p99 (seconds) above which the tuner
	// grows the limit when run latency is healthy; 0 grows whenever any
	// queue wait was observed.
	QueueThreshold float64
	// Step is the additive increase per tick (default 1).
	Step int
	// Decrease is the multiplicative factor applied on overload, in
	// (0, 1); 0 defaults to 0.5.
	Decrease float64
}

// Next returns the limit for the coming interval given the current limit
// and the last interval's signals.
func (t AutoTuner) Next(cur int, s Signals) int {
	min, max := t.Min, t.Max
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if cur < min {
		cur = min
	}
	if cur > max {
		cur = max
	}
	step := t.Step
	if step <= 0 {
		step = 1
	}
	dec := t.Decrease
	if dec <= 0 || dec >= 1 {
		dec = 0.5
	}
	overloaded := s.FastBurn || (t.RunThreshold > 0 && s.RunP99 > t.RunThreshold)
	backlogged := s.QueueP99 > t.QueueThreshold
	switch {
	case overloaded:
		cur = int(float64(cur) * dec)
	case backlogged && s.QueueP99 > 0:
		cur += step
	}
	if cur < min {
		cur = min
	}
	if cur > max {
		cur = max
	}
	return cur
}
