package lll_test

import (
	"fmt"

	lll "repro"
)

// ExampleSolve demonstrates the basic flow: build an instance below the
// threshold, validate the criterion, and fix all variables
// deterministically.
func ExampleSolve() {
	s, err := lll.NewSinkless(lll.NewCycle(16), 0.25)
	if err != nil {
		panic(err)
	}
	ok, margin := lll.CheckExponentialCriterion(s.Instance)
	fmt.Printf("margin p*2^d = %.4f, criterion holds: %v\n", margin, ok)

	res, err := lll.Solve(s.Instance, lll.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("violated events: %d\n", res.Stats.FinalViolatedEvents)
	fmt.Printf("sinks: %d\n", len(s.Sinks(res.Assignment)))
	// Output:
	// margin p*2^d = 0.5625, criterion holds: true
	// violated events: 0
	// sinks: 0
}

// ExampleSolveInOrder shows that the guarantee holds for any fixing order —
// here the reverse order with the worst feasible (adversarial) choices.
func ExampleSolveInOrder() {
	s, err := lll.NewSinklessBiasedCycle(12, 0.4)
	if err != nil {
		panic(err)
	}
	n := s.Instance.NumVars()
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	res, err := lll.SolveInOrder(s.Instance, order, lll.Options{Strategy: lll.StrategyAdversarial})
	if err != nil {
		panic(err)
	}
	fmt.Printf("violated events: %d\n", res.Stats.FinalViolatedEvents)
	// Output:
	// violated events: 0
}

// ExampleIsRepresentable verifies the paper's Figure 2 triple and
// decomposes it into explicit edge values.
func ExampleIsRepresentable() {
	fmt.Println(lll.IsRepresentable(0.25, 1.5, 0.1))
	w, err := lll.DecomposeTriple(0.25, 1.5, 0.1)
	if err != nil {
		panic(err)
	}
	a, b, c := w.Triple()
	fmt.Printf("%.2f %.2f %.2f\n", a, b, c)
	// Output:
	// true
	// 0.25 1.50 0.10
}

// ExampleSurfaceF evaluates the boundary surface of S_rep at landmark
// points (Lemma 3.5).
func ExampleSurfaceF() {
	fmt.Println(lll.SurfaceF(0, 0))
	fmt.Println(lll.SurfaceF(1, 1))
	fmt.Println(lll.SurfaceF(2, 2))
	// Output:
	// 4
	// 1
	// 0
}

// ExampleValidate shows the diagnostic errors for instances the theorems do
// not cover.
func ExampleValidate() {
	// Sinkless orientation with slack 0 sits exactly AT the threshold.
	s, err := lll.NewSinkless(lll.NewCycle(6), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(lll.Validate(s.Instance) != nil)
	// Output:
	// true
}
