package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

func TestGreedySequential(t *testing.T) {
	r := prng.New(1)
	graphs := []*graph.Graph{
		graph.Cycle(7),
		graph.Complete(6),
		graph.Grid(5, 5),
		graph.RandomBoundedDegree(40, 80, 6, r),
	}
	for i, g := range graphs {
		colors := Greedy(g)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if m := MaxColor(colors); m > g.MaxDegree() {
			t.Fatalf("graph %d: max colour %d > Δ = %d", i, m, g.MaxDegree())
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	g := graph.Path(3)
	if err := Verify(g, []int{0, 0, 1}); err == nil {
		t.Fatal("monochromatic edge not detected")
	}
	if err := Verify(g, []int{0, -1, 0}); err == nil {
		t.Fatal("uncoloured node not detected")
	}
	if err := Verify(g, []int{0, 1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if err := Verify(g, []int{0, 1, 0}); err != nil {
		t.Fatalf("valid colouring rejected: %v", err)
	}
}

func TestVerifyEdgeColoring(t *testing.T) {
	g := graph.Path(3) // edges {0,1}, {1,2} share node 1
	if err := VerifyEdgeColoring(g, []int{0, 0}); err == nil {
		t.Fatal("conflicting edge colours not detected")
	}
	if err := VerifyEdgeColoring(g, []int{0, 1}); err != nil {
		t.Fatalf("valid edge colouring rejected: %v", err)
	}
	if err := VerifyEdgeColoring(g, []int{0}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestPlanStepProperties(t *testing.T) {
	for _, delta := range []int{1, 2, 3, 4, 6, 8} {
		k := 1 << 30
		for {
			s, ok := PlanStep(k, delta)
			if !ok {
				break
			}
			if s.NewK() >= k {
				t.Fatalf("Δ=%d: step from %d to %d makes no progress", delta, k, s.NewK())
			}
			if s.Q < delta*(s.T-1)+1 {
				t.Fatalf("Δ=%d: q=%d violates q ≥ Δ(t-1)+1 with t=%d", delta, s.Q, s.T)
			}
			// q^t must cover the palette.
			pow := 1
			for i := 0; i < s.T; i++ {
				pow *= s.Q
			}
			if pow < k {
				t.Fatalf("Δ=%d: q^t = %d < K = %d", delta, pow, k)
			}
			k = s.NewK()
		}
	}
}

func TestScheduleShortAndFinalPaletteSmall(t *testing.T) {
	for _, delta := range []int{2, 3, 4, 6, 10} {
		k0 := 1 << 45
		sched := Schedule(k0, delta)
		if len(sched) > 8 {
			t.Fatalf("Δ=%d: schedule length %d (expected O(log*))", delta, len(sched))
		}
		final := FinalPalette(k0, delta)
		if final > 50*delta*delta+200 {
			t.Fatalf("Δ=%d: final palette %d not O(Δ²)", delta, final)
		}
	}
}

func TestScheduleLengthGrowsLikeLogStar(t *testing.T) {
	// log*-type growth: going from 2^16 to 2^48 initial colours should add
	// at most 2 steps.
	d16 := len(Schedule(1<<16, 4))
	d48 := len(Schedule(1<<48, 4))
	if d48-d16 > 2 {
		t.Fatalf("schedule grew from %d to %d steps", d16, d48)
	}
}

// sequentialLinial applies one Linial step to every node of g at once and
// checks properness, mimicking what the machine does per round.
func sequentialLinial(t *testing.T, g *graph.Graph, colors []int, s Step) []int {
	t.Helper()
	next := make([]int, len(colors))
	for v := range colors {
		var nbr []int
		for _, u := range g.Neighbors(v) {
			nbr = append(nbr, colors[u])
		}
		c, err := Reduce(s, colors[v], nbr)
		if err != nil {
			t.Fatalf("Reduce at node %d: %v", v, err)
		}
		if c < 0 || c >= s.NewK() {
			t.Fatalf("new colour %d outside [0, %d)", c, s.NewK())
		}
		next[v] = c
	}
	if err := Verify(g, next); err != nil {
		t.Fatalf("coloring not proper after step: %v", err)
	}
	return next
}

func TestReducePreservesProperness(t *testing.T) {
	r := prng.New(3)
	g, err := graph.RandomRegular(60, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	// Unique IDs as initial colours.
	k0 := 60 * 60 * 60
	colors := make([]int, g.N())
	perm := r.Perm(k0)
	for v := range colors {
		colors[v] = perm[v]
	}
	for _, s := range Schedule(k0, g.MaxDegree()) {
		colors = sequentialLinial(t, g, colors, s)
	}
	final := FinalPalette(k0, g.MaxDegree())
	if m := MaxColor(colors); m >= final {
		t.Fatalf("colour %d outside final palette %d", m, final)
	}
}

func TestReduceValidation(t *testing.T) {
	s := Step{K: 100, Q: 11, T: 2}
	if _, err := Reduce(s, 200, nil); err == nil {
		t.Fatal("out-of-palette colour accepted")
	}
	if _, err := Reduce(s, 5, []int{5}); err == nil {
		t.Fatal("improper input colouring accepted")
	}
	if _, err := Reduce(s, 5, []int{200}); err == nil {
		t.Fatal("out-of-palette neighbour accepted")
	}
}

func TestDistributedVertexColoring(t *testing.T) {
	r := prng.New(5)
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(32)},
		{"grid", graph.Grid(6, 6)},
		{"random-regular", mustRegular(t, 40, 4, r)},
		{"complete", graph.Complete(7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			target := tt.g.MaxDegree() + 1
			res, err := DistributedVertexColoring(tt.g, local.Options{IDSeed: 9}, target)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tt.g, res.Colors); err != nil {
				t.Fatal(err)
			}
			if m := MaxColor(res.Colors); m >= target {
				t.Fatalf("colour %d outside target palette %d", m, target)
			}
			if res.Rounds <= 0 {
				t.Fatal("no rounds recorded")
			}
		})
	}
}

func mustRegular(t *testing.T, n, d int, r *prng.Rand) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDistributedVertexColoringRejectsSmallTarget(t *testing.T) {
	if _, err := DistributedVertexColoring(graph.Complete(5), local.Options{}, 3); err == nil {
		t.Fatal("target below Δ+1 accepted")
	}
}

func TestDistributedColoringRoundsLogStarGrowth(t *testing.T) {
	// Rounds should be dominated by the O(Δ²) reduction and grow only by
	// O(1) when n explodes (the log* term).
	rounds := func(n int) int {
		g := graph.Cycle(n)
		res, err := DistributedVertexColoring(g, local.Options{IDSeed: 11}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	small, big := rounds(16), rounds(2048)
	if big-small > 3 {
		t.Fatalf("rounds grew from %d to %d; expected log* growth", small, big)
	}
}

func TestDistributedEdgeColoring(t *testing.T) {
	r := prng.New(7)
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.Grid(4, 5),
		mustRegular(t, 24, 5, r),
	} {
		res, err := DistributedEdgeColoring(g, local.Options{IDSeed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyEdgeColoring(g, res.Colors); err != nil {
			t.Fatal(err)
		}
		if res.Palette > 2*g.MaxDegree()-1 {
			t.Fatalf("palette %d exceeds 2Δ-1 = %d", res.Palette, 2*g.MaxDegree()-1)
		}
		if res.SimFactor != 2 {
			t.Fatalf("SimFactor = %d, want 2", res.SimFactor)
		}
	}
}

func TestDistributedDistance2Coloring(t *testing.T) {
	r := prng.New(9)
	for _, g := range []*graph.Graph{
		graph.Cycle(18),
		graph.Grid(4, 4),
		mustRegular(t, 30, 3, r),
	} {
		res, err := DistributedDistance2Coloring(g, local.Options{IDSeed: 15})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyDistance2(g, res.Colors); err != nil {
			t.Fatal(err)
		}
		d := g.MaxDegree()
		if res.Palette > d*d+1 {
			t.Fatalf("palette %d exceeds Δ²+1 = %d", res.Palette, d*d+1)
		}
	}
}

func TestColeVishkinCycle(t *testing.T) {
	for _, n := range []int{3, 4, 7, 64, 1000} {
		res, err := ColeVishkinCycle(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Verify(graph.Cycle(n), res.Colors); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m := MaxColor(res.Colors); m > 2 {
			t.Fatalf("n=%d: colour %d outside {0,1,2}", n, m)
		}
		if res.Rounds > 20 {
			t.Fatalf("n=%d: %d rounds is not O(log* n)", n, res.Rounds)
		}
	}
}

func TestColeVishkinDeterministic(t *testing.T) {
	a, err := ColeVishkinCycle(50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColeVishkinCycle(50, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatal("same seed produced different colourings")
		}
	}
}

func TestCVIterationsLogStar(t *testing.T) {
	if it := cvIterations(1 << 60); it > 6 {
		t.Fatalf("cvIterations(2^60) = %d, expected <= 6", it)
	}
	if it := cvIterations(6); it != 0 {
		t.Fatalf("cvIterations(6) = %d, want 0", it)
	}
}

func BenchmarkDistributedVertexColoring(b *testing.B) {
	g := graph.Cycle(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistributedVertexColoring(g, local.Options{IDSeed: uint64(i)}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColeVishkin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ColeVishkinCycle(256, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKWScheduleShrinks(t *testing.T) {
	for _, tc := range []struct{ k, tgt int }{
		{1369, 7}, {121, 3}, {100, 5}, {8, 3}, {3, 3}, {2, 5},
	} {
		sched := kwSchedule(tc.k, tc.tgt)
		k := tc.k
		for _, want := range sched {
			if want != k {
				t.Fatalf("kwSchedule(%d,%d) inconsistent: %v", tc.k, tc.tgt, sched)
			}
			blocks := (k + 2*tc.tgt - 1) / (2 * tc.tgt)
			next := blocks * tc.tgt
			if next >= k {
				t.Fatalf("kwSchedule(%d,%d) does not shrink at %d", tc.k, tc.tgt, k)
			}
			k = next
		}
		if k > tc.tgt {
			t.Fatalf("kwSchedule(%d,%d) ends at %d > tgt", tc.k, tc.tgt, k)
		}
	}
}

func TestKWRoundsLogarithmic(t *testing.T) {
	// O(tgt · log(K/tgt)): far below the naive K - tgt rounds.
	if r := kwRounds(1369, 7); r > 7*9 {
		t.Fatalf("kwRounds(1369,7) = %d, expected <= 63", r)
	}
	if r := kwRounds(121, 3); r > 3*7 {
		t.Fatalf("kwRounds(121,3) = %d", r)
	}
	if r := kwRounds(5, 5); r != 0 {
		t.Fatalf("kwRounds(5,5) = %d, want 0", r)
	}
}

func TestKWStepSequentialSimulation(t *testing.T) {
	// Simulate the full KW reduction synchronously on random graphs and
	// check properness after every round and the final palette.
	r := prng.New(71)
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomBoundedDegree(40, 70, 5, r)
		delta := g.MaxDegree()
		tgt := delta + 1
		k0 := 40 + r.Intn(500) + tgt
		colors := make([]int, g.N())
		perm := r.Perm(k0)
		for v := range colors {
			colors[v] = perm[v]
		}
		sched := kwSchedule(k0, tgt)
		for range sched {
			for j := 0; j < tgt; j++ {
				next := make([]int, len(colors))
				for v := range colors {
					var nbr []int
					for _, u := range g.Neighbors(v) {
						nbr = append(nbr, colors[u])
					}
					c, ok := kwStep(tgt, j, colors[v], nbr)
					if !ok {
						t.Fatalf("trial %d: no free colour", trial)
					}
					next[v] = c
				}
				colors = next
				if err := Verify(g, colors); err != nil {
					t.Fatalf("trial %d: %v after round j=%d", trial, err, j)
				}
			}
		}
		if m := MaxColor(colors); m >= tgt {
			t.Fatalf("trial %d: colour %d outside target %d", trial, m, tgt)
		}
	}
}

func TestDistributedColoringRoundsImprovedByKW(t *testing.T) {
	// With KW halving the vertex colouring of a 6-regular graph must be
	// far below the naive O(Δ² log² Δ) class-by-class cost.
	r := prng.New(73)
	g := mustRegular(t, 24, 6, r)
	res, err := DistributedVertexColoring(g, local.Options{IDSeed: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 150 {
		t.Fatalf("%d rounds; KW reduction should stay well under 150", res.Rounds)
	}
}
