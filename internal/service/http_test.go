package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s, cfg.Metrics))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (View, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return v, resp
}

// TestHTTPSubmitAndStream drives a real distributed-fixer job end to end
// over HTTP and checks the NDJSON stream schema: parseable lines, dense
// seq, lifecycle kinds in order, monotone LOCAL rounds, terminal "end"
// carrying state done; then the job view reports the satisfied result.
func TestHTTPSubmitAndStream(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 4, MaxInFlight: 2})

	v, resp := postJob(t, ts, `{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"dist","seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("job view missing id/state: %+v", v)
	}

	stream, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}

	var events []Event
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			t.Fatal("blank line in NDJSON stream")
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(events) < 4 {
		t.Fatalf("stream has %d events, want at least queued/start/rounds/end", len(events))
	}
	lastRound := 0
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d, want dense numbering", i, e.Seq)
		}
		switch e.Kind {
		case "queued":
			if i != 0 {
				t.Errorf(`"queued" at position %d, want 0`, i)
			}
		case "start":
			if i != 1 {
				t.Errorf(`"start" at position %d, want 1`, i)
			}
		case "round":
			// Rounds are sequential within one LOCAL run and restart at 1
			// when the next phase (colouring → fixing) begins.
			if e.Round != lastRound+1 && e.Round != 1 {
				t.Errorf("round %d after round %d, want +1 or a phase restart", e.Round, lastRound)
			}
			lastRound = e.Round
		case "end":
			if i != len(events)-1 {
				t.Errorf(`"end" at position %d, want last (%d)`, i, len(events)-1)
			}
			if e.State != StateDone {
				t.Errorf("end state = %q (err %q), want done", e.State, e.Err)
			}
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}
	if lastRound == 0 {
		t.Error("stream contained no round events")
	}

	got, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	var final View
	if err := json.NewDecoder(got.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil || !final.Result.Satisfied {
		t.Fatalf("final view = %+v, want done+satisfied", final)
	}
	if final.Result.Rounds < lastRound {
		t.Errorf("result rounds = %d, stream saw a phase with %d", final.Result.Rounds, lastRound)
	}
}

// TestHTTPQueueFull429: once the queue is full, POST /v1/jobs answers 429
// with a Retry-After header.
func TestHTTPQueueFull429(t *testing.T) {
	r := newStubRunner()
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{QueueCap: 1, MaxInFlight: 1, Metrics: reg, Runner: r.run})

	if _, resp := postJob(t, ts, `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	waitStarted(t, r)
	if _, resp := postJob(t, ts, `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := reg.Counter("service_admission_rejects_total").Value(); got != 1 {
		t.Errorf("rejects counter = %d, want 1", got)
	}
	r.release <- struct{}{}
	r.release <- struct{}{}
}

// TestHTTPCancelRunning: DELETE on a running job cancels it; the stream
// terminates with an "end" event in state cancelled.
func TestHTTPCancelRunning(t *testing.T) {
	r := newStubRunner()
	s, ts := newTestServer(t, Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run})

	v, _ := postJob(t, ts, `{}`)
	waitStarted(t, r)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}

	job, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateCancelled)

	stream, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	body, _ := io.ReadAll(stream.Body)
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var last Event
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "end" || last.State != StateCancelled {
		t.Fatalf("last event = %+v, want end/cancelled", last)
	}
}

// TestHTTPErrors: 404 on unknown ids, 400 on malformed and on invalid
// specs, 405 on wrong method.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 2, MaxInFlight: 1, Runner: newStubRunner().run})

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	for _, body := range []string{`{`, `{"unknown_field":1}`, `{"family":"nope"}`} {
		_, resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", body, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs = %d, want 405", resp.StatusCode)
	}
}

// TestHTTPMetricsExposed: after serving a job, /metrics exposes the
// service_* families in Prometheus text format.
func TestHTTPMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s, ts := newTestServer(t, Config{QueueCap: 4, MaxInFlight: 1, Metrics: reg, Runner: r.run})

	v, _ := postJob(t, ts, `{}`)
	waitStarted(t, r)
	r.release <- struct{}{}
	job, _ := s.Get(v.ID)
	waitState(t, job, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"service_queue_depth",
		"service_jobs_running",
		"service_jobs_submitted_total 1",
		"service_jobs_done_total 1",
		"service_admission_rejects_total 0",
		"service_job_run_seconds",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPListAndHealth: the list endpoint returns submission order; the
// health endpoint flips to 503 during a drain.
func TestHTTPListAndHealth(t *testing.T) {
	r := newStubRunner()
	s, ts := newTestServer(t, Config{QueueCap: 8, MaxInFlight: 1, Runner: r.run})

	var ids []string
	for i := 0; i < 3; i++ {
		v, resp := postJob(t, ts, fmt.Sprintf(`{"seed":%d}`, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(views))
	}
	for i, v := range views {
		if v.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, v.ID, ids[i])
		}
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", h.StatusCode)
	}

	go s.Shutdown(context.Background())
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	h2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h2.Body.Close()
	if h2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", h2.StatusCode)
	}
	for i := 0; i < 3; i++ {
		select {
		case r.release <- struct{}{}:
		default:
		}
	}
}

// TestHTTPBatchEndpoint: POST /v1/jobs/batch stamps a template into one
// batch job whose NDJSON stream is multiplexed per instance and whose
// result carries per-instance summaries; a repeated submit with cache on is
// served from the cache.
func TestHTTPBatchEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{QueueCap: 8, MaxInFlight: 2, Metrics: reg, CacheSize: 16})

	body := `{"template":{"family":"sinkless","n":16,"algorithm":"mtpar","seed":5},"count":4,"vary_seed":true,"cache":true}`
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d, want 202", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Follow the event stream to the terminal state and check the
	// per-instance multiplexing.
	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	ends := map[int]bool{}
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Kind == "instance_end" {
			ends[e.Instance] = true
		}
	}
	if len(ends) != 4 {
		t.Fatalf("stream reported %d instance_end events, want 4", len(ends))
	}

	jr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var done View
	if err := json.NewDecoder(jr.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	if done.Result == nil || len(done.Result.Instances) != 4 {
		t.Fatalf("batch result = %+v, want 4 instance summaries", done.Result)
	}
	for _, is := range done.Result.Instances {
		if is.Err != "" || !is.Satisfied {
			t.Errorf("instance %d: %+v", is.Index, is)
		}
	}

	// Same batch again: every instance hits the cache.
	resp2, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v2 View
	if err := json.NewDecoder(resp2.Body).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	es2, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, es2.Body) // drain to terminal
	es2.Body.Close()
	jr2, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Body.Close()
	var warm View
	if err := json.NewDecoder(jr2.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	for _, is := range warm.Result.Instances {
		if !is.CacheHit {
			t.Errorf("repeat batch instance %d was not a cache hit", is.Index)
		}
	}
	if got := reg.Counter("cache_hits_total").Value(); got < 4 {
		t.Errorf("cache_hits_total = %d, want >= 4", got)
	}

	// Malformed requests map to 400.
	bad, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(`{"count":0}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch request = %d, want 400", bad.StatusCode)
	}
}
