package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/graph"
)

// sameFixResult demands bit-identical outcomes: identical Stats, identical
// assignment values and an identical final φ table.
func sameFixResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("%s: stats %+v differ from baseline %+v", label, got.Stats, want.Stats)
		return
	}
	gv, _ := got.Assignment.Values()
	wv, _ := want.Assignment.Values()
	for i := range wv {
		if gv[i] != wv[i] {
			t.Errorf("%s: assignment[%d] = %d, want %d", label, i, gv[i], wv[i])
			return
		}
	}
	gp, wp := got.PStar.Snapshot(), want.PStar.Snapshot()
	for i := range wp {
		if gp[i] != wp[i] {
			t.Errorf("%s: phi[%d] = %v, want %v", label, i, gp[i], wp[i])
			return
		}
	}
}

// TestFixCheckpointResume pins the fixer's recovery contract: a run with
// checkpointing active is bit-identical to the plain run, and resuming from
// a mid-run checkpoint reproduces the uninterrupted run exactly — same
// assignment, same φ table, same peak statistics (which the certification
// depends on).
func TestFixCheckpointResume(t *testing.T) {
	s, err := apps.NewSinklessWithMargin(graph.Cycle(32), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	baseline := mustFix(t, s.Instance, nil, Options{})
	assertSolved(t, baseline)

	var cps []*fault.Checkpoint
	withCp := mustFix(t, s.Instance, nil, Options{
		CheckpointEvery: 5,
		OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
	})
	sameFixResult(t, "checkpointing-on", withCp, baseline)
	wantCps := s.Instance.NumVars() / 5
	if len(cps) != wantCps {
		t.Fatalf("captured %d checkpoints, want %d", len(cps), wantCps)
	}

	for _, idx := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[idx]
		if cp.Algorithm != CheckpointFix {
			t.Fatalf("checkpoint tagged %q, want %q", cp.Algorithm, CheckpointFix)
		}
		resumed, err := FixSequential(s.Instance, nil, Options{Resume: cp})
		if err != nil {
			t.Fatalf("resume from checkpoint %d (round %d): %v", idx, cp.Round, err)
		}
		sameFixResult(t, "resumed", resumed, baseline)
	}
}

// TestFixCheckpointResumeAdversarialOrder repeats the resume-equality check
// under a non-identity fixing order, since the checkpoint encodes progress
// as an order prefix.
func TestFixCheckpointResumeAdversarialOrder(t *testing.T) {
	s, err := apps.NewSinklessWithMargin(graph.Cycle(24), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Instance.NumVars()
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	baseline := mustFix(t, s.Instance, order, Options{})

	var cps []*fault.Checkpoint
	mustFix(t, s.Instance, order, Options{
		CheckpointEvery: 3,
		OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
	})
	if len(cps) < 2 {
		t.Fatalf("captured only %d checkpoints", len(cps))
	}
	resumed, err := FixSequential(s.Instance, order, Options{Resume: cps[len(cps)/2]})
	if err != nil {
		t.Fatal(err)
	}
	sameFixResult(t, "resumed under reversed order", resumed, baseline)
}

// TestFixResumeValidation checks that corrupt or mismatched checkpoints are
// rejected loudly: foreign tags, wrong sizes, impossible progress counters
// and prefixes inconsistent with the fixing order.
func TestFixResumeValidation(t *testing.T) {
	s, err := apps.NewSinklessWithMargin(graph.Cycle(16), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var cps []*fault.Checkpoint
	mustFix(t, s.Instance, nil, Options{
		CheckpointEvery: 4,
		OnCheckpoint:    func(c *fault.Checkpoint) { cps = append(cps, c) },
	})
	if len(cps) < 2 {
		t.Fatalf("captured only %d checkpoints", len(cps))
	}
	// A mid-run checkpoint: a strict prefix is fixed, the rest is not.
	cp := cps[0]
	if cp.Round >= s.Instance.NumVars() {
		t.Fatalf("first checkpoint already covers all %d variables", cp.Round)
	}

	corrupt := func(mut func(*fault.Checkpoint)) *fault.Checkpoint {
		c := cp.Clone()
		mut(c)
		return c
	}
	cases := []struct {
		name string
		cp   *fault.Checkpoint
	}{
		{"foreign algorithm", corrupt(func(c *fault.Checkpoint) { c.Algorithm = "mt-sequential" })},
		{"wrong var count", corrupt(func(c *fault.Checkpoint) { c.Values = c.Values[:len(c.Values)-1] })},
		{"negative round", corrupt(func(c *fault.Checkpoint) { c.Round = -1 })},
		{"round beyond n", corrupt(func(c *fault.Checkpoint) { c.Round = len(c.Values) + 1 })},
		{"unfixed inside prefix", corrupt(func(c *fault.Checkpoint) { c.Values[0] = -1 })},
		{"fixed beyond prefix", corrupt(func(c *fault.Checkpoint) { c.Values[len(c.Values)-1] = 0 })},
		{"truncated phi", corrupt(func(c *fault.Checkpoint) { c.Phi = c.Phi[:1] })},
		{"truncated peaks", corrupt(func(c *fault.Checkpoint) { c.Peaks = nil })},
		{"truncated counts", corrupt(func(c *fault.Checkpoint) { c.Counts = c.Counts[:2] })},
	}
	for _, tc := range cases {
		if _, err := FixSequential(s.Instance, nil, Options{Resume: tc.cp}); err == nil {
			t.Errorf("%s: resume accepted", tc.name)
		}
	}
	// The untouched checkpoint must still resume cleanly.
	if _, err := FixSequential(s.Instance, nil, Options{Resume: cp}); err != nil {
		t.Errorf("pristine checkpoint rejected: %v", err)
	}
}
