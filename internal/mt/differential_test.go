package mt

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// diffInstances builds the seeded below-threshold instances the differential
// tests run both algorithms against: rank-2 sinkless on cycles and a random
// 3-regular graph, rank-3 hyper-sinkless, and a calibrated random
// conjunction family.
func diffInstances(t *testing.T) map[string]*model.Instance {
	t.Helper()
	out := map[string]*model.Instance{}

	for _, n := range []int{8, 15, 40} {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		out[gname("cycle", n)] = s.Instance
	}
	g, err := graph.RandomRegular(20, 3, prng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewSinklessWithMargin(g, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	out["regular-20"] = s.Instance

	h, err := hypergraph.RandomRegularRank3(18, 2, prng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out["hyper-18"] = hs.Instance

	rc, err := apps.NewRandomConjunction(h, 3, 0.5, prng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	out["conjunction-18"] = rc.Instance
	return out
}

func gname(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestDifferentialSequentialVsParallel runs the sequential and the parallel
// Moser–Tardos resampler as two independent implementations against the same
// seeded instances and cross-checks their verdicts: below the threshold both
// must terminate with a satisfying assignment, and each assignment must pass
// the model's independent violation check. The two algorithms resample in
// different orders so their assignments legitimately differ; their verdicts
// may not.
func TestDifferentialSequentialVsParallel(t *testing.T) {
	for name, inst := range diffInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				seq, err := Sequential(inst, prng.New(seed), 200000)
				if err != nil {
					t.Fatalf("seed %d: sequential: %v", seed, err)
				}
				par, err := Parallel(inst, prng.New(seed), 5000)
				if err != nil {
					t.Fatalf("seed %d: parallel: %v", seed, err)
				}
				if !seq.Satisfied || !par.Satisfied {
					t.Fatalf("seed %d: verdicts diverge or fail: sequential=%v parallel=%v",
						seed, seq.Satisfied, par.Satisfied)
				}
				for alg, res := range map[string]*Result{"sequential": seq, "parallel": par} {
					n, err := inst.CountViolated(res.Assignment)
					if err != nil {
						t.Fatalf("seed %d: %s recount: %v", seed, alg, err)
					}
					if n != 0 {
						t.Fatalf("seed %d: %s claims satisfied but %d events are violated", seed, alg, n)
					}
					if !res.Assignment.Complete() {
						t.Fatalf("seed %d: %s returned an incomplete assignment", seed, alg)
					}
				}
			}
		})
	}
}

// TestDifferentialDeterminism pins the replay contract both implementations
// share: the same instance and seed must reproduce the identical assignment
// and identical work counters on every run.
func TestDifferentialDeterminism(t *testing.T) {
	for name, inst := range diffInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			s1, err := Sequential(inst, prng.New(9), 200000)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Sequential(inst, prng.New(9), 200000)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "sequential", s1, s2)

			p1, err := Parallel(inst, prng.New(9), 5000)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Parallel(inst, prng.New(9), 5000)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "parallel", p1, p2)
		})
	}
}

func assertSameRun(t *testing.T, alg string, a, b *Result) {
	t.Helper()
	if a.Resamplings != b.Resamplings || a.Rounds != b.Rounds || a.Satisfied != b.Satisfied {
		t.Fatalf("%s replay diverged: (%d, %d, %v) vs (%d, %d, %v)",
			alg, a.Resamplings, a.Rounds, a.Satisfied, b.Resamplings, b.Rounds, b.Satisfied)
	}
	av, af := a.Assignment.Values()
	bv, bf := b.Assignment.Values()
	for i := range av {
		if av[i] != bv[i] || af[i] != bf[i] {
			t.Fatalf("%s replay diverged at variable %d: (%d, %v) vs (%d, %v)",
				alg, i, av[i], af[i], bv[i], bf[i])
		}
	}
}
