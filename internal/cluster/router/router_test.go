package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// testNode is one in-process llld node: a real Service behind an HTTP
// server the router can reach (and "kill", by closing the server).
type testNode struct {
	name string
	svc  *service.Service
	ts   *httptest.Server
	reg  *obs.Registry
}

// startNodes builds n nodes named n1..nN. mutate adjusts each node's
// Config (e.g. to install a stub runner) before the service starts; the
// returned map is the router/cluster membership.
func startNodes(t *testing.T, n int, mutate func(*service.Config)) (map[string]*testNode, map[string]string) {
	t.Helper()
	nodes := make(map[string]*testNode, n)
	urls := make(map[string]string, n)
	handlers := make(map[string]*swapHandler, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("n%d", i)
		h := &swapHandler{}
		ts := httptest.NewServer(h)
		handlers[name] = h
		urls[name] = ts.URL
		nodes[name] = &testNode{name: name, ts: ts, reg: obs.NewRegistry()}
	}
	for name, node := range nodes {
		cfg := service.Config{QueueCap: 128, MaxInFlight: 4, CacheSize: 32, Metrics: node.reg}
		if mutate != nil {
			mutate(&cfg)
		}
		if cfg.Cluster != nil {
			cfg.Cluster.Self = name
			cfg.Cluster.Nodes = urls
		}
		node.svc = service.New(cfg)
		handlers[name].set(service.NewHandler(node.svc, node.reg))
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			node.svc.Shutdown(ctx)
			cancel()
		}
	})
	return nodes, urls
}

// swapHandler defers handler installation until the service (which needs
// the server URLs) exists.
type swapHandler struct{ h http.Handler }

func (s *swapHandler) set(h http.Handler) { s.h = h }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	s.h.ServeHTTP(w, r)
}

// startRouter builds a Router + its HTTP server over the membership.
func startRouter(t *testing.T, urls map[string]string) (*Router, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	r, err := New(Config{Nodes: urls, Metrics: reg, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(r, reg))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		r.Shutdown(ctx)
		cancel()
	})
	// Let the first health poll land so placement sees live nodes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := 0
		for _, st := range r.members.Snapshot() {
			if st.State.Usable() {
				ok++
			}
		}
		if ok == len(urls) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return r, ts, reg
}

func postRouterJob(t *testing.T, ts *httptest.Server, spec string) (service.View, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return v, resp.StatusCode
}

// collectEvents follows a router job's NDJSON stream to its terminal event.
func collectEvents(t *testing.T, ts *httptest.Server, id string) []service.Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []service.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var e service.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func routerView(t *testing.T, ts *httptest.Server, id string) service.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRouterRoutesAndRelays: a job submitted to the router runs on exactly
// one node, its relayed stream has dense sequence numbers and node stamps,
// and the router view reports the final result.
func TestRouterRoutesAndRelays(t *testing.T) {
	_, urls := startNodes(t, 3, nil)
	_, ts, _ := startRouter(t, urls)

	v, status := postRouterJob(t, ts, `{"family":"sinkless","n":24,"algorithm":"mtpar","seed":3}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	if !strings.HasPrefix(v.ID, "r") {
		t.Fatalf("router job id %q not router-scoped", v.ID)
	}
	if v.Node == "" {
		t.Fatal("router view has no node")
	}

	events := collectEvents(t, ts, v.ID)
	if len(events) == 0 {
		t.Fatal("no events relayed")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d (stream not dense)", i, e.Seq)
		}
		if e.Node != v.Node {
			t.Fatalf("event %d stamped node %q, want %q", i, e.Node, v.Node)
		}
	}
	last := events[len(events)-1]
	if last.Kind != "end" || last.State != service.StateDone {
		t.Fatalf("terminal event = %+v, want end/done", last)
	}

	final := routerView(t, ts, v.ID)
	if final.State != service.StateDone || final.Result == nil || !final.Result.Satisfied {
		t.Fatalf("final view = %+v", final)
	}
	if final.TraceID == "" {
		t.Fatal("router view lost the trace ID")
	}
}

// TestRouterPlacementDeterministicAndCacheLocal: identical specs always
// land on the same node, and — with clustered nodes — a resubmission is
// served from that home node's cache without a second solve.
func TestRouterPlacementDeterministicAndCacheLocal(t *testing.T) {
	nodes, urls := startNodes(t, 3, func(cfg *service.Config) {
		cfg.Cluster = &service.ClusterConfig{} // Self/Nodes filled by startNodes
	})
	_, ts, _ := startRouter(t, urls)

	spec := `{"family":"sinkless","n":24,"algorithm":"mtpar","seed":11,"cache":true}`
	cold, status := postRouterJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	collectEvents(t, ts, cold.ID)
	coldView := routerView(t, ts, cold.ID)
	if coldView.Result.CacheHit {
		t.Fatal("cold solve reported a cache hit")
	}

	warm, _ := postRouterJob(t, ts, spec)
	if warm.Node != cold.Node {
		t.Fatalf("identical spec placed on %q then %q (placement not deterministic)", cold.Node, warm.Node)
	}
	collectEvents(t, ts, warm.ID)
	warmView := routerView(t, ts, warm.ID)
	if warmView.Result == nil || !warmView.Result.CacheHit {
		t.Fatal("resubmission was not served from the home node's cache")
	}
	if warmView.Result.AssignmentHash != coldView.Result.AssignmentHash {
		t.Fatal("cached result hash differs from cold solve")
	}
	// Exactly one node ever solved (one hit total); the entry may be stored
	// twice — once on the solving node, once written through to the cache
	// key's home node when the two differ — but never more.
	stores, hits := int64(0), int64(0)
	for _, node := range nodes {
		stores += node.reg.Counter("cache_stores_total").Value()
		hits += node.reg.Counter("cache_hits_total").Value()
	}
	if hits != 1 {
		t.Fatalf("cluster-wide cache hits = %d, want 1", hits)
	}
	if stores < 1 || stores > 2 {
		t.Fatalf("cluster-wide cache stores = %d, want 1 (solver == home) or 2 (write-through)", stores)
	}
}

// TestRouterBalance: distinct specs spread across the nodes; no node holds
// more than twice the per-node mean (the consistent-hash balance bound the
// CI smoke also asserts).
func TestRouterBalance(t *testing.T) {
	_, urls := startNodes(t, 3, nil)
	r, ts, _ := startRouter(t, urls)

	const jobs = 30
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		v, status := postRouterJob(t, ts,
			fmt.Sprintf(`{"family":"sinkless","n":24,"algorithm":"mtpar","seed":%d}`, i+1))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, status)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		collectEvents(t, ts, id)
	}
	status := r.ClusterStatus()
	mean := float64(jobs) / float64(len(urls))
	for node, count := range status.PerNode {
		if float64(count) > 2*mean {
			t.Errorf("node %s holds %d of %d jobs (mean %.1f): balance worse than 2x",
				node, count, jobs, mean)
		}
	}
	if len(status.PerNode) < 2 {
		t.Errorf("all jobs landed on %d node(s): %v", len(status.PerNode), status.PerNode)
	}
}

// TestRouterSpillsOnSaturation: when the home node rejects with 429 (queue
// full), the router places the job on the next preferred node instead of
// surfacing the rejection.
func TestRouterSpillsOnSaturation(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once bool
	// Tiny queue + a runner that blocks makes whichever node gets the first
	// job reject the rest.
	nodes, urls := startNodes(t, 2, func(cfg *service.Config) {
		cfg.QueueCap = 1
		cfg.MaxInFlight = 1
		cfg.Runner = func(ctx context.Context, js service.JobSpec, att service.Attempt, emit func(service.Event)) (*service.Summary, error) {
			if !once {
				once = true
				close(blocked)
			}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &service.Summary{Satisfied: true}, nil
		}
	})
	_ = nodes
	_, ts, reg := startRouter(t, urls)
	defer close(release)

	spec := `{"family":"sinkless","n":24,"algorithm":"mtpar","seed":77}`
	first, status := postRouterJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status = %d", status)
	}
	<-blocked
	// Same spec → same home node. Fill its one queue slot, then the next
	// submission must spill to the other node.
	second, status := postRouterJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("second submit status = %d", status)
	}
	third, status := postRouterJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("third submit (expected spill) status = %d", status)
	}
	if second.Node != first.Node {
		t.Fatalf("second job should queue on the home node %q, landed on %q", first.Node, second.Node)
	}
	if third.Node == first.Node {
		t.Fatal("third job did not spill off the saturated home node")
	}
	if got := reg.Counter("router_spills_total").Value(); got < 1 {
		t.Errorf("router_spills_total = %d, want >= 1", got)
	}
}

// TestInjectNodeLabel: the /cluster/metrics federation rewrites sample
// lines with a node label, preserving existing labels and comments.
func TestInjectNodeLabel(t *testing.T) {
	in := strings.Join([]string{
		`# TYPE service_jobs_done_total counter`,
		`service_jobs_done_total 7`,
		`service_job_run_seconds_bucket{le="0.1"} 3`,
		``,
	}, "\n")
	var out bytes.Buffer
	injectNodeLabel(&out, strings.NewReader(in), "n2")
	want := strings.Join([]string{
		`# TYPE service_jobs_done_total counter`,
		`service_jobs_done_total{node="n2"} 7`,
		`service_job_run_seconds_bucket{node="n2",le="0.1"} 3`,
		``,
	}, "\n")
	if out.String() != want {
		t.Fatalf("label injection:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}
