package service

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// benchService builds a real service sized for benchmark traffic.
func benchService(b *testing.B, cacheSize int) *Service {
	b.Helper()
	s := New(Config{QueueCap: 256, MaxInFlight: 4, Metrics: obs.NewRegistry(), CacheSize: cacheSize})
	b.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

// benchRun submits one job and blocks on the event stream (no polling
// sleeps: the wait rides the job's wake-up channel) until it is terminal.
func benchRun(b *testing.B, s *Service, js JobSpec) *Summary {
	b.Helper()
	j, err := s.Submit(js)
	if err != nil {
		b.Fatal(err)
	}
	from := 0
	for {
		events, more, state := j.EventsSince(from)
		from += len(events)
		switch state {
		case StateDone:
			v := j.View()
			if v.Result == nil {
				b.Fatalf("done job %s has no result", j.ID)
			}
			return v.Result
		case StateFailed, StateCancelled:
			b.Fatalf("job %s ended %s: %s", j.ID, state, j.View().Error)
		}
		<-more
	}
}

// BenchmarkServiceRepeatedJobs measures the repeated-identical-jobs
// throughput the result cache exists for. "cold" changes the seed every
// submission, so every job misses and solves; "warm" resubmits the
// identical spec, so every job after the first is served from the cache.
// The acceptance bar for the serving path is warm ≥ 10× cold.
func BenchmarkServiceRepeatedJobs(b *testing.B) {
	spec := JobSpec{Family: FamilySinkless, N: 1024, Algorithm: AlgMTPar, Cache: true}

	b.Run("cold", func(b *testing.B) {
		s := benchService(b, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			js := spec
			js.Seed = uint64(i + 1)
			if sum := benchRun(b, s, js); sum.CacheHit {
				b.Fatal("cold job reported a cache hit")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := benchService(b, 4096)
		js := spec
		js.Seed = 1
		benchRun(b, s, js) // populate the entry outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sum := benchRun(b, s, js); !sum.CacheHit {
				b.Fatal("warm job missed the cache")
			}
		}
	})
}

// BenchmarkServiceBatch64 is the batch acceptance measurement: a
// 64-instance batch of identical specs (the threshold-sweep shape that
// motivates batching) against a single solo job of the same spec. In-batch
// deduplication solves the instance once and serves the other 63 as hits,
// so the batch must complete in well under 2× the solo wall time. The seed
// advances every iteration, so every iteration pays one real solve.
func BenchmarkServiceBatch64(b *testing.B) {
	spec := JobSpec{Family: FamilySinkless, N: 1000, Algorithm: AlgMTPar, Cache: true}

	b.Run("one", func(b *testing.B) {
		s := benchService(b, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			js := spec
			js.Seed = uint64(i + 1)
			benchRun(b, s, js)
		}
	})
	b.Run("batch-64", func(b *testing.B) {
		s := benchService(b, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			js := spec
			js.Seed = uint64(i + 1)
			batch := JobSpec{Cache: true, Batch: make([]JobSpec, 64)}
			for k := range batch.Batch {
				batch.Batch[k] = js
			}
			sum := benchRun(b, s, batch)
			if len(sum.Instances) != 64 {
				b.Fatalf("batch returned %d instances", len(sum.Instances))
			}
			hits := 0
			for _, is := range sum.Instances {
				if is.CacheHit {
					hits++
				}
			}
			if hits != 63 {
				b.Fatalf("batch deduplicated %d of 63 duplicate instances", hits)
			}
		}
	})
}
