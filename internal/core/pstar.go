// Package core implements the paper's primary contribution: deterministic,
// local, sequential processes that fix the variables of an LLL instance
// under the exponential criterion p < 2^-d, for variables affecting at most
// two (Theorem 1.1) or three (Theorem 1.3) bad events — together with their
// distributed versions (Corollaries 1.2 and 1.4) that run on the LOCAL-model
// runtime in internal/local.
package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
)

// PStar is the bookkeeping structure of property P* (Definition 3.1): for
// every edge e = {u, v} of the dependency graph it stores two values
// φ_e^u, φ_e^v ∈ [0, 2] with φ_e^u + φ_e^v ≤ 2, such that at all times
//
//	Pr[E_v | fixed variables] ≤ Pr[E_v] · ∏_{e ∋ v} φ_e^v.
//
// (The paper states the invariant with the symmetric bound p in place of the
// per-event probability Pr[E_v]; tracking the per-event base is the same
// proof with a tighter constant and gives better diagnostics.)
//
// All values start at 1; the fixers update only the values on the edges
// spanned by the variable being fixed.
type PStar struct {
	g   *graph.Graph
	phi [][2]float64 // phi[edgeID] = {value at Edge.U, value at Edge.V}
}

// NewPStar returns the initial bookkeeping (all values 1) for the given
// dependency graph.
func NewPStar(g *graph.Graph) *PStar {
	p := &PStar{g: g, phi: make([][2]float64, g.M())}
	for i := range p.phi {
		p.phi[i] = [2]float64{1, 1}
	}
	return p
}

// Value returns φ_e^node for edge id. It panics if node is not an endpoint.
func (p *PStar) Value(edgeID, node int) float64 {
	e := p.g.Edge(edgeID)
	switch node {
	case e.U:
		return p.phi[edgeID][0]
	case e.V:
		return p.phi[edgeID][1]
	default:
		panic(fmt.Sprintf("core: node %d not an endpoint of edge %d", node, edgeID))
	}
}

// Set writes φ_e^node for edge id.
func (p *PStar) Set(edgeID, node int, v float64) {
	e := p.g.Edge(edgeID)
	switch node {
	case e.U:
		p.phi[edgeID][0] = v
	case e.V:
		p.phi[edgeID][1] = v
	default:
		panic(fmt.Sprintf("core: node %d not an endpoint of edge %d", node, edgeID))
	}
}

// EventBound returns ∏_{e ∋ v} φ_e^v, the accumulated increase budget of the
// event at node v. The final guarantee of the fixers is
// Pr[E_v] · EventBound(v) ≤ Pr[E_v] · 2^d < 1.
func (p *PStar) EventBound(v int) float64 {
	prod := 1.0
	for _, id := range p.g.IncidentEdges(v) {
		prod *= p.Value(id, v)
	}
	return prod
}

// MaxEdgeSum returns the maximum of φ_e^u + φ_e^v over all edges; P*
// requires it to be at most 2.
func (p *PStar) MaxEdgeSum() float64 {
	m := 0.0
	for _, vals := range p.phi {
		if s := vals[0] + vals[1]; s > m {
			m = s
		}
	}
	return m
}

// MaxEventBound returns the maximum of EventBound(v) over all nodes; the
// theorems guarantee it stays at most 2^d.
func (p *PStar) MaxEventBound() float64 {
	m := 0.0
	for v := 0; v < p.g.N(); v++ {
		if b := p.EventBound(v); b > m {
			m = b
		}
	}
	return m
}

// Snapshot returns the φ table flattened edge-major as
// [φ_e0^U, φ_e0^V, φ_e1^U, φ_e1^V, ...] — the format stored in
// fault.Checkpoint.Phi. The copy is pure: the bookkeeping is unchanged.
func (p *PStar) Snapshot() []float64 {
	out := make([]float64, 0, 2*len(p.phi))
	for _, v := range p.phi {
		out = append(out, v[0], v[1])
	}
	return out
}

// Restore overwrites the φ table from a Snapshot taken on a graph with the
// same edge set.
func (p *PStar) Restore(flat []float64) error {
	if len(flat) != 2*len(p.phi) {
		return fmt.Errorf("core: φ snapshot has %d values, graph needs %d", len(flat), 2*len(p.phi))
	}
	for i := range p.phi {
		p.phi[i] = [2]float64{flat[2*i], flat[2*i+1]}
	}
	return nil
}

// Audit verifies property P* against the instance and the current partial
// assignment: every edge sum is at most 2 (+tol) and every event satisfies
// Pr[E_v | a] ≤ base[v] · EventBound(v) (+tol), where base[v] is the
// unconditional probability of event v. It returns a descriptive error on
// the first violation.
func (p *PStar) Audit(inst *model.Instance, a *model.Assignment, base []float64, tol float64) error {
	for id, vals := range p.phi {
		for _, v := range vals {
			if v < -tol || v > 2+tol || math.IsNaN(v) {
				return fmt.Errorf("core: P* audit: edge %d has value %v outside [0,2]", id, v)
			}
		}
		if s := vals[0] + vals[1]; s > 2+tol {
			return fmt.Errorf("core: P* audit: edge %d sum %v > 2", id, s)
		}
	}
	for v := 0; v < inst.NumEvents(); v++ {
		pr := inst.CondProb(v, a)
		bound := base[v] * p.EventBound(v)
		if pr > bound+tol {
			return fmt.Errorf("core: P* audit: event %d has Pr %v > bound %v", v, pr, bound)
		}
	}
	return nil
}
