package mt

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// assignmentValues extracts the raw value vector for equality checks.
func assignmentValues(t *testing.T, a *model.Assignment) []int {
	t.Helper()
	values, _ := a.Values()
	return values
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Satisfied != want.Satisfied || got.Resamplings != want.Resamplings || got.Rounds != want.Rounds {
		t.Errorf("%s: result (sat=%v res=%d rounds=%d) differs from baseline (sat=%v res=%d rounds=%d)",
			label, got.Satisfied, got.Resamplings, got.Rounds, want.Satisfied, want.Resamplings, want.Rounds)
		return
	}
	gv, wv := assignmentValues(t, got.Assignment), assignmentValues(t, want.Assignment)
	for i := range wv {
		if gv[i] != wv[i] {
			t.Errorf("%s: assignment[%d] = %d, want %d", label, i, gv[i], wv[i])
			return
		}
	}
}

// TestSequentialCheckpointResume pins the resume contract for the
// sequential resampler: (1) a run with checkpointing enabled is
// bit-identical to the plain run, and (2) resuming from a mid-run
// checkpoint — with a throwaway generator, which Resume must ignore —
// reproduces the uninterrupted run exactly.
func TestSequentialCheckpointResume(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Sequential(s.Instance, prng.New(2), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Resamplings < 4 {
		t.Fatalf("workload too easy for a resume test: %d resamplings", baseline.Resamplings)
	}

	var cps []*fault.Checkpoint
	obsRun, err := SequentialObs(s.Instance, prng.New(2), 200000, Observer{
		CheckpointEvery: 2,
		OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "checkpointing-on", obsRun, baseline)
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}

	cp := cps[len(cps)/2]
	if cp.Algorithm != CheckpointSeq {
		t.Fatalf("checkpoint tagged %q, want %q", cp.Algorithm, CheckpointSeq)
	}
	resumed, err := SequentialObs(s.Instance, prng.New(999), 200000, Observer{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed", resumed, baseline)
}

// TestParallelCheckpointResume is the parallel-rounds counterpart of the
// sequential resume test.
func TestParallelCheckpointResume(t *testing.T) {
	r := prng.New(3)
	h, err := hypergraph.RandomRegularRank3(30, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Parallel(s.Instance, prng.New(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Rounds < 2 {
		t.Skipf("workload solved in %d rounds — nothing to resume", baseline.Rounds)
	}

	var cps []*fault.Checkpoint
	obsRun, err := ParallelObs(s.Instance, prng.New(4), 0, Observer{
		CheckpointEvery: 1,
		OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "checkpointing-on", obsRun, baseline)
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}

	cp := cps[len(cps)/2]
	if cp.Algorithm != CheckpointPar {
		t.Fatalf("checkpoint tagged %q, want %q", cp.Algorithm, CheckpointPar)
	}
	resumed, err := ParallelObs(s.Instance, prng.New(999), 0, Observer{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed", resumed, baseline)
}

// TestResumeValidation checks the defensive rejections: foreign algorithm
// tags, wrong value-vector lengths and out-of-range values must all fail
// loudly instead of resuming into a corrupt state.
func TestResumeValidation(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(8), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Instance.NumVars()
	good := make([]int, n)
	cases := []struct {
		name string
		cp   *fault.Checkpoint
	}{
		{"foreign algorithm", &fault.Checkpoint{Algorithm: "core-fix-sequential", Values: good}},
		{"short values", &fault.Checkpoint{Algorithm: CheckpointSeq, Values: good[:n-1]}},
		{"out-of-range value", func() *fault.Checkpoint {
			bad := make([]int, n)
			bad[0] = 1 << 20
			return &fault.Checkpoint{Algorithm: CheckpointSeq, Values: bad}
		}()},
	}
	for _, tc := range cases {
		if _, err := SequentialObs(s.Instance, prng.New(1), 0, Observer{Resume: tc.cp}); err == nil {
			t.Errorf("%s: resume accepted", tc.name)
		}
	}
}
