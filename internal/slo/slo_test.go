package slo

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// clock is a manually advanced test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testEngine(t *testing.T, ck *clock) *Engine {
	t.Helper()
	e := NewEngine(Config{
		Objectives: []Objective{
			{Name: "run_latency", Kind: Latency, Target: 0.9, Threshold: 0.1, Bounds: []float64{0.01, 0.1, 1}},
			{Name: "error_rate", Kind: Ratio, Target: 0.95},
		},
		ShortWindow: 10 * time.Second,
		LongWindow:  60 * time.Second,
		BurnFactor:  2,
		Now:         ck.Now,
	})
	if e == nil {
		t.Fatal("NewEngine returned nil for a valid config")
	}
	return e
}

func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	e.Observe("x", 1, "t")
	e.ObserveOutcome("x", false, "t")
	if e.FastBurn() {
		t.Fatal("nil engine must not fast-burn")
	}
	if q, ok := e.Quantile("x", 0.99); ok || q != 0 {
		t.Fatalf("nil engine quantile = %v, %v", q, ok)
	}
	st := e.Status()
	if st.FastBurn || len(st.Objectives) != 0 {
		t.Fatalf("nil engine status = %+v", st)
	}
	// The handler still serves valid JSON.
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	var got Status
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("nil engine /slo not JSON: %v", err)
	}
	// The disabled hot-path methods are allocation-free, like the rest of
	// the obs family: an unconfigured daemon pays nothing per job.
	if n := testing.AllocsPerRun(100, func() {
		e.Observe("run_latency", 0.5, "")
		e.ObserveOutcome("error_rate", true, "")
		_ = e.FastBurn()
		_, _ = e.Quantile("run_latency", 0.99)
	}); n != 0 {
		t.Fatalf("nil engine allocates %v allocs/op, want 0", n)
	}
}

func TestNewEngineEmptyConfigIsNil(t *testing.T) {
	if e := NewEngine(Config{}); e != nil {
		t.Fatal("engine with no objectives must be nil")
	}
	if e := NewEngine(Config{Objectives: []Objective{{Name: ""}}}); e != nil {
		t.Fatal("engine with only unnamed objectives must be nil")
	}
}

func TestBurnRatesAndFastBurn(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)

	// All good: no burn.
	for i := 0; i < 100; i++ {
		e.Observe("run_latency", 0.05, "")
	}
	st := e.Status()
	if st.FastBurn || st.Objectives[0].BurnLong != 0 {
		t.Fatalf("all-good status = %+v", st.Objectives[0])
	}

	// 50% bad with a 10% budget: burn = 0.5/0.1 = 5 > factor 2 on both
	// windows (same traffic throughout).
	for i := 0; i < 100; i++ {
		e.Observe("run_latency", 5.0, "")
	}
	st = e.Status()
	o := st.Objectives[0]
	if !o.FastBurn || !st.FastBurn {
		t.Fatalf("expected fast burn, got %+v", o)
	}
	if o.BurnLong < 4.9 || o.BurnLong > 5.1 {
		t.Fatalf("burn_long = %v, want ~5", o.BurnLong)
	}
	if !e.FastBurn() {
		t.Fatal("FastBurn() must mirror Status().FastBurn")
	}

	// Aging: after the long window passes with no traffic, burn resets.
	ck.Advance(90 * time.Second)
	st = e.Status()
	if st.FastBurn || st.Objectives[0].Good != 0 || st.Objectives[0].Bad != 0 {
		t.Fatalf("window did not age out: %+v", st.Objectives[0])
	}
}

func TestFastBurnNeedsBothWindows(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)

	// A burst of bad events, then 15s of good traffic: the long window
	// still remembers the burst (burn high) but the short window has
	// recovered — fast burn must NOT be active.
	for i := 0; i < 100; i++ {
		e.Observe("run_latency", 5.0, "")
	}
	ck.Advance(15 * time.Second)
	for i := 0; i < 100; i++ {
		e.Observe("run_latency", 0.05, "")
	}
	st := e.Status()
	o := st.Objectives[0]
	if o.BurnLong < 2 {
		t.Fatalf("long window forgot the burst: %+v", o)
	}
	if o.BurnShort >= 2 || o.FastBurn {
		t.Fatalf("short window should have recovered: %+v", o)
	}
}

func TestRatioObjective(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)
	for i := 0; i < 80; i++ {
		e.ObserveOutcome("error_rate", true, "")
	}
	for i := 0; i < 20; i++ {
		e.ObserveOutcome("error_rate", false, "")
	}
	st := e.Status()
	o := st.Objectives[1]
	if o.Name != "error_rate" || o.Kind != "ratio" {
		t.Fatalf("objective = %+v", o)
	}
	// 20% bad with a 5% budget: burn 4 — over the factor, trips.
	if o.BurnLong < 3.9 || o.BurnLong > 4.1 || !o.FastBurn {
		t.Fatalf("ratio burn = %+v", o)
	}
}

func TestQuantiles(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)
	// 98 fast, 2 slow: p50 in the 0.01 bucket, p99 in the 1 bucket.
	for i := 0; i < 98; i++ {
		e.Observe("run_latency", 0.005, "")
	}
	e.Observe("run_latency", 0.5, "")
	e.Observe("run_latency", 0.5, "")
	if q, ok := e.Quantile("run_latency", 0.5); !ok || q != 0.01 {
		t.Fatalf("p50 = %v, %v; want 0.01", q, ok)
	}
	if q, ok := e.Quantile("run_latency", 0.99); !ok || q != 1 {
		t.Fatalf("p99 = %v, %v; want 1", q, ok)
	}
	// Overflow bucket: quantile reports +Inf.
	e2 := testEngine(t, ck)
	e2.Observe("run_latency", 99, "")
	if q, ok := e2.Quantile("run_latency", 0.99); !ok || !math.IsInf(q, 1) {
		t.Fatalf("overflow p99 = %v, %v; want +Inf", q, ok)
	}
	// Unknown / ratio objectives have no quantiles.
	if _, ok := e.Quantile("nope", 0.99); ok {
		t.Fatal("unknown objective must report no quantile")
	}
	if _, ok := e.Quantile("error_rate", 0.99); ok {
		t.Fatal("ratio objective must report no quantile")
	}
}

func TestExemplarsLinkTraces(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)
	e.Observe("run_latency", 0.005, "trace-fast")
	e.Observe("run_latency", 0.5, "trace-slow")
	e.Observe("run_latency", 50, "trace-overflow")
	st := e.Status()
	o := st.Objectives[0]
	got := map[string]string{}
	for _, ex := range o.Exemplars {
		got[ex.Trace] = ""
	}
	for _, want := range []string{"trace-fast", "trace-slow", "trace-overflow"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("missing exemplar %q in %+v", want, o.Exemplars)
		}
	}
	// The overflow exemplar's bound marshals as the string "+Inf" and
	// round-trips.
	data, err := json.Marshal(o.Exemplars)
	if err != nil {
		t.Fatalf("exemplars not marshallable: %v", err)
	}
	var back []Exemplar
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("exemplars round-trip: %v", err)
	}
	var sawInf bool
	for _, ex := range back {
		if math.IsInf(float64(ex.Bound), 1) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatalf("no +Inf bound survived the round-trip: %s", data)
	}
}

func TestHandlerJSONAndProm(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)
	e.Observe("run_latency", 0.5, "abcdef0123456789")
	e.ObserveOutcome("error_rate", false, "")

	// JSON by default.
	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(st.Objectives) != 2 || st.Objectives[0].Name != "run_latency" {
		t.Fatalf("status = %+v", st)
	}

	// Prometheus text on request, with the exemplar attached to a bucket.
	rr = httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo?format=prom", nil))
	body := rr.Body.String()
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type = %q", ct)
	}
	for _, want := range []string{
		"slo_fast_burn",
		`slo_burn_rate{objective="run_latency",window="short"}`,
		`slo_events_total{objective="error_rate",outcome="bad"} 1`,
		"slo_run_latency_seconds_bucket{le=\"1\"} ",
		`# {trace_id="abcdef0123456789"} 0.5`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}

	// Accept: text/plain also selects prom.
	req := httptest.NewRequest("GET", "/slo", nil)
	req.Header.Set("Accept", "text/plain")
	rr = httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), "slo_fast_burn") {
		t.Fatalf("Accept: text/plain did not select prom:\n%s", rr.Body.String())
	}
}

func TestConcurrentObserveIsRaceClean(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Observe("run_latency", float64(i%3)*0.08, "t")
				e.ObserveOutcome("error_rate", i%5 != 0, "")
				if i%50 == 0 {
					ck.Advance(time.Millisecond)
					_ = e.Status()
					_, _ = e.Quantile("run_latency", 0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Status()
	if st.Objectives[0].Good+st.Objectives[0].Bad != 4000 {
		t.Fatalf("lost observations: %+v", st.Objectives[0])
	}
}

// TestQuantileN: the sample-count variant distinguishes "objective absent"
// (ok=false) from "window empty" (ok=true, n=0) from "populated" (n>0),
// and the count tracks the sliding window as old samples age out.
func TestQuantileN(t *testing.T) {
	ck := newClock()
	e := testEngine(t, ck)

	if _, _, ok := e.QuantileN("nope", 0.99); ok {
		t.Fatal("unknown objective must report ok=false")
	}
	if _, _, ok := e.QuantileN("error_rate", 0.99); ok {
		t.Fatal("ratio objective must report ok=false")
	}
	if v, n, ok := e.QuantileN("run_latency", 0.99); !ok || n != 0 || v != 0 {
		t.Fatalf("empty window: (%v, %d, %v), want (0, 0, true)", v, n, ok)
	}
	for i := 0; i < 40; i++ {
		e.Observe("run_latency", 0.05, "")
	}
	v, n, ok := e.QuantileN("run_latency", 0.99)
	if !ok || n != 40 {
		t.Fatalf("populated window: n=%d ok=%v, want 40/true", n, ok)
	}
	if v != 0.1 {
		t.Fatalf("p99 = %v, want bucket bound 0.1", v)
	}
	// Quantile must agree with QuantileN's view.
	if v2, ok2 := e.Quantile("run_latency", 0.99); !ok2 || v2 != v {
		t.Fatalf("Quantile = (%v, %v), want (%v, true)", v2, ok2, v)
	}
	// Age the window out: the count returns to zero (ok stays true).
	ck.Advance(2 * time.Minute)
	if _, n, ok := e.QuantileN("run_latency", 0.99); !ok || n != 0 {
		t.Fatalf("aged window: n=%d ok=%v, want 0/true", n, ok)
	}
	var nilEng *Engine
	if _, _, ok := nilEng.QuantileN("run_latency", 0.99); ok {
		t.Fatal("nil engine must report ok=false")
	}
}
