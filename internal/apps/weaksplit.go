package apps

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/prng"
)

// WeakSplitting is the relaxed weak-splitting instance from the paper's
// application section: given a bipartite graph B = (V ∪ U, E), colour the
// nodes of U with `Colors` colours such that every node of V sees at least
// two distinct colours among its U-neighbours.
//
// The U nodes are the random variables (uniform over the colours); the
// maximum degree of U is the rank parameter r and must be at most 3. The
// bad event at v ∈ V is "all U-neighbours of v have the same colour", with
// probability C^(1-k) for degree k — strictly below 2^-d for C = 16,
// r = 3 and k ≥ 3, which is the paper's parameterization.
type WeakSplitting struct {
	Instance *model.Instance
	// VNeighbors[v] lists the U-nodes adjacent to V-node v.
	VNeighbors [][]int
	// UVar maps a U-node to its variable identifier.
	UVar []int
	// Colors is the size of the palette.
	Colors int
}

// NewWeakSplitting builds the instance from the V-side adjacency lists over
// numU U-nodes with the given palette size. It requires every V-node to
// have at least two distinct U-neighbours and every U-node to appear in at
// most three lists (r ≤ 3). Whether the exponential criterion actually
// holds depends on the degrees and palette; callers should check
// Instance.ExponentialCriterion.
func NewWeakSplitting(vNeighbors [][]int, numU, colors int) (*WeakSplitting, error) {
	if colors < 2 {
		return nil, fmt.Errorf("apps: weak splitting needs at least 2 colours, got %d", colors)
	}
	uDegree := make([]int, numU)
	for v, nbrs := range vNeighbors {
		if len(nbrs) < 2 {
			return nil, fmt.Errorf("apps: V-node %d has %d U-neighbours, need >= 2", v, len(nbrs))
		}
		seen := make(map[int]bool, len(nbrs))
		for _, u := range nbrs {
			if u < 0 || u >= numU {
				return nil, fmt.Errorf("apps: V-node %d references U-node %d outside [0,%d)", v, u, numU)
			}
			if seen[u] {
				return nil, fmt.Errorf("apps: V-node %d lists U-node %d twice", v, u)
			}
			seen[u] = true
			uDegree[u]++
		}
	}
	for u, deg := range uDegree {
		if deg > 3 {
			return nil, fmt.Errorf("apps: U-node %d has degree %d > 3 (r must be <= 3)", u, deg)
		}
	}

	d := dist.Uniform(colors)
	b := model.NewBuilder()
	uVar := make([]int, numU)
	for u := range uVar {
		uVar[u] = b.AddVariable(d, fmt.Sprintf("u%d", u))
	}
	for v, nbrs := range vNeighbors {
		scope := make([]int, len(nbrs))
		dists := make([]*dist.Distribution, len(nbrs))
		for i, u := range nbrs {
			scope[i] = uVar[u]
			dists[i] = d
		}
		model.AddAllEqualEvent(b, scope, dists, fmt.Sprintf("monochrome@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building weak-splitting instance: %w", err)
	}
	copied := make([][]int, len(vNeighbors))
	for i, nbrs := range vNeighbors {
		copied[i] = append([]int(nil), nbrs...)
	}
	return &WeakSplitting{Instance: inst, VNeighbors: copied, UVar: uVar, Colors: colors}, nil
}

// ColorOf returns the colour assigned to U-node u by the complete
// assignment a.
func (w *WeakSplitting) ColorOf(u int, a *model.Assignment) int {
	return a.Value(w.UVar[u])
}

// Monochromatic returns the V-nodes that see fewer than two distinct
// colours under the complete assignment a. A correct solution has none.
func (w *WeakSplitting) Monochromatic(a *model.Assignment) []int {
	var out []int
	for v, nbrs := range w.VNeighbors {
		mono := true
		first := w.ColorOf(nbrs[0], a)
		for _, u := range nbrs[1:] {
			if w.ColorOf(u, a) != first {
				mono = false
				break
			}
		}
		if mono {
			out = append(out, v)
		}
	}
	return out
}

// RandomBiregular generates V-side adjacency lists for a random bipartite
// graph with nV V-nodes of degree kV and nU U-nodes of degree rU, using a
// configuration model with restarts (no parallel edges). It requires
// nV·kV == nU·rU.
func RandomBiregular(nV, kV, nU, rU int, r *prng.Rand) ([][]int, error) {
	const maxRestarts = 2000
	if nV < 1 || nU < 1 || kV < 1 || rU < 1 {
		return nil, fmt.Errorf("apps: RandomBiregular(%d,%d,%d,%d): positive parameters required", nV, kV, nU, rU)
	}
	if nV*kV != nU*rU {
		return nil, fmt.Errorf("apps: RandomBiregular: stub mismatch %d*%d != %d*%d", nV, kV, nU, rU)
	}
	if kV > nU {
		return nil, fmt.Errorf("apps: RandomBiregular: V-degree %d exceeds number of U-nodes %d", kV, nU)
	}
	uStubs := make([]int, 0, nU*rU)
	for attempt := 0; attempt < maxRestarts; attempt++ {
		uStubs = uStubs[:0]
		for u := 0; u < nU; u++ {
			for i := 0; i < rU; i++ {
				uStubs = append(uStubs, u)
			}
		}
		r.Shuffle(len(uStubs), func(i, j int) { uStubs[i], uStubs[j] = uStubs[j], uStubs[i] })
		adj := make([][]int, nV)
		ok := true
		pos := 0
		for v := 0; v < nV && ok; v++ {
			seen := make(map[int]bool, kV)
			for i := 0; i < kV; i++ {
				u := uStubs[pos]
				pos++
				if seen[u] {
					ok = false
					break
				}
				seen[u] = true
				adj[v] = append(adj[v], u)
			}
		}
		if ok {
			return adj, nil
		}
	}
	return nil, fmt.Errorf("apps: RandomBiregular(%d,%d,%d,%d): no simple configuration after %d restarts", nV, kV, nU, rU, maxRestarts)
}
