// Command benchharness regenerates every figure and experiment table of the
// reproduction (F1, F2, T1-T8 in DESIGN.md) and prints them to stdout. It is
// the one-shot entry point behind EXPERIMENTS.md.
//
// Independent experiments run concurrently on a sharded worker pool
// (-workers, default GOMAXPROCS); tables are collected per experiment and
// emitted in DESIGN.md order, so the output matches a sequential run
// cell for cell (only T6's wall-clock timing columns vary run to run).
//
// Usage:
//
//	benchharness [-seed N] [-scale F] [-trials N] [-only ID] [-workers N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "experiment seed")
	scale := flag.Float64("scale", 1, "instance size scale factor")
	trials := flag.Int("trials", 0, "randomized repetitions (0 = per-experiment default)")
	only := flag.String("only", "", "run a single experiment by ID (F1, F2, T1..T11)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	workers := flag.Int("workers", 0, "concurrent experiments and LOCAL-engine workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	emit := func(tbl *exp.Table) error {
		if *csv {
			fmt.Printf("# %s: %s\n", tbl.ID, tbl.Title)
			return tbl.CSV(os.Stdout)
		}
		tbl.Render(os.Stdout)
		return nil
	}
	sz := exp.Sizes{Scale: *scale, Trials: *trials, Workers: *workers}
	if *only == "" {
		tables, err := exp.AllParallel(*seed, sz, *workers)
		for _, tbl := range tables {
			if eerr := emit(tbl); eerr != nil {
				return eerr
			}
		}
		return err
	}

	var (
		tbl *exp.Table
		err error
	)
	switch strings.ToUpper(*only) {
	case "F1":
		tbl, err = exp.F1Surface(0.5, 20000, *seed)
	case "F2":
		tbl, err = exp.F2Witness()
	case "T1":
		tbl, err = exp.T1Rank2(*seed, sz)
	case "T2":
		tbl, err = exp.T2DistributedRank2(*seed, sz)
	case "T3":
		tbl, err = exp.T3Rank3(*seed, sz)
	case "T4":
		tbl, err = exp.T4DistributedRank3(*seed, sz)
	case "T5":
		tbl, err = exp.T5Threshold(*seed, sz)
	case "T6":
		tbl, err = exp.T6MoserTardos(*seed, sz)
	case "T7":
		tbl, err = exp.T7Applications(*seed, sz)
	case "T8":
		tbl, err = exp.T8Ablations(*seed, sz)
	case "T9":
		tbl, err = exp.T9Conjecture(*seed, sz)
	case "T10":
		tbl, err = exp.T10Spectrum(*seed, sz)
	case "T11":
		tbl, err = exp.T11LowerBound(*seed, sz)
	default:
		return fmt.Errorf("unknown experiment %q", *only)
	}
	if tbl != nil {
		if eerr := emit(tbl); eerr != nil {
			return eerr
		}
	}
	return err
}
