package tenant

import "testing"

// TestAutoTunerAIMD: multiplicative decrease on overload, additive
// increase on backlog, hold when healthy, always inside [Min, Max].
func TestAutoTunerAIMD(t *testing.T) {
	tuner := AutoTuner{Min: 1, Max: 16, RunThreshold: 2.0, QueueThreshold: 0.5}

	if got := tuner.Next(8, Signals{FastBurn: true}); got != 4 {
		t.Errorf("fast burn: 8 -> %d, want 4 (halve)", got)
	}
	if got := tuner.Next(8, Signals{RunP99: 3.0}); got != 4 {
		t.Errorf("run p99 over threshold: 8 -> %d, want 4", got)
	}
	if got := tuner.Next(8, Signals{QueueP99: 1.0, RunP99: 0.1}); got != 9 {
		t.Errorf("backlog with healthy runs: 8 -> %d, want 9 (additive)", got)
	}
	if got := tuner.Next(8, Signals{QueueP99: 0.1, RunP99: 0.1}); got != 8 {
		t.Errorf("healthy: 8 -> %d, want 8 (hold)", got)
	}
	if got := tuner.Next(8, Signals{}); got != 8 {
		t.Errorf("no samples: 8 -> %d, want 8 (no signal, no move)", got)
	}

	// Bounds: repeated decrease floors at Min, repeated increase caps at Max.
	cur := 16
	for i := 0; i < 10; i++ {
		cur = tuner.Next(cur, Signals{FastBurn: true})
	}
	if cur != 1 {
		t.Errorf("repeated decrease settled at %d, want Min=1", cur)
	}
	for i := 0; i < 30; i++ {
		cur = tuner.Next(cur, Signals{QueueP99: 10})
	}
	if cur != 16 {
		t.Errorf("repeated increase settled at %d, want Max=16", cur)
	}

	// Overload wins over backlog: both signals high must shrink.
	if got := tuner.Next(8, Signals{RunP99: 5, QueueP99: 5}); got != 4 {
		t.Errorf("overload+backlog: 8 -> %d, want 4 (back off first)", got)
	}
}

// TestAutoTunerDefaults: zero Step/Decrease take sane defaults, degenerate
// bounds are repaired, out-of-range current values are clamped.
func TestAutoTunerDefaults(t *testing.T) {
	tuner := AutoTuner{Min: 0, Max: 0}
	if got := tuner.Next(5, Signals{}); got != 1 {
		t.Errorf("degenerate bounds: Next(5) = %d, want clamp to 1", got)
	}
	tuner = AutoTuner{Min: 2, Max: 8, QueueThreshold: 0}
	if got := tuner.Next(100, Signals{}); got != 8 {
		t.Errorf("over-max current clamps to %d, want 8", got)
	}
	if got := tuner.Next(0, Signals{}); got != 2 {
		t.Errorf("under-min current clamps to %d, want 2", got)
	}
	// QueueThreshold 0: any observed queue wait grows the limit.
	if got := tuner.Next(4, Signals{QueueP99: 0.001}); got != 5 {
		t.Errorf("zero threshold with tiny backlog: 4 -> %d, want 5", got)
	}
}
