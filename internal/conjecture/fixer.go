package conjecture

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
)

// ErrInfeasible indicates that no candidate value passed the numeric
// feasibility test. Conjecture 1.5 predicts this never happens strictly
// below the threshold; the experimental fixer surfaces it rather than
// papering over it.
var ErrInfeasible = errors.New("conjecture: no feasible value found")

// Stats records what an experimental rank-r fixing run did.
type Stats struct {
	VarsFixed int
	// MaxRank is the largest variable rank encountered.
	MaxRank int
	// Infeasible counts variables where the numeric solver found no
	// feasible value and the least-bad value was used instead. Nonzero
	// values are potential counterexample material (or solver weakness).
	Infeasible int
	// FinalViolatedEvents counts bad events under the final assignment.
	FinalViolatedEvents int
	// PeakCertBound is the largest certified failure bound observed.
	PeakCertBound float64
}

// Result is the outcome of an experimental rank-r fixing run.
type Result struct {
	Assignment *model.Assignment
	Stats      Stats
}

// phiKey identifies one side of a dependency edge (event pair).
type phiKey struct {
	lo, hi int
	at     int
}

// FixSequentialR runs the generalized sequential fixing process on an
// instance of ANY rank: the exact machinery of Theorem 1.3 with the
// closed-form representability test replaced by the numeric Feasible
// search over the K_r edge values. order may be nil for identifier order.
//
// Strictly below the threshold the conjecture predicts
// Stats.FinalViolatedEvents == 0 and Stats.Infeasible == 0 on every run;
// the harness (experiment T9) measures exactly that.
func FixSequentialR(inst *model.Instance, order []int) (*Result, error) {
	if order == nil {
		order = make([]int, inst.NumVars())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != inst.NumVars() {
		return nil, fmt.Errorf("conjecture: order length %d, want %d", len(order), inst.NumVars())
	}

	a := model.NewAssignment(inst)
	phi := make(map[phiKey]float64)
	phiVal := func(u, v, at int) float64 {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		if val, ok := phi[phiKey{lo, hi, at}]; ok {
			return val
		}
		return 1
	}
	setPhi := func(u, v, at int, val float64) {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		phi[phiKey{lo, hi, at}] = val
	}

	base := make([]float64, inst.NumEvents())
	empty := model.NewAssignment(inst)
	for e := range base {
		base[e] = inst.CondProb(e, empty)
	}
	stats := Stats{PeakCertBound: 0}
	for _, b := range base {
		if b > stats.PeakCertBound {
			stats.PeakCertBound = b
		}
	}

	eventBound := func(e int) float64 {
		// ∏ over dependency-edge sides at e; only stored entries differ
		// from 1.
		prod := 1.0
		for k, v := range phi {
			if k.at == e {
				prod *= v
			}
		}
		return prod
	}

	for _, vid := range order {
		events := append([]int(nil), inst.Var(vid).Events...)
		sort.Ints(events)
		k := len(events)
		if k > stats.MaxRank {
			stats.MaxRank = k
		}
		switch k {
		case 0:
			a.Fix(vid, 0)
			stats.VarsFixed++
			continue
		case 1:
			// Rank 1: pick the value minimizing Inc (≤ 1 exists).
			d := inst.Var(vid).Dist
			bestVal, bestInc := 0, 2.0
			for y := 0; y < d.Size(); y++ {
				if inc := inst.Inc(events[0], a, vid, y); inc < bestInc {
					bestVal, bestInc = y, inc
				}
			}
			a.Fix(vid, bestVal)
			stats.VarsFixed++
			continue
		}

		// Current per-event products over the K_k edges of this variable.
		cur := make([]float64, k)
		for i, e := range events {
			p := 1.0
			for j, o := range events {
				if j != i {
					p *= phiVal(e, o, e)
				}
			}
			cur[i] = p
		}

		d := inst.Var(vid).Dist
		type cand struct {
			val    int
			target []float64
			wit    Witness
			score  float64
		}
		var best *cand
		var leastBad *cand
		leastBadScore := 0.0
		for y := 0; y < d.Size(); y++ {
			target := make([]float64, k)
			score := 0.0
			for i, e := range events {
				target[i] = inst.Inc(e, a, vid, y) * cur[i]
				score += target[i]
			}
			if wit, ok := Feasible(target); ok {
				c := &cand{val: y, target: target, wit: wit, score: score}
				if best == nil || c.score < best.score {
					best = c
				}
			}
			if leastBad == nil || score < leastBadScore {
				leastBad = &cand{val: y, target: target, score: score}
				leastBadScore = score
			}
		}
		chosen := best
		if chosen == nil {
			// Potential counterexample (or numeric weakness): record it,
			// take the least-bad value, and clamp the bookkeeping to the
			// best witness we can find for a scaled-down target.
			stats.Infeasible++
			chosen = leastBad
			scaled := append([]float64(nil), chosen.target...)
			for {
				if wit, ok := Feasible(scaled); ok {
					chosen.wit = wit
					break
				}
				all := 0.0
				for i := range scaled {
					scaled[i] *= 0.9
					all += scaled[i]
				}
				if all < 1e-12 {
					chosen.wit, _ = Feasible(make([]float64, k))
					break
				}
			}
		}
		a.Fix(vid, chosen.val)
		for i, e := range events {
			for j, o := range events {
				if j != i {
					setPhi(e, o, e, chosen.wit.Side[i][j])
				}
			}
		}
		stats.VarsFixed++
		for _, e := range events {
			if q := base[e] * eventBound(e); q > stats.PeakCertBound {
				stats.PeakCertBound = q
			}
		}
	}

	violated, err := inst.CountViolated(a)
	if err != nil {
		return nil, err
	}
	stats.FinalViolatedEvents = violated
	return &Result{Assignment: a, Stats: stats}, nil
}
