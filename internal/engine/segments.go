package engine

import "sort"

// ForEachSegments covers the concatenation of contiguous segments with the
// pool's shards. offsets is the cumulative segment layout: it must start at
// 0, be non-decreasing, and segment k spans the global index range
// [offsets[k], offsets[k+1]). The pool shards the TOTAL range
// [0, offsets[len(offsets)-1]) exactly like ForEachShard — so many small
// segments (e.g. the events of many small packed LLL instances) share
// shards instead of paying one dispatch each — and fn is invoked once per
// (segment, sub-range) intersection with the segment index and the GLOBAL
// bounds of the intersection. Subtract offsets[seg] to recover
// segment-local indices.
//
// The determinism contract of ForEachShard carries over verbatim: every
// global index is covered exactly once, shard boundaries never tear an
// index, and callers must write results index-addressed. Empty segments
// are skipped.
func (p *Pool) ForEachSegments(offsets []int, fn func(seg, lo, hi int)) {
	if len(offsets) == 0 {
		return
	}
	if offsets[0] != 0 {
		panic("engine: ForEachSegments offsets must start at 0")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			panic("engine: ForEachSegments offsets must be non-decreasing")
		}
	}
	total := offsets[len(offsets)-1]
	p.ForEachShard(total, func(lo, hi int) {
		// First segment whose range can contain lo: the last k with
		// offsets[k] <= lo.
		seg := sort.SearchInts(offsets, lo+1) - 1
		for lo < hi {
			end := offsets[seg+1]
			h := hi
			if end < h {
				h = end
			}
			if h > lo {
				fn(seg, lo, h)
				lo = h
			}
			if lo >= hi {
				break
			}
			seg++
		}
	})
}
