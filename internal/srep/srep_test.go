package srep

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestFKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 4},
		{0, 1, 3}, // f(0,b) = 4-b
		{0, 4, 0},
		{1, 0, 3}, // f(a,0) = 4-a
		{1, 1, 1}, // f(a,a) = (2-a)^2
		{2, 2, 0},
		{0.5, 0.5, 2.25},
		{3, 1, 0}, // 4 + ½(3 − 6 − 2 − √9) = 0
	}
	for _, tt := range tests {
		if got := F(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("F(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFSymmetric(t *testing.T) {
	r := prng.New(1)
	for i := 0; i < 1000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		if math.Abs(F(a, b)-F(b, a)) > 1e-12 {
			t.Fatalf("F not symmetric at (%v, %v)", a, b)
		}
	}
}

func TestFMatchesNumericOracle(t *testing.T) {
	// Lemma 3.5: f(a,b) equals the maximum representable c, which
	// MaxCNumeric computes by brute-force scanning of the split parameter.
	r := prng.New(2)
	for i := 0; i < 300; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		got := F(a, b)
		oracle := MaxCNumeric(a, b, 20000)
		if math.Abs(got-oracle) > 1e-4 {
			t.Fatalf("F(%v, %v) = %v but numeric max = %v", a, b, got, oracle)
		}
	}
}

func TestFNonNegativeOnDomain(t *testing.T) {
	r := prng.New(3)
	for i := 0; i < 5000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		if F(a, b) < -1e-12 {
			t.Fatalf("F(%v, %v) = %v < 0", a, b, F(a, b))
		}
	}
}

func TestFigure2TripleIsRepresentable(t *testing.T) {
	// The paper's Figure 2 example: (1/4, 3/2, 1/10) is representable.
	a, b, c := 0.25, 1.5, 0.1
	if !IsRepresentable(a, b, c, DefaultTol) {
		t.Fatal("Figure 2 triple not representable")
	}
	w, err := Decompose(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Valid(1e-12) {
		t.Fatalf("witness invalid: %+v", w)
	}
	wa, wb, wc := w.Triple()
	if math.Abs(wa-a) > 1e-9 || math.Abs(wb-b) > 1e-9 || math.Abs(wc-c) > 1e-9 {
		t.Fatalf("witness realizes (%v, %v, %v), want (%v, %v, %v)", wa, wb, wc, a, b, c)
	}
}

func TestIsRepresentableBasics(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c float64
		want    bool
	}{
		{"origin", 0, 0, 0, true},
		{"all-ones", 1, 1, 1, true},
		{"corner c", 0, 0, 4, true},
		{"just above corner", 0, 0, 4.001, false},
		{"a+b over 4", 2.5, 2, 0, false},
		{"a+b equal 4", 2, 2, 0, true},
		{"negative", -0.1, 1, 1, false},
		{"above surface", 1, 1, 1.001, false},
		{"max a alone", 4, 0, 0, true},
		{"beyond max a", 4.2, 0, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsRepresentable(tt.a, tt.b, tt.c, DefaultTol); got != tt.want {
				t.Fatalf("IsRepresentable(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.c, got, tt.want)
			}
		})
	}
}

func TestDecomposeRandomInteriorTriples(t *testing.T) {
	r := prng.New(5)
	for i := 0; i < 2000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		c := r.Float64() * F(a, b)
		w, err := Decompose(a, b, c)
		if err != nil {
			t.Fatalf("Decompose(%v, %v, %v): %v", a, b, c, err)
		}
		if !w.Valid(1e-9) {
			t.Fatalf("invalid witness for (%v, %v, %v): %+v", a, b, c, w)
		}
		if !w.Realizes(a, b, c, 1e-9) {
			wa, wb, wc := w.Triple()
			t.Fatalf("witness (%v, %v, %v) does not realize (%v, %v, %v)", wa, wb, wc, a, b, c)
		}
	}
}

func TestDecomposeBoundaryTriples(t *testing.T) {
	// Exactly on the surface c = f(a,b): the tightest case of Lemma 3.5.
	r := prng.New(7)
	for i := 0; i < 2000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		c := F(a, b)
		w, err := Decompose(a, b, c)
		if err != nil {
			t.Fatalf("Decompose boundary (%v, %v, %v): %v", a, b, c, err)
		}
		if !w.Valid(1e-9) || !w.Realizes(a, b, c, 1e-7) {
			t.Fatalf("boundary witness bad for (%v, %v, %v): %+v", a, b, c, w)
		}
	}
}

func TestDecomposeSpecialCases(t *testing.T) {
	cases := [][3]float64{
		{0, 0, 0}, {0, 0, 4}, {0, 2, 2}, {2, 0, 2}, {1, 1, 1},
		{4, 0, 0}, {0, 4, 0}, {2, 2, 0}, {3.5, 0.5, F(3.5, 0.5)},
	}
	for _, tc := range cases {
		w, err := Decompose(tc[0], tc[1], tc[2])
		if err != nil {
			t.Fatalf("Decompose(%v): %v", tc, err)
		}
		if !w.Valid(1e-9) || !w.Realizes(tc[0], tc[1], tc[2], 1e-9) {
			t.Fatalf("bad witness for %v: %+v", tc, w)
		}
	}
}

func TestDecomposeRejectsOutside(t *testing.T) {
	if _, err := Decompose(1, 1, 1.5); !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("err = %v, want ErrNotRepresentable", err)
	}
	if _, err := Decompose(3, 3, 0); !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("err = %v, want ErrNotRepresentable", err)
	}
	if _, err := Decompose(-1, 0, 0); !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("err = %v, want ErrNotRepresentable", err)
	}
}

func TestWitnessConstraintsMatterForValidity(t *testing.T) {
	good := Witness{A1: 1, A2: 1, B1: 1, B3: 1, C2: 1, C3: 1}
	if !good.Valid(0) {
		t.Fatal("all-ones witness should be valid")
	}
	bad := good
	bad.A1 = 1.5 // A1 + B1 = 2.5 > 2
	if bad.Valid(1e-9) {
		t.Fatal("sum-violating witness reported valid")
	}
	bad = good
	bad.C3 = 2.5 // out of [0,2]
	if bad.Valid(1e-9) {
		t.Fatal("range-violating witness reported valid")
	}
}

func TestSRepDownwardClosed(t *testing.T) {
	// If (a,b,c) ∈ S_rep then any componentwise-smaller triple is too
	// (decrease the witness values). Equivalently F is non-increasing.
	r := prng.New(11)
	for i := 0; i < 2000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		a2 := a * r.Float64()
		b2 := b * r.Float64()
		if F(a2, b2) < F(a, b)-1e-9 {
			t.Fatalf("F(%v, %v) = %v < F(%v, %v) = %v", a2, b2, F(a2, b2), a, b, F(a, b))
		}
	}
}

func TestFMidpointConvexity(t *testing.T) {
	// Lemma 3.6 numerically: f((x+y)/2) <= (f(x)+f(y))/2.
	r := prng.New(13)
	for i := 0; i < 5000; i++ {
		a1 := r.Float64() * 4
		b1 := r.Float64() * (4 - a1)
		a2 := r.Float64() * 4
		b2 := r.Float64() * (4 - a2)
		mid := F((a1+a2)/2, (b1+b2)/2)
		avg := (F(a1, b1) + F(a2, b2)) / 2
		if mid > avg+1e-9 {
			t.Fatalf("convexity violated: f(mid)=%v > avg=%v at (%v,%v)/(%v,%v)", mid, avg, a1, b1, a2, b2)
		}
	}
}

func TestFConvexAlongRandomSegments(t *testing.T) {
	// Stronger check: f restricted to random segments is convex at random
	// interpolation parameters, not just midpoints.
	r := prng.New(17)
	for i := 0; i < 5000; i++ {
		a1 := r.Float64() * 4
		b1 := r.Float64() * (4 - a1)
		a2 := r.Float64() * 4
		b2 := r.Float64() * (4 - a2)
		q := r.Float64()
		lhs := F(q*a1+(1-q)*a2, q*b1+(1-q)*b2)
		rhs := q*F(a1, b1) + (1-q)*F(a2, b2)
		if lhs > rhs+1e-9 {
			t.Fatalf("convexity violated at q=%v", q)
		}
	}
}

func TestIncurvednessRandomChords(t *testing.T) {
	// Lemma 3.7 numerically: no chord between two points outside S_rep
	// passes through S_rep. Sample points outside and random q.
	r := prng.New(19)
	violations := 0
	trials := 0
	for trials < 20000 {
		s := Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		o := Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		if s.In(DefaultTol) || o.In(DefaultTol) {
			continue
		}
		trials++
		q := r.Float64()
		if ChordViolation(s, o, q, DefaultTol) {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("%d incurvedness violations in %d chords", violations, trials)
	}
}

func TestIncurvednessNearSurfaceChords(t *testing.T) {
	// Adversarial chords: both endpoints just above the surface, where a
	// violation would appear first if S_rep were not incurved.
	r := prng.New(23)
	for i := 0; i < 20000; i++ {
		a1 := r.Float64() * 4
		b1 := r.Float64() * (4 - a1)
		a2 := r.Float64() * 4
		b2 := r.Float64() * (4 - a2)
		eps1 := 1e-6 + r.Float64()*0.1
		eps2 := 1e-6 + r.Float64()*0.1
		s := Triple{A: a1, B: b1, C: F(a1, b1) + eps1}
		o := Triple{A: a2, B: b2, C: F(a2, b2) + eps2}
		q := r.Float64()
		if ChordViolation(s, o, q, 1e-12) {
			t.Fatalf("near-surface chord violation: s=%+v o=%+v q=%v", s, o, q)
		}
	}
}

func TestSurfaceGrid(t *testing.T) {
	pts := SurfaceGrid(0.25)
	if len(pts) == 0 {
		t.Fatal("empty surface grid")
	}
	for _, p := range pts {
		if p.A+p.B > 4+1e-9 {
			t.Fatalf("grid point outside triangle: %+v", p)
		}
		if math.Abs(p.C-F(p.A, p.B)) > 1e-12 {
			t.Fatalf("grid point off surface: %+v", p)
		}
		if !IsRepresentable(p.A, p.B, p.C, DefaultTol) {
			t.Fatalf("surface point not representable: %+v", p)
		}
		if IsRepresentable(p.A, p.B, p.C+1e-6, 1e-9) {
			t.Fatalf("point above surface is representable: %+v", p)
		}
	}
	// Triangle with step s has roughly (4/s)^2/2 points; sanity check count.
	if len(pts) < 100 {
		t.Fatalf("suspiciously few grid points: %d", len(pts))
	}
}

func TestQuickDecomposeRoundTrip(t *testing.T) {
	f := func(ra, rb, rc uint16) bool {
		a := 4 * float64(ra) / 65535
		b := (4 - a) * float64(rb) / 65535
		c := F(a, b) * float64(rc) / 65535
		w, err := Decompose(a, b, c)
		if err != nil {
			return false
		}
		return w.Valid(1e-9) && w.Realizes(a, b, c, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTripleInterpolate(t *testing.T) {
	s := Triple{A: 0, B: 0, C: 0}
	o := Triple{A: 4, B: 2, C: 1}
	m := s.Interpolate(o, 0.25)
	if m.A != 3 || m.B != 1.5 || m.C != 0.75 {
		t.Fatalf("Interpolate = %+v", m)
	}
}

func BenchmarkF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = F(1.3, 2.1)
	}
}

func BenchmarkDecompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Decompose(1.3, 2.1, 0.3)
	}
}

func BenchmarkIsRepresentable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = IsRepresentable(1.3, 2.1, 0.3, DefaultTol)
	}
}
