package conjecture

import (
	"fmt"
	"sort"

	"repro/internal/coloring"
	"repro/internal/local"
	"repro/internal/model"
)

// This file implements the distributed algorithm Conjecture 1.5 asks for:
// the exact structure of Corollary 1.4 — distance-2 colour the dependency
// graph, then let each colour class fix all of its variables in a two-round
// act/echo cycle — with the rank-3 closed-form representability test
// replaced by the numeric Feasible search, so variables of ANY rank are
// handled. Same-class nodes are at distance ≥ 3, hence their fixes touch
// disjoint events and disjoint bookkeeping entries, for any rank.

// rMachine is the per-event LOCAL machine of the generalized fixer. It
// mirrors core's machine but keeps rank-r bookkeeping: one φ value per
// (event-pair, owner) key, updated from numeric witnesses.
type rMachine struct {
	inst       *model.Instance
	me         int
	numClasses int
	myClass    int

	info  local.NodeInfo
	vars  []int
	known map[int]int
	view  *model.Assignment
	phi   map[phiKey]phiEntry
	err   error
}

// phiEntry is a versioned bookkeeping value (version = round written).
type phiEntry struct {
	val float64
	ver int
}

// rStateMsg is the full local view a node broadcasts each round.
type rStateMsg struct {
	fixings map[int]int
	phi     map[phiKey]phiEntry
}

func (m *rMachine) Init(info local.NodeInfo) {
	m.info = info
	m.known = make(map[int]int)
	m.view = model.NewAssignment(m.inst)
	m.phi = make(map[phiKey]phiEntry)
	for vid := 0; vid < m.inst.NumVars(); vid++ {
		for _, e := range m.inst.Var(vid).Events {
			if e == m.me {
				m.vars = append(m.vars, vid)
				break
			}
		}
	}
	sort.Ints(m.vars)
}

func (m *rMachine) totalRounds() int { return 2*m.numClasses + 1 }

func (m *rMachine) phiValue(u, v, at int) float64 {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	if e, ok := m.phi[phiKey{lo, hi, at}]; ok {
		return e.val
	}
	return 1
}

func (m *rMachine) setPhi(u, v, at int, val float64, round int) {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	m.phi[phiKey{lo, hi, at}] = phiEntry{val: val, ver: round}
}

func (m *rMachine) learn(vid, val int) error {
	if old, ok := m.known[vid]; ok {
		if old != val {
			return fmt.Errorf("conjecture: conflicting values %d and %d for variable %d", old, val, vid)
		}
		return nil
	}
	m.known[vid] = val
	m.view.Fix(vid, val)
	return nil
}

func (m *rMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		sm, ok := msg.(*rStateMsg)
		if !ok {
			m.err = fmt.Errorf("conjecture: unexpected message type %T", msg)
			return nil, true
		}
		for vid, val := range sm.fixings {
			if err := m.learn(vid, val); err != nil {
				m.err = err
				return nil, true
			}
		}
		for k, e := range sm.phi {
			if cur, ok := m.phi[k]; !ok || e.ver > cur.ver {
				m.phi[k] = e
			}
		}
	}

	switch {
	case round == 1:
		m.fixPrivate()
	case round%2 == 0:
		if class := (round - 2) / 2; class < m.numClasses && class == m.myClass {
			m.actClass(round)
		}
	}
	if m.err != nil {
		return nil, true
	}

	snapshot := &rStateMsg{
		fixings: make(map[int]int, len(m.known)),
		phi:     make(map[phiKey]phiEntry, len(m.phi)),
	}
	for vid, val := range m.known {
		snapshot.fixings[vid] = val
	}
	for k, e := range m.phi {
		snapshot.phi[k] = e
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = snapshot
	}
	return send, round >= m.totalRounds()
}

func (m *rMachine) fixPrivate() {
	for _, vid := range m.vars {
		events := m.inst.Var(vid).Events
		if len(events) != 1 || events[0] != m.me {
			continue
		}
		if _, fixed := m.known[vid]; fixed {
			continue
		}
		d := m.inst.Var(vid).Dist
		bestVal, bestInc := 0, 2.0
		for y := 0; y < d.Size(); y++ {
			if inc := m.inst.Inc(m.me, m.view, vid, y); inc < bestInc {
				bestVal, bestInc = y, inc
			}
		}
		if err := m.learn(vid, bestVal); err != nil {
			m.err = err
			return
		}
	}
}

func (m *rMachine) actClass(round int) {
	for _, vid := range m.vars {
		if _, fixed := m.known[vid]; fixed {
			continue
		}
		events := append([]int(nil), m.inst.Var(vid).Events...)
		sort.Ints(events)
		k := len(events)
		if k == 1 {
			m.fixPrivate()
			continue
		}
		cur := make([]float64, k)
		for i, e := range events {
			p := 1.0
			for j, o := range events {
				if j != i {
					p *= m.phiValue(e, o, e)
				}
			}
			cur[i] = p
		}
		d := m.inst.Var(vid).Dist
		bestVal, bestScore := -1, 0.0
		var bestWit Witness
		for y := 0; y < d.Size(); y++ {
			target := make([]float64, k)
			score := 0.0
			for i, e := range events {
				target[i] = m.inst.Inc(e, m.view, vid, y) * cur[i]
				score += target[i]
			}
			if wit, ok := Feasible(target); ok && (bestVal < 0 || score < bestScore) {
				bestVal, bestScore, bestWit = y, score, wit
			}
		}
		if bestVal < 0 {
			m.err = fmt.Errorf("%w: variable %d at node %d", ErrInfeasible, vid, m.me)
			return
		}
		if err := m.learn(vid, bestVal); err != nil {
			m.err = err
			return
		}
		for i, e := range events {
			for j, o := range events {
				if j != i {
					m.setPhi(e, o, e, bestWit.Side[i][j], round)
				}
			}
		}
	}
}

// DistResult is the outcome of a distributed generalized fixing run.
type DistResult struct {
	Assignment     *model.Assignment
	ColoringRounds int
	FixingRounds   int
	TotalRounds    int
	Classes        int
	ViolatedEvents int
}

// FixDistributedR runs the distributed generalized fixer on the instance's
// dependency graph: distance-2 colouring, then one two-round cycle per
// colour class in which the class's nodes fix all their variables with the
// numeric representability search. This is the algorithm whose existence
// for every rank is Conjecture 1.5 (with the conjectured convexity replaced
// by the numeric search).
func FixDistributedR(inst *model.Instance, lopts local.Options) (*DistResult, error) {
	g := inst.DependencyGraph()
	d2, err := coloring.DistributedDistance2Native(g, lopts)
	if err != nil {
		return nil, fmt.Errorf("conjecture: distance-2 colouring: %w", err)
	}
	machines := make([]*rMachine, g.N())
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = &rMachine{
			inst:       inst,
			me:         v,
			numClasses: d2.Palette,
			myClass:    d2.Colors[v],
		}
		return machines[v]
	}, lopts)
	if err != nil {
		return nil, err
	}
	a := model.NewAssignment(inst)
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("conjecture: node %d failed: %w", v, m.err)
		}
		for vid, val := range m.known {
			if a.Fixed(vid) {
				if a.Value(vid) != val {
					return nil, fmt.Errorf("conjecture: nodes disagree on variable %d", vid)
				}
				continue
			}
			a.Fix(vid, val)
		}
	}
	for vid := 0; vid < inst.NumVars(); vid++ {
		if !a.Fixed(vid) {
			if len(inst.Var(vid).Events) != 0 {
				return nil, fmt.Errorf("conjecture: variable %d left unfixed", vid)
			}
			a.Fix(vid, 0)
		}
	}
	violated, err := inst.CountViolated(a)
	if err != nil {
		return nil, err
	}
	return &DistResult{
		Assignment:     a,
		ColoringRounds: d2.Rounds * d2.SimFactor,
		FixingRounds:   stats.Rounds,
		TotalRounds:    d2.Rounds*d2.SimFactor + stats.Rounds,
		Classes:        d2.Palette,
		ViolatedEvents: violated,
	}, nil
}
