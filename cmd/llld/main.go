// Command llld is the LLL solver daemon: it serves the internal/service
// job subsystem over HTTP — bounded-queue admission, concurrent execution
// on the engine worker pool, per-round NDJSON event streams, cancellation —
// together with the observability endpoints (/metrics Prometheus text,
// /debug/vars JSON, /debug/pprof) and the SLO burn-rate status (/slo, JSON
// or ?format=prom with trace-exemplars; fast burn sheds deadline'd jobs
// whose predicted p99 cannot meet their deadline).
//
// Usage:
//
//	llld -addr :8080 -queue 64 -inflight 4
//
// Submit, watch and cancel jobs:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"family":"sinkless","n":4096,"degree":3,"algorithm":"dist"}'
//	curl -s localhost:8080/v1/jobs/j000001/events      # NDJSON, one line per round
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001   # cancel
//
// Batch many instances into one job (packed engine runs + result cache):
//
//	curl -s -X POST localhost:8080/v1/jobs/batch \
//	  -d '{"template":{"family":"sinkless","n":256,"algorithm":"mtpar"},"count":50,"vary_seed":true,"cache":true}'
//
// SIGINT/SIGTERM starts a graceful drain: admission stops (healthz turns
// 503, new submits get 503), queued jobs are cancelled, running jobs get
// -drain-timeout to finish before their contexts are cancelled.
//
// Run as a cluster member (usually behind cmd/lllrouter) by naming itself
// and its peers; nodes then fill cache misses from the key's home node and
// serve their own cache to peers over /v1/peer/cache/:
//
//	llld -addr :8081 -cluster-self a -cluster-nodes a=http://127.0.0.1:8081,b=http://127.0.0.1:8082
//
// Join a running cluster at runtime — no restarts anywhere — by announcing
// to any member (node or router); the previous owners of the joiner's ring
// slice stream their matching warm-cache entries over:
//
//	llld -addr :8084 -cluster-self d -cluster-url http://127.0.0.1:8084 \
//	     -cluster-join http://127.0.0.1:8081
//
// SIGTERM on a cluster member runs the planned-leave protocol before the
// drain: cached entries stream to their next owners (reverse warm handoff)
// and the membership without this node fans out. While alive, the k
// hottest owned cache entries (-cluster-hot-replicas) are write-through
// replicated to the ring successor so even a SIGKILL does not cold-start
// them.
//
// Multi-tenant serving: -tenants takes a tenancy policy (inline JSON or a
// @file path) defining named tenants with weights, priority classes,
// token-bucket rates and in-flight/queued quotas. Submissions label
// themselves via the spec's "tenant" field or the X-Tenant header; the
// scheduler then dispatches weighted-fair across tenants, quota and rate
// rejections answer 429 with a per-tenant Retry-After, and GET /v1/tenants
// reports the live per-tenant accounting:
//
//	llld -tenants '{"tenants":[{"name":"gold","weight":4},{"name":"free","weight":1,"rate":2,"burst":4}]}'
//	llld -tenants @tenants.json -autotune
//
// -autotune turns on the AIMD concurrency controller: the effective
// in-flight limit is halved on SLO fast burn or a p99 over the thresholds
// and creeps up by one while a backlog waits, within
// [-autotune-min, -autotune-max], re-evaluated every -autotune-interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/slo"
	"repro/internal/tenant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llld:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	queueCap := flag.Int("queue", 64, "admission queue capacity (full queue answers 429)")
	inflight := flag.Int("inflight", 0, "max concurrently running jobs (0: GOMAXPROCS/2)")
	jobWorkers := flag.Int("job-workers", 0, "engine worker cap per job (0: GOMAXPROCS)")
	retention := flag.Int("retention", 256, "finished jobs kept in the store")
	cacheSize := flag.Int("cache-size", 256, "canonical result-cache entries (negative: disable caching)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running jobs")
	traceFile := flag.String("trace", "", "append JSONL runtime trace events to this file")
	retries := flag.Int("retries", 0, "default retry budget for jobs that do not set max_retries")
	retryBackoff := flag.Duration("retry-backoff", 0, "base retry backoff (0: 100ms)")
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, "retry backoff cap (0: 5s)")
	injectPanic := flag.Float64("inject-panic", 0, "fault injection: per-shard-per-round panic probability [0,1)")
	injectDrop := flag.Float64("inject-drop", 0, "fault injection: per-message drop probability [0,1)")
	injectCrash := flag.Float64("inject-crash", 0, "fault injection: per-node-per-round crash-stop probability [0,1)")
	injectSeed := flag.Uint64("inject-seed", 0, "fault injection seed (0: derive from each job's seed)")
	sloOn := flag.Bool("slo", true, "evaluate SLO burn rates and serve /slo (fast burn sheds deadline'd jobs)")
	sloRunThreshold := flag.Duration("slo-run-threshold", 2*time.Second, "run-latency SLO threshold")
	sloQueueThreshold := flag.Duration("slo-queue-threshold", 500*time.Millisecond, "queue-wait SLO threshold")
	sloTarget := flag.Float64("slo-target", 0.99, "SLO target fraction of good events, in (0,1)")
	sloShort := flag.Duration("slo-window-short", 10*time.Second, "short burn-rate window")
	sloLong := flag.Duration("slo-window-long", time.Minute, "long burn-rate window")
	sloBurn := flag.Float64("slo-burn-factor", 2, "burn-rate factor that trips fast burn in both windows")
	clusterSelf := flag.String("cluster-self", "", "this node's name in the cluster (empty: standalone)")
	clusterNodes := flag.String("cluster-nodes", "", "boot membership as name=url,name=url (requires -cluster-self)")
	clusterURL := flag.String("cluster-url", "", "this node's advertised base URL (alternative to listing self in -cluster-nodes)")
	clusterJoin := flag.String("cluster-join", "", "announce a runtime join to this seed member URL (node or router) after serving starts")
	clusterFillWait := flag.Int("cluster-fill-wait-ms", 0, "peer-fill wait for an in-flight solve on the home node (0: default)")
	clusterHot := flag.Int("cluster-hot-replicas", 0, "replicate the k hottest owned cache entries to the ring successor (0: default 16, negative: off)")
	clusterReplEvery := flag.Duration("cluster-replicate-interval", 0, "hot-entry replication cadence (0: default 2s)")
	clusterHandoffChunk := flag.Int("cluster-handoff-chunk", 0, "warm-handoff entries per chunk (0: default 64)")
	clusterHandoffRate := flag.Int("cluster-handoff-rate", 0, "warm-handoff rate bound in entries/second (0: default 4096)")
	tenants := flag.String("tenants", "", "tenancy policy: inline JSON or @file (empty: single default tenant, no quotas)")
	autotune := flag.Bool("autotune", false, "AIMD auto-tuning of the in-flight limit from latency histograms")
	autotuneMin := flag.Int("autotune-min", 1, "auto-tuner: in-flight limit floor")
	autotuneMax := flag.Int("autotune-max", 0, "auto-tuner: in-flight limit ceiling (0: 2x -inflight)")
	autotuneInterval := flag.Duration("autotune-interval", 2*time.Second, "auto-tuner: control-loop evaluation cadence")
	flag.Parse()

	plan := fault.Plan{Seed: *injectSeed, PanicRate: *injectPanic, DropRate: *injectDrop, CrashRate: *injectCrash}
	if err := plan.Validate(); err != nil {
		return err
	}
	if *retries < 0 || *retries > 16 {
		return fmt.Errorf("-retries %d out of range [0, 16]", *retries)
	}
	reg := obs.NewRegistry()
	cfg := service.Config{
		QueueCap:          *queueCap,
		MaxInFlight:       *inflight,
		MaxWorkersPerJob:  *jobWorkers,
		Retention:         *retention,
		CacheSize:         *cacheSize,
		Metrics:           reg,
		Fault:             plan,
		DefaultMaxRetries: *retries,
		RetryBackoff:      *retryBackoff,
		RetryBackoffMax:   *retryBackoffMax,
	}
	if *clusterSelf == "" && (*clusterNodes != "" || *clusterJoin != "" || *clusterURL != "") {
		return fmt.Errorf("-cluster-nodes/-cluster-url/-cluster-join require -cluster-self")
	}
	if *clusterSelf != "" {
		nodes := map[string]string{}
		if *clusterNodes != "" {
			var err error
			if nodes, err = parseNodes(*clusterNodes); err != nil {
				return err
			}
		}
		if *clusterURL != "" {
			nodes[*clusterSelf] = strings.TrimSuffix(*clusterURL, "/")
		}
		if _, ok := nodes[*clusterSelf]; !ok {
			return fmt.Errorf("-cluster-self %q needs its URL: list it in -cluster-nodes or give -cluster-url", *clusterSelf)
		}
		if *cacheSize < 0 {
			return fmt.Errorf("cluster membership requires the result cache (-cache-size >= 0)")
		}
		cfg.Cluster = &service.ClusterConfig{
			Self:              *clusterSelf,
			Nodes:             nodes,
			FillWaitMS:        *clusterFillWait,
			HotReplicas:       *clusterHot,
			ReplicateInterval: *clusterReplEvery,
			HandoffChunk:      *clusterHandoffChunk,
			HandoffRate:       *clusterHandoffRate,
		}
		log.Printf("llld: cluster member %q of %d boot nodes, peer cache fill live", *clusterSelf, len(nodes))
	}
	if *sloOn {
		cfg.SLO = slo.NewEngine(slo.Config{
			Objectives: []slo.Objective{
				{Name: service.SLORunLatency, Kind: slo.Latency, Target: *sloTarget, Threshold: sloRunThreshold.Seconds()},
				{Name: service.SLOQueueWait, Kind: slo.Latency, Target: *sloTarget, Threshold: sloQueueThreshold.Seconds()},
				{Name: service.SLOErrorRate, Kind: slo.Ratio, Target: *sloTarget},
			},
			ShortWindow: *sloShort,
			LongWindow:  *sloLong,
			BurnFactor:  *sloBurn,
		})
		log.Printf("llld: SLO engine live: run<%v queue<%v target=%g windows=%v/%v burn=%g",
			*sloRunThreshold, *sloQueueThreshold, *sloTarget, *sloShort, *sloLong, *sloBurn)
	}
	if *tenants != "" {
		data := []byte(*tenants)
		if strings.HasPrefix(*tenants, "@") {
			var err error
			if data, err = os.ReadFile(strings.TrimPrefix(*tenants, "@")); err != nil {
				return fmt.Errorf("-tenants: %w", err)
			}
		}
		tc, err := tenant.ParseConfig(data)
		if err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
		cfg.Tenancy = tc
		names := make([]string, 0, len(tc.Tenants))
		for _, sp := range tc.Tenants {
			names = append(names, fmt.Sprintf("%s(w%d)", sp.Name, sp.Weight))
		}
		log.Printf("llld: multi-tenant serving live: %s (unknown tenants %s)",
			strings.Join(names, " "), map[bool]string{true: "fold into default", false: "rejected"}[tc.AllowUnknown])
	}
	if *autotune {
		cfg.AutoTune = &service.AutoTuneConfig{
			Min:            *autotuneMin,
			Max:            *autotuneMax,
			Interval:       *autotuneInterval,
			RunThreshold:   *sloRunThreshold,
			QueueThreshold: *sloQueueThreshold,
		}
		log.Printf("llld: AIMD in-flight auto-tuner live: [%d, %d] every %v", *autotuneMin, *autotuneMax, *autotuneInterval)
	}
	if plan.Enabled() {
		log.Printf("llld: fault injection live: panic=%g drop=%g crash=%g seed=%d", plan.PanicRate, plan.DropRate, plan.CrashRate, plan.Seed)
	}
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		rec := obs.NewRecorder(f)
		defer rec.Flush()
		cfg.Trace = rec
	}

	svc := service.New(cfg)
	// Hardened server timeouts: slow or stalled clients must not pin
	// connections forever. No WriteTimeout — the NDJSON event streams are
	// legitimately long-lived; per-request write deadlines would sever them.
	server := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("llld: serving on %s (queue=%d)", *addr, *queueCap)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	if *clusterJoin != "" {
		// Announce only once our own listener answers: the seed's fan-out
		// makes previous owners stream warm-cache handoffs at us
		// immediately, and chunks sent before we listen degrade to misses.
		go func() {
			joinCtx, joinCancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer joinCancel()
			waitSelfReady(joinCtx, cfg.Cluster.Nodes[*clusterSelf])
			if err := svc.AnnounceJoin(joinCtx, strings.TrimSuffix(*clusterJoin, "/")); err != nil {
				log.Printf("llld: join announce to %s failed (serving standalone until membership reaches us): %v", *clusterJoin, err)
				return
			}
			log.Printf("llld: joined cluster via %s", *clusterJoin)
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("llld: %v received, draining (budget %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if cfg.Cluster != nil {
		// Planned leave: reverse warm handoff, then the membership without
		// this node fans out — peers stop routing here with warm caches.
		// Runs inside the drain budget and never blocks the shutdown.
		svc.LeaveCluster(ctx)
		log.Printf("llld: left cluster (warm handoff pushed, membership fanned out)")
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("llld: drain budget exceeded, running jobs cancelled: %v", err)
	} else {
		log.Printf("llld: all jobs drained")
	}
	// Stop the HTTP listener after the drain so job views and event
	// streams stay reachable while jobs wind down.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := server.Shutdown(httpCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	log.Printf("llld: bye")
	return <-errCh
}

// waitSelfReady polls this node's own advertised /healthz until it answers
// (any status: the listener is up) or the context expires — the gate before
// announcing a join, so handoff chunks are not fired at a closed port.
func waitSelfReady(ctx context.Context, selfURL string) {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, selfURL+"/healthz", nil)
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			return
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// parseNodes parses "a=http://host:1,b=http://host:2" into a membership map.
func parseNodes(s string) (map[string]string, error) {
	nodes := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad node entry %q, want name=url", part)
		}
		if _, dup := nodes[name]; dup {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
		nodes[name] = strings.TrimSuffix(url, "/")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no nodes in %q", s)
	}
	return nodes, nil
}
