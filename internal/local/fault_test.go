package local

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// runFlood executes the flood machine on a cycle under the given injector
// and returns the run stats plus the min value each node learned.
func runFlood(t *testing.T, workers int, inj *fault.Injector) (Stats, []uint64) {
	t.Helper()
	g := graph.Cycle(16)
	machines := make([]*floodMachine, g.N())
	stats, err := Run(g, func(v int) Machine {
		machines[v] = &floodMachine{}
		return machines[v]
	}, Options{IDSeed: 7, Workers: workers, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	mins := make([]uint64, len(machines))
	for v, m := range machines {
		mins[v] = m.min
	}
	return stats, mins
}

// TestChaosCountersFire checks drop and crash injection actually bite: a
// lossy run reports nonzero MessagesDropped / CrashSteps while a clean run
// reports zero for both.
func TestChaosCountersFire(t *testing.T) {
	clean, _ := runFlood(t, 1, nil)
	if clean.MessagesDropped != 0 || clean.CrashSteps != 0 {
		t.Fatalf("clean run reports damage: %+v", clean)
	}
	lossy, _ := runFlood(t, 1, fault.NewInjector(fault.Plan{Seed: 3, DropRate: 0.2, CrashRate: 0.1}))
	if lossy.MessagesDropped == 0 {
		t.Error("20% drop rate dropped nothing")
	}
	if lossy.CrashSteps == 0 {
		t.Error("10% crash rate crashed nothing")
	}
	if lossy.MessagesSent >= clean.MessagesSent {
		t.Errorf("dropped+crashed run sent %d messages, clean run %d — drops not excluded",
			lossy.MessagesSent, clean.MessagesSent)
	}
}

// TestChaosWorkerIndependence checks the determinism contract under
// injection: drop and crash decisions are keyed by (round, node[, port]),
// so the damage pattern — and therefore every machine's final state — is
// bit-identical for every worker count.
func TestChaosWorkerIndependence(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 11, DropRate: 0.15, CrashRate: 0.05})
	baseStats, baseMins := runFlood(t, 1, inj)
	for _, workers := range []int{2, 4} {
		stats, mins := runFlood(t, workers, inj)
		if stats != baseStats {
			t.Errorf("workers=%d: stats %+v differ from workers=1 %+v", workers, stats, baseStats)
		}
		for v := range mins {
			if mins[v] != baseMins[v] {
				t.Errorf("workers=%d: node %d state %d, want %d", workers, v, mins[v], baseMins[v])
			}
		}
	}
}

// TestChaosTerminatesDespiteDamage checks the termination-or-loud-failure
// guarantee: flooding under heavy loss still halts (its halting rule is
// damage-independent) and the runtime reports the full damage tally rather
// than hanging or silently absorbing it.
func TestChaosTerminatesDespiteDamage(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 5, DropRate: 0.5, CrashRate: 0.3})
	stats, _ := runFlood(t, 4, inj)
	if stats.Rounds == 0 {
		t.Fatal("run reported zero rounds")
	}
	if stats.MessagesDropped == 0 || stats.CrashSteps == 0 {
		t.Fatalf("heavy chaos left no trace: %+v", stats)
	}
}

// TestPanicInjection checks the loud-failure side: a panic-rate injector
// makes the compute phase panic with a *fault.PanicError that unwraps to
// ErrInjected, unwound through the engine pool to the Run caller.
func TestPanicInjection(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 1, PanicRate: 0.9})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		g := graph.Cycle(64)
		Run(g, func(v int) Machine { return &floodMachine{} }, Options{IDSeed: 1, Workers: 4, Fault: inj})
	}()
	if recovered == nil {
		t.Fatal("panic injection at rate 0.9 never panicked")
	}
	pe, ok := recovered.(*fault.PanicError)
	if !ok {
		t.Fatalf("recovered %T, want *fault.PanicError", recovered)
	}
	if !errors.Is(pe, fault.ErrInjected) {
		t.Errorf("injected panic does not unwrap to ErrInjected: %v", pe)
	}
}
