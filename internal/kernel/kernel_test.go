package kernel

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// The equivalence-test layer of the kernel package: every compiled table is
// checked against the generic representation it was compiled from, and every
// kernel query (Violated, CondProb/CondProbWith/Inc, CountViolatedModel,
// SampleVar) is differentially tested against the model package on
// randomized assignments — bitwise, via math.Float64bits, because the fixers
// branch on exact float comparisons and the golden tables pin exact output.

type namedInstance struct {
	name string
	inst *model.Instance
}

// testInstances covers every compiled event kind and CSR shape: conjunction
// events on cycles, irregular random-regular graphs and rank-3 hypergraphs
// (the paper's T2/T4 substrates), all-equal events (the coloring/weak-
// splitting family), generic closure events (noisy sinkless), star-shaped
// variable sharing, isolated dependency-graph nodes, isolated variables and
// a 70-value distribution that forces both the 8-bit packed width and the
// conjunction-mask fallback to the generic evaluator.
func testInstances(t *testing.T) []namedInstance {
	t.Helper()
	var out []namedInstance
	add := func(name string, inst *model.Instance, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out = append(out, namedInstance{name, inst})
	}

	s, err := apps.NewSinklessWithMargin(graph.Cycle(12), 0.9)
	add("cycle-12", s.Instance, err)

	g, err := graph.RandomRegular(20, 3, prng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	s, err = apps.NewSinklessWithMargin(g, 0.85)
	add("regular-20", s.Instance, err)

	h, err := hypergraph.RandomRegularRank3(18, 2, prng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	add("hyper-18", hs.Instance, err)

	rc, err := apps.NewRandomConjunction(h, 3, 0.5, prng.New(43))
	add("conjunction-18", rc.Instance, err)

	vn, err := apps.RandomBiregular(12, 2, 8, 3, prng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := apps.NewWeakSplitting(vn, 8, 2)
	add("weaksplit-12x8", ws.Instance, err)

	ns, err := apps.NewNoisySinkless(graph.Cycle(10), 0.1)
	add("noisysink-10", ns.Instance, err)

	add("manual-mixed", manualMixedInstance(t), nil)
	return out
}

// manualMixedInstance hand-builds the shapes the app constructors never
// produce: an isolated variable (in no event), an isolated dependency-graph
// node (an event sharing no variable), a star of conjunctions around one hub
// variable, an all-equal event over unequal value spaces, a raw-closure
// generic event, and a 70-value variable whose conjunction cannot be
// compiled into a 64-bit mask.
func manualMixedInstance(t *testing.T) *model.Instance {
	t.Helper()
	b := model.NewBuilder()
	d2 := dist.Uniform(2)
	d3 := dist.Uniform(3)
	d4 := dist.Uniform(4)
	d70 := dist.Uniform(70)
	dists := []*dist.Distribution{d3, d3, d3, d3, d2, d2, d70, d4, d2, d2}
	for i, d := range dists {
		b.AddVariable(d, "")
		_ = i
	}
	// Star: events 0-2 all share hub variable 0.
	model.AddConjunctionEvent(b, []int{0, 1}, [][]int{{0}, {1, 2}}, []*dist.Distribution{d3, d3}, "star-a")
	model.AddConjunctionEvent(b, []int{0, 2}, [][]int{{1}, {0}}, []*dist.Distribution{d3, d3}, "star-b")
	model.AddConjunctionEvent(b, []int{0, 3}, [][]int{{2}, {0, 1}}, []*dist.Distribution{d3, d3}, "star-c")
	// All-equal over unequal value spaces (3-valued vs 4-valued).
	model.AddAllEqualEvent(b, []int{3, 7}, []*dist.Distribution{d3, d4}, "alleq")
	// Conjunction on the 70-value variable: the bad set does not fit a
	// 64-bit mask, so the kernel must fall back to the generic evaluator.
	model.AddConjunctionEvent(b, []int{6, 4}, [][]int{{0, 65, 69}, {1}}, []*dist.Distribution{d70, d2}, "wide")
	// Raw closure with no CondProb spec (model enumerates it).
	b.AddEvent([]int{1, 5}, func(vals []int) bool {
		return vals[0] == vals[1]
	}, nil, "raw")
	// Isolated dependency-graph node: variable 9 appears nowhere else.
	model.AddConjunctionEvent(b, []int{9}, [][]int{{1}}, []*dist.Distribution{d2}, "lone")
	// Variable 8 is isolated: it belongs to no event at all.
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func compileFor(t *testing.T, ni namedInstance) *Compiled {
	t.Helper()
	c, err := Compile(ni.inst)
	if err != nil {
		t.Fatalf("%s: Compile: %v", ni.name, err)
	}
	return c
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomComplete fixes every variable to a value drawn from its own
// distribution.
func randomComplete(inst *model.Instance, r *prng.Rand) *model.Assignment {
	a := model.NewAssignment(inst)
	for v := 0; v < inst.NumVars(); v++ {
		a.Fix(v, inst.Var(v).Dist.Sample(r))
	}
	return a
}

// randomPartial fixes each variable with probability 1/2.
func randomPartial(inst *model.Instance, r *prng.Rand) *model.Assignment {
	a := model.NewAssignment(inst)
	for v := 0; v < inst.NumVars(); v++ {
		if r.Uint64()&1 == 0 {
			a.Fix(v, inst.Var(v).Dist.Sample(r))
		}
	}
	return a
}

// TestCompileCSRMatchesInstance pins the CSR arrays against the generic
// representation they were compiled from: event scopes in declaration order,
// dependency-graph neighbor rows in graph.Graph.Neighbors order, and the
// variable->events rows in Variable.Events order.
func TestCompileCSRMatchesInstance(t *testing.T) {
	for _, ni := range testInstances(t) {
		ni := ni
		t.Run(ni.name, func(t *testing.T) {
			c := compileFor(t, ni)
			inst := ni.inst
			if c.NumVars() != inst.NumVars() || c.NumEvents() != inst.NumEvents() {
				t.Fatalf("dims (%d,%d) != (%d,%d)",
					c.NumVars(), c.NumEvents(), inst.NumVars(), inst.NumEvents())
			}
			g := inst.DependencyGraph()
			maxScope := 0
			for e := 0; e < inst.NumEvents(); e++ {
				ev := inst.Event(e)
				if got := c.Scope(e); !equalInts(got, ev.Scope) {
					t.Errorf("event %d scope %v != %v", e, got, ev.Scope)
				}
				if got, want := c.Neighbors(e), g.Neighbors(e); !equalInts(got, want) {
					t.Errorf("event %d neighbors %v != %v", e, got, want)
				}
				if len(ev.Scope) > maxScope {
					maxScope = len(ev.Scope)
				}
			}
			if c.MaxScope() != maxScope {
				t.Errorf("MaxScope %d != %d", c.MaxScope(), maxScope)
			}
			for v := 0; v < inst.NumVars(); v++ {
				if got, want := c.VarEvents(v), inst.Var(v).Events; !equalInts(got, want) {
					t.Errorf("var %d events %v != %v", v, got, want)
				}
			}
			if want := (inst.NumEvents() + 63) / 64; c.EventWords() != want {
				t.Errorf("EventWords %d != %d", c.EventWords(), want)
			}
		})
	}
}

// TestCompileKinds white-boxes the event classification: the app families
// compile to their closed forms, and the hand-built instance exercises every
// fallback (wide conjunction, raw closure).
func TestCompileKinds(t *testing.T) {
	for _, ni := range testInstances(t) {
		c := compileFor(t, ni)
		generic := 0
		for e := 0; e < c.NumEvents(); e++ {
			if c.kind[e] == kindGeneric {
				generic++
			}
		}
		if c.HasGeneric() != (generic > 0) {
			t.Errorf("%s: HasGeneric %v with %d generic events", ni.name, c.HasGeneric(), generic)
		}
		switch ni.name {
		case "cycle-12", "regular-20", "hyper-18", "conjunction-18":
			if generic != 0 {
				t.Errorf("%s: %d events fell back to generic, want 0", ni.name, generic)
			}
		case "noisysink-10":
			if generic == 0 {
				t.Errorf("%s: expected generic closure events", ni.name)
			}
		}
	}

	c := compileFor(t, namedInstance{"manual-mixed", manualMixedInstance(t)})
	wantKinds := map[int]uint8{
		0: kindConj, 1: kindConj, 2: kindConj, // star
		3: kindAllEqual,
		4: kindGeneric, // 70-value conjunction: no 64-bit mask
		5: kindGeneric, // raw closure
		6: kindConj,    // isolated event
	}
	for e, want := range wantKinds {
		if c.kind[e] != want {
			t.Errorf("manual-mixed event %d kind %d, want %d", e, c.kind[e], want)
		}
	}
	if c.valBits != 8 {
		t.Errorf("manual-mixed valBits %d, want 8 (70-value variable)", c.valBits)
	}
}

// TestViolatedMatchesGeneric is the core differential test: on random
// complete assignments, the word-parallel bitset scan must return exactly
// the events the generic model.Instance.Violated loop reports, in ascending
// order, for every worker count.
func TestViolatedMatchesGeneric(t *testing.T) {
	workerSweep := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	pools := make([]*engine.Pool, len(workerSweep))
	for i, w := range workerSweep {
		pools[i] = engine.New(w)
		defer pools[i].Close()
	}
	for _, ni := range testInstances(t) {
		ni := ni
		t.Run(ni.name, func(t *testing.T) {
			c := compileFor(t, ni)
			ka := c.NewAssignment()
			scr := c.NewScratch()
			r := prng.New(99)
			for trial := 0; trial < 5; trial++ {
				ma := randomComplete(ni.inst, r)
				var want []int
				for e := 0; e < ni.inst.NumEvents(); e++ {
					bad, err := ni.inst.Violated(e, ma)
					if err != nil {
						t.Fatal(err)
					}
					if bad {
						want = append(want, e)
					}
				}
				ka.PackFrom(ma)
				for i, pool := range pools {
					got, err := c.Violated(ka, pool, scr)
					if err != nil {
						t.Fatal(err)
					}
					if !equalInts(got, want) {
						t.Fatalf("trial %d workers=%d: violated %v != %v",
							trial, workerSweep[i], got, want)
					}
				}
			}

			// A partial assignment must error like the generic path.
			ka.PackFrom(randomPartial(ni.inst, prng.New(5)))
			if ka.Complete() {
				ka.Unfix(0)
			}
			if _, err := c.Violated(ka, pools[0], scr); !errors.Is(err, model.ErrNotFixed) {
				t.Errorf("incomplete scan error = %v, want ErrNotFixed", err)
			}
		})
	}
}

// TestHasLowerViolatedNeighbor checks the parallel-round priority test
// against a brute-force walk of the dependency graph.
func TestHasLowerViolatedNeighbor(t *testing.T) {
	for _, ni := range testInstances(t) {
		c := compileFor(t, ni)
		g := ni.inst.DependencyGraph()
		r := prng.New(7)
		bits := make([]uint64, c.EventWords())
		for trial := 0; trial < 4; trial++ {
			for i := range bits {
				bits[i] = r.Uint64()
			}
			for e := 0; e < c.NumEvents(); e++ {
				want := false
				for _, u := range g.Neighbors(e) {
					if u < e && bits[u>>6]>>(uint(u)&63)&1 == 1 {
						want = true
						break
					}
				}
				if got := c.HasLowerViolatedNeighbor(bits, e); got != want {
					t.Fatalf("%s: event %d: HasLowerViolatedNeighbor=%v want %v", ni.name, e, got, want)
				}
			}
		}
	}
}

// TestCondProbBitwise pits the flat closed-form probability tables against
// the model closures on random partial assignments, demanding bit-for-bit
// identical floats from CondProb, CondProbWith and Inc — including the
// varID-override-wins rule and queries on variables outside the scope.
func TestCondProbBitwise(t *testing.T) {
	for _, ni := range testInstances(t) {
		ni := ni
		t.Run(ni.name, func(t *testing.T) {
			c := compileFor(t, ni)
			inst := ni.inst
			r := prng.New(123)
			for trial := 0; trial < 6; trial++ {
				ma := randomPartial(inst, r)
				for e := 0; e < inst.NumEvents(); e++ {
					got, want := c.CondProb(e, ma), inst.CondProb(e, ma)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("trial %d event %d: CondProb %v != %v", trial, e, got, want)
					}
					for _, vid := range inst.Event(e).Scope {
						size := inst.Var(vid).Dist.Size()
						if size > 5 {
							size = 5
						}
						for val := 0; val < size; val++ {
							got = c.CondProbWith(e, ma, vid, val)
							want = inst.CondProbWith(e, ma, vid, val)
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("trial %d event %d var %d=%d: CondProbWith %v != %v",
									trial, e, vid, val, got, want)
							}
							got = c.Inc(e, ma, vid, val)
							want = inst.Inc(e, ma, vid, val)
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("trial %d event %d var %d=%d: Inc %v != %v",
									trial, e, vid, val, got, want)
							}
						}
					}
					// A variable outside the scope must be a no-op override.
					if out := outsideScope(inst, e); out >= 0 {
						got = c.CondProbWith(e, ma, out, 0)
						want = inst.CondProbWith(e, ma, out, 0)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("trial %d event %d outside var %d: CondProbWith %v != %v",
								trial, e, out, got, want)
						}
					}
				}
			}
		})
	}
}

// outsideScope returns a variable id not in event e's scope, or -1.
func outsideScope(inst *model.Instance, e int) int {
	in := map[int]bool{}
	for _, vid := range inst.Event(e).Scope {
		in[vid] = true
	}
	for v := 0; v < inst.NumVars(); v++ {
		if !in[v] {
			return v
		}
	}
	return -1
}

// TestCountViolatedModelMatchesGeneric checks the allocation-free final
// sweep, including the shared error path on partial assignments.
func TestCountViolatedModelMatchesGeneric(t *testing.T) {
	for _, ni := range testInstances(t) {
		c := compileFor(t, ni)
		r := prng.New(17)
		for trial := 0; trial < 4; trial++ {
			ma := randomComplete(ni.inst, r)
			got, gerr := c.CountViolatedModel(ma)
			want, werr := ni.inst.CountViolated(ma)
			if gerr != nil || werr != nil {
				t.Fatalf("%s: errors %v / %v", ni.name, gerr, werr)
			}
			if got != want {
				t.Fatalf("%s: CountViolated %d != %d", ni.name, got, want)
			}
		}
		ma := model.NewAssignment(ni.inst)
		_, gerr := c.CountViolatedModel(ma)
		_, werr := ni.inst.CountViolated(ma)
		if (gerr == nil) != (werr == nil) {
			t.Errorf("%s: partial-assignment errors diverge: %v / %v", ni.name, gerr, werr)
		}
	}
}

// TestSampleVarMatchesDist feeds two identical PRNG streams through the
// kernel sampler and dist.Distribution.Sample and demands identical value
// sequences — the resamplers rely on this for cross-path bit-identity.
func TestSampleVarMatchesDist(t *testing.T) {
	for _, ni := range testInstances(t) {
		c := compileFor(t, ni)
		rk, rg := prng.New(31), prng.New(31)
		for trial := 0; trial < 50; trial++ {
			v := trial % ni.inst.NumVars()
			got := c.SampleVar(v, rk)
			want := ni.inst.Var(v).Dist.Sample(rg)
			if got != want {
				t.Fatalf("%s: draw %d of var %d: %d != %d", ni.name, trial, v, got, want)
			}
		}
	}
}

// TestAssignmentMirrorsModel runs a randomized Fix/Unfix/Set sequence
// against both representations and checks they agree after every operation,
// then round-trips through PackFrom/UnpackTo.
func TestAssignmentMirrorsModel(t *testing.T) {
	for _, ni := range testInstances(t) {
		c := compileFor(t, ni)
		inst := ni.inst
		ka := c.NewAssignment()
		ma := model.NewAssignment(inst)
		r := prng.New(77)
		for step := 0; step < 200; step++ {
			v := r.Intn(inst.NumVars())
			val := inst.Var(v).Dist.Sample(r)
			switch r.Intn(3) {
			case 0:
				if !ma.Fixed(v) {
					ma.Fix(v, val)
					ka.Fix(v, val)
				}
			case 1:
				if ma.Fixed(v) {
					ma.Unfix(v)
					ka.Unfix(v)
				}
			default: // Set: fix-or-overwrite
				if ma.Fixed(v) {
					ma.Unfix(v)
				}
				ma.Fix(v, val)
				ka.Set(v, val)
			}
			if ka.NumFixed() != ma.NumFixed() || ka.Complete() != ma.Complete() {
				t.Fatalf("%s step %d: counters diverge", ni.name, step)
			}
			if ma.Fixed(v) != ka.Fixed(v) {
				t.Fatalf("%s step %d: Fixed(%d) diverges", ni.name, step, v)
			}
			if ma.Fixed(v) && ma.Value(v) != ka.Value(v) {
				t.Fatalf("%s step %d: Value(%d) %d != %d", ni.name, step, v, ka.Value(v), ma.Value(v))
			}
		}
		// model.Unfix leaves the stale value behind while the packed form
		// zeroes it, so only fixed slots are comparable.
		kv, kf := ka.Values()
		mv, mf := ma.Values()
		for v := range kv {
			if kf[v] != mf[v] || (kf[v] && kv[v] != mv[v]) {
				t.Fatalf("%s: Values() diverge at %d", ni.name, v)
			}
		}
		// Round trip: model -> packed -> model.
		ka2 := c.NewAssignment()
		ka2.PackFrom(ma)
		back := ka2.UnpackTo()
		bv, bf := back.Values()
		for v := range bv {
			if bf[v] != mf[v] || (bf[v] && bv[v] != mv[v]) {
				t.Fatalf("%s: PackFrom/UnpackTo round trip diverges at %d", ni.name, v)
			}
		}
	}
}

// TestForCacheAndSetEnabled pins the compile cache and the process-wide
// kill switch the differential tests rely on.
func TestForCacheAndSetEnabled(t *testing.T) {
	inst := manualMixedInstance(t)
	if !Enabled() {
		t.Fatal("kernels should default to enabled")
	}
	c1 := For(inst)
	if c1 == nil {
		t.Fatal("For returned nil with kernels enabled")
	}
	if c2 := For(inst); c2 != c1 {
		t.Error("second For did not hit the cache")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if !prev {
		t.Error("SetEnabled(false) should report the previous enabled state")
	}
	if For(inst) != nil {
		t.Error("For should return nil while kernels are disabled")
	}
	if For(nil) != nil {
		t.Error("For(nil) must be nil")
	}
	SetEnabled(true)
	if For(inst) != c1 {
		t.Error("re-enabling lost the cached kernel")
	}
}
