// Package graph provides the undirected-graph substrate used by the LLL
// reproduction: dependency graphs of LLL instances, communication topologies
// for the LOCAL simulator, and the derived graphs (line graph, square graph)
// required by the colouring substrate.
//
// Graphs are simple (no self-loops, no parallel edges) and immutable after
// Build. Nodes are identified by dense integers 0..N-1 and edges by dense
// integers 0..M-1, which lets all per-node and per-edge state elsewhere in
// the repository live in slices.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

var (
	// ErrSelfLoop indicates an attempt to add an edge from a node to itself.
	ErrSelfLoop = errors.New("graph: self-loop")
	// ErrNodeRange indicates an edge endpoint outside [0, N).
	ErrNodeRange = errors.New("graph: node out of range")
	// ErrDuplicateEdge indicates an edge added twice.
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
)

// Edge is an undirected edge between nodes U < V.
type Edge struct {
	U, V int
}

// normalize returns the edge with endpoints sorted.
func (e Edge) normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: node %d not an endpoint of %v", x, e))
	}
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[Edge]bool
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[Edge]bool)}
}

// AddEdge records the undirected edge {u, v}.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeRange, u, v, b.n)
	}
	e := Edge{U: u, V: v}.normalize()
	if b.seen[e] {
		return fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, u, v)
	}
	b.seen[e] = true
	b.edges = append(b.edges, e)
	return nil
}

// HasEdge reports whether {u,v} was already added.
func (b *Builder) HasEdge(u, v int) bool {
	return b.seen[Edge{U: u, V: v}.normalize()]
}

// removeEdgeAt deletes the edge at index idx from the builder. Only the
// generator repair logic uses it; edge identifiers are assigned at Build
// time, so removal before Build is safe.
func (b *Builder) removeEdgeAt(idx int) {
	e := b.edges[idx]
	delete(b.seen, e)
	last := len(b.edges) - 1
	b.edges[idx] = b.edges[last]
	b.edges = b.edges[:last]
}

// Build finalizes the graph. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		n:     b.n,
		edges: b.edges,
		adj:   make([][]neighbor, b.n),
	}
	for id, e := range b.edges {
		g.adj[e.U] = append(g.adj[e.U], neighbor{node: e.V, edge: id})
		g.adj[e.V] = append(g.adj[e.V], neighbor{node: e.U, edge: id})
	}
	// Sort adjacency for determinism independent of insertion order.
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool {
			return g.adj[v][i].node < g.adj[v][j].node
		})
	}
	return g
}

type neighbor struct {
	node int
	edge int
}

// Graph is an immutable simple undirected graph.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]neighbor
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edge returns the edge with identifier id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list, indexed by edge identifier.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the neighbors of v in ascending order. The returned
// slice is freshly allocated.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, nb := range g.adj[v] {
		out[i] = nb.node
	}
	return out
}

// IncidentEdges returns the identifiers of the edges incident to v, ordered
// by the neighbor at the other endpoint.
func (g *Graph) IncidentEdges(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, nb := range g.adj[v] {
		out[i] = nb.edge
	}
	return out
}

// EdgeBetween returns the identifier of the edge {u,v} and whether it exists.
func (g *Graph) EdgeBetween(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	// Binary search over the sorted adjacency of the lower-degree endpoint.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	lst := g.adj[a]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].node >= b })
	if i < len(lst) && lst[i].node == b {
		return lst[i].edge, true
	}
	return 0, false
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// ForEachNeighbor calls fn for each neighbor of v with the neighbor and the
// connecting edge identifier, in ascending neighbor order.
func (g *Graph) ForEachNeighbor(v int, fn func(u, edgeID int)) {
	for _, nb := range g.adj[v] {
		fn(nb.node, nb.edge)
	}
}

// BFS runs a breadth-first search from src and returns the distance slice
// (-1 for unreachable nodes).
func (g *Graph) BFS(src int) []int {
	distance := make([]int, g.n)
	for i := range distance {
		distance[i] = -1
	}
	distance[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[v] {
			if distance[nb.node] < 0 {
				distance[nb.node] = distance[v] + 1
				queue = append(queue, nb.node)
			}
		}
	}
	return distance
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest pairwise distance, or -1 if the graph is
// disconnected or empty. It is O(N·M); use it only on test-sized graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFS(v) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Square returns the graph G² on the same node set, where two distinct nodes
// are adjacent iff their distance in g is at most 2. Distance-2 colourings of
// g are exactly proper colourings of g.Square().
func (g *Graph) Square() *Graph {
	b := NewBuilder(g.n)
	for v := 0; v < g.n; v++ {
		for _, nb := range g.adj[v] {
			if v < nb.node && !b.HasEdge(v, nb.node) {
				mustAdd(b, v, nb.node)
			}
			// Distance-2 pairs through v.
			for _, nb2 := range g.adj[v] {
				a, c := nb.node, nb2.node
				if a < c && !b.HasEdge(a, c) {
					mustAdd(b, a, c)
				}
			}
		}
	}
	return b.Build()
}

// LineGraph returns the line graph L(G): one node per edge of g, with two
// nodes adjacent iff the corresponding edges share an endpoint. The node
// identifiers of L(G) equal the edge identifiers of g. Proper colourings of
// L(G) are exactly proper edge colourings of g.
func (g *Graph) LineGraph() *Graph {
	b := NewBuilder(len(g.edges))
	for v := 0; v < g.n; v++ {
		ids := g.IncidentEdges(v)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, c := ids[i], ids[j]
				if a > c {
					a, c = c, a
				}
				if !b.HasEdge(a, c) {
					mustAdd(b, a, c)
				}
			}
		}
	}
	return b.Build()
}

func mustAdd(b *Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err) // internal invariant: callers pre-check validity
	}
}

// DOT renders the graph in Graphviz DOT format, mainly for debugging and
// example output.
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&sb, "  %d;\n", v)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e.U, e.V)
	}
	sb.WriteString("}\n")
	return sb.String()
}
