// Package exp is the experiment harness of the reproduction: it regenerates
// every figure and theorem-shaped claim of the paper as a printed table
// (see DESIGN.md section 3 for the experiment index F1, F2, T1-T8) and is
// shared by the cmd/ tools and the benchmark suite.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T1").
	ID string
	// Title is the human-readable experiment name.
	Title string
	// Note explains what to look for in the rows (the paper-shape check).
	Note string
	// Header labels the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Profile is the execution profile RunByID / AllParallel attach to the
	// table. It is deliberately NOT part of Render or CSV output — profiles
	// vary run to run, table cells must not — so the golden regression
	// bytes are identical with and without observability.
	Profile *Profile
}

// Profile is the execution rollup of one experiment run: its wall-clock and
// the engine-level counters its LOCAL runs produced (zero for purely
// sequential experiments).
type Profile struct {
	// WallClock is the experiment's elapsed time.
	WallClock time.Duration
	// LocalRuns / Rounds / Steps / Messages aggregate the local_* counter
	// families over every LOCAL run of the experiment.
	LocalRuns, Rounds, Steps, Messages int64
	// Shards / ShardsStolen aggregate the execution engine's sharding
	// counters (shards executed / picked up by helper workers).
	Shards, ShardsStolen int64
}

// sub subtracts o's counter fields (not WallClock), turning two cumulative
// registry readings into a per-run delta.
func (p *Profile) sub(o Profile) {
	p.LocalRuns -= o.LocalRuns
	p.Rounds -= o.Rounds
	p.Steps -= o.Steps
	p.Messages -= o.Messages
	p.Shards -= o.Shards
	p.ShardsStolen -= o.ShardsStolen
}

// ProfileTable renders the profiles of a table set as one summary table
// (experiments without a profile are skipped). benchharness prints it
// behind -profiles.
func ProfileTable(tables []*Table) *Table {
	t := &Table{
		ID:     "PROF",
		Title:  "Execution profiles (wall-clock and engine rollups per experiment)",
		Note:   "Rollups aggregate the local_* and engine_* metric families over every LOCAL run of the experiment; sequential-only experiments show zeros. Values vary run to run and are not part of any golden output.",
		Header: []string{"experiment", "wall clock", "local runs", "rounds", "steps", "messages", "shards", "stolen"},
	}
	for _, tbl := range tables {
		if tbl == nil || tbl.Profile == nil {
			continue
		}
		p := tbl.Profile
		t.AddRow(tbl.ID, p.WallClock.Round(time.Microsecond).String(),
			p.LocalRuns, p.Rounds, p.Steps, p.Messages, p.Shards, p.ShardsStolen)
	}
	return t
}

// AddRow appends a formatted row built from arbitrary values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 0.01 && v < 1000:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// CSV writes the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}
