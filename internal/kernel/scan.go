package kernel

import (
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/model"
)

// Scratch holds the reusable buffers of a violated-event scan: the
// violated bitset (one bit per event) and the collected identifier list.
// A Scratch belongs to one run at a time; scans on the same Scratch reuse
// and overwrite its buffers.
type Scratch struct {
	bits []uint64
	out  []int
}

// NewScratch returns scan scratch sized for c.
func (c *Compiled) NewScratch() *Scratch {
	return &Scratch{bits: make([]uint64, c.EventWords()), out: make([]int, 0, 64)}
}

// Bits exposes the violated bitset of the most recent scan (bit e&63 of
// word e>>6 is set iff event e was violated). It stays valid until the next
// scan on the same Scratch.
func (s *Scratch) Bits() []uint64 { return s.bits }

// eval evaluates event e under the complete packed assignment a. vals is
// scratch of at least MaxScope ints for generic events (may be nil when the
// instance has none).
func (c *Compiled) eval(e int, a *Assignment, vals []int) bool {
	lo, hi := c.scopeOff[e], c.scopeOff[e+1]
	switch c.kind[e] {
	case kindConj:
		for j := lo; j < hi; j++ {
			if c.conjMask[j]>>uint(a.value(int(c.scopeVar[j])))&1 == 0 {
				return false
			}
		}
		return true
	case kindAllEqual:
		first := a.value(int(c.scopeVar[lo]))
		for j := lo + 1; j < hi; j++ {
			if a.value(int(c.scopeVar[j])) != first {
				return false
			}
		}
		return true
	default:
		vals = vals[:hi-lo]
		for j := lo; j < hi; j++ {
			vals[j-lo] = a.value(int(c.scopeVar[j]))
		}
		return c.inst.Event(e).Bad(vals)
	}
}

// ScanWords evaluates the events of words [wlo, whi) — event e maps to bit
// e&63 of word e>>6 — under the complete packed assignment a, and stores
// the violated bitmask into bitsOut[wlo:whi]. Every word is written exactly
// once and nothing else is touched, so disjoint word ranges can be scanned
// concurrently without synchronization. vals must be scratch of at least
// MaxScope ints when HasGeneric reports true; it may be nil otherwise.
func (c *Compiled) ScanWords(a *Assignment, wlo, whi int, bitsOut []uint64, vals []int) {
	for wi := wlo; wi < whi; wi++ {
		e0 := wi << 6
		e1 := e0 + 64
		if e1 > c.numEvents {
			e1 = c.numEvents
		}
		var w uint64
		for e := e0; e < e1; e++ {
			if c.eval(e, a, vals) {
				w |= 1 << uint(e-e0)
			}
		}
		bitsOut[wi] = w
	}
}

// Violated returns the identifiers of all events violated under the
// complete packed assignment a, in ascending order. The scan is sharded
// word-aligned over pool — each worker owns whole bitset words — and the
// result is bit-identical for every worker count. The returned slice
// aliases s and stays valid until the next scan on the same Scratch.
func (c *Compiled) Violated(a *Assignment, pool *engine.Pool, s *Scratch) ([]int, error) {
	if !a.Complete() {
		return nil, fmt.Errorf("%w: %d of %d variables fixed", model.ErrNotFixed, a.NumFixed(), c.numVars)
	}
	hasGeneric := c.hasGeneric
	pool.ForEachShard(len(s.bits), func(wlo, whi int) {
		var vals []int
		if hasGeneric {
			vals = make([]int, c.maxScope)
		}
		c.ScanWords(a, wlo, whi, s.bits, vals)
	})
	s.out = s.out[:0]
	for wi, w := range s.bits {
		base := wi << 6
		for w != 0 {
			s.out = append(s.out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return s.out, nil
}

// HasLowerViolatedNeighbor reports whether event e has a dependency-graph
// neighbor u < e whose bit is set in the violated bitset. It is the
// priority test of the parallel Moser-Tardos round (an event resamples iff
// it is the local minimum among violated neighbors).
func (c *Compiled) HasLowerViolatedNeighbor(violated []uint64, e int) bool {
	for j := c.adjOff[e]; j < c.adjOff[e+1]; j++ {
		u := int(c.adj[j])
		if u >= e {
			break // adjacency rows are ascending
		}
		if violated[uint(u)>>6]>>(uint(u)&63)&1 == 1 {
			return true
		}
	}
	return false
}

// evalModel evaluates event e directly against a model.Assignment (which
// must be complete); vals is scratch of at least MaxScope ints.
func (c *Compiled) evalModel(e int, ma *model.Assignment, vals []int) bool {
	lo, hi := c.scopeOff[e], c.scopeOff[e+1]
	switch c.kind[e] {
	case kindConj:
		for j := lo; j < hi; j++ {
			if c.conjMask[j]>>uint(ma.Value(int(c.scopeVar[j])))&1 == 0 {
				return false
			}
		}
		return true
	case kindAllEqual:
		first := ma.Value(int(c.scopeVar[lo]))
		for j := lo + 1; j < hi; j++ {
			if ma.Value(int(c.scopeVar[j])) != first {
				return false
			}
		}
		return true
	default:
		vals = vals[:hi-lo]
		for j := lo; j < hi; j++ {
			vals[j-lo] = ma.Value(int(c.scopeVar[j]))
		}
		return c.inst.Event(e).Bad(vals)
	}
}

// CountViolatedModel counts the events violated under the fully fixed model
// assignment ma, allocation-free apart from one scope scratch. It matches
// model.Instance.CountViolated exactly, including the error on a partial
// assignment (delegated to the generic path so the error text is shared).
func (c *Compiled) CountViolatedModel(ma *model.Assignment) (int, error) {
	if !ma.Complete() {
		return c.inst.CountViolated(ma)
	}
	vals := make([]int, c.maxScope)
	count := 0
	for e := 0; e < c.numEvents; e++ {
		if c.evalModel(e, ma, vals) {
			count++
		}
	}
	return count, nil
}
