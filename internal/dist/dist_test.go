package dist

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestNewValidates(t *testing.T) {
	tests := []struct {
		name    string
		probs   []float64
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"negative", []float64{1.5, -0.5}, ErrNegativeProb},
		{"zero entry", []float64{1, 0}, ErrNegativeProb},
		{"nan", []float64{math.NaN(), 1}, ErrNegativeProb},
		{"bad sum", []float64{0.5, 0.4}, ErrSum},
		{"valid", []float64{0.25, 0.75}, nil},
		{"valid within tolerance", []float64{0.5, 0.5 + 1e-12}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.probs)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New(%v) error = %v, want %v", tt.probs, err, tt.wantErr)
			}
		})
	}
}

func TestUniform(t *testing.T) {
	for _, k := range []int{1, 2, 3, 10, 27} {
		d := Uniform(k)
		if d.Size() != k {
			t.Fatalf("Uniform(%d).Size() = %d", k, d.Size())
		}
		for i := 0; i < k; i++ {
			if math.Abs(d.Prob(i)-1.0/float64(k)) > 1e-12 {
				t.Fatalf("Uniform(%d).Prob(%d) = %v", k, i, d.Prob(i))
			}
		}
	}
}

func TestBernoulli(t *testing.T) {
	d, err := Bernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Prob(1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Prob(1) = %v, want 0.3", got)
	}
	if _, err := Bernoulli(0); err == nil {
		t.Fatal("Bernoulli(0) should fail")
	}
	if _, err := Bernoulli(1); err == nil {
		t.Fatal("Bernoulli(1) should fail")
	}
}

func TestProbsReturnsCopy(t *testing.T) {
	d := Uniform(3)
	p := d.Probs()
	p[0] = 99
	if d.Prob(0) == 99 {
		t.Fatal("Probs leaked internal slice")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d := MustNew([]float64{0.1, 0.2, 0.7})
	r := prng.New(5)
	const n = 300000
	counts := make([]int, d.Size())
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i := 0; i < d.Size(); i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-d.Prob(i)) > 0.005 {
			t.Fatalf("empirical Prob(%d) = %v, want %v", i, got, d.Prob(i))
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Uniform(2).Entropy(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H(uniform 2) = %v, want 1", got)
	}
	if got := Uniform(8).Entropy(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("H(uniform 8) = %v, want 3", got)
	}
	skew := MustNew([]float64{0.99, 0.01})
	if skew.Entropy() >= 1 {
		t.Fatalf("skewed entropy %v should be < 1", skew.Entropy())
	}
}

func TestMinMaxProb(t *testing.T) {
	d := MustNew([]float64{0.1, 0.6, 0.3})
	if d.MaxProb() != 0.6 {
		t.Fatalf("MaxProb = %v", d.MaxProb())
	}
	if d.MinProb() != 0.1 {
		t.Fatalf("MinProb = %v", d.MinProb())
	}
}

func TestEnumerateProbabilitiesSumToOne(t *testing.T) {
	ds := []*Distribution{
		Uniform(2),
		MustNew([]float64{0.25, 0.25, 0.5}),
		Uniform(4),
	}
	sum := 0.0
	count := 0
	Enumerate(ds, func(tuple []int, p float64) {
		sum += p
		count++
	})
	if count != 2*3*4 {
		t.Fatalf("enumerated %d tuples, want 24", count)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("joint probabilities sum to %v", sum)
	}
}

func TestEnumerateEmpty(t *testing.T) {
	calls := 0
	Enumerate(nil, func(tuple []int, p float64) {
		calls++
		if len(tuple) != 0 || p != 1 {
			t.Fatalf("empty enumeration gave tuple=%v p=%v", tuple, p)
		}
	})
	if calls != 1 {
		t.Fatalf("empty enumeration called fn %d times", calls)
	}
}

func TestEnumerateTupleProbability(t *testing.T) {
	a := MustNew([]float64{0.3, 0.7})
	b := MustNew([]float64{0.4, 0.6})
	want := map[[2]int]float64{
		{0, 0}: 0.12, {0, 1}: 0.18, {1, 0}: 0.28, {1, 1}: 0.42,
	}
	Enumerate([]*Distribution{a, b}, func(tuple []int, p float64) {
		key := [2]int{tuple[0], tuple[1]}
		if math.Abs(p-want[key]) > 1e-12 {
			t.Fatalf("tuple %v: p = %v, want %v", tuple, p, want[key])
		}
	})
}

func TestJointSize(t *testing.T) {
	if got := JointSize(nil); got != 1 {
		t.Fatalf("JointSize(nil) = %d", got)
	}
	ds := []*Distribution{Uniform(3), Uniform(5), Uniform(2)}
	if got := JointSize(ds); got != 30 {
		t.Fatalf("JointSize = %d, want 30", got)
	}
	// Overflow: 2^63 values.
	big := make([]*Distribution, 70)
	for i := range big {
		big[i] = Uniform(2)
	}
	if got := JointSize(big); got != math.MaxInt {
		t.Fatalf("JointSize overflow = %d, want MaxInt", got)
	}
}

func TestQuickUniformEntropyIsLogK(t *testing.T) {
	f := func(k uint8) bool {
		m := int(k%30) + 1
		return math.Abs(Uniform(m).Entropy()-math.Log2(float64(m))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizedVectorsValidate(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, 0, len(raw))
		sum := 0.0
		for _, v := range raw {
			x := float64(v) + 1 // strictly positive
			vals = append(vals, x)
			sum += x
		}
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] /= sum
		}
		_, err := New(vals)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample(b *testing.B) {
	d := Uniform(27)
	r := prng.New(1)
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}

func BenchmarkEnumerate6x3(b *testing.B) {
	ds := make([]*Distribution, 6)
	for i := range ds {
		ds[i] = Uniform(3)
	}
	for i := 0; i < b.N; i++ {
		sum := 0.0
		Enumerate(ds, func(_ []int, p float64) { sum += p })
	}
}
