package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// elasticNode is one clustered service whose HTTP shell exists before the
// service — so its URL can appear in boot memberships — built the same way
// as clusterPair but with per-node membership and tuning: the joiner in an
// elasticity test boots knowing only itself.
type elasticNode struct {
	svc *Service
	reg *obs.Registry
	ts  *httptest.Server
	h   *swapHandler
}

// newElasticShell starts the HTTP server shell; start attaches the service.
func newElasticShell(t testing.TB) *elasticNode {
	t.Helper()
	n := &elasticNode{reg: obs.NewRegistry(), h: &swapHandler{}}
	n.ts = httptest.NewServer(n.h)
	t.Cleanup(n.ts.Close)
	return n
}

func (n *elasticNode) start(t testing.TB, name string, nodes map[string]string, tune func(*ClusterConfig)) {
	t.Helper()
	cc := &ClusterConfig{Self: name, Nodes: nodes, FillWaitMS: 100}
	if tune != nil {
		tune(cc)
	}
	n.svc = New(Config{QueueCap: 128, MaxInFlight: 4, CacheSize: 256, Metrics: n.reg, Cluster: cc})
	n.h.set(NewHandler(n.svc, n.reg))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		n.svc.Shutdown(ctx)
		cancel()
	})
}

// waitEpoch polls until the service's membership reaches epoch e.
func waitEpoch(t *testing.T, s *Service, e int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.peers.membership().Epoch < e {
		if time.Now().After(deadline) {
			t.Fatalf("node %s stuck at epoch %d, want %d", s.peers.self, s.peers.membership().Epoch, e)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJoinWarmHandoff is the runtime-join acceptance test: a fresh node
// announces itself to a seed of a populated two-node cluster, every member
// converges on the new epoch, and the previous owners stream the joiner's
// ring slice into its cache — at least 90% of the entries the joiner now
// owns must be warm right after the handoff, served as cache hits without
// a solve.
func TestJoinWarmHandoff(t *testing.T) {
	a, b := newElasticShell(t), newElasticShell(t)
	boot := map[string]string{"a": a.ts.URL, "b": b.ts.URL}
	a.start(t, "a", boot, nil)
	b.start(t, "b", boot, nil)

	// Populate: 32 distinct cached results; write-through guarantees every
	// entry lives on its home node regardless of where it solved.
	const seeds = 32
	for seed := uint64(1); seed <= seeds; seed++ {
		runJob(t, a.svc, cacheSpec(seed))
	}

	// The joiner boots knowing only itself (epoch 0) and announces to a.
	c := newElasticShell(t)
	c.start(t, "c", map[string]string{"c": c.ts.URL}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.svc.AnnounceJoin(ctx, a.ts.URL); err != nil {
		t.Fatalf("join announce: %v", err)
	}

	// Every member converges on the joined epoch (seed fan-out + adoption).
	for _, s := range []*Service{a.svc, b.svc, c.svc} {
		waitEpoch(t, s, 1)
	}
	mem := c.svc.peers.membership()
	if len(mem.Nodes) != 3 {
		t.Fatalf("joiner's membership has %d nodes, want 3: %v", len(mem.Nodes), mem.Nodes)
	}

	// The entries c now owns were all cached on their previous owners (the
	// write-through invariant), so each should arrive via the handoff.
	ring := c.svc.peers.ringNow()
	var owned []uint64
	for seed := uint64(1); seed <= seeds; seed++ {
		js, err := cacheSpec(seed).withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := a.svc.jobKeyInst(js)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == "c" {
			owned = append(owned, key)
		}
	}
	if len(owned) == 0 {
		t.Skip("no seed in [1,32] hashes to the joiner with these vnode defaults")
	}

	warm := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		warm = 0
		for _, key := range owned {
			if _, ok := c.svc.cache.get(key); ok {
				warm++
			}
		}
		if warm*10 >= len(owned)*9 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if warm*10 < len(owned)*9 {
		t.Fatalf("joiner warm on %d of %d owned entries, want >= 90%%", warm, len(owned))
	}
	if got := c.reg.Counter("peer_handoff_entries_received_total").Value(); got < int64(warm) {
		t.Errorf("peer_handoff_entries_received_total = %d on joiner, want >= %d", got, warm)
	}
	sent := a.reg.Counter("peer_handoff_entries_sent_total").Value() +
		b.reg.Counter("peer_handoff_entries_sent_total").Value()
	if sent < int64(warm) {
		t.Errorf("donors sent %d handoff entries, want >= %d", sent, warm)
	}

	// A warm entry serves as a cache hit on the joiner — no solve.
	for seed := uint64(1); seed <= seeds; seed++ {
		js, _ := cacheSpec(seed).withDefaults()
		key, _, _ := a.svc.jobKeyInst(js)
		if ring.Owner(key) != "c" {
			continue
		}
		if _, ok := c.svc.cache.get(key); !ok {
			continue
		}
		sum := runJob(t, c.svc, cacheSpec(seed))
		if !sum.CacheHit {
			t.Fatalf("seed %d owned and warm on the joiner was not a cache hit", seed)
		}
		break
	}
}

// TestLeaveReverseHandoff: a planned leave streams every cached entry to
// its next owner before the membership without the leaver fans out — the
// survivor ends up holding the leaver's whole cache and the new epoch.
func TestLeaveReverseHandoff(t *testing.T) {
	a, b := newElasticShell(t), newElasticShell(t)
	boot := map[string]string{"a": a.ts.URL, "b": b.ts.URL}
	a.start(t, "a", boot, nil)
	b.start(t, "b", boot, nil)

	const seeds = 16
	for seed := uint64(1); seed <= seeds; seed++ {
		runJob(t, b.svc, cacheSpec(seed))
	}
	held := b.svc.cache.snapshotIf(nil)
	if len(held) == 0 {
		t.Fatal("leaver's cache is empty; nothing to hand off")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	b.svc.LeaveCluster(ctx)

	waitEpoch(t, a.svc, 1)
	mem := a.svc.peers.membership()
	if _, still := mem.Nodes["b"]; still {
		t.Fatalf("survivor still lists the leaver: %v", mem.Nodes)
	}
	for _, e := range held {
		if _, ok := a.svc.cache.get(e.key); !ok {
			t.Fatalf("entry %#x held by the leaver never reached the survivor", e.key)
		}
	}
	if got := a.reg.Counter("peer_handoff_entries_received_total").Value(); got < 1 {
		t.Errorf("peer_handoff_entries_received_total = %d on survivor, want >= 1", got)
	}
}

// TestHotReplicationToSuccessor: the hottest owned entries write-through
// replicate to the ring successor on the replication cadence, so killing
// the owner without any leave protocol (the SIGKILL scenario) leaves the
// key warm — the successor serves it as a local cache hit.
func TestHotReplicationToSuccessor(t *testing.T) {
	tune := func(cc *ClusterConfig) {
		cc.HotReplicas = 8
		cc.ReplicateInterval = 20 * time.Millisecond
	}
	a, b := newElasticShell(t), newElasticShell(t)
	boot := map[string]string{"a": a.ts.URL, "b": b.ts.URL}
	a.start(t, "a", boot, tune)
	b.start(t, "b", boot, tune)

	seed, key := seedOwnedBy(t, a.svc, "a")
	cold := runJob(t, a.svc, cacheSpec(seed))
	for i := 0; i < 3; i++ { // heat the entry: replication picks top hits
		runJob(t, a.svc, cacheSpec(seed))
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := b.svc.cache.get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot entry %#x never replicated to the successor", key)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := a.reg.Counter("peer_replicated_total").Value(); got < 1 {
		t.Errorf("peer_replicated_total = %d on owner, want >= 1", got)
	}

	// SIGKILL the owner (no leave, no drain) — the successor still serves
	// the key warm, from its own cache, without touching the dead owner.
	a.ts.Close()
	warm := runJob(t, b.svc, cacheSpec(seed))
	if !warm.CacheHit {
		t.Fatal("successor missed on a replicated hot key after the owner died")
	}
	if warm.AssignmentHash != cold.AssignmentHash {
		t.Fatalf("replicated result diverged: %#x vs %#x", warm.AssignmentHash, cold.AssignmentHash)
	}
}

// TestNodeClusterEndpoints drives the node-side elasticity HTTP surface
// directly: GET /cluster (identity + epoch + cache size, the anti-entropy
// source), admin POST /cluster/members (join/leave minting, every
// rejection path), and the malformed-payload handling of the peer
// membership/handoff endpoints — bad input is a 400 or a skipped entry,
// never a panic or a membership change.
func TestNodeClusterEndpoints(t *testing.T) {
	a := newElasticShell(t)
	a.start(t, "a", map[string]string{"a": a.ts.URL}, nil)

	get := func() NodeClusterStatus {
		t.Helper()
		resp, err := http.Get(a.ts.URL + "/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /cluster answered %d", resp.StatusCode)
		}
		var ns NodeClusterStatus
		if err := json.NewDecoder(resp.Body).Decode(&ns); err != nil {
			t.Fatal(err)
		}
		return ns
	}
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(a.ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if ns := get(); ns.Self != "a" || ns.Epoch != 0 || len(ns.Nodes) != 1 {
		t.Fatalf("boot status = %+v, want self a, epoch 0, 1 node", ns)
	}

	for _, bad := range []string{
		`{nope`,                           // malformed JSON
		`{"action":"join","name":"b"}`,    // join without url
		`{"action":"leave"}`,              // leave without name
		`{"action":"promote","name":"b"}`, // unknown action
	} {
		if code := post("/cluster/members", bad); code != http.StatusBadRequest {
			t.Fatalf("POST /cluster/members %q answered %d, want 400", bad, code)
		}
	}
	if ns := get(); ns.Epoch != 0 {
		t.Fatalf("rejected changes still minted epoch %d", ns.Epoch)
	}

	if code := post("/cluster/members", `{"action":"join","name":"b","url":"http://127.0.0.1:1"}`); code != http.StatusOK {
		t.Fatalf("admin join answered %d", code)
	}
	if ns := get(); ns.Epoch != 1 || len(ns.Nodes) != 2 {
		t.Fatalf("post-join status = %+v, want epoch 1 with 2 nodes", ns)
	}
	if code := post("/cluster/members", `{"action":"leave","name":"b"}`); code != http.StatusOK {
		t.Fatalf("admin leave answered %d", code)
	}
	if ns := get(); ns.Epoch != 2 || len(ns.Nodes) != 1 {
		t.Fatalf("post-leave status = %+v, want epoch 2 with 1 node", ns)
	}

	if code := post("/v1/peer/membership", `{nope`); code != http.StatusBadRequest {
		t.Fatalf("bad membership fan-out answered %d, want 400", code)
	}
	if code := post("/v1/peer/handoff", `{nope`); code != http.StatusBadRequest {
		t.Fatalf("bad handoff chunk answered %d, want 400", code)
	}
	// A chunk whose entries are unparseable is accepted and skipped —
	// handoff failures must degrade to misses, not errors.
	if code := post("/v1/peer/handoff",
		`{"from":"x","epoch":2,"entries":[{"key":"zzz","summary":"bad"},{"key":"0f","summary":"{\"partial\":true}"}]}`); code/100 != 2 {
		t.Fatalf("skippable handoff chunk answered %d, want 2xx", code)
	}
	if got := a.svc.cache.len(); got != 0 {
		t.Fatalf("malformed handoff entries landed in the cache (len %d)", got)
	}
}

// TestAnnounceJoinFailurePaths: announcing is best-effort with retries —
// a non-clustered service refuses outright, and a seed that answers
// garbage or nothing surfaces an error once the context gives up instead
// of hanging the boot.
func TestAnnounceJoinFailurePaths(t *testing.T) {
	plain := New(Config{QueueCap: 4, MaxInFlight: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		plain.Shutdown(ctx)
		cancel()
	})
	if err := plain.AnnounceJoin(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Fatal("non-clustered AnnounceJoin succeeded")
	}

	a := newElasticShell(t)
	a.start(t, "a", map[string]string{"a": a.ts.URL}, nil)

	for name, seed := range map[string]http.HandlerFunc{
		"seed 500s":         func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusInternalServerError) },
		"seed answers junk": func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "not json") },
	} {
		ts := httptest.NewServer(seed)
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		err := a.svc.AnnounceJoin(ctx, ts.URL)
		cancel()
		ts.Close()
		if err == nil {
			t.Fatalf("%s: AnnounceJoin succeeded", name)
		}
	}
	// Connection refused on every attempt.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := a.svc.AnnounceJoin(ctx, "http://127.0.0.1:1"); err == nil {
		t.Fatal("AnnounceJoin against a dead seed succeeded")
	}
	if got := a.svc.peers.membership().Epoch; got != 0 {
		t.Fatalf("failed announces mutated the membership (epoch %d)", got)
	}
}

// TestMembershipAdoptionIdempotent: re-delivering the same epoch (the
// fan-out and the anti-entropy sync race each other by design) neither
// re-triggers handoffs nor regresses the membership.
func TestMembershipAdoptionIdempotent(t *testing.T) {
	a := newElasticShell(t)
	a.start(t, "a", map[string]string{"a": a.ts.URL}, nil)

	next := a.svc.peers.membership().WithJoin("b", "http://127.0.0.1:1")
	if !a.svc.applyMembership(next, false) {
		t.Fatal("first adoption of the new epoch refused")
	}
	if a.svc.applyMembership(next, false) {
		t.Fatal("re-adoption of the same epoch accepted (not idempotent)")
	}
	stale := cluster.Membership{Epoch: 0, Nodes: map[string]string{"a": a.ts.URL}}
	if a.svc.applyMembership(stale, false) {
		t.Fatal("stale epoch adopted over a newer membership")
	}
	if got := a.svc.peers.membership().Epoch; got != next.Epoch {
		t.Fatalf("epoch = %d after idempotency churn, want %d", got, next.Epoch)
	}
}
