package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
)

// ClusterConfig wires a Service into an llld cluster: the node's own name,
// the full membership (name → base URL), and the peer-protocol knobs. With
// it set, the service (a) serves the peer endpoints — cache lookup with
// cluster-wide single-flight claims, write-through stores, checkpoint
// export — and (b) consults the cache key's home node before solving a
// local cache miss, so a result computed anywhere in the cluster is solved
// exactly once.
type ClusterConfig struct {
	// Self is this node's name; must appear in Nodes.
	Self string
	// Nodes is the full cluster membership, name → base URL
	// (e.g. "http://127.0.0.1:8081"). Every node must use the same set.
	Nodes map[string]string
	// VNodes is the consistent-hash virtual-node count
	// (cluster.DefaultVNodes when 0). Every node must use the same value.
	VNodes int
	// FillWaitMS bounds one peer-fill claim wait (default 250ms): how long
	// a non-owner blocks on the owner's in-flight solve before giving up
	// and solving locally.
	FillWaitMS int
	// ClaimTTL expires a granted-but-unreleased cluster claim (default 30s)
	// so a crashed claimer cannot wedge the key cluster-wide.
	ClaimTTL time.Duration
	// HotReplicas is the top-k hit-count cutoff for hot-entry replication:
	// every ReplicateInterval the k hottest self-owned cache entries are
	// write-through replicated to the key's ring successor, so an unplanned
	// SIGKILL of this node does not cold-start them. Default 16; negative
	// disables replication.
	HotReplicas int
	// ReplicateInterval is the hot-entry replication cadence (default 2s).
	ReplicateInterval time.Duration
	// HandoffChunk is the number of entries per warm-handoff chunk
	// (default 64).
	HandoffChunk int
	// HandoffRate bounds a warm-handoff transfer in entries/second
	// (default 4096) so a join cannot saturate the donor's egress.
	HandoffRate int
	// Client overrides the peer HTTP client (tests); nil uses a 3s-timeout
	// default.
	Client *http.Client
}

func (c *ClusterConfig) validate() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: Self is required")
	}
	if _, ok := c.Nodes[c.Self]; !ok {
		return fmt.Errorf("cluster: Self %q not in Nodes", c.Self)
	}
	return nil
}

// peerLayer is the client+claims side of the peer cache protocol. The
// membership (and with it the ring) is mutable: adopt swaps in any newer
// epoch and fires the onChange hook that streams warm handoffs.
type peerLayer struct {
	self   string
	vnodes int
	client *http.Client
	waitMS int
	ttl    time.Duration
	claims *peerClaims

	mu   sync.Mutex
	mem  cluster.Membership
	ring *cluster.Ring

	// onChange is invoked (on the adopting goroutine) after a newer
	// membership is swapped in, with the displaced and the current set.
	// Set once at service construction, before any adopt can run.
	onChange func(old, now cluster.Membership)

	m peerMetrics
}

type peerMetrics struct {
	fillHits   *obs.Counter // peer fill served a warm summary
	fillLeads  *obs.Counter // peer fill granted us the cluster claim
	fillMisses *obs.Counter // peer fill found nothing (we solve locally)
	fillErrors *obs.Counter // transport failures (fell back to local solve)
	stores     *obs.Counter // write-through stores pushed to the owner
	serves     *obs.Counter // server side: peer lookups answered with a hit
	claims     *obs.Counter // server side: cluster claims granted to peers

	adoptions    *obs.Counter // memberships adopted (epoch advanced)
	epoch        *obs.Gauge   // current membership epoch
	handoffOut   *obs.Counter // warm-handoff entries pushed to peers
	handoffIn    *obs.Counter // warm-handoff entries received and stored
	handoffFails *obs.Counter // handoff chunks dropped (degraded to misses)
	replicated   *obs.Counter // hot entries replicated to the successor
}

func newPeerLayer(cfg *ClusterConfig, reg *obs.Registry) *peerLayer {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 3 * time.Second}
	}
	waitMS := cfg.FillWaitMS
	if waitMS <= 0 {
		waitMS = 250
	}
	ttl := cfg.ClaimTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	mem := cluster.Membership{Epoch: 0, Nodes: map[string]string{}}
	for name, url := range cfg.Nodes {
		mem.Nodes[name] = url
	}
	return &peerLayer{
		self:   cfg.Self,
		vnodes: cfg.VNodes,
		client: client,
		waitMS: waitMS,
		ttl:    ttl,
		claims: newPeerClaims(),
		mem:    mem,
		ring:   mem.Ring(cfg.VNodes),
		m: peerMetrics{
			fillHits:   reg.Counter("peer_fill_hits_total"),
			fillLeads:  reg.Counter("peer_fill_leads_total"),
			fillMisses: reg.Counter("peer_fill_misses_total"),
			fillErrors: reg.Counter("peer_fill_errors_total"),
			stores:     reg.Counter("peer_stores_total"),
			serves:     reg.Counter("peer_serves_total"),
			claims:     reg.Counter("peer_claims_granted_total"),

			adoptions:    reg.Counter("peer_membership_adoptions_total"),
			epoch:        reg.Gauge("peer_membership_epoch"),
			handoffOut:   reg.Counter("peer_handoff_entries_sent_total"),
			handoffIn:    reg.Counter("peer_handoff_entries_received_total"),
			handoffFails: reg.Counter("peer_handoff_failures_total"),
			replicated:   reg.Counter("peer_replicated_total"),
		},
	}
}

// membership returns the current membership (a deep copy).
func (p *peerLayer) membership() cluster.Membership {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mem.Clone()
}

// ringNow returns the current ring (immutable once built).
func (p *peerLayer) ringNow() *cluster.Ring {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring
}

// urlOf resolves a member name to its base URL under the current
// membership ("" when unknown).
func (p *peerLayer) urlOf(name string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mem.Nodes[name]
}

// adopt installs mem if it is newer than the current membership and
// reports whether a swap happened, firing onChange with the displaced and
// new sets. Older or equal memberships are ignored (idempotent fan-out).
func (p *peerLayer) adopt(mem cluster.Membership) bool {
	p.mu.Lock()
	if !mem.Newer(p.mem) {
		p.mu.Unlock()
		return false
	}
	old := p.mem
	p.mem = mem.Clone()
	p.ring = p.mem.Ring(p.vnodes)
	now := p.mem.Clone()
	hook := p.onChange
	p.mu.Unlock()
	p.m.adoptions.Inc()
	p.m.epoch.Set(float64(mem.Epoch))
	if hook != nil {
		hook(old, now)
	}
	return true
}

// owner returns the name of the node owning a cache key.
func (p *peerLayer) owner(key uint64) string { return p.ringNow().Owner(key) }

// claimLocal takes the cluster claim for a key on this node's own claim
// table when this node owns the key, so peers asking the owner wait for
// the local solve instead of double-solving. Reports whether a claim was
// taken (and must be released).
func (p *peerLayer) claimLocal(key uint64) bool {
	if p.owner(key) != p.self {
		return false
	}
	granted, _ := p.claims.claim(key, p.ttl)
	return granted
}

func (p *peerLayer) releaseLocal(key uint64) { p.claims.release(key) }

// fill asks the key's home node for the cached summary before a local
// solve. ok=true returns the warm summary (solved elsewhere, bit-identical
// to a local solve by the cache contract). ok=false means this node should
// solve: either it owns the key, or it was granted the cluster-wide claim,
// or the peer protocol could not help (transport trouble, wait timeout) —
// the cluster must never reduce availability, so every failure degrades to
// the local solve path.
func (p *peerLayer) fill(ctx context.Context, key uint64) (*Summary, bool) {
	home := p.owner(key)
	if home == p.self {
		return nil, false
	}
	url := fmt.Sprintf("%s/v1/peer/cache/%s?claim=1&wait_ms=%d", p.urlOf(home), cluster.FormatKey(key), p.waitMS)
	// Two tries: the first may time out waiting on an in-flight claimer;
	// the second re-checks after that claimer's store or expiry.
	for attempt := 0; attempt < 2; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			p.m.fillErrors.Inc()
			return nil, false
		}
		resp, err := p.client.Do(req)
		if err != nil {
			p.m.fillErrors.Inc()
			return nil, false
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			p.m.fillErrors.Inc()
			return nil, false
		}
		var pr cluster.PeerCacheResponse
		if json.Unmarshal(body, &pr) != nil {
			p.m.fillErrors.Inc()
			return nil, false
		}
		switch {
		case pr.Found:
			var sum Summary
			if json.Unmarshal(pr.Summary, &sum) != nil {
				p.m.fillErrors.Inc()
				return nil, false
			}
			p.m.fillHits.Inc()
			return &sum, true
		case pr.Leader:
			p.m.fillLeads.Inc()
			return nil, false
		}
		// Neither found nor leader: another claimer is in flight and our
		// wait timed out; loop once more, then solve locally.
	}
	p.m.fillMisses.Inc()
	return nil, false
}

// store writes a completed summary through to the key's home node (no-op
// when this node is the owner — the local cache.put already happened).
// The owner's PUT handler stores the entry and releases any cluster claim
// we held for the key. Failures are counted and ignored: the write-through
// is an optimization, never a correctness requirement.
func (p *peerLayer) store(ctx context.Context, key uint64, sum *Summary) {
	home := p.owner(key)
	if home == p.self {
		return
	}
	p.storeTo(ctx, home, key, sum)
}

// storeTo pushes a summary to a named member's cache via the write-through
// PUT; used by store (owner write-through) and by the hot-entry
// replicator (successor write). Failures are counted and ignored.
func (p *peerLayer) storeTo(ctx context.Context, target string, key uint64, sum *Summary) {
	body, err := json.Marshal(sum)
	if err != nil {
		return
	}
	base := p.urlOf(target)
	if base == "" {
		return
	}
	url := fmt.Sprintf("%s/v1/peer/cache/%s", base, cluster.FormatKey(key))
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		p.m.fillErrors.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		p.m.fillErrors.Inc()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		p.m.stores.Inc()
	} else {
		p.m.fillErrors.Inc()
	}
}

// peerClaims is the owner-side cluster single-flight table: at most one
// claimer per key solves at a time, cluster-wide. Claims expire after a
// TTL so a crashed claimer (a killed node) cannot wedge the key — the
// next claim after expiry is granted fresh, and the stale claim's waiters
// time out on their bounded wait_ms and retry.
type peerClaims struct {
	mu sync.Mutex
	m  map[uint64]*peerClaim
}

type peerClaim struct {
	done    chan struct{}
	expires time.Time
}

func newPeerClaims() *peerClaims {
	return &peerClaims{m: make(map[uint64]*peerClaim)}
}

// claim grants the cluster claim for key (granted=true) or returns the
// in-flight claim's done channel to wait on.
func (p *peerClaims) claim(key uint64, ttl time.Duration) (granted bool, wait <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.m[key]; ok && time.Now().Before(c.expires) {
		return false, c.done
	}
	p.m[key] = &peerClaim{done: make(chan struct{}), expires: time.Now().Add(ttl)}
	return true, nil
}

// release drops the claim for key and wakes its waiters. Idempotent.
func (p *peerClaims) release(key uint64) {
	p.mu.Lock()
	c := p.m[key]
	delete(p.m, key)
	p.mu.Unlock()
	if c != nil {
		close(c.done)
	}
}

// peerCacheGet implements GET /v1/peer/cache/{key}: a cache hit returns
// the stored summary; on a miss with ?claim=1 the caller either becomes
// the cluster-wide single-flight leader or waits (bounded by wait_ms) for
// the in-flight claimer and re-checks.
func (s *Service) peerCacheGet(w http.ResponseWriter, r *http.Request) {
	key, ok := cluster.ParseKey(r.PathValue("key"))
	if !ok {
		http.Error(w, "bad cache key", http.StatusBadRequest)
		return
	}
	if sum, ok := s.cache.get(key); ok {
		s.peers.m.serves.Inc()
		writePeerResponse(w, cluster.PeerCacheResponse{Found: true}, sum)
		return
	}
	if r.URL.Query().Get("claim") == "" {
		writePeerResponse(w, cluster.PeerCacheResponse{}, nil)
		return
	}
	waitMS := 0
	fmt.Sscanf(r.URL.Query().Get("wait_ms"), "%d", &waitMS)
	if waitMS < 0 {
		waitMS = 0
	}
	if waitMS > 5000 {
		waitMS = 5000 // the wait is bounded so stale claims cannot pin peers
	}
	granted, wait := s.peers.claims.claim(key, s.peers.ttl)
	if granted {
		s.peers.m.claims.Inc()
		writePeerResponse(w, cluster.PeerCacheResponse{Leader: true}, nil)
		return
	}
	if waitMS > 0 {
		t := time.NewTimer(time.Duration(waitMS) * time.Millisecond)
		defer t.Stop()
		select {
		case <-wait:
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	if sum, ok := s.cache.get(key); ok {
		s.peers.m.serves.Inc()
		writePeerResponse(w, cluster.PeerCacheResponse{Found: true}, sum)
		return
	}
	writePeerResponse(w, cluster.PeerCacheResponse{}, nil)
}

// peerCachePut implements PUT /v1/peer/cache/{key}: a write-through store
// from a peer that solved the key as the cluster-flight leader. The store
// releases any claim held for the key, waking waiting peers.
func (s *Service) peerCachePut(w http.ResponseWriter, r *http.Request) {
	key, ok := cluster.ParseKey(r.PathValue("key"))
	if !ok {
		http.Error(w, "bad cache key", http.StatusBadRequest)
		return
	}
	var sum Summary
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	if err := dec.Decode(&sum); err != nil {
		http.Error(w, "bad summary: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !sum.Partial {
		s.cache.put(key, &sum)
	}
	s.peers.claims.release(key)
	w.WriteHeader(http.StatusNoContent)
}

func writePeerResponse(w http.ResponseWriter, pr cluster.PeerCacheResponse, sum *Summary) {
	if sum != nil {
		raw, err := json.Marshal(sum)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		pr.Summary = raw
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pr)
}

// CheckpointExport is the wire format of GET /v1/jobs/{id}/checkpoint: the
// job's latest saved snapshot plus everything needed to resume it in
// another process — the normalized spec and the trace ID. ResumeSpec turns
// it back into a submittable JobSpec.
type CheckpointExport struct {
	// ID / TraceID / State identify the exporting job.
	ID      string `json:"id"`
	TraceID string `json:"trace_id"`
	State   State  `json:"state"`
	// Found reports whether a checkpoint was ever saved; Checkpoint is nil
	// otherwise (the job can still be re-run from scratch — determinism
	// makes even that bit-identical).
	Found      bool              `json:"found"`
	Checkpoint *fault.Checkpoint `json:"checkpoint,omitempty"`
	// Spec is the job's normalized spec.
	Spec JobSpec `json:"spec"`
}

// ResumeSpec returns the spec that continues this export in another
// process: the original spec with the checkpoint and trace carried over.
func (e CheckpointExport) ResumeSpec() JobSpec {
	js := e.Spec
	js.Resume = e.Checkpoint
	js.TraceID = e.TraceID
	js.Batch = nil // batch jobs hold no resumable sub-state
	return js
}

// exportCheckpoint implements GET /v1/jobs/{id}/checkpoint.
func (s *Service) exportCheckpoint(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	cp := job.Checkpoint()
	writeJSON(w, http.StatusOK, CheckpointExport{
		ID:         job.ID,
		TraceID:    job.TraceID,
		State:      job.State(),
		Found:      cp != nil,
		Checkpoint: cp,
		Spec:       job.Spec,
	})
}
