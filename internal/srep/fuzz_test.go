package srep

import (
	"math"
	"testing"
)

// FuzzDecompose checks the Lemma 3.5 round trip on arbitrary inputs:
// membership and constructive decomposition must agree, and every witness
// must validate and realize its triple.
func FuzzDecompose(f *testing.F) {
	f.Add(0.25, 1.5, 0.1)
	f.Add(0.0, 0.0, 4.0)
	f.Add(2.0, 2.0, 0.0)
	f.Add(1.0, 1.0, 1.0)
	f.Add(3.9, 0.05, 0.01)
	f.Add(5.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return
		}
		in := IsRepresentable(a, b, c, DefaultTol)
		w, err := Decompose(a, b, c)
		if in && err != nil {
			t.Fatalf("representable (%v,%v,%v) failed to decompose: %v", a, b, c, err)
		}
		if !in && err == nil {
			t.Fatalf("non-representable (%v,%v,%v) decomposed to %+v", a, b, c, w)
		}
		if err == nil {
			if !w.Valid(1e-9) {
				t.Fatalf("invalid witness for (%v,%v,%v): %+v", a, b, c, w)
			}
			if !w.Realizes(a, b, c, 1e-6) {
				wa, wb, wc := w.Triple()
				t.Fatalf("witness (%v,%v,%v) does not realize (%v,%v,%v)", wa, wb, wc, a, b, c)
			}
		}
	})
}

// FuzzSurfaceConvexity probes Lemma 3.6 on arbitrary segment endpoints.
func FuzzSurfaceConvexity(f *testing.F) {
	f.Add(0.5, 0.5, 3.0, 0.5, 0.5)
	f.Add(1.0, 2.9, 2.9, 1.0, 0.25)
	f.Fuzz(func(t *testing.T, a1, b1, a2, b2, q float64) {
		inDomain := func(a, b float64) bool {
			return a >= 0 && b >= 0 && a+b <= 4 && !math.IsNaN(a) && !math.IsNaN(b)
		}
		if !inDomain(a1, b1) || !inDomain(a2, b2) || math.IsNaN(q) || q < 0 || q > 1 {
			return
		}
		lhs := F(q*a1+(1-q)*a2, q*b1+(1-q)*b2)
		rhs := q*F(a1, b1) + (1-q)*F(a2, b2)
		if lhs > rhs+1e-9 {
			t.Fatalf("convexity violated: f(mix)=%v > mix(f)=%v", lhs, rhs)
		}
	})
}

// FuzzRepresentableTriple pins Lemma 3.5 against Definition 3.3 on
// arbitrary (a, b): the closed-form surface F(a, b) must agree with the
// brute-force membership maximum MaxCNumeric (which scans the witness split
// parameter of the definition directly), and IsRepresentable must accept
// triples just below the surface and reject triples above it.
func FuzzRepresentableTriple(f *testing.F) {
	f.Add(0.25, 1.5)
	f.Add(0.0, 0.0)
	f.Add(2.0, 2.0)
	f.Add(3.99, 0.01)
	f.Add(0.5, 3.5)
	f.Add(1.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsNaN(b) || a < 0 || b < 0 || a+b > 4 {
			return
		}
		closed := F(a, b)
		if math.IsNaN(closed) || closed < -1e-12 {
			t.Fatalf("F(%v, %v) = %v outside [0, 4]", a, b, closed)
		}
		oracle := MaxCNumeric(a, b, 20000)
		if math.Abs(closed-oracle) > 5e-3 {
			t.Fatalf("closed form F(%v, %v) = %v but Definition 3.3 maximum = %v", a, b, closed, oracle)
		}
		// Membership boundary: strictly below the surface is in S_rep,
		// strictly above is out.
		if below := closed - 1e-6; below >= 0 && !IsRepresentable(a, b, below, DefaultTol) {
			t.Fatalf("(%v, %v, %v) just below the surface rejected", a, b, below)
		}
		if above := closed + 1e-3; IsRepresentable(a, b, above, DefaultTol) {
			t.Fatalf("(%v, %v, %v) above the surface accepted", a, b, above)
		}
		// Every accepted triple must decompose into a Definition 3.3
		// witness that realizes it.
		if closed > 1e-6 {
			w, err := Decompose(a, b, closed-1e-6)
			if err != nil {
				t.Fatalf("representable (%v, %v, %v) failed to decompose: %v", a, b, closed-1e-6, err)
			}
			if !w.Valid(1e-9) || !w.Realizes(a, b, closed-1e-6, 1e-6) {
				t.Fatalf("witness %+v does not realize (%v, %v, %v)", w, a, b, closed-1e-6)
			}
		}
	})
}
