package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
)

// Result is the outcome of a distributed colouring run.
type Result struct {
	// Colors is the computed colouring, indexed by node of the graph the
	// algorithm ran on.
	Colors []int
	// Palette is the guaranteed palette size (every colour is < Palette).
	Palette int
	// Rounds is the number of LOCAL rounds on the executed graph.
	Rounds int
	// SimFactor is the number of rounds of the ORIGINAL graph needed to
	// simulate one executed round when the algorithm ran on a derived graph
	// (line graph or square graph); 1 otherwise. The cost on the original
	// graph is Rounds · SimFactor.
	SimFactor int
	// Messages is the total number of messages sent.
	Messages int
}

// vcMachine is the distributed vertex-colouring machine: Linial colour
// reduction from the ID space down to O(Δ²) colours in O(log* n) rounds,
// followed by Kuhn-Wattenhofer block halving down to the target palette in
// O(Δ·log Δ) further rounds.
//
// Every node computes the identical reduction schedule from (K0, Δ) locally,
// so the phases stay synchronized without any coordination messages.
type vcMachine struct {
	info     local.NodeInfo
	schedule []Step
	kwSched  []int
	finalK   int
	target   int
	color    int
	err      error
}

func newVCMachine(k0, delta, target int) *vcMachine {
	finalK := FinalPalette(k0, delta)
	m := &vcMachine{
		schedule: Schedule(k0, delta),
		kwSched:  kwSchedule(finalK, target),
		finalK:   finalK,
		target:   target,
	}
	return m
}

func (m *vcMachine) Init(info local.NodeInfo) {
	m.info = info
	m.color = int(info.ID)
}

// totalRounds is 1 initial broadcast + one round per Linial step + the
// Kuhn-Wattenhofer reduction rounds.
func (m *vcMachine) totalRounds() int {
	return 1 + len(m.schedule) + kwRounds(m.finalK, m.target)
}

func (m *vcMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	if round > 1 {
		// Process the colours broadcast in the previous round.
		neighborColors := make([]int, 0, len(recv))
		for _, msg := range recv {
			if msg == nil {
				m.err = fmt.Errorf("coloring: missing neighbour colour in round %d", round)
				return nil, true
			}
			c, ok := msg.(int)
			if !ok {
				m.err = fmt.Errorf("coloring: unexpected message type %T", msg)
				return nil, true
			}
			neighborColors = append(neighborColors, c)
		}
		step := round - 2 // schedule index handled in this round
		switch {
		case step < len(m.schedule):
			next, err := Reduce(m.schedule[step], m.color, neighborColors)
			if err != nil {
				m.err = err
				return nil, true
			}
			m.color = next
		default:
			// Kuhn-Wattenhofer halving round.
			j := (step - len(m.schedule)) % m.target
			next, ok := kwStep(m.target, j, m.color, neighborColors)
			if !ok {
				m.err = fmt.Errorf("coloring: no free colour below target %d", m.target)
				return nil, true
			}
			m.color = next
		}
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = m.color
	}
	return send, round >= m.totalRounds()
}

// smallestFree returns the smallest colour in [0, target) not present in
// blocked, or -1 if all are taken.
func smallestFree(target int, blocked []int) int {
	used := make([]bool, target)
	for _, c := range blocked {
		if c >= 0 && c < target {
			used[c] = true
		}
	}
	for c := 0; c < target; c++ {
		if !used[c] {
			return c
		}
	}
	return -1
}

// DistributedVertexColoring computes a proper vertex colouring of g with
// target colours (target must be at least Δ+1) in O(Δ·log Δ + log* n) LOCAL
// rounds (Linial reduction + Kuhn-Wattenhofer halving).
func DistributedVertexColoring(g *graph.Graph, opts local.Options, target int) (*Result, error) {
	delta := g.MaxDegree()
	if target < delta+1 {
		return nil, fmt.Errorf("coloring: target %d below Δ+1 = %d", target, delta+1)
	}
	k0 := int(local.IDSpace(g.N()))
	if opts.SequentialIDs {
		k0 = g.N()
	}
	if k0 < target {
		k0 = target
	}
	machines := make([]*vcMachine, g.N())
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = newVCMachine(k0, delta, target)
		return machines[v]
	}, opts)
	if err != nil {
		return nil, err
	}
	colors := make([]int, g.N())
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("coloring: node %d failed: %w", v, m.err)
		}
		colors[v] = m.color
	}
	if err := Verify(g, colors); err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   target,
		Rounds:    stats.Rounds,
		SimFactor: 1,
		Messages:  stats.MessagesSent,
	}, nil
}

// DistributedEdgeColoring computes a proper edge colouring of g with at most
// 2Δ−1 colours by running the vertex-colouring machine on the line graph
// L(g). One L(g) round is simulated by 2 rounds of g (messages between
// adjacent edges are relayed by the shared endpoint), reflected in
// SimFactor. Colours are indexed by edge identifier of g.
func DistributedEdgeColoring(g *graph.Graph, opts local.Options) (*Result, error) {
	lg := g.LineGraph()
	target := lg.MaxDegree() + 1 // ≤ 2Δ−2+1 = 2Δ−1
	if target < 1 {
		target = 1
	}
	if lg.N() == 0 {
		return &Result{Colors: nil, Palette: target, SimFactor: 2}, nil
	}
	res, err := DistributedVertexColoring(lg, opts, target)
	if err != nil {
		return nil, err
	}
	res.SimFactor = 2
	if err := VerifyEdgeColoring(g, res.Colors); err != nil {
		return nil, err
	}
	return res, nil
}

// DistributedDistance2Coloring computes a distance-2 colouring of g (proper
// on g²) with at most Δ(g²)+1 ≤ Δ²+1 colours by running the
// vertex-colouring machine on the square graph. One g² round is simulated by
// 2 rounds of g, reflected in SimFactor.
//
// This is the substitution for the [FHK16] 2-hop colouring the paper cites
// (see the package comment).
func DistributedDistance2Coloring(g *graph.Graph, opts local.Options) (*Result, error) {
	sq := g.Square()
	target := sq.MaxDegree() + 1
	res, err := DistributedVertexColoring(sq, opts, target)
	if err != nil {
		return nil, err
	}
	res.SimFactor = 2
	if err := VerifyDistance2(g, res.Colors); err != nil {
		return nil, err
	}
	return res, nil
}
