package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
)

func TestLogStar(t *testing.T) {
	tests := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1 << 20, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.x); got != tt.want {
			t.Errorf("LogStar(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestParentsFromBFS(t *testing.T) {
	g := graph.CompleteBinaryTree(15)
	parent, err := ParentsFromBFS(g)
	if err != nil {
		t.Fatal(err)
	}
	if parent[0] != -1 {
		t.Fatalf("root parent = %d", parent[0])
	}
	for v := 1; v < 15; v++ {
		if parent[v] != (v-1)/2 {
			t.Fatalf("node %d parent = %d, want %d", v, parent[v], (v-1)/2)
		}
	}
	if _, err := ParentsFromBFS(graph.Cycle(5)); err == nil {
		t.Fatal("cycle accepted as forest")
	}
}

func TestColeVishkinForestOnTrees(t *testing.T) {
	r := prng.New(3)
	cases := []*graph.Graph{
		graph.Path(2),
		graph.Path(50),
		graph.CompleteBinaryTree(31),
		graph.RandomTree(100, r),
		graph.RandomTree(500, r),
	}
	for i, g := range cases {
		parent, err := ParentsFromBFS(g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := ColeVishkinForest(g, parent, uint64(i))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if m := MaxColor(res.Colors); m > 2 {
			t.Fatalf("case %d: colour %d outside {0,1,2}", i, m)
		}
		if res.Rounds > 25 {
			t.Fatalf("case %d: %d rounds is not O(log* n)", i, res.Rounds)
		}
	}
}

func TestColeVishkinForestHighDegree(t *testing.T) {
	// A star: the shift-down trick is what makes 3 colours possible
	// despite degree n-1.
	b := graph.NewBuilder(40)
	for v := 1; v < 40; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	parent, err := ParentsFromBFS(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColeVishkinForest(g, parent, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if m := MaxColor(res.Colors); m > 2 {
		t.Fatalf("colour %d outside {0,1,2}", m)
	}
}

func TestColeVishkinForestDisconnected(t *testing.T) {
	// A forest with three components, including an isolated node.
	b := graph.NewBuilder(9)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {3, 7}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build() // node 8 isolated
	parent, err := ParentsFromBFS(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColeVishkinForest(g, parent, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if m := MaxColor(res.Colors); m > 2 {
		t.Fatalf("colour %d outside {0,1,2}", m)
	}
}

func TestColeVishkinForestValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := ColeVishkinForest(g, []int{-1, 0}, 1); err == nil {
		t.Fatal("wrong parent-array length accepted")
	}
	if _, err := ColeVishkinForest(g, []int{-1, 0, 1, 0}, 1); err == nil {
		t.Fatal("non-adjacent parent accepted")
	}
}

func TestColeVishkinForestRoundsLogStar(t *testing.T) {
	r := prng.New(8)
	rounds := func(n int) int {
		g := graph.RandomTree(n, r)
		parent, err := ParentsFromBFS(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ColeVishkinForest(g, parent, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	if big, small := rounds(2000), rounds(20); big-small > 3 {
		t.Fatalf("rounds grew from %d to %d for 100x nodes", small, big)
	}
}

func BenchmarkColeVishkinForest(b *testing.B) {
	r := prng.New(1)
	g := graph.RandomTree(256, r)
	parent, err := ParentsFromBFS(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColeVishkinForest(g, parent, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
