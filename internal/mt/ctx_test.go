package mt

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prng"
)

// hardInstance builds a threshold sinkless instance (p·2^d = 1) on a large
// cycle: Moser-Tardos needs many rounds there, giving the cancellation
// tests something that reliably outlives the cancel.
func hardInstance(t *testing.T, n int) *apps.Sinkless {
	t.Helper()
	s, err := apps.NewSinkless(graph.Cycle(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelCtxCancelMidRound cancels the parallel resampler from its
// OnRound observer and demands it returns within one round with the
// partial Result.
func TestParallelCtxCancelMidRound(t *testing.T) {
	const cancelAt = 3
	s := hardInstance(t, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := ParallelCtx(ctx, s.Instance, prng.New(7), 0, Observer{
		OnRound: func(rs engine.RoundStats) {
			if rs.Round == cancelAt {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil partial Result")
	}
	if res.Rounds != cancelAt {
		t.Errorf("Rounds = %d, want exactly %d (cancellation must be observed within one round)", res.Rounds, cancelAt)
	}
	if res.Satisfied {
		t.Error("partial result claims Satisfied")
	}
	if res.Resamplings == 0 {
		t.Error("partial result lost its resampling count")
	}
	if res.Assignment == nil || !res.Assignment.Complete() {
		t.Error("partial result must carry the current complete assignment")
	}
}

// TestSequentialCtxCancel: the sequential resampler observes cancellation
// between iterations and returns its partial counts.
func TestSequentialCtxCancel(t *testing.T) {
	s := hardInstance(t, 2048)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SequentialCtx(ctx, s.Instance, prng.New(7), 0, Observer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Resamplings != 0 || res.Satisfied {
		t.Fatalf("pre-cancelled run: res = %+v, want zero-resampling unsatisfied partial", res)
	}
}

// TestDistributedCtxCancel: the LOCAL-model resampler inherits cancellation
// from local.Options.Ctx and surfaces the partial DistResult.
func TestDistributedCtxCancel(t *testing.T) {
	s := hardInstance(t, 512)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Distributed(s.Instance, 11, 500, local.Options{
		Ctx: ctx,
		OnRound: func(rs engine.RoundStats) {
			if rs.Round == 9 { // mid-iteration: 3 LOCAL rounds per MT iteration
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil partial DistResult")
	}
	if res.Rounds != 9 {
		t.Errorf("Rounds = %d, want 9 (the round during which cancel fired)", res.Rounds)
	}
	if res.LocalStats.Rounds != res.Rounds {
		t.Errorf("LocalStats.Rounds = %d, want %d", res.LocalStats.Rounds, res.Rounds)
	}
	if res.Assignment != nil {
		t.Error("cancelled distributed run must not fabricate an assignment")
	}
}

// TestParallelCtxCancelLeaksNoGoroutines: a cancelled ParallelObs run on a
// large instance leaves no goroutines behind (the violated-event scans ride
// the shared persistent pool, which is warmed before the baseline).
func TestParallelCtxCancelLeaksNoGoroutines(t *testing.T) {
	s := hardInstance(t, 16_384)
	if _, err := Parallel(s.Instance, prng.New(3), 1); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := ParallelCtx(ctx, s.Instance, prng.New(uint64(20+i)), 0, Observer{
			OnRound: func(rs engine.RoundStats) {
				if rs.Round == 2 {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled runs: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
