package tenant

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for exact token-bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func limiterFor(t *testing.T, cfg string, clk *fakeClock) *Limiter {
	t.Helper()
	c, err := ParseConfig([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return NewLimiter(c.Specs(), clk.now)
}

// TestTokenBucketExact: burst admits immediately, then the bucket refills
// at exactly Rate tokens/second — pinned against a fake clock.
func TestTokenBucketExact(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := limiterFor(t, `{"tenants":[{"name":"a","rate":10,"burst":3}]}`, clk)

	for i := 0; i < 3; i++ {
		if d := l.Admit("a"); d.Err != nil {
			t.Fatalf("burst admit %d rejected: %v", i, d.Err)
		}
	}
	d := l.Admit("a")
	if !errors.Is(d.Err, ErrThrottled) {
		t.Fatalf("post-burst admit err = %v, want ErrThrottled", d.Err)
	}
	if d.RetryAfter < 100*time.Millisecond || d.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want in [100ms, 1s] (rounded up for HTTP)", d.RetryAfter)
	}

	clk.advance(100 * time.Millisecond) // exactly one token at 10/s
	if d := l.Admit("a"); d.Err != nil {
		t.Fatalf("admit after one-token refill rejected: %v", d.Err)
	}
	if d := l.Admit("a"); !errors.Is(d.Err, ErrThrottled) {
		t.Fatalf("second admit after one-token refill err = %v, want ErrThrottled", d.Err)
	}

	clk.advance(10 * time.Second) // refill far beyond burst: capped at 3
	for i := 0; i < 3; i++ {
		if d := l.Admit("a"); d.Err != nil {
			t.Fatalf("capped-refill admit %d rejected: %v", i, d.Err)
		}
	}
	if d := l.Admit("a"); !errors.Is(d.Err, ErrThrottled) {
		t.Fatalf("admit beyond the burst cap err = %v, want ErrThrottled", d.Err)
	}
}

// TestInFlightQuota: MaxInFlight bounds admitted-but-not-terminal jobs;
// Release frees the unit; a quota rejection consumes no token.
func TestInFlightQuota(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := limiterFor(t, `{"tenants":[{"name":"a","rate":1000,"burst":2,"max_in_flight":2}]}`, clk)

	if d := l.Admit("a"); d.Err != nil {
		t.Fatal(d.Err)
	}
	if d := l.Admit("a"); d.Err != nil {
		t.Fatal(d.Err)
	}
	d := l.Admit("a")
	if !errors.Is(d.Err, ErrQuota) {
		t.Fatalf("over-quota admit err = %v, want ErrQuota", d.Err)
	}
	if d.RetryAfter <= 0 {
		t.Errorf("quota rejection RetryAfter = %v, want > 0", d.RetryAfter)
	}
	if got := l.InFlight("a"); got != 2 {
		t.Errorf("InFlight = %d after quota rejection, want 2 (rejection must not leak)", got)
	}
	l.Release("a")
	// The bucket held 2 tokens, both consumed; quota rejections consumed
	// none, so after a tiny refill the freed slot admits again.
	clk.advance(10 * time.Millisecond)
	if d := l.Admit("a"); d.Err != nil {
		t.Fatalf("admit after Release rejected: %v", d.Err)
	}
	l.Release("a")
	l.Release("a")
	l.Release("a") // extra release must not underflow
	if got := l.InFlight("a"); got != 0 {
		t.Errorf("InFlight = %d after releases, want 0", got)
	}
}

// TestLimiterIsolation: one tenant's exhaustion never affects another's
// bucket or quota.
func TestLimiterIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := limiterFor(t, `{"tenants":[{"name":"a","rate":1,"burst":1},{"name":"b","rate":1,"burst":1}]}`, clk)
	if d := l.Admit("a"); d.Err != nil {
		t.Fatal(d.Err)
	}
	if d := l.Admit("a"); !errors.Is(d.Err, ErrThrottled) {
		t.Fatal("a not throttled")
	}
	if d := l.Admit("b"); d.Err != nil {
		t.Errorf("b throttled by a's exhaustion: %v", d.Err)
	}
}

// TestLimiterUnlimitedAndNil: a tenant without rate or quota always
// admits; a nil limiter admits everything at zero cost.
func TestLimiterUnlimitedAndNil(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := limiterFor(t, `{"tenants":[{"name":"free"}]}`, clk)
	for i := 0; i < 1000; i++ {
		if d := l.Admit("free"); d.Err != nil {
			t.Fatalf("unlimited tenant rejected at %d: %v", i, d.Err)
		}
	}
	var nilL *Limiter
	if d := nilL.Admit("anything"); d.Err != nil {
		t.Fatal("nil limiter rejected")
	}
	nilL.Release("anything")
	if got := nilL.InFlight("x"); got != 0 {
		t.Fatal("nil limiter tracked in-flight")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		nilL.Admit("x")
		nilL.Release("x")
	}); allocs != 0 {
		t.Errorf("nil limiter allocates %v per admit/release, want 0", allocs)
	}
}
