package local

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
)

// floodMachine learns the minimum ID in the graph by flooding; every node
// halts after diameter+1 rounds (computed pessimistically as N rounds).
type floodMachine struct {
	info NodeInfo
	min  uint64
}

func (m *floodMachine) Init(info NodeInfo) {
	m.info = info
	m.min = info.ID
}

func (m *floodMachine) Round(round int, recv []Message) ([]Message, bool) {
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		if v, ok := msg.(uint64); ok && v < m.min {
			m.min = v
		}
	}
	send := make([]Message, m.info.Degree())
	for i := range send {
		send[i] = m.min
	}
	return send, round >= m.info.N
}

func TestFloodFindsMinimum(t *testing.T) {
	g := graph.Cycle(9)
	machines := make([]*floodMachine, g.N())
	stats, err := Run(g, func(v int) Machine {
		machines[v] = &floodMachine{}
		return machines[v]
	}, Options{IDSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != g.N() {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, g.N())
	}
	want := machines[0].min
	for _, m := range machines {
		if m.info.ID < want {
			want = m.info.ID
		}
	}
	for v, m := range machines {
		if m.min != want {
			t.Fatalf("node %d learned min %d, want %d", v, m.min, want)
		}
	}
}

// bfsMachine computes distance from the node with the (known) source ID.
type bfsMachine struct {
	info     NodeInfo
	sourceID uint64
	dist     int
}

func (m *bfsMachine) Init(info NodeInfo) {
	m.info = info
	if info.ID == m.sourceID {
		m.dist = 0
	} else {
		m.dist = -1
	}
}

func (m *bfsMachine) Round(round int, recv []Message) ([]Message, bool) {
	if m.dist < 0 {
		for _, msg := range recv {
			if msg == nil {
				continue
			}
			if d, ok := msg.(int); ok {
				m.dist = d + 1
				break
			}
		}
	}
	send := make([]Message, m.info.Degree())
	// Announce own distance exactly once, in the round after learning it.
	if m.dist >= 0 && round == m.dist+1 {
		for i := range send {
			send[i] = m.dist
		}
	}
	return send, round >= m.info.N
}

func TestBFSDistances(t *testing.T) {
	g := graph.Grid(4, 5)
	var sourceID uint64
	// First construct to capture the ID of node 0: use sequential IDs.
	machines := make([]*bfsMachine, g.N())
	sourceID = 0
	_, err := Run(g, func(v int) Machine {
		machines[v] = &bfsMachine{sourceID: sourceID}
		return machines[v]
	}, Options{SequentialIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFS(0)
	for v, m := range machines {
		if m.dist != want[v] {
			t.Fatalf("node %d: distance %d, want %d", v, m.dist, want[v])
		}
	}
}

// countingMachine verifies Init/Round accounting and immediate halting.
type countingMachine struct {
	info   NodeInfo
	rounds int
	stop   int
}

func (m *countingMachine) Init(info NodeInfo) { m.info = info }

func (m *countingMachine) Round(round int, recv []Message) ([]Message, bool) {
	m.rounds++
	return nil, round >= m.stop
}

func TestHaltingAndRoundCount(t *testing.T) {
	g := graph.Path(4)
	machines := make([]*countingMachine, g.N())
	stats, err := Run(g, func(v int) Machine {
		machines[v] = &countingMachine{stop: v + 1} // node v halts after round v+1
		return machines[v]
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", stats.Rounds)
	}
	for v, m := range machines {
		if m.rounds != v+1 {
			t.Fatalf("node %d stepped %d times, want %d", v, m.rounds, v+1)
		}
	}
	if stats.MessagesSent != 0 {
		t.Fatalf("nil sends counted as messages: %d", stats.MessagesSent)
	}
}

func TestRoundLimit(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, func(v int) Machine {
		return &countingMachine{stop: 1 << 30}
	}, Options{MaxRounds: 10})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

// badSender sends the wrong number of messages.
type badSender struct{ deg int }

func (m *badSender) Init(info NodeInfo) { m.deg = info.Degree() }
func (m *badSender) Round(round int, recv []Message) ([]Message, bool) {
	return make([]Message, m.deg+1), true
}

func TestWrongMessageCountRejected(t *testing.T) {
	g := graph.Path(3)
	if _, err := Run(g, func(v int) Machine { return &badSender{} }, Options{}); err == nil {
		t.Fatal("expected error for wrong message slice length")
	}
}

// midRunFaulty behaves like a flood machine but sends one message too many
// in failRound (if fail is set); otherwise it halts after stopRound.
type midRunFaulty struct {
	deg       int
	fail      bool
	failRound int
	stopRound int
}

func (m *midRunFaulty) Init(info NodeInfo) { m.deg = info.Degree() }

func (m *midRunFaulty) Round(round int, recv []Message) ([]Message, bool) {
	if m.fail && round == m.failRound {
		return make([]Message, m.deg+1), false
	}
	send := make([]Message, m.deg)
	for i := range send {
		send[i] = round
	}
	return send, round >= m.stopRound
}

// TestWrongMessageCountPartialStats pins the error-path contract: when a
// machine sends the wrong number of messages mid-round, Run reports the
// lowest offending node and returns well-defined partial Stats — the
// failing round's compute is counted in Rounds and Steps, but none of its
// messages are delivered or counted.
func TestWrongMessageCountPartialStats(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		g := graph.Cycle(5)
		stats, err := Run(g, func(v int) Machine {
			// Nodes 2 and 4 both misbehave in round 2; node 2 must win the
			// blame regardless of the worker count.
			return &midRunFaulty{fail: v == 2 || v == 4, failRound: 2, stopRound: 4}
		}, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "node 2 sent 3 messages") {
			t.Fatalf("workers=%d: error %q does not blame the lowest offender", workers, err)
		}
		if stats.Rounds != 2 {
			t.Fatalf("workers=%d: Rounds = %d, want 2 (failing round included)", workers, stats.Rounds)
		}
		if stats.Steps != 10 {
			t.Fatalf("workers=%d: Steps = %d, want 10 (both rounds' compute)", workers, stats.Steps)
		}
		// Round 1 delivered 2 messages per node; round 2 delivered nothing.
		if stats.MessagesSent != 10 {
			t.Fatalf("workers=%d: MessagesSent = %d, want 10 (failing round excluded)", workers, stats.MessagesSent)
		}
	}
}

// TestRunDeterministicAcrossWorkers checks the engine's determinism
// guarantee end to end: identical machine results and identical Stats for
// every worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]uint64, Stats) {
		g := graph.Torus(6, 6)
		machines := make([]*floodMachine, g.N())
		stats, err := Run(g, func(v int) Machine {
			machines[v] = &floodMachine{}
			return machines[v]
		}, Options{IDSeed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		mins := make([]uint64, len(machines))
		for v, m := range machines {
			mins[v] = m.min
		}
		return mins, stats
	}
	wantMins, wantStats := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		mins, stats := run(workers)
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		for v := range mins {
			if mins[v] != wantMins[v] {
				t.Fatalf("workers=%d: node %d min %d, want %d", workers, v, mins[v], wantMins[v])
			}
		}
	}
}

// TestOnRoundStats checks the per-round observer: rounds arrive in order,
// per-round sums match the totals, and Active falls to zero.
func TestOnRoundStats(t *testing.T) {
	g := graph.Cycle(6)
	var rounds []engine.RoundStats
	stats, err := Run(g, func(v int) Machine { return &floodMachine{} },
		Options{OnRound: func(rs engine.RoundStats) { rounds = append(rounds, rs) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != stats.Rounds {
		t.Fatalf("observed %d rounds, want %d", len(rounds), stats.Rounds)
	}
	steps, msgs := 0, 0
	for i, rs := range rounds {
		if rs.Round != i+1 {
			t.Fatalf("round %d reported as %d", i+1, rs.Round)
		}
		steps += rs.Steps
		msgs += rs.Messages
	}
	if steps != stats.Steps {
		t.Fatalf("per-round steps sum %d, Stats.Steps %d", steps, stats.Steps)
	}
	if msgs != stats.MessagesSent {
		t.Fatalf("per-round messages sum %d, Stats.MessagesSent %d", msgs, stats.MessagesSent)
	}
	if last := rounds[len(rounds)-1]; last.Active != 0 {
		t.Fatalf("final round leaves %d machines active", last.Active)
	}
}

func TestMessageStats(t *testing.T) {
	g := graph.Cycle(5)
	stats, err := Run(g, func(v int) Machine { return &floodMachine{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every node sends 2 messages per round for N rounds.
	want := 5 * 2 * stats.Rounds
	if stats.MessagesSent != want {
		t.Fatalf("messages = %d, want %d", stats.MessagesSent, want)
	}
}

func TestIDsAreUniqueAndDeterministic(t *testing.T) {
	g := graph.Complete(20)
	collect := func(seed uint64) []uint64 {
		var ids []uint64
		_, err := Run(g, func(v int) Machine {
			m := &floodMachine{}
			return &captureID{inner: m, out: &ids}
		}, Options{IDSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a := collect(7)
	b := collect(7)
	c := collect(8)
	seen := make(map[uint64]bool)
	for _, id := range a {
		if seen[id] {
			t.Fatal("duplicate ID")
		}
		seen[id] = true
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different IDs")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical IDs")
	}
}

// captureID records the ID given at Init, then delegates.
type captureID struct {
	inner Machine
	out   *[]uint64
}

func (c *captureID) Init(info NodeInfo) {
	*c.out = append(*c.out, info.ID)
	c.inner.Init(info)
}

func (c *captureID) Round(round int, recv []Message) ([]Message, bool) {
	return c.inner.Round(round, recv)
}

func TestNodeInfoContents(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	var infos []NodeInfo
	_, err := Run(g, func(v int) Machine {
		return &infoGrabber{out: &infos}
	}, Options{SequentialIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("got %d infos", len(infos))
	}
	mid := infos[1]
	if mid.Degree() != 2 || mid.N != 3 || mid.MaxDegree != 2 {
		t.Fatalf("middle node info wrong: %+v", mid)
	}
	if mid.NeighborIDs[0] != 0 || mid.NeighborIDs[1] != 2 {
		t.Fatalf("neighbor IDs wrong: %v", mid.NeighborIDs)
	}
}

type infoGrabber struct{ out *[]NodeInfo }

func (g *infoGrabber) Init(info NodeInfo)                     { *g.out = append(*g.out, info) }
func (g *infoGrabber) Round(int, []Message) ([]Message, bool) { return nil, true }

// concurrencyProbe checks machines actually run concurrently within a round
// (all Round calls of one round overlap a shared barrier counter).
type concurrencyProbe struct {
	deg     int
	active  *atomic.Int32
	maxSeen *atomic.Int32
}

func (m *concurrencyProbe) Init(info NodeInfo) { m.deg = info.Degree() }

func (m *concurrencyProbe) Round(round int, recv []Message) ([]Message, bool) {
	cur := m.active.Add(1)
	for {
		prev := m.maxSeen.Load()
		if cur <= prev || m.maxSeen.CompareAndSwap(prev, cur) {
			break
		}
	}
	// Busy-wait a moment so rounds overlap.
	for i := 0; i < 1000; i++ {
		_ = i
	}
	m.active.Add(-1)
	return nil, true
}

func TestMachinesRunConcurrently(t *testing.T) {
	g := graph.Complete(8)
	var active, maxSeen atomic.Int32
	_, err := Run(g, func(v int) Machine {
		return &concurrencyProbe{active: &active, maxSeen: &maxSeen}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() < 2 {
		t.Skip("no overlap observed (single-core scheduling); not a failure")
	}
}

func BenchmarkRunFlood(b *testing.B) {
	g := graph.Torus(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, func(v int) Machine { return &floodMachine{} }, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPresetIDs(t *testing.T) {
	g := graph.Path(3)
	var got []uint64
	_, err := Run(g, func(v int) Machine {
		return &captureID{inner: &floodMachine{}, out: &got}
	}, Options{PresetIDs: []uint64{42, 7, 99}})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{42, 7, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestPresetIDsPanics(t *testing.T) {
	g := graph.Path(2)
	t.Run("wrong length", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		_, _ = Run(g, func(v int) Machine { return &floodMachine{} },
			Options{PresetIDs: []uint64{1}})
	})
	t.Run("duplicate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		_, _ = Run(g, func(v int) Machine { return &floodMachine{} },
			Options{PresetIDs: []uint64{5, 5}})
	})
}

func TestIDSpaceFloor(t *testing.T) {
	if got := IDSpace(2); got != 1024 {
		t.Fatalf("IDSpace(2) = %d, want floor 1024", got)
	}
	if got := IDSpace(100); got != 1000000 {
		t.Fatalf("IDSpace(100) = %d", got)
	}
}
