package batch

import "repro/internal/model"

// Packed is a set of disjoint LLL instances laid out in one global event
// index space: instance k owns the contiguous range
// [EventOffsets()[k], EventOffsets()[k+1]). The packed runners shard scans
// over the TOTAL range, so instances far smaller than a shard share
// dispatches instead of paying one each. Packed is immutable after Pack.
type Packed struct {
	insts    []*model.Instance
	eventOff []int // len(insts)+1, cumulative event offsets
	varOff   []int // len(insts)+1, cumulative variable offsets
}

// Pack lays the given instances out in one global index space. The
// instances stay disjoint — no events or variables are merged, each keeps
// its own local identifiers — Pack only computes the offset remapping the
// packed runners use to address the union.
func Pack(insts []*model.Instance) *Packed {
	p := &Packed{
		insts:    append([]*model.Instance(nil), insts...),
		eventOff: make([]int, len(insts)+1),
		varOff:   make([]int, len(insts)+1),
	}
	for k, inst := range p.insts {
		p.eventOff[k+1] = p.eventOff[k] + inst.NumEvents()
		p.varOff[k+1] = p.varOff[k] + inst.NumVars()
	}
	return p
}

// Len returns the number of packed instances.
func (p *Packed) Len() int { return len(p.insts) }

// Instance returns packed instance k.
func (p *Packed) Instance(k int) *model.Instance { return p.insts[k] }

// EventOffsets returns the cumulative event layout (length Len()+1, starts
// at 0). The slice is shared; callers must not modify it.
func (p *Packed) EventOffsets() []int { return p.eventOff }

// TotalEvents returns the number of events across all packed instances.
func (p *Packed) TotalEvents() int { return p.eventOff[len(p.eventOff)-1] }

// TotalVars returns the number of variables across all packed instances.
func (p *Packed) TotalVars() int { return p.varOff[len(p.varOff)-1] }
