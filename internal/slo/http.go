package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
)

// Handler returns the /slo endpoint: the evaluated Status as indented JSON
// by default, or Prometheus text exposition (with OpenMetrics-style
// exemplars on the latency buckets) when the request asks for it via
// ?format=prom or an Accept header preferring text/plain. A nil engine
// serves an empty Status, so the endpoint is mountable unconditionally.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := e.Status()
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writeProm(w, st)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// writeProm renders the status in the Prometheus text format. Exemplars use
// the OpenMetrics syntax (`... # {trace_id="..."} value timestamp`), which
// Prometheus scrapes when exemplar storage is on and plain-text consumers
// can strip at the '#'.
func writeProm(w http.ResponseWriter, st Status) {
	var b strings.Builder
	b.WriteString("# TYPE slo_fast_burn gauge\n")
	fmt.Fprintf(&b, "slo_fast_burn %d\n", b2i(st.FastBurn))
	for _, o := range st.Objectives {
		fmt.Fprintf(&b, "# TYPE slo_burn_rate gauge\n")
		fmt.Fprintf(&b, "slo_burn_rate{objective=%q,window=\"short\"} %v\n", o.Name, o.BurnShort)
		fmt.Fprintf(&b, "slo_burn_rate{objective=%q,window=\"long\"} %v\n", o.Name, o.BurnLong)
		fmt.Fprintf(&b, "# TYPE slo_objective_fast_burn gauge\n")
		fmt.Fprintf(&b, "slo_objective_fast_burn{objective=%q} %d\n", o.Name, b2i(o.FastBurn))
		fmt.Fprintf(&b, "# TYPE slo_events_total counter\n")
		fmt.Fprintf(&b, "slo_events_total{objective=%q,outcome=\"good\"} %d\n", o.Name, o.Good)
		fmt.Fprintf(&b, "slo_events_total{objective=%q,outcome=\"bad\"} %d\n", o.Name, o.Bad)
		if o.Kind != Latency.String() {
			continue
		}
		// Sliding-window histogram with per-bucket exemplars.
		name := "slo_" + o.Name + "_seconds"
		exByBound := make(map[float64]Exemplar, len(o.Exemplars))
		for _, ex := range o.Exemplars {
			exByBound[float64(ex.Bound)] = ex
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for i, bound := range o.Bounds {
			fmt.Fprintf(&b, "%s_bucket{le=\"%v\"} %d", name, bound, o.Buckets[i])
			writeExemplar(&b, exByBound[bound])
		}
		var infCount int64
		if n := len(o.Buckets); n > 0 {
			infCount = o.Buckets[n-1]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d", name, infCount)
		writeExemplar(&b, exByBound[math.Inf(1)])
		fmt.Fprintf(&b, "%s_count %d\n", name, infCount)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s{quantile=\"0.5\"} %v\n", name+"_quantile", name+"_quantile", promFloat(float64(o.P50)))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %v\n", name+"_quantile", promFloat(float64(o.P99)))
	}
	_, _ = w.Write([]byte(b.String()))
}

// writeExemplar terminates a bucket line, appending the exemplar when one
// exists.
func writeExemplar(b *strings.Builder, ex Exemplar) {
	if ex.Trace == "" {
		b.WriteByte('\n')
		return
	}
	fmt.Fprintf(b, " # {trace_id=%q} %v\n", ex.Trace, ex.Value)
}

func promFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%v", f)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
