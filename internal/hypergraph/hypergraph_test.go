package hypergraph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
)

func TestBuilderValidates(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(); !errors.Is(err, ErrEmptyEdge) {
		t.Fatalf("empty edge error = %v", err)
	}
	if err := b.AddEdge(0, 4); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range error = %v", err)
	}
	if err := b.AddEdge(1, 2, 1); !errors.Is(err, ErrDuplicateMember) {
		t.Fatalf("duplicate member error = %v", err)
	}
	if err := b.AddEdge(2, 0, 3); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	b := NewBuilder(5)
	for _, e := range [][]int{{0, 1, 2}, {2, 3}, {3, 4, 0}, {1}} {
		if err := b.AddEdge(e...); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	if h.N() != 5 || h.M() != 4 {
		t.Fatalf("N=%d M=%d", h.N(), h.M())
	}
	if h.Rank() != 3 {
		t.Fatalf("Rank = %d", h.Rank())
	}
	if got := h.Edge(0); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Edge(0) = %v", got)
	}
	if h.Degree(0) != 2 || h.Degree(1) != 2 || h.Degree(4) != 1 {
		t.Fatal("degrees wrong")
	}
	if h.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", h.MaxDegree())
	}
	if !h.Contains(0, 1) || h.Contains(1, 0) {
		t.Fatal("Contains wrong")
	}
	inc := h.Incident(2)
	if len(inc) != 2 || inc[0] != 0 || inc[1] != 1 {
		t.Fatalf("Incident(2) = %v", inc)
	}
}

func TestEdgeCopyIsFresh(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	c := h.EdgeCopy(0)
	c[0] = 99
	if h.Edge(0)[0] == 99 {
		t.Fatal("EdgeCopy leaked internal slice")
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(0, 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	if h.M() != 3 || h.Degree(0) != 3 {
		t.Fatal("parallel hyperedges not preserved")
	}
	// Dependency graph collapses them into a triangle.
	dg := h.DependencyGraph()
	if dg.M() != 3 {
		t.Fatalf("dependency graph has %d edges, want 3", dg.M())
	}
}

func TestDependencyGraphRank2(t *testing.T) {
	g := graph.Cycle(6)
	h := FromGraph(g)
	if h.Rank() != 2 || h.M() != 6 {
		t.Fatalf("FromGraph: rank=%d M=%d", h.Rank(), h.M())
	}
	dg := h.DependencyGraph()
	if dg.M() != g.M() {
		t.Fatalf("dependency graph edges = %d, want %d", dg.M(), g.M())
	}
	for _, e := range g.Edges() {
		if !dg.HasEdge(e.U, e.V) {
			t.Fatalf("dependency graph missing %v", e)
		}
	}
}

func TestDependencyGraphRank3(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	dg := b.Build().DependencyGraph()
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	if dg.M() != len(want) {
		t.Fatalf("dependency graph has %d edges, want %d", dg.M(), len(want))
	}
	for _, e := range want {
		if !dg.HasEdge(e[0], e[1]) {
			t.Fatalf("missing dependency edge %v", e)
		}
	}
	if dg.HasEdge(0, 3) {
		t.Fatal("0 and 3 share no variable but are adjacent")
	}
}

func TestDependencyDegreeBound(t *testing.T) {
	// A node of hypergraph degree delta in a rank-3 hypergraph has
	// dependency degree at most 2*delta.
	r := prng.New(3)
	h, err := RandomRegularRank3(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if d := h.DependencyDegree(); d > 8 {
		t.Fatalf("dependency degree %d exceeds 2*delta = 8", d)
	}
}

func TestRandomRegularRank3(t *testing.T) {
	r := prng.New(5)
	tests := []struct{ n, deg int }{{9, 1}, {12, 2}, {30, 3}, {21, 4}, {60, 5}}
	for _, tt := range tests {
		h, err := RandomRegularRank3(tt.n, tt.deg, r)
		if err != nil {
			t.Fatalf("RandomRegularRank3(%d,%d): %v", tt.n, tt.deg, err)
		}
		for v := 0; v < h.N(); v++ {
			if h.Degree(v) != tt.deg {
				t.Fatalf("(%d,%d): node %d degree %d", tt.n, tt.deg, v, h.Degree(v))
			}
		}
		if h.Rank() != 3 {
			t.Fatalf("(%d,%d): rank %d", tt.n, tt.deg, h.Rank())
		}
	}
}

func TestRandomRegularRank3RejectsBadParams(t *testing.T) {
	r := prng.New(7)
	if _, err := RandomRegularRank3(10, 1, r); err == nil {
		t.Fatal("n*deg not divisible by 3 should fail")
	}
	if _, err := RandomRegularRank3(2, 3, r); err == nil {
		t.Fatal("n < 3 should fail")
	}
}

func TestRandomRank3Bounds(t *testing.T) {
	r := prng.New(9)
	h := RandomRank3(40, 50, 4, r)
	if h.Rank() > 3 {
		t.Fatalf("rank %d", h.Rank())
	}
	if h.MaxDegree() > 4 {
		t.Fatalf("degree %d exceeds bound", h.MaxDegree())
	}
	if h.M() == 0 {
		t.Fatal("no hyperedges generated")
	}
}

func TestTriangleCover(t *testing.T) {
	h := TriangleCover(graph.Complete(4))
	if h.M() != 4 {
		t.Fatalf("K4 has %d triangles, want 4", h.M())
	}
	// Triangle-free graph: no hyperedges.
	if TriangleCover(graph.Cycle(5)).M() != 0 {
		t.Fatal("C5 has no triangles")
	}
}

func TestQuickDependencyGraphSymmetric(t *testing.T) {
	// Every pair inside any hyperedge must be adjacent in the dependency graph.
	f := func(seed uint32) bool {
		r := prng.New(uint64(seed))
		h := RandomRank3(20, 25, 4, r)
		dg := h.DependencyGraph()
		for id := 0; id < h.M(); id++ {
			m := h.Edge(id)
			for i := 0; i < len(m); i++ {
				for j := i + 1; j < len(m); j++ {
					if !dg.HasEdge(m[i], m[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDependencyGraph(b *testing.B) {
	r := prng.New(1)
	h, err := RandomRegularRank3(300, 4, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.DependencyGraph()
	}
}

func TestRandomMixedRank(t *testing.T) {
	r := prng.New(13)
	h, err := RandomMixedRank(30, 25, 4, 2, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() == 0 {
		t.Fatal("no hyperedges generated")
	}
	if h.MaxDegree() > 4 {
		t.Fatalf("degree %d exceeds bound", h.MaxDegree())
	}
	saw2, saw3 := false, false
	for id := 0; id < h.M(); id++ {
		switch len(h.Edge(id)) {
		case 2:
			saw2 = true
		case 3:
			saw3 = true
		default:
			t.Fatalf("hyperedge %d has size %d", id, len(h.Edge(id)))
		}
	}
	if !saw2 || !saw3 {
		t.Fatalf("sizes not mixed: saw2=%v saw3=%v", saw2, saw3)
	}
	if _, err := RandomMixedRank(5, 3, 2, 1, 3, r); err == nil {
		t.Fatal("minSize 1 accepted")
	}
	if _, err := RandomMixedRank(5, 3, 2, 3, 2, r); err == nil {
		t.Fatal("inverted size range accepted")
	}
}

func TestRandomRegularUniformRank4(t *testing.T) {
	r := prng.New(17)
	h, err := RandomRegularUniform(20, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank() != 4 {
		t.Fatalf("rank = %d", h.Rank())
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) != 2 {
			t.Fatalf("node %d degree %d", v, h.Degree(v))
		}
	}
	if _, err := RandomRegularUniform(10, 1, 4, r); err == nil {
		t.Fatal("n*deg not divisible by k accepted")
	}
	if _, err := RandomRegularUniform(3, 2, 1, r); err == nil {
		t.Fatal("rank 1 accepted")
	}
}

func TestHypergraphDOT(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	s := b.Build().DOT("h")
	for _, want := range []string{"graph h {", "n0 [shape=circle]", "e0 [shape=box]", "n2 -- e0;"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT missing %q:\n%s", want, s)
		}
	}
}
