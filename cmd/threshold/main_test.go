package main

import "testing"

func TestParseMargins(t *testing.T) {
	got, err := parseMargins("0.5, 0.9,1.0")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.9, 1.0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseMarginsErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "0", "-0.5", "1.5", "0.5,,0.9"} {
		if _, err := parseMargins(in); err == nil {
			t.Errorf("parseMargins(%q) accepted", in)
		}
	}
}
