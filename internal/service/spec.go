package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/spec"
	"repro/internal/tenant"
)

// Families accepted by JobSpec.Family. "inline" takes the instance from
// JobSpec.Instance (the internal/spec JSON format) instead of a generator.
const (
	FamilySinkless  = "sinkless"
	FamilyHyper     = "hyper"
	FamilyOrient3   = "orient3"
	FamilyWeakSplit = "weaksplit"
	FamilyInline    = "inline"
)

// Algorithms accepted by JobSpec.Algorithm.
const (
	// AlgSeq is the paper's sequential deterministic fixer
	// (Theorems 1.1 / 1.3).
	AlgSeq = "seq"
	// AlgDist is the distributed deterministic fixer (Corollaries 1.2 /
	// 1.4), run on the LOCAL simulator; it emits one "round" event per
	// LOCAL round.
	AlgDist = "dist"
	// AlgMTSeq / AlgMTPar are the sequential and parallel Moser-Tardos
	// resamplers; the parallel variant emits one "round" event per
	// resampling round.
	AlgMTSeq = "mtseq"
	AlgMTPar = "mtpar"
	// AlgMTDist is the LOCAL-model Moser-Tardos resampler; it emits one
	// "round" event per LOCAL round.
	AlgMTDist = "mtdist"
	// AlgOneShot draws a single random sample and counts violated events —
	// a cheap job useful for load testing.
	AlgOneShot = "oneshot"
)

// maxN bounds the instance size a single job may request, protecting the
// daemon's memory against oversized submissions.
const maxN = 2_000_000

// JobSpec is the wire format of POST /v1/jobs: which instance to build and
// which algorithm to run on it. Zero fields take the defaults documented
// per field.
type JobSpec struct {
	// Family selects the instance source: sinkless | hyper | orient3 |
	// weaksplit | inline (default sinkless).
	Family string `json:"family,omitempty"`
	// N is the node count of the generated instance (default 64).
	N int `json:"n,omitempty"`
	// Degree is the graph degree (sinkless; 2 = cycle, default) or the
	// hypergraph degree (hyper, orient3; default 3).
	Degree int `json:"degree,omitempty"`
	// Margin is the sinkless criterion margin p·2^d (default 0.9;
	// 1 = exact threshold).
	Margin float64 `json:"margin,omitempty"`
	// Slack is the hyper-sinkless relaxation slack (default 0.4).
	Slack float64 `json:"slack,omitempty"`
	// Colors is the weak-splitting palette size (default 16).
	Colors int `json:"colors,omitempty"`
	// Seed feeds the generators, LOCAL identifiers and resamplers
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Instance carries an inline instance in the internal/spec JSON format
	// (family "inline" only).
	Instance json.RawMessage `json:"instance,omitempty"`

	// Tenant is the tenant this job is accounted to for weighted-fair
	// scheduling, rate limits and quotas (see internal/tenant). Empty maps
	// to the "default" tenant; the HTTP layer also fills it from the
	// X-Tenant request header. 1–32 characters from [a-zA-Z0-9_-]. With
	// tenancy disabled the label is validated but has no effect.
	Tenant string `json:"tenant,omitempty"`

	// Algorithm: seq | dist | mtseq | mtpar | mtdist | oneshot
	// (default dist).
	Algorithm string `json:"algorithm,omitempty"`
	// Workers is the engine worker count for LOCAL/parallel algorithms;
	// 0 uses the service's per-job cap on the shared pool. Results are
	// bit-identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// MaxRounds caps LOCAL rounds (dist, mtdist) or parallel resampling
	// rounds (mtpar); 0 means the library default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// MaxResamplings caps mtseq resamplings; 0 means the library default.
	MaxResamplings int `json:"max_resamplings,omitempty"`
	// MaxIters caps mtdist resampling iterations; 0 means the library
	// default (200).
	MaxIters int `json:"max_iters,omitempty"`
	// TimeoutMS is a per-attempt wall-clock deadline enforced through the
	// run context; 0 means no deadline. An attempt that exceeds it fails
	// with context.DeadlineExceeded and a Partial result — and is retried
	// when the job has retry budget, resuming from the last checkpoint.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// MaxRetries is the number of times a failed attempt is re-admitted
	// (with exponential backoff) before the job goes terminal, capped at 16;
	// 0 uses the service default. Cancellation is never retried.
	MaxRetries int `json:"max_retries,omitempty"`
	// CheckpointEvery snapshots the run state every that many resamplings
	// (mtseq), rounds (mtpar) or fixes (seq) into the job record, so a
	// retried attempt resumes instead of restarting; 0 disables
	// checkpointing. Checkpoint capture never changes the result.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// FaultPanicRate / FaultDropRate / FaultCrashRate inject faults into
	// this job's run (see fault.Plan); they merge with the daemon-wide plan
	// by taking the maximum rate. FaultSeed keys the injection decisions;
	// 0 falls back to the daemon seed, then to Seed.
	FaultPanicRate float64 `json:"fault_panic_rate,omitempty"`
	FaultDropRate  float64 `json:"fault_drop_rate,omitempty"`
	FaultCrashRate float64 `json:"fault_crash_rate,omitempty"`
	FaultSeed      uint64  `json:"fault_seed,omitempty"`

	// TraceID, when set, overrides the trace minted at admission, so a job
	// migrated from another node keeps its original request trace end to
	// end: the JSONL trace logs of both nodes and every NDJSON event carry
	// one continuous ID. Must be empty or 1–64 URL-safe characters.
	TraceID string `json:"trace_id,omitempty"`
	// Resume seeds the job record with a checkpoint captured elsewhere
	// (another process, another node): the first attempt resumes from it
	// exactly as a local retry would, and — per the checkpoint contract —
	// finishes bit-identically to the uninterrupted run. The checkpoint's
	// algorithm tag must match the runtime or the run fails on restore.
	Resume *fault.Checkpoint `json:"resume,omitempty"`
	// ExportCheckpoints mirrors every saved checkpoint into the job's
	// NDJSON event stream as "checkpoint" events (carrying the full
	// serialized snapshot), so a router following the stream can capture
	// the latest one and migrate the job to a surviving node. Requires
	// CheckpointEvery > 0 to have any effect.
	ExportCheckpoints bool `json:"export_checkpoints,omitempty"`
	// PlacementKey overrides the spec-derived consistent-hash placement key
	// (see PlacementKeyFor); 0 means derive. Routers use it to pin related
	// jobs to one node.
	PlacementKey uint64 `json:"placement_key,omitempty"`

	// Cache opts this job into the service's canonical result cache: a
	// completed Summary is stored under the instance's canonical hash
	// (combined with algorithm, seed and budgets) and an identical later
	// job is served the bit-identical cached result instead of re-solving.
	// Concurrent identical cache-enabled jobs are collapsed single-flight.
	// Jobs with fault injection are never cached.
	Cache bool `json:"cache,omitempty"`
	// BatchGroup is an opaque client label carried on the job (and echoed
	// in views and trace events) to correlate related batch submissions;
	// it has no behavioral effect.
	BatchGroup string `json:"batch_group,omitempty"`
	// Batch turns the job into a multi-instance batch: every entry is a
	// full JobSpec (nested batches are rejected) and the job runs them all,
	// packing instances that share an algorithm into single engine runs
	// (see internal/batch). The top-level instance/algorithm fields are
	// ignored; Workers, TimeoutMS, retry and fault fields still apply to
	// the batch job as a whole, and Cache applies per instance. Results
	// arrive in Summary.Instances, and the event stream is multiplexed by
	// the 1-based Event.Instance id.
	Batch []JobSpec `json:"batch,omitempty"`
}

// maxBatch bounds the instances of one batch job; combined with maxN per
// instance this caps a batch job's memory.
const maxBatch = 1024

// faultPlan assembles the spec's own injection plan.
func (s JobSpec) faultPlan() fault.Plan {
	return fault.Plan{
		Seed:      s.FaultSeed,
		PanicRate: s.FaultPanicRate,
		DropRate:  s.FaultDropRate,
		CrashRate: s.FaultCrashRate,
	}
}

// withDefaults validates the spec and fills defaulted fields, returning the
// normalized copy. It performs only cheap static checks — generator errors
// (e.g. no simple regular graph for the parameters) surface when the job
// runs and fail it.
func (s JobSpec) withDefaults() (JobSpec, error) {
	if len(s.Batch) > maxBatch {
		return s, fmt.Errorf("batch of %d instances exceeds the cap of %d", len(s.Batch), maxBatch)
	}
	if len(s.Batch) > 0 {
		total := 0
		subs := make([]JobSpec, len(s.Batch))
		for i, sub := range s.Batch {
			if len(sub.Batch) > 0 {
				return s, fmt.Errorf("batch instance %d: nested batches are not allowed", i)
			}
			sub.Cache = sub.Cache || s.Cache
			norm, err := sub.withDefaults()
			if err != nil {
				return s, fmt.Errorf("batch instance %d: %w", i, err)
			}
			total += norm.N
			subs[i] = norm
		}
		if total > maxN {
			return s, fmt.Errorf("batch requests %d total nodes, cap is %d", total, maxN)
		}
		s.Batch = subs
	}
	if s.Family == "" {
		s.Family = FamilySinkless
	}
	if s.Algorithm == "" {
		s.Algorithm = AlgDist
	}
	if s.N == 0 {
		s.N = 64
	}
	if s.Margin == 0 {
		s.Margin = 0.9
	}
	if s.Slack == 0 {
		s.Slack = 0.4
	}
	if s.Colors == 0 {
		s.Colors = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Family {
	case FamilySinkless:
		if s.Degree == 0 {
			s.Degree = 2
		}
	case FamilyHyper, FamilyOrient3:
		if s.Degree == 0 {
			s.Degree = 3
		}
		if (s.N*s.Degree)%3 != 0 {
			return s, fmt.Errorf("family %q: n*degree = %d*%d must be divisible by 3", s.Family, s.N, s.Degree)
		}
	case FamilyWeakSplit:
	case FamilyInline:
		if len(bytes.TrimSpace(s.Instance)) == 0 {
			return s, fmt.Errorf(`family "inline" requires the "instance" field`)
		}
	default:
		return s, fmt.Errorf("unknown family %q", s.Family)
	}
	switch s.Algorithm {
	case AlgSeq, AlgDist, AlgMTSeq, AlgMTPar, AlgMTDist, AlgOneShot:
	default:
		return s, fmt.Errorf("unknown algorithm %q", s.Algorithm)
	}
	if s.N < 0 || s.N > maxN {
		return s, fmt.Errorf("n = %d out of range [1, %d]", s.N, maxN)
	}
	if s.Degree < 0 {
		return s, fmt.Errorf("degree = %d must be non-negative", s.Degree)
	}
	if s.Family == FamilySinkless && s.Degree != 2 && s.Degree >= s.N {
		return s, fmt.Errorf("sinkless: degree = %d needs degree < n = %d", s.Degree, s.N)
	}
	if s.Margin < 0 || s.Slack < 0 || s.Colors < 0 {
		return s, fmt.Errorf("margin, slack and colors must be non-negative")
	}
	if s.Workers < 0 || s.MaxRounds < 0 || s.MaxResamplings < 0 || s.MaxIters < 0 || s.TimeoutMS < 0 {
		return s, fmt.Errorf("workers and the max_*/timeout_ms caps must be non-negative")
	}
	if s.MaxRetries < 0 || s.MaxRetries > 16 {
		return s, fmt.Errorf("max_retries = %d out of range [0, 16]", s.MaxRetries)
	}
	if s.CheckpointEvery < 0 {
		return s, fmt.Errorf("checkpoint_every = %d must be non-negative", s.CheckpointEvery)
	}
	if s.Tenant != "" {
		if err := tenant.ValidName(s.Tenant); err != nil {
			return s, err
		}
	}
	if len(s.TraceID) > 64 {
		return s, fmt.Errorf("trace_id longer than 64 characters")
	}
	for _, c := range s.TraceID {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
			return s, fmt.Errorf("trace_id contains non-URL-safe character %q", c)
		}
	}
	if s.Resume != nil {
		if want, ok := checkpointTag(s.Algorithm); !ok {
			return s, fmt.Errorf("algorithm %q does not support checkpoint resume", s.Algorithm)
		} else if s.Resume.Algorithm != "" && s.Resume.Algorithm != want {
			return s, fmt.Errorf("resume checkpoint was taken by %q, algorithm %q resumes from %q",
				s.Resume.Algorithm, s.Algorithm, want)
		}
	}
	if err := s.faultPlan().Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// checkpointTag maps a spec algorithm to the tag its runtime stamps on
// checkpoints, for Resume validation; ok is false for algorithms that
// cannot resume (the LOCAL-model runtimes and oneshot).
func checkpointTag(alg string) (string, bool) {
	switch alg {
	case AlgSeq:
		return core.CheckpointFix, true
	case AlgMTSeq:
		return mt.CheckpointSeq, true
	case AlgMTPar:
		return mt.CheckpointPar, true
	}
	return "", false
}

// PlacementKeyFor returns the consistent-hash placement key of a spec: the
// same spec-field fold the result cache uses, but WITHOUT the canonical
// instance hash — a router must place jobs in O(spec), never build the
// instance. Identical specs therefore always share a key (and a home
// node), while WL-isomorphic-but-differently-encoded submissions may land
// elsewhere and reach the warm entry through the peer cache-fill protocol
// instead. A non-zero JobSpec.PlacementKey wins; batch jobs fold their
// instances' keys so a resubmitted batch is placed with its cache entries.
func PlacementKeyFor(js JobSpec) (uint64, error) {
	js, err := js.withDefaults()
	if err != nil {
		return 0, err
	}
	if js.PlacementKey != 0 {
		return js.PlacementKey, nil
	}
	if len(js.Batch) > 0 {
		k := prng.Mix64(uint64(len(js.Batch)) ^ 0xba7c4)
		for _, sub := range js.Batch {
			k = prng.Mix64(k ^ cacheKey(sub, 0))
		}
		return k, nil
	}
	return cacheKey(js, 0), nil
}

// assignmentHash folds a complete final assignment into one uint64 — the
// cheap cross-process observable for "bit-identical result": a migrated
// job resumed on another node must report the same hash as the
// uninterrupted solo run. 0 for nil or partial assignments.
func assignmentHash(a *model.Assignment) uint64 {
	if a == nil || !a.Complete() {
		return 0
	}
	values, _ := a.Values()
	h := prng.Mix64(uint64(len(values)) ^ 0xa551)
	for _, v := range values {
		h = prng.Mix64(h ^ uint64(v))
	}
	return h
}

// buildInstance materializes the spec's instance (mirrors cmd/lllsolve).
func buildInstance(s JobSpec) (*model.Instance, error) {
	r := prng.New(s.Seed)
	switch s.Family {
	case FamilySinkless:
		var g *graph.Graph
		if s.Degree == 2 {
			g = graph.Cycle(s.N)
		} else {
			var err error
			g, err = graph.RandomRegular(s.N, s.Degree, r)
			if err != nil {
				return nil, err
			}
		}
		sk, err := apps.NewSinklessWithMargin(g, s.Margin)
		if err != nil {
			return nil, err
		}
		return sk.Instance, nil
	case FamilyHyper:
		h, err := hypergraph.RandomRegularRank3(s.N, s.Degree, r)
		if err != nil {
			return nil, err
		}
		hs, err := apps.NewHyperSinkless(h, s.Slack)
		if err != nil {
			return nil, err
		}
		return hs.Instance, nil
	case FamilyOrient3:
		h, err := hypergraph.RandomRegularRank3(s.N, s.Degree, r)
		if err != nil {
			return nil, err
		}
		t, err := apps.NewThreeOrientations(h)
		if err != nil {
			return nil, err
		}
		return t.Instance, nil
	case FamilyWeakSplit:
		adj, err := apps.RandomBiregular(s.N, 3, s.N, 3, r)
		if err != nil {
			return nil, err
		}
		w, err := apps.NewWeakSplitting(adj, s.N, s.Colors)
		if err != nil {
			return nil, err
		}
		return w.Instance, nil
	case FamilyInline:
		return spec.Load(bytes.NewReader(s.Instance))
	default:
		return nil, fmt.Errorf("unknown family %q", s.Family)
	}
}

// RunOptions carries the service-level configuration into RunSpec: the
// observability sinks, the per-job worker cap, and the daemon-wide
// fault-injection plan (merged with the job's own).
type RunOptions struct {
	Metrics    *obs.Registry
	Trace      *obs.Recorder
	MaxWorkers int
	Fault      fault.Plan
}

// RunSpec is the Service's default Runner: it builds the spec's instance
// and executes the chosen algorithm under ctx, emitting one "round" event
// per LOCAL/parallel round and returning the (possibly partial) Summary.
//
// The attempt wires the recovery machinery: when the spec requests
// checkpointing, the runtime's periodic snapshots flow into
// att.SaveCheckpoint and att.Checkpoint (from a previous attempt) resumes
// the run — seq, mtseq and mtpar support this; the LOCAL-model algorithms
// (dist, mtdist) hold their state per simulated node and always restart.
// Fault injection resolves as opts.Fault merged with the job's plan, seeded
// (in priority order) by the job's fault_seed, the daemon seed, or the
// job's own seed — then mixed with the attempt number, so every retry draws
// an independent fault pattern.
func RunSpec(ctx context.Context, js JobSpec, att Attempt, emit func(Event), opts RunOptions) (*Summary, error) {
	js, err := js.withDefaults()
	if err != nil {
		return nil, err
	}
	bsp, _ := opts.Trace.StartSpan(ctx, "build_instance")
	inst, err := buildInstance(js)
	bsp.End()
	if err != nil {
		return nil, fmt.Errorf("building instance: %w", err)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	// The run span wraps the algorithm execution; ctx carries it down so
	// the runtime's round / mt_iteration events parent to it.
	rsp, ctx := opts.Trace.StartSpan(ctx, "run")
	defer rsp.End()

	metrics, trace := opts.Metrics, opts.Trace
	sum := &Summary{
		Algorithm:      js.Algorithm,
		Family:         js.Family,
		NumEvents:      inst.NumEvents(),
		NumVars:        inst.NumVars(),
		ViolatedEvents: -1,
	}
	workers := js.Workers
	if opts.MaxWorkers > 0 && (workers == 0 || workers > opts.MaxWorkers) {
		workers = opts.MaxWorkers
	}
	plan := opts.Fault.Merge(js.faultPlan())
	if plan.Seed == 0 {
		plan.Seed = js.Seed
	}
	inj := fault.NewInjector(plan).Derive(uint64(att.Number))
	onRound := func(rs engine.RoundStats) {
		emit(Event{
			Kind:     "round",
			Round:    rs.Round,
			Steps:    rs.Steps,
			Messages: rs.Messages,
			Active:   rs.Active,
			Halted:   rs.Halted,
			Dropped:  rs.Dropped,
			Crashed:  rs.Crashed,
		})
	}
	lopts := local.Options{
		Ctx:       ctx,
		MaxRounds: js.MaxRounds,
		IDSeed:    js.Seed,
		Workers:   workers,
		OnRound:   onRound,
		Metrics:   metrics,
		Trace:     trace,
		Fault:     inj,
	}
	mtObs := mt.Observer{
		Metrics: metrics, Trace: trace, OnRound: onRound,
		CheckpointEvery: js.CheckpointEvery, OnCheckpoint: att.SaveCheckpoint, Resume: att.Checkpoint,
	}

	count := func(a *model.Assignment) error {
		if a == nil || !a.Complete() {
			return nil // cancelled before completion: count stays -1
		}
		sum.AssignmentHash = assignmentHash(a)
		v, err := inst.CountViolated(a)
		if err != nil {
			return err
		}
		sum.ViolatedEvents = v
		sum.Satisfied = v == 0
		return nil
	}

	switch js.Algorithm {
	case AlgSeq:
		res, rerr := core.FixSequentialCtx(ctx, inst, nil, core.Options{
			Metrics:         metrics,
			CheckpointEvery: js.CheckpointEvery,
			OnCheckpoint:    att.SaveCheckpoint,
			Resume:          att.Checkpoint,
		})
		if res != nil {
			sum.VarsFixed = res.Stats.VarsFixed
			if rerr == nil {
				sum.ViolatedEvents = res.Stats.FinalViolatedEvents
				sum.Satisfied = sum.ViolatedEvents == 0
				sum.AssignmentHash = assignmentHash(res.Assignment)
			}
		}
		return sum, rerr
	case AlgDist:
		var res *core.DistResult
		var rerr error
		if inst.Rank() <= 2 {
			res, rerr = core.FixDistributed2(inst, core.Options{Metrics: metrics}, lopts)
		} else {
			res, rerr = core.FixDistributed3(inst, core.Options{Metrics: metrics}, lopts)
		}
		if res != nil {
			sum.Rounds = res.TotalRounds
			sum.ColoringRounds = res.ColoringRounds
			sum.FixingRounds = res.FixingRounds
			sum.Classes = res.Classes
			sum.Messages = res.Messages
			sum.Steps = res.LocalStats.Steps
			if rerr == nil {
				sum.ViolatedEvents = res.ViolatedEvents
				sum.Satisfied = sum.ViolatedEvents == 0
				sum.AssignmentHash = assignmentHash(res.Assignment)
			}
		}
		return sum, rerr
	case AlgMTSeq:
		res, rerr := mt.SequentialCtx(ctx, inst, prng.New(js.Seed), js.MaxResamplings, mt.Observer{
			Metrics: metrics, Trace: trace,
			CheckpointEvery: js.CheckpointEvery, OnCheckpoint: att.SaveCheckpoint, Resume: att.Checkpoint,
		})
		if res != nil {
			sum.Resamplings = res.Resamplings
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgMTPar:
		res, rerr := mt.ParallelCtx(ctx, inst, prng.New(js.Seed), js.MaxRounds, mtObs)
		if res != nil {
			sum.Rounds = res.Rounds
			sum.Resamplings = res.Resamplings
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgMTDist:
		res, rerr := mt.Distributed(inst, js.Seed, js.MaxIters, lopts)
		if res != nil {
			sum.Rounds = res.Rounds
			sum.Iterations = res.Iterations
			sum.Resamplings = res.Resamplings
			sum.Messages = res.Messages
			sum.Steps = res.LocalStats.Steps
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgOneShot:
		a, violated, rerr := mt.OneShot(inst, prng.New(js.Seed))
		if rerr != nil {
			return sum, rerr
		}
		sum.ViolatedEvents = violated
		sum.Satisfied = violated == 0
		sum.AssignmentHash = assignmentHash(a)
		return sum, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", js.Algorithm)
	}
}
