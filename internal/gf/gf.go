// Package gf provides arithmetic in prime fields GF(q) and polynomial
// evaluation over them. It is the algebraic substrate of Linial's colour
// reduction (used by internal/coloring): colours are encoded as low-degree
// polynomials over a prime field, and the one-round reduction step relies on
// two distinct polynomials of degree < t agreeing on fewer than t points.
package gf

import "fmt"

// IsPrime reports whether n is prime, by trial division (the fields used by
// the colouring substrate are tiny, so this is plenty).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for f := 3; f*f <= n; f += 2 {
		if n%f == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	for {
		if IsPrime(n) {
			return n
		}
		n++
	}
}

// Field is the prime field GF(Q). Elements are represented as ints in
// [0, Q). The zero value is not usable; construct fields with New.
type Field struct {
	q int
}

// New returns GF(q). It panics if q is not prime: a composite modulus would
// silently break the agreement bound Linial's argument needs.
func New(q int) Field {
	if !IsPrime(q) {
		panic(fmt.Sprintf("gf: %d is not prime", q))
	}
	return Field{q: q}
}

// Q returns the field order.
func (f Field) Q() int { return f.q }

// Norm reduces an arbitrary int into [0, Q).
func (f Field) Norm(a int) int {
	a %= f.q
	if a < 0 {
		a += f.q
	}
	return a
}

// Add returns a + b in the field.
func (f Field) Add(a, b int) int { return (a + b) % f.q }

// Sub returns a - b in the field.
func (f Field) Sub(a, b int) int { return f.Norm(a - b) }

// Mul returns a · b in the field.
func (f Field) Mul(a, b int) int {
	return int((int64(a) * int64(b)) % int64(f.q))
}

// Pow returns a^e in the field, for e >= 0.
func (f Field) Pow(a, e int) int {
	if e < 0 {
		panic("gf: negative exponent")
	}
	result := 1 % f.q
	base := f.Norm(a)
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a. It panics on a ≡ 0.
func (f Field) Inv(a int) int {
	a = f.Norm(a)
	if a == 0 {
		panic("gf: inverse of zero")
	}
	// Fermat: a^(q-2).
	return f.Pow(a, f.q-2)
}

// Eval evaluates the polynomial with the given coefficients (coeffs[i] is
// the coefficient of x^i) at point x, using Horner's rule.
func (f Field) Eval(coeffs []int, x int) int {
	result := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		result = f.Add(f.Mul(result, x), f.Norm(coeffs[i]))
	}
	return result
}

// Digits decomposes v >= 0 into base-q digits, least significant first,
// padded/truncated to exactly t entries. It is how colours become
// polynomial coefficient vectors.
func Digits(v, q, t int) []int {
	out := make([]int, t)
	for i := 0; i < t && v > 0; i++ {
		out[i] = v % q
		v /= q
	}
	return out
}
