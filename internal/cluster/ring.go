// Package cluster is the multi-node layer of the llld serving stack: a
// consistent-hash ring with virtual nodes for cache-affine job placement,
// and a membership table that tracks the health and load of the nodes a
// router (or a peer node) talks to. It deliberately depends on nothing but
// the standard library and the repository's PRNG mixer, so both the
// service (peer cache fill) and the router (placement) can build on it
// without import cycles.
//
// Placement keys are uint64 hashes — the service's spec-identity fold or
// the canonical result-cache key — so two processes that agree on the key
// agree on the owner without any coordination: the ring is a pure function
// of the member names and the vnode count.
package cluster

import (
	"sort"

	"repro/internal/prng"
)

// DefaultVNodes is the virtual-node count per member when New is given
// vnodes <= 0: enough that a 3-node ring balances within a few percent,
// small enough that ring construction stays trivially cheap.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a set of named nodes.
// Construction sorts the vnode points once; lookups are a binary search.
// Safe for concurrent use.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into names
}

// NewRing builds the ring for the given node names with vnodes virtual
// nodes each (DefaultVNodes when vnodes <= 0). Names are deduplicated;
// order does not matter — the ring is a pure function of the name set and
// vnodes, so every process building it from the same membership agrees on
// every owner.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(names))
	var uniq []string
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{names: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, name := range uniq {
		h := hashString(name)
		for v := 0; v < vnodes; v++ {
			h = prng.Mix64(h ^ uint64(v+1))
			r.points = append(r.points, ringPoint{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hashString folds a name into the ring's hash space with the same Mix64
// chain the service's cache keys use, so the point distribution is uniform
// for arbitrary (short, structured) node names.
func hashString(s string) uint64 {
	h := prng.Mix64(uint64(len(s)) ^ 0x51a6)
	for _, c := range []byte(s) {
		h = prng.Mix64(h ^ uint64(c))
	}
	return h
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.names) }

// Owner returns the name of the node owning key: the first vnode point at
// or clockwise after the key's position. Empty string on an empty ring.
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.names[r.points[i].node]
}

// Prefer returns up to k distinct node names in the key's preference
// order: the owner first, then the distinct successors walking the ring
// clockwise. This is the fallback order a router uses when the home node
// is saturated or down — every process computes the same order.
func (r *Ring) Prefer(key uint64, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.names) {
		k = len(r.names)
	}
	out := make([]string, 0, k)
	seen := make(map[int]bool, k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		p := r.points[(i+n)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.names[p.node])
	}
	return out
}
