package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements distance-2 colouring NATIVELY in the LOCAL model:
// instead of running the vertex-colouring machine on a pre-built square
// graph (DistributedDistance2Coloring, which accounts the simulation with
// SimFactor = 2), the d2Machine realizes the 2-rounds-per-logical-round
// protocol explicitly — an A round broadcasting one's colour and a B round
// forwarding the received neighbour colours — so the reported round count
// is the honest cost on the original graph. The test suite cross-validates
// the two implementations.

// d2ColorMsg is the A-round payload: the sender's current colour.
type d2ColorMsg int

// d2MapMsg is the B-round payload: the sender's own (id, colour) plus the
// colours it heard from its neighbours in the A round.
type d2MapMsg map[uint64]int

// d2Machine runs Linial colour reduction + Kuhn-Wattenhofer halving against
// the colours of all nodes within distance 2.
type d2Machine struct {
	info     local.NodeInfo
	schedule []Step
	kwSched  []int
	finalK   int
	target   int
	color    int
	// heard accumulates the latest known colours of nodes within distance
	// two (excluding self), refreshed every A round.
	heard map[uint64]int
	err   error
}

func newD2Machine(k0, deltaSq, target int) *d2Machine {
	finalK := FinalPalette(k0, deltaSq)
	return &d2Machine{
		schedule: Schedule(k0, deltaSq),
		kwSched:  kwSchedule(finalK, target),
		finalK:   finalK,
		target:   target,
	}
}

func (m *d2Machine) Init(info local.NodeInfo) {
	m.info = info
	m.color = int(info.ID)
	m.heard = make(map[uint64]int)
}

// Logical steps: len(schedule) Linial reductions plus the Kuhn-Wattenhofer
// reduction rounds. Step t is applied in (odd) real round 2t+3; the final
// round is 2·steps+1.
func (m *d2Machine) logicalSteps() int {
	return len(m.schedule) + kwRounds(m.finalK, m.target)
}

func (m *d2Machine) totalRounds() int { return 2*m.logicalSteps() + 1 }

func (m *d2Machine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	if round%2 == 1 {
		// A round. Fold in the forwarded maps (sent in the previous B
		// round), then apply the due logical step and broadcast the colour.
		if round > 1 {
			for k := range m.heard {
				delete(m.heard, k)
			}
			for _, msg := range recv {
				if msg == nil {
					continue
				}
				mp, ok := msg.(d2MapMsg)
				if !ok {
					m.err = fmt.Errorf("coloring: unexpected B-round message %T", msg)
					return nil, true
				}
				for id, c := range mp {
					if id != m.info.ID {
						m.heard[id] = c
					}
				}
			}
			step := (round-3)/2 + 0 // logical step index applied this round
			neighborColors := make([]int, 0, len(m.heard))
			for _, c := range m.heard {
				neighborColors = append(neighborColors, c)
			}
			switch {
			case step < len(m.schedule):
				next, err := Reduce(m.schedule[step], m.color, neighborColors)
				if err != nil {
					m.err = err
					return nil, true
				}
				m.color = next
			default:
				j := (step - len(m.schedule)) % m.target
				next, ok := kwStep(m.target, j, m.color, neighborColors)
				if !ok {
					m.err = fmt.Errorf("coloring: no free colour below target %d", m.target)
					return nil, true
				}
				m.color = next
			}
		}
		send := make([]local.Message, m.info.Degree())
		for i := range send {
			send[i] = d2ColorMsg(m.color)
		}
		return send, round >= m.totalRounds()
	}

	// B round: forward the colours received in the A round, plus our own.
	mp := make(d2MapMsg, len(recv)+1)
	mp[m.info.ID] = m.color
	for i, msg := range recv {
		if msg == nil {
			continue
		}
		c, ok := msg.(d2ColorMsg)
		if !ok {
			m.err = fmt.Errorf("coloring: unexpected A-round message %T", msg)
			return nil, true
		}
		mp[m.info.NeighborIDs[i]] = int(c)
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = mp
	}
	return send, false
}

// DistributedDistance2Native computes a distance-2 colouring of g with at
// most Δ²+1 colours, running the explicit 2-rounds-per-step protocol on g
// itself (SimFactor 1: the round count is already native).
func DistributedDistance2Native(g *graph.Graph, opts local.Options) (*Result, error) {
	delta := g.MaxDegree()
	deltaSq := delta * delta
	target := deltaSq + 1
	k0 := int(local.IDSpace(g.N()))
	if opts.SequentialIDs {
		k0 = g.N()
	}
	if k0 < target {
		k0 = target
	}
	machines := make([]*d2Machine, g.N())
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = newD2Machine(k0, deltaSq, target)
		return machines[v]
	}, opts)
	if err != nil {
		return nil, err
	}
	colors := make([]int, g.N())
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("coloring: node %d failed: %w", v, m.err)
		}
		colors[v] = m.color
	}
	if err := VerifyDistance2(g, colors); err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   target,
		Rounds:    stats.Rounds,
		SimFactor: 1,
		Messages:  stats.MessagesSent,
	}, nil
}
