package srep

import "math"

// This file reproduces the deferred proof of Lemma 3.6 (appendix A): the
// closed-form first and second partial derivatives of
//
//	f(a, b) = 4 + ½(ab − 2a − 2b − √(ab(4−a)(4−b)))
//
// and the two leading principal minors of its Hessian, whose positivity (by
// Sylvester's criterion) establishes that f is convex on the open domain
// U' = {(a, b) : a, b > 0, a + b < 4}. The test suite cross-checks every
// formula against finite differences and verifies positivity on dense
// samples — a numeric replay of the appendix computation.

// rad returns the recurring radicand ab(4−a)(4−b), clamped at 0 to absorb
// float noise at the boundary.
func rad(a, b float64) float64 {
	s := a * b * (4 - a) * (4 - b)
	if s < 0 {
		return 0
	}
	return s
}

// FGradA returns ∂f/∂a at (a, b), defined on the open domain U'. The
// appendix form:
//
//	∂f/∂a = ½ (b − 2 − b(4−b)(4−2a) / (2√(ab(4−a)(4−b)))).
func FGradA(a, b float64) float64 {
	return 0.5 * (b - 2 - b*(4-b)*(4-2*a)/(2*math.Sqrt(rad(a, b))))
}

// FGradB returns ∂f/∂b at (a, b); f is symmetric, so it mirrors FGradA.
func FGradB(a, b float64) float64 {
	return FGradA(b, a)
}

// FHessAA returns ∂²f/∂a² at (a, b). The appendix simplifies it to
//
//	∂²f/∂a² = (2 / (a(4−a))) · √(b(4−b) / (a(4−a))),
//
// which is strictly positive on U' — the first leading principal minor.
func FHessAA(a, b float64) float64 {
	return 2 / (a * (4 - a)) * math.Sqrt(b*(4-b)/(a*(4-a)))
}

// FHessBB returns ∂²f/∂b² at (a, b) (by symmetry of f).
func FHessBB(a, b float64) float64 {
	return FHessAA(b, a)
}

// FHessAB returns the mixed derivative ∂²f/∂a∂b at (a, b). The appendix
// form:
//
//	∂²f/∂a∂b = ½ − (2−a)(2−b) / (2√(ab(4−a)(4−b))).
func FHessAB(a, b float64) float64 {
	return 0.5 - (2-a)*(2-b)/(2*math.Sqrt(rad(a, b)))
}

// HessianDet returns the determinant of the Hessian of f at (a, b) — the
// second leading principal minor. The appendix reduces it to the closed
// form
//
//	(16 − (½(√((4−a)(4−b)) − √(ab))² − 4)²) / (4ab(4−a)(4−b)),
//
// strictly positive on U' because 0 < (√((4−a)(4−b)) − √(ab))² < 16 there.
func HessianDet(a, b float64) float64 {
	inner := 0.5*sq(math.Sqrt((4-a)*(4-b))-math.Sqrt(a*b)) - 4
	return (16 - inner*inner) / (4 * rad(a, b))
}

func sq(x float64) float64 { return x * x }

// HessianPositiveDefinite reports whether the Hessian of f at (a, b) is
// positive definite by Sylvester's criterion (both leading principal minors
// strictly positive). Lemma 3.6 asserts this for every interior point.
func HessianPositiveDefinite(a, b float64) bool {
	return FHessAA(a, b) > 0 && HessianDet(a, b) > 0
}
