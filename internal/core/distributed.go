package core

import (
	"fmt"
	"sort"

	"repro/internal/coloring"
	"repro/internal/local"
	"repro/internal/model"
)

// This file implements the distributed versions of the paper's fixers as
// LOCAL-model machines running on the dependency graph:
//
//   - Corollary 1.2 (r ≤ 2): edge-colour the dependency graph, then iterate
//     over the colour classes; in its class, the variable on an edge is
//     fixed by the edge's owner endpoint. Edges of one class form a
//     matching, so no two simultaneous fixes share an event.
//   - Corollary 1.4 (r ≤ 3): distance-2 colour the dependency graph, then
//     iterate over the colour classes; in its class, a node fixes ALL of its
//     still-unfixed variables. Same-class nodes are at distance ≥ 3, so
//     their 1-hop neighbourhoods — and hence the events and φ values they
//     touch — are disjoint.
//
// The machines execute on the LOCAL runtime's sharded worker-pool engine
// (internal/engine); lopts.Workers selects the worker count. Runs are
// bit-for-bit deterministic for every worker count: same-class actors touch
// disjoint state by construction (matchings / distance-3 separation), and
// each machine's view is merged only from its own inbox.
//
// Every class takes a two-round cycle: an act round in which the scheduled
// nodes fix variables (using the chooseRank* kernels on their local view)
// and broadcast the new fixings and φ values, and an echo round in which
// the 1-hop neighbours fold those updates into their own broadcast state, so
// the next class's actors see a consistent 2-hop-fresh view. Each φ entry
// carries the round in which it was written; merging keeps the newest entry,
// which makes the repeated full-state broadcasts (unbounded messages are
// exactly what the LOCAL model permits) idempotent.

// pairKey identifies a dependency edge by its two event endpoints.
type pairKey struct{ lo, hi int }

func mkPair(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// phiKey identifies one side of a dependency edge: the φ value at event At
// on the edge Edge.
type phiKey struct {
	edge pairKey
	at   int
}

// phiEntry is a versioned φ value; Ver is the round in which it was written.
type phiEntry struct {
	val float64
	ver int
}

// stateMsg is the full local view a node broadcasts each round.
type stateMsg struct {
	fixings map[int]int
	phi     map[phiKey]phiEntry
}

type distMode int

const (
	// modeEdgeClasses drives Corollary 1.2 (classes = edge colours).
	modeEdgeClasses distMode = iota + 1
	// modeNodeClasses drives Corollary 1.4 (classes = distance-2 node
	// colours).
	modeNodeClasses
)

// lllMachine is the per-event LOCAL machine of the distributed fixers.
type lllMachine struct {
	inst *model.Instance
	orc  oracle // shared read-only by all machines of one run
	me   int    // my event identifier (= my dependency-graph node)
	opts Options
	mode distMode
	// obs is shared by all machines of one run (atomic collectors); nil
	// when Options.Metrics is unset.
	obs *fixObs

	numClasses int
	myClass    int         // modeNodeClasses: my distance-2 colour
	edgeClass  map[int]int // modeEdgeClasses: neighbour event -> edge colour

	info  local.NodeInfo
	vars  []int       // variables affecting my event, sorted
	known map[int]int // varID -> fixed value (local view)
	view  *model.Assignment
	phi   map[phiKey]phiEntry
	fixes int // variables fixed by this node
	err   error
}

func (m *lllMachine) Init(info local.NodeInfo) {
	m.info = info
	m.known = make(map[int]int)
	m.view = model.NewAssignment(m.inst)
	m.phi = make(map[phiKey]phiEntry)
	for vid := 0; vid < m.inst.NumVars(); vid++ {
		for _, e := range m.inst.Var(vid).Events {
			if e == m.me {
				m.vars = append(m.vars, vid)
				break
			}
		}
	}
	sort.Ints(m.vars)
}

func (m *lllMachine) totalRounds() int { return 2*m.numClasses + 1 }

func (m *lllMachine) phiValue(edge pairKey, at int) float64 {
	if e, ok := m.phi[phiKey{edge: edge, at: at}]; ok {
		return e.val
	}
	return 1
}

func (m *lllMachine) setPhi(edge pairKey, at int, val float64, round int) {
	m.phi[phiKey{edge: edge, at: at}] = phiEntry{val: val, ver: round}
}

func (m *lllMachine) learn(vid, val int) error {
	if old, ok := m.known[vid]; ok {
		if old != val {
			return fmt.Errorf("core: conflicting values %d and %d for variable %d", old, val, vid)
		}
		return nil
	}
	m.known[vid] = val
	m.view.Fix(vid, val)
	return nil
}

func (m *lllMachine) merge(msg *stateMsg) error {
	for vid, val := range msg.fixings {
		if err := m.learn(vid, val); err != nil {
			return err
		}
	}
	for k, e := range msg.phi {
		if cur, ok := m.phi[k]; !ok || e.ver > cur.ver {
			m.phi[k] = e
		}
	}
	return nil
}

func (m *lllMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		sm, ok := msg.(*stateMsg)
		if !ok {
			m.err = fmt.Errorf("core: unexpected message type %T", msg)
			return nil, true
		}
		if err := m.merge(sm); err != nil {
			m.err = err
			return nil, true
		}
	}

	switch {
	case round == 1:
		// Every node fixes its private (rank-1) variables in parallel;
		// they affect only the node's own event.
		m.fixPrivateVars()
	case round%2 == 0:
		class := (round - 2) / 2
		if class < m.numClasses {
			m.actOnClass(class, round)
		}
	}
	if m.err != nil {
		return nil, true
	}

	// Broadcast the full current view; receivers treat it as immutable.
	snapshot := &stateMsg{
		fixings: make(map[int]int, len(m.known)),
		phi:     make(map[phiKey]phiEntry, len(m.phi)),
	}
	for vid, val := range m.known {
		snapshot.fixings[vid] = val
	}
	for k, e := range m.phi {
		snapshot.phi[k] = e
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = snapshot
	}
	return send, round >= m.totalRounds()
}

func (m *lllMachine) fixPrivateVars() {
	for _, vid := range m.vars {
		events := m.inst.Var(vid).Events
		if len(events) != 1 || events[0] != m.me {
			continue
		}
		if _, fixed := m.known[vid]; fixed {
			continue
		}
		val := chooseRank1(m.orc, m.view, vid, m.me, m.opts)
		m.obs.step(m.inst.Var(vid).Dist.Size(), 1, false)
		if err := m.learn(vid, val); err != nil {
			m.err = err
			return
		}
		m.fixes++
	}
}

func (m *lllMachine) actOnClass(class, round int) {
	switch m.mode {
	case modeEdgeClasses:
		m.actEdgeClass(class, round)
	case modeNodeClasses:
		if m.myClass == class {
			m.actNodeClass(round)
		}
	}
}

// actEdgeClass fixes, as owner, all variables on my incident
// dependency-graph edges of the given colour class. The owner of an edge is
// its lower-indexed event endpoint.
func (m *lllMachine) actEdgeClass(class, round int) {
	for _, vid := range m.vars {
		if _, fixed := m.known[vid]; fixed {
			continue
		}
		events := m.inst.Var(vid).Events
		if len(events) != 2 {
			continue // rank-1 handled in round 1; rank-3 not allowed in this mode
		}
		other := events[0]
		if other == m.me {
			other = events[1]
		}
		if m.me > other {
			continue // the other endpoint owns this edge
		}
		if m.edgeClass[other] != class {
			continue
		}
		m.fixRank2Local(vid, events[0], events[1], round)
		if m.err != nil {
			return
		}
	}
}

// actNodeClass fixes all of my still-unfixed variables (it is my colour
// class's turn).
func (m *lllMachine) actNodeClass(round int) {
	for _, vid := range m.vars {
		if _, fixed := m.known[vid]; fixed {
			continue
		}
		events := m.inst.Var(vid).Events
		switch len(events) {
		case 1:
			// Already handled in round 1; fix defensively if still open.
			val := chooseRank1(m.orc, m.view, vid, m.me, m.opts)
			m.obs.step(m.inst.Var(vid).Dist.Size(), 1, false)
			if err := m.learn(vid, val); err != nil {
				m.err = err
				return
			}
			m.fixes++
		case 2:
			m.fixRank2Local(vid, events[0], events[1], round)
		case 3:
			m.fixRank3Local(vid, events[0], events[1], events[2], round)
		default:
			m.err = fmt.Errorf("%w: variable %d affects %d", ErrRankTooHigh, vid, len(events))
		}
		if m.err != nil {
			return
		}
	}
}

func (m *lllMachine) fixRank2Local(vid, u, v, round int) {
	edge := mkPair(u, v)
	s := m.phiValue(edge, u)
	t := m.phiValue(edge, v)
	val, newU, newV, fallback := chooseRank2(m.orc, m.view, vid, u, v, s, t, m.opts)
	m.obs.step(m.inst.Var(vid).Dist.Size(), 2, fallback)
	if err := m.learn(vid, val); err != nil {
		m.err = err
		return
	}
	m.setPhi(edge, u, newU, round)
	m.setPhi(edge, v, newV, round)
	m.obs.phiEdge(newU + newV)
	m.fixes++
}

func (m *lllMachine) fixRank3Local(vid, u, v, w, round int) {
	e := mkPair(u, v)
	e1 := mkPair(u, w)
	e2 := mkPair(v, w)
	a := m.phiValue(e, u) * m.phiValue(e1, u)
	b := m.phiValue(e, v) * m.phiValue(e2, v)
	c := m.phiValue(e1, w) * m.phiValue(e2, w)
	val, wit, fallback, err := chooseRank3(m.orc, m.view, vid, u, v, w, a, b, c, m.opts)
	if err != nil {
		m.err = err
		return
	}
	m.obs.step(m.inst.Var(vid).Dist.Size(), 3, fallback)
	if err := m.learn(vid, val); err != nil {
		m.err = err
		return
	}
	m.setPhi(e, u, wit.A1, round)
	m.setPhi(e1, u, wit.A2, round)
	m.setPhi(e, v, wit.B1, round)
	m.setPhi(e2, v, wit.B3, round)
	m.setPhi(e1, w, wit.C2, round)
	m.setPhi(e2, w, wit.C3, round)
	m.obs.phiEdge(wit.A1 + wit.B1)
	m.obs.phiEdge(wit.A2 + wit.C2)
	m.obs.phiEdge(wit.B3 + wit.C3)
	m.fixes++
}

// DistResult is the outcome of a distributed fixing run.
type DistResult struct {
	Assignment *model.Assignment
	// ColoringRounds is the LOCAL-round cost of the colouring phase on the
	// dependency graph (derived-graph rounds already multiplied by the
	// simulation factor).
	ColoringRounds int
	// FixingRounds is the LOCAL-round cost of the fixing phase.
	FixingRounds int
	// TotalRounds = ColoringRounds + FixingRounds.
	TotalRounds int
	// Classes is the number of colour classes iterated.
	Classes int
	// Messages counts the messages of the fixing phase.
	Messages int
	// ViolatedEvents counts bad events under the final assignment (0 under
	// the criterion p < 2^-d).
	ViolatedEvents int
	// LocalStats is the LOCAL runtime's execution record of the fixing
	// phase. On a failed or cancelled run it holds the partial stats up to
	// the failure (see local.Options.Ctx: cancellation during the fixing
	// phase yields a partial DistResult with no Assignment; cancellation
	// during the colouring phase yields a nil result, like any other
	// colouring failure).
	LocalStats local.Stats
}

// FixDistributed2 is Corollary 1.2: a deterministic distributed algorithm
// for LLL instances whose variables affect at most two events, running on
// the dependency graph in O(poly d + log* n) rounds (edge colouring + one
// two-round cycle per colour class).
func FixDistributed2(inst *model.Instance, opts Options, lopts local.Options) (*DistResult, error) {
	opts = opts.withDefaults()
	if r := inst.Rank(); r > 2 {
		return nil, fmt.Errorf("core: FixDistributed2 requires rank <= 2, instance has %d", r)
	}
	g := inst.DependencyGraph()
	ec, err := coloring.DistributedEdgeColoringNative(g, lopts)
	if err != nil {
		return nil, fmt.Errorf("core: edge colouring: %w", err)
	}
	machines := make([]*lllMachine, g.N())
	fo := newFixObs(opts.Metrics)
	orc := newOracle(inst) // compiled once, shared read-only by every machine
	stats, err := local.Run(g, func(v int) local.Machine {
		edgeClass := make(map[int]int, g.Degree(v))
		g.ForEachNeighbor(v, func(u, edgeID int) {
			edgeClass[u] = ec.Colors[edgeID]
		})
		machines[v] = &lllMachine{
			inst:       inst,
			orc:        orc,
			me:         v,
			opts:       opts,
			mode:       modeEdgeClasses,
			numClasses: ec.Palette,
			edgeClass:  edgeClass,
			obs:        fo,
		}
		return machines[v]
	}, lopts)
	if err != nil {
		return partialDistResult(ec.Rounds*ec.SimFactor, stats, ec.Palette), err
	}
	return collectDistResult(inst, machines, ec.Rounds*ec.SimFactor, stats, ec.Palette)
}

// FixDistributed3 is Corollary 1.4: a deterministic distributed algorithm
// for LLL instances whose variables affect at most three events, running on
// the dependency graph in O(poly d + log* n) rounds (distance-2 colouring +
// one two-round cycle per colour class).
func FixDistributed3(inst *model.Instance, opts Options, lopts local.Options) (*DistResult, error) {
	opts = opts.withDefaults()
	if r := inst.Rank(); r > 3 {
		return nil, fmt.Errorf("%w: rank %d", ErrRankTooHigh, r)
	}
	g := inst.DependencyGraph()
	d2, err := coloring.DistributedDistance2Native(g, lopts)
	if err != nil {
		return nil, fmt.Errorf("core: distance-2 colouring: %w", err)
	}
	machines := make([]*lllMachine, g.N())
	fo := newFixObs(opts.Metrics)
	orc := newOracle(inst) // compiled once, shared read-only by every machine
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = &lllMachine{
			inst:       inst,
			orc:        orc,
			me:         v,
			opts:       opts,
			mode:       modeNodeClasses,
			numClasses: d2.Palette,
			myClass:    d2.Colors[v],
			obs:        fo,
		}
		return machines[v]
	}, lopts)
	if err != nil {
		return partialDistResult(d2.Rounds*d2.SimFactor, stats, d2.Palette), err
	}
	return collectDistResult(inst, machines, d2.Rounds*d2.SimFactor, stats, d2.Palette)
}

// partialDistResult packages the round/message accounting of a failed
// fixing phase: the LOCAL runtime's Stats are well defined up to the
// failing round, and localsim prints them alongside the error.
func partialDistResult(coloringRounds int, stats local.Stats, classes int) *DistResult {
	return &DistResult{
		ColoringRounds: coloringRounds,
		FixingRounds:   stats.Rounds,
		TotalRounds:    coloringRounds + stats.Rounds,
		Classes:        classes,
		Messages:       stats.MessagesSent,
		LocalStats:     stats,
	}
}

// collectDistResult merges the machines' local views into one global
// assignment, fixes event-free variables, and evaluates the outcome.
func collectDistResult(inst *model.Instance, machines []*lllMachine, coloringRounds int, stats local.Stats, classes int) (*DistResult, error) {
	a := model.NewAssignment(inst)
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("core: node %d failed: %w", v, m.err)
		}
		for vid, val := range m.known {
			if a.Fixed(vid) {
				if a.Value(vid) != val {
					return nil, fmt.Errorf("core: nodes disagree on variable %d", vid)
				}
				continue
			}
			a.Fix(vid, val)
		}
	}
	for vid := 0; vid < inst.NumVars(); vid++ {
		if !a.Fixed(vid) {
			if len(inst.Var(vid).Events) != 0 {
				return nil, fmt.Errorf("core: variable %d left unfixed by the distributed run", vid)
			}
			a.Fix(vid, 0) // affects nothing
		}
	}
	violated, err := newOracle(inst).CountViolated(a)
	if err != nil {
		return nil, err
	}
	return &DistResult{
		Assignment:     a,
		ColoringRounds: coloringRounds,
		FixingRounds:   stats.Rounds,
		TotalRounds:    coloringRounds + stats.Rounds,
		Classes:        classes,
		Messages:       stats.MessagesSent,
		ViolatedEvents: violated,
		LocalStats:     stats,
	}, nil
}
