package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/prng"
)

func TestCorollary12OnCycles(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64} {
		s, err := apps.NewSinkless(graph.Cycle(n), 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			t.Fatalf("n=%d: %d violated events", n, res.ViolatedEvents)
		}
		if !res.Assignment.Complete() {
			t.Fatalf("n=%d: incomplete assignment", n)
		}
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("n=%d: sinks %v", n, sinks)
		}
		if res.TotalRounds != res.ColoringRounds+res.FixingRounds {
			t.Fatalf("round accounting inconsistent: %+v", res)
		}
	}
}

func TestCorollary12OnRegularGraphs(t *testing.T) {
	r := prng.New(31)
	for _, tc := range []struct{ n, d int }{{12, 3}, {20, 4}, {18, 5}} {
		g, err := graph.RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatal(err)
		}
		s, err := apps.NewSinkless(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			t.Fatalf("(n=%d,d=%d): %d violations", tc.n, tc.d, res.ViolatedEvents)
		}
		// Palette of the edge colouring bounds the classes: ≤ 2d-1.
		if res.Classes > 2*tc.d-1 {
			t.Fatalf("(n=%d,d=%d): %d classes > 2d-1", tc.n, tc.d, res.Classes)
		}
	}
}

func TestCorollary12MatchesSequentialGuarantees(t *testing.T) {
	// Distributed and sequential runs need not pick identical values (the
	// orders differ), but both must avoid all events and respect P*.
	s, err := apps.NewSinkless(graph.Cycle(12), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := FixSequential(s.Instance, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	distRes, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Stats.FinalViolatedEvents != 0 || distRes.ViolatedEvents != 0 {
		t.Fatal("either run violated events")
	}
}

func TestCorollary12RejectsRank3(t *testing.T) {
	r := prng.New(33)
	h, err := hypergraph.RandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FixDistributed2(s.Instance, Options{}, local.Options{}); err == nil {
		t.Fatal("rank-3 instance accepted by FixDistributed2")
	}
}

func TestCorollary14OnRegularHypergraphs(t *testing.T) {
	r := prng.New(35)
	for _, tc := range []struct{ n, deg int }{{12, 2}, {24, 3}} {
		h, err := hypergraph.RandomRegularRank3(tc.n, tc.deg, r)
		if err != nil {
			t.Fatal(err)
		}
		s, err := apps.NewHyperSinkless(h, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FixDistributed3(s.Instance, Options{}, local.Options{IDSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			t.Fatalf("(n=%d,deg=%d): %d violations", tc.n, tc.deg, res.ViolatedEvents)
		}
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("(n=%d,deg=%d): sinks %v", tc.n, tc.deg, sinks)
		}
		d := s.Instance.D()
		if res.Classes > d*d+1 {
			t.Fatalf("(n=%d,deg=%d): %d classes > d²+1 = %d", tc.n, tc.deg, res.Classes, d*d+1)
		}
	}
}

func TestCorollary14OnWeakSplitting(t *testing.T) {
	r := prng.New(37)
	adj, err := apps.RandomBiregular(12, 3, 12, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := apps.NewWeakSplitting(adj, 12, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixDistributed3(w.Instance, Options{}, local.Options{IDSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
	if mono := w.Monochromatic(res.Assignment); len(mono) != 0 {
		t.Fatalf("monochromatic V-nodes %v", mono)
	}
}

func TestCorollary14MixedRanks(t *testing.T) {
	// HyperSinkless instances with added private coins exercise rank-1 and
	// rank-3 variables together in the distributed protocol.
	r := prng.New(39)
	h, err := hypergraph.RandomRegularRank3(15, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixDistributed3(s.Instance, Options{Strategy: StrategyFirst}, local.Options{IDSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
}

func TestDistributedDeterministicForSeed(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(10), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		res, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: 99})
		if err != nil {
			t.Fatal(err)
		}
		vals, _ := res.Assignment.Values()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("distributed run not deterministic for fixed seed")
		}
	}
}

func TestCorollary12RoundsLogStarGrowth(t *testing.T) {
	// Round complexity O(poly d + log* n): on cycles (fixed degree 2, hence
	// a fixed poly(d) term) rounds must grow only by O(1) as n explodes —
	// the log* term.
	rounds := func(n int) int {
		s, err := apps.NewSinkless(graph.Cycle(n), 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: 17})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolatedEvents != 0 {
			t.Fatalf("n=%d: violations", n)
		}
		return res.TotalRounds
	}
	small := rounds(16)
	big := rounds(1024)
	if big-small > 8 {
		t.Fatalf("rounds grew from %d to %d for 64x nodes; expected log* growth", small, big)
	}
}

func BenchmarkFixDistributed2(b *testing.B) {
	s, err := apps.NewSinkless(graph.Cycle(64), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixDistributed2(s.Instance, Options{}, local.Options{IDSeed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixDistributed3(b *testing.B) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularRank3(24, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixDistributed3(s.Instance, Options{}, local.Options{IDSeed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
