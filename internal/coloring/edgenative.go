package coloring

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements edge colouring NATIVELY in the LOCAL model: instead
// of running the vertex-colouring machine on a pre-built line graph
// (DistributedEdgeColoring, SimFactor = 2), every node simulates the edges
// it OWNS (those to its lower-ID... here: lower-index endpoint) and the
// usual A/B relay pattern delivers the colours of all adjacent edges —
// which live at distance ≤ 2 from the owner — in two real rounds per
// logical round. The reported round count is the honest cost on g.

// eoValueMsg carries edge colours keyed by global edge identifier. (Edge
// identifiers are shared knowledge of the edge's two endpoints, which is
// legitimate LOCAL input.)
type eoValueMsg map[int]int

// eoMachine simulates the line-graph colouring for the edges its node owns.
type eoMachine struct {
	g        *graph.Graph
	me       int
	schedule []Step
	kwSched  []int
	finalK   int
	target   int

	info  local.NodeInfo
	owned []int // edge IDs owned by this node (lower endpoint)
	// adjEdges[e] lists the edge IDs adjacent to owned edge e.
	adjEdges map[int][]int
	colors   map[int]int // my owned edges' colours
	heard    map[int]int // colours of edges heard this cycle
	err      error
}

func newEOMachine(g *graph.Graph, me, k0, deltaL, target int) *eoMachine {
	finalK := FinalPalette(k0, deltaL)
	m := &eoMachine{
		g:        g,
		me:       me,
		schedule: Schedule(k0, deltaL),
		kwSched:  kwSchedule(finalK, target),
		finalK:   finalK,
		target:   target,
		adjEdges: make(map[int][]int),
		colors:   make(map[int]int),
		heard:    make(map[int]int),
	}
	for _, id := range g.IncidentEdges(me) {
		e := g.Edge(id)
		if e.U != me {
			continue // owned by the lower endpoint
		}
		m.owned = append(m.owned, id)
		seen := map[int]bool{id: true}
		var adj []int
		for _, end := range []int{e.U, e.V} {
			for _, other := range g.IncidentEdges(end) {
				if !seen[other] {
					seen[other] = true
					adj = append(adj, other)
				}
			}
		}
		sort.Ints(adj)
		m.adjEdges[id] = adj
	}
	sort.Ints(m.owned)
	return m
}

func (m *eoMachine) Init(info local.NodeInfo) {
	m.info = info
	// Initial colours: locally computable unique values — the owner's ID
	// scaled by the degree bound plus the port index of the edge.
	for _, id := range m.owned {
		e := m.g.Edge(id)
		port := -1
		for i, u := range m.g.Neighbors(m.me) {
			if u == e.V {
				port = i
			}
		}
		m.colors[id] = int(info.ID)*(m.info.MaxDegree) + port
	}
}

func (m *eoMachine) logicalSteps() int {
	return len(m.schedule) + kwRounds(m.finalK, m.target)
}

func (m *eoMachine) totalRounds() int { return 2*m.logicalSteps() + 1 }

func (m *eoMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	if round%2 == 1 {
		// A round: fold in the forwarded maps, apply the due logical step
		// to every owned edge, broadcast own colours.
		if round > 1 {
			for k := range m.heard {
				delete(m.heard, k)
			}
			for _, raw := range recv {
				if raw == nil {
					continue
				}
				msg, ok := raw.(eoValueMsg)
				if !ok {
					m.err = fmt.Errorf("coloring: unexpected B-round message %T", raw)
					return nil, true
				}
				for id, c := range msg {
					m.heard[id] = c
				}
			}
			step := (round - 3) / 2
			for _, id := range m.owned {
				var neighborColors []int
				for _, adj := range m.adjEdges[id] {
					if c, ok := m.heard[adj]; ok {
						neighborColors = append(neighborColors, c)
					} else if c, ok := m.colors[adj]; ok {
						neighborColors = append(neighborColors, c)
					} else {
						m.err = fmt.Errorf("coloring: edge %d missing colour of adjacent edge %d", id, adj)
						return nil, true
					}
				}
				switch {
				case step < len(m.schedule):
					next, err := Reduce(m.schedule[step], m.colors[id], neighborColors)
					if err != nil {
						m.err = err
						return nil, true
					}
					m.colors[id] = next
				default:
					j := (step - len(m.schedule)) % m.target
					next, ok := kwStep(m.target, j, m.colors[id], neighborColors)
					if !ok {
						m.err = fmt.Errorf("coloring: no free colour below target %d", m.target)
						return nil, true
					}
					m.colors[id] = next
				}
			}
		}
		msg := make(eoValueMsg, len(m.owned))
		for id, c := range m.colors {
			msg[id] = c
		}
		send := make([]local.Message, m.info.Degree())
		for i := range send {
			send[i] = msg
		}
		return send, round >= m.totalRounds()
	}

	// B round: forward everything received plus own colours.
	msg := make(eoValueMsg, len(recv)+len(m.owned))
	for id, c := range m.colors {
		msg[id] = c
	}
	for _, raw := range recv {
		if raw == nil {
			continue
		}
		in, ok := raw.(eoValueMsg)
		if !ok {
			m.err = fmt.Errorf("coloring: unexpected A-round message %T", raw)
			return nil, true
		}
		for id, c := range in {
			msg[id] = c
		}
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = msg
	}
	return send, false
}

// DistributedEdgeColoringNative computes a proper edge colouring of g with
// at most 2Δ−1 colours using the explicit owner-simulation protocol on g
// itself (SimFactor 1). Colours are indexed by edge identifier.
func DistributedEdgeColoringNative(g *graph.Graph, opts local.Options) (*Result, error) {
	delta := g.MaxDegree()
	deltaL := 2*delta - 2 // line-graph degree bound
	if deltaL < 1 {
		deltaL = 1
	}
	target := deltaL + 1
	k0 := int(local.IDSpace(g.N()))*delta + delta
	if opts.SequentialIDs {
		k0 = g.N()*delta + delta
	}
	if k0 < target {
		k0 = target
	}
	machines := make([]*eoMachine, g.N())
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = newEOMachine(g, v, k0, deltaL, target)
		return machines[v]
	}, opts)
	if err != nil {
		return nil, err
	}
	colors := make([]int, g.M())
	for i := range colors {
		colors[i] = -1
	}
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("coloring: node %d failed: %w", v, m.err)
		}
		for id, c := range m.colors {
			colors[id] = c
		}
	}
	if err := VerifyEdgeColoring(g, colors); err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   target,
		Rounds:    stats.Rounds,
		SimFactor: 1,
		Messages:  stats.MessagesSent,
	}, nil
}
