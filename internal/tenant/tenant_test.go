package tenant

import (
	"strings"
	"testing"
)

// TestParseConfig: the happy path normalizes — defaults filled, tenants
// sorted, default tenant materialized in Specs.
func TestParseConfig(t *testing.T) {
	c, err := ParseConfig([]byte(`{
		"tenants": [
			{"name": "silver", "weight": 1, "rate": 2.5},
			{"name": "gold", "weight": 3, "priority": 2, "rate": 50, "burst": 100, "max_in_flight": 8, "max_queued": 32}
		],
		"default": {"weight": 1, "rate": 5},
		"allow_unknown": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tenants) != 2 || c.Tenants[0].Name != "gold" || c.Tenants[1].Name != "silver" {
		t.Fatalf("tenants not sorted by name: %+v", c.Tenants)
	}
	if got := c.Tenants[1].Burst; got != 3 {
		t.Errorf("silver burst defaulted to %d, want ceil(2.5) = 3", got)
	}
	if c.Default == nil || c.Default.Name != DefaultName || c.Default.Burst != 5 {
		t.Errorf("default tenant not normalized: %+v", c.Default)
	}
	specs := c.Specs()
	if len(specs) != 3 {
		t.Fatalf("Specs() = %d entries, want 3 (default + 2)", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Name < specs[i-1].Name {
			t.Errorf("Specs() not sorted: %q after %q", specs[i].Name, specs[i-1].Name)
		}
	}
}

// TestParseConfigRejects: every malformed config is rejected with a
// diagnostic, never a panic or a silent fixup.
func TestParseConfigRejects(t *testing.T) {
	cases := []struct{ name, cfg, want string }{
		{"bad json", `{`, "tenant config"},
		{"empty name", `{"tenants":[{"weight":1}]}`, "name is empty"},
		{"long name", `{"tenants":[{"name":"` + strings.Repeat("x", 33) + `"}]}`, "longer than"},
		{"bad char", `{"tenants":[{"name":"a b"}]}`, "invalid character"},
		{"dup", `{"tenants":[{"name":"a"},{"name":"a"}]}`, "duplicate"},
		{"reserved", `{"tenants":[{"name":"default"}]}`, "reserved"},
		{"neg weight", `{"tenants":[{"name":"a","weight":-1}]}`, "weight"},
		{"huge weight", `{"tenants":[{"name":"a","weight":2000000}]}`, "weight"},
		{"neg priority", `{"tenants":[{"name":"a","priority":-1}]}`, "priority"},
		{"big priority", `{"tenants":[{"name":"a","priority":8}]}`, "priority"},
		{"neg rate", `{"tenants":[{"name":"a","rate":-2}]}`, "rate"},
		{"burst sans rate", `{"tenants":[{"name":"a","burst":5}]}`, "burst"},
		{"neg inflight", `{"tenants":[{"name":"a","max_in_flight":-1}]}`, "max_in_flight"},
		{"neg queued", `{"tenants":[{"name":"a","max_queued":-1}]}`, "max_queued"},
		{"bad default", `{"default":{"rate":-1}}`, "rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseConfig([]byte(tc.cfg)); err == nil {
				t.Fatalf("config %s parsed, want error containing %q", tc.cfg, tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestResolve: label → accounted tenant, per the AllowUnknown policy.
func TestResolve(t *testing.T) {
	strict, err := ParseConfig([]byte(`{"tenants":[{"name":"gold"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	open, err := ParseConfig([]byte(`{"tenants":[{"name":"gold"}],"allow_unknown":true}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cfg   *Config
		label string
		want  string
		ok    bool
	}{
		{nil, "", DefaultName, true},
		{nil, "anything", DefaultName, true},
		{strict, "", DefaultName, true},
		{strict, "default", DefaultName, true},
		{strict, "gold", "gold", true},
		{strict, "ghost", "", false},
		{open, "ghost", DefaultName, true},
		{open, "gold", "gold", true},
	} {
		got, err := tc.cfg.Resolve(tc.label)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("Resolve(%q) = (%q, %v), want (%q, ok=%v)", tc.label, got, err, tc.want, tc.ok)
		}
	}
}

// TestMetricName: dashes map to underscores so any valid tenant name is a
// valid Prometheus metric-name fragment.
func TestMetricName(t *testing.T) {
	if got := MetricName("team-a_1"); got != "team_a_1" {
		t.Errorf("MetricName = %q, want team_a_1", got)
	}
}
