package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/spec"
)

// Families accepted by JobSpec.Family. "inline" takes the instance from
// JobSpec.Instance (the internal/spec JSON format) instead of a generator.
const (
	FamilySinkless  = "sinkless"
	FamilyHyper     = "hyper"
	FamilyOrient3   = "orient3"
	FamilyWeakSplit = "weaksplit"
	FamilyInline    = "inline"
)

// Algorithms accepted by JobSpec.Algorithm.
const (
	// AlgSeq is the paper's sequential deterministic fixer
	// (Theorems 1.1 / 1.3).
	AlgSeq = "seq"
	// AlgDist is the distributed deterministic fixer (Corollaries 1.2 /
	// 1.4), run on the LOCAL simulator; it emits one "round" event per
	// LOCAL round.
	AlgDist = "dist"
	// AlgMTSeq / AlgMTPar are the sequential and parallel Moser-Tardos
	// resamplers; the parallel variant emits one "round" event per
	// resampling round.
	AlgMTSeq = "mtseq"
	AlgMTPar = "mtpar"
	// AlgMTDist is the LOCAL-model Moser-Tardos resampler; it emits one
	// "round" event per LOCAL round.
	AlgMTDist = "mtdist"
	// AlgOneShot draws a single random sample and counts violated events —
	// a cheap job useful for load testing.
	AlgOneShot = "oneshot"
)

// maxN bounds the instance size a single job may request, protecting the
// daemon's memory against oversized submissions.
const maxN = 2_000_000

// JobSpec is the wire format of POST /v1/jobs: which instance to build and
// which algorithm to run on it. Zero fields take the defaults documented
// per field.
type JobSpec struct {
	// Family selects the instance source: sinkless | hyper | orient3 |
	// weaksplit | inline (default sinkless).
	Family string `json:"family,omitempty"`
	// N is the node count of the generated instance (default 64).
	N int `json:"n,omitempty"`
	// Degree is the graph degree (sinkless; 2 = cycle, default) or the
	// hypergraph degree (hyper, orient3; default 3).
	Degree int `json:"degree,omitempty"`
	// Margin is the sinkless criterion margin p·2^d (default 0.9;
	// 1 = exact threshold).
	Margin float64 `json:"margin,omitempty"`
	// Slack is the hyper-sinkless relaxation slack (default 0.4).
	Slack float64 `json:"slack,omitempty"`
	// Colors is the weak-splitting palette size (default 16).
	Colors int `json:"colors,omitempty"`
	// Seed feeds the generators, LOCAL identifiers and resamplers
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Instance carries an inline instance in the internal/spec JSON format
	// (family "inline" only).
	Instance json.RawMessage `json:"instance,omitempty"`

	// Algorithm: seq | dist | mtseq | mtpar | mtdist | oneshot
	// (default dist).
	Algorithm string `json:"algorithm,omitempty"`
	// Workers is the engine worker count for LOCAL/parallel algorithms;
	// 0 uses the service's per-job cap on the shared pool. Results are
	// bit-identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// MaxRounds caps LOCAL rounds (dist, mtdist) or parallel resampling
	// rounds (mtpar); 0 means the library default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// MaxResamplings caps mtseq resamplings; 0 means the library default.
	MaxResamplings int `json:"max_resamplings,omitempty"`
	// MaxIters caps mtdist resampling iterations; 0 means the library
	// default (200).
	MaxIters int `json:"max_iters,omitempty"`
	// TimeoutMS is a per-job wall-clock deadline enforced through the run
	// context; 0 means no deadline. A job that exceeds it fails with
	// context.DeadlineExceeded and a Partial result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// withDefaults validates the spec and fills defaulted fields, returning the
// normalized copy. It performs only cheap static checks — generator errors
// (e.g. no simple regular graph for the parameters) surface when the job
// runs and fail it.
func (s JobSpec) withDefaults() (JobSpec, error) {
	if s.Family == "" {
		s.Family = FamilySinkless
	}
	if s.Algorithm == "" {
		s.Algorithm = AlgDist
	}
	if s.N == 0 {
		s.N = 64
	}
	if s.Margin == 0 {
		s.Margin = 0.9
	}
	if s.Slack == 0 {
		s.Slack = 0.4
	}
	if s.Colors == 0 {
		s.Colors = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Family {
	case FamilySinkless:
		if s.Degree == 0 {
			s.Degree = 2
		}
	case FamilyHyper, FamilyOrient3:
		if s.Degree == 0 {
			s.Degree = 3
		}
		if (s.N*s.Degree)%3 != 0 {
			return s, fmt.Errorf("family %q: n*degree = %d*%d must be divisible by 3", s.Family, s.N, s.Degree)
		}
	case FamilyWeakSplit:
	case FamilyInline:
		if len(bytes.TrimSpace(s.Instance)) == 0 {
			return s, fmt.Errorf(`family "inline" requires the "instance" field`)
		}
	default:
		return s, fmt.Errorf("unknown family %q", s.Family)
	}
	switch s.Algorithm {
	case AlgSeq, AlgDist, AlgMTSeq, AlgMTPar, AlgMTDist, AlgOneShot:
	default:
		return s, fmt.Errorf("unknown algorithm %q", s.Algorithm)
	}
	if s.N < 0 || s.N > maxN {
		return s, fmt.Errorf("n = %d out of range [1, %d]", s.N, maxN)
	}
	if s.Degree < 0 {
		return s, fmt.Errorf("degree = %d must be non-negative", s.Degree)
	}
	if s.Family == FamilySinkless && s.Degree != 2 && s.Degree >= s.N {
		return s, fmt.Errorf("sinkless: degree = %d needs degree < n = %d", s.Degree, s.N)
	}
	if s.Margin < 0 || s.Slack < 0 || s.Colors < 0 {
		return s, fmt.Errorf("margin, slack and colors must be non-negative")
	}
	if s.Workers < 0 || s.MaxRounds < 0 || s.MaxResamplings < 0 || s.MaxIters < 0 || s.TimeoutMS < 0 {
		return s, fmt.Errorf("workers and the max_*/timeout_ms caps must be non-negative")
	}
	return s, nil
}

// buildInstance materializes the spec's instance (mirrors cmd/lllsolve).
func buildInstance(s JobSpec) (*model.Instance, error) {
	r := prng.New(s.Seed)
	switch s.Family {
	case FamilySinkless:
		var g *graph.Graph
		if s.Degree == 2 {
			g = graph.Cycle(s.N)
		} else {
			var err error
			g, err = graph.RandomRegular(s.N, s.Degree, r)
			if err != nil {
				return nil, err
			}
		}
		sk, err := apps.NewSinklessWithMargin(g, s.Margin)
		if err != nil {
			return nil, err
		}
		return sk.Instance, nil
	case FamilyHyper:
		h, err := hypergraph.RandomRegularRank3(s.N, s.Degree, r)
		if err != nil {
			return nil, err
		}
		hs, err := apps.NewHyperSinkless(h, s.Slack)
		if err != nil {
			return nil, err
		}
		return hs.Instance, nil
	case FamilyOrient3:
		h, err := hypergraph.RandomRegularRank3(s.N, s.Degree, r)
		if err != nil {
			return nil, err
		}
		t, err := apps.NewThreeOrientations(h)
		if err != nil {
			return nil, err
		}
		return t.Instance, nil
	case FamilyWeakSplit:
		adj, err := apps.RandomBiregular(s.N, 3, s.N, 3, r)
		if err != nil {
			return nil, err
		}
		w, err := apps.NewWeakSplitting(adj, s.N, s.Colors)
		if err != nil {
			return nil, err
		}
		return w.Instance, nil
	case FamilyInline:
		return spec.Load(bytes.NewReader(s.Instance))
	default:
		return nil, fmt.Errorf("unknown family %q", s.Family)
	}
}

// RunSpec is the Service's default Runner: it builds the spec's instance
// and executes the chosen algorithm under ctx, emitting one "round" event
// per LOCAL/parallel round and returning the (possibly partial) Summary.
// maxWorkers caps the engine workers a single job may claim; metrics and
// trace flow into the runtime layers exactly as in batch runs.
func RunSpec(ctx context.Context, js JobSpec, emit func(Event), metrics *obs.Registry, trace *obs.Recorder, maxWorkers int) (*Summary, error) {
	js, err := js.withDefaults()
	if err != nil {
		return nil, err
	}
	inst, err := buildInstance(js)
	if err != nil {
		return nil, fmt.Errorf("building instance: %w", err)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}

	sum := &Summary{
		Algorithm:      js.Algorithm,
		Family:         js.Family,
		NumEvents:      inst.NumEvents(),
		NumVars:        inst.NumVars(),
		ViolatedEvents: -1,
	}
	workers := js.Workers
	if maxWorkers > 0 && (workers == 0 || workers > maxWorkers) {
		workers = maxWorkers
	}
	onRound := func(rs engine.RoundStats) {
		emit(Event{
			Kind:     "round",
			Round:    rs.Round,
			Steps:    rs.Steps,
			Messages: rs.Messages,
			Active:   rs.Active,
			Halted:   rs.Halted,
		})
	}
	lopts := local.Options{
		Ctx:       ctx,
		MaxRounds: js.MaxRounds,
		IDSeed:    js.Seed,
		Workers:   workers,
		OnRound:   onRound,
		Metrics:   metrics,
		Trace:     trace,
	}
	mtObs := mt.Observer{Metrics: metrics, Trace: trace, OnRound: onRound}

	count := func(a *model.Assignment) error {
		if a == nil || !a.Complete() {
			return nil // cancelled before completion: count stays -1
		}
		v, err := inst.CountViolated(a)
		if err != nil {
			return err
		}
		sum.ViolatedEvents = v
		sum.Satisfied = v == 0
		return nil
	}

	switch js.Algorithm {
	case AlgSeq:
		res, rerr := core.FixSequentialCtx(ctx, inst, nil, core.Options{Metrics: metrics})
		if res != nil {
			sum.VarsFixed = res.Stats.VarsFixed
			if rerr == nil {
				sum.ViolatedEvents = res.Stats.FinalViolatedEvents
				sum.Satisfied = sum.ViolatedEvents == 0
			}
		}
		return sum, rerr
	case AlgDist:
		var res *core.DistResult
		var rerr error
		if inst.Rank() <= 2 {
			res, rerr = core.FixDistributed2(inst, core.Options{Metrics: metrics}, lopts)
		} else {
			res, rerr = core.FixDistributed3(inst, core.Options{Metrics: metrics}, lopts)
		}
		if res != nil {
			sum.Rounds = res.TotalRounds
			sum.ColoringRounds = res.ColoringRounds
			sum.FixingRounds = res.FixingRounds
			sum.Classes = res.Classes
			sum.Messages = res.Messages
			sum.Steps = res.LocalStats.Steps
			if rerr == nil {
				sum.ViolatedEvents = res.ViolatedEvents
				sum.Satisfied = sum.ViolatedEvents == 0
			}
		}
		return sum, rerr
	case AlgMTSeq:
		res, rerr := mt.SequentialCtx(ctx, inst, prng.New(js.Seed), js.MaxResamplings, mt.Observer{Metrics: metrics, Trace: trace})
		if res != nil {
			sum.Resamplings = res.Resamplings
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgMTPar:
		res, rerr := mt.ParallelCtx(ctx, inst, prng.New(js.Seed), js.MaxRounds, mtObs)
		if res != nil {
			sum.Rounds = res.Rounds
			sum.Resamplings = res.Resamplings
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgMTDist:
		res, rerr := mt.Distributed(inst, js.Seed, js.MaxIters, lopts)
		if res != nil {
			sum.Rounds = res.Rounds
			sum.Iterations = res.Iterations
			sum.Resamplings = res.Resamplings
			sum.Messages = res.Messages
			sum.Steps = res.LocalStats.Steps
			sum.Satisfied = res.Satisfied
			if cerr := count(res.Assignment); cerr != nil {
				return sum, cerr
			}
		}
		return sum, rerr
	case AlgOneShot:
		_, violated, rerr := mt.OneShot(inst, prng.New(js.Seed))
		if rerr != nil {
			return sum, rerr
		}
		sum.ViolatedEvents = violated
		sum.Satisfied = violated == 0
		return sum, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", js.Algorithm)
	}
}
