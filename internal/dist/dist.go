// Package dist implements finite-support discrete probability distributions.
//
// Every random variable of an LLL instance carries one Distribution: a list
// of values (identified by index 0..k-1) with strictly positive probabilities
// summing to one. The package also provides product-space enumeration, which
// the exact probability engine in internal/model uses to compute conditional
// probabilities of bad events.
package dist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/prng"
)

// SumTolerance is the absolute slack allowed when validating that the
// probabilities of a distribution sum to one.
const SumTolerance = 1e-9

var (
	// ErrEmpty indicates a distribution with no support.
	ErrEmpty = errors.New("dist: empty support")
	// ErrNegativeProb indicates a non-positive probability in the support.
	ErrNegativeProb = errors.New("dist: probabilities must be strictly positive")
	// ErrSum indicates probabilities that do not sum to one.
	ErrSum = errors.New("dist: probabilities do not sum to 1")
)

// Distribution is a finite discrete distribution over value indices
// 0..Size()-1. Instances are immutable after construction.
type Distribution struct {
	probs []float64
	cum   []float64 // cumulative sums for sampling
}

// New returns a distribution with the given probabilities, validating that
// all are strictly positive and sum to one within SumTolerance.
func New(probs []float64) (*Distribution, error) {
	if len(probs) == 0 {
		return nil, ErrEmpty
	}
	sum := 0.0
	for i, p := range probs {
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("%w: probs[%d] = %v", ErrNegativeProb, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > SumTolerance {
		return nil, fmt.Errorf("%w: sum = %v", ErrSum, sum)
	}
	d := &Distribution{
		probs: make([]float64, len(probs)),
		cum:   make([]float64, len(probs)),
	}
	copy(d.probs, probs)
	acc := 0.0
	for i, p := range probs {
		acc += p
		d.cum[i] = acc
	}
	d.cum[len(probs)-1] = 1 // eliminate rounding drift at the top
	return d, nil
}

// MustNew is New but panics on error. Intended for literals in tests and
// generators where the input is statically valid.
func MustNew(probs []float64) *Distribution {
	d, err := New(probs)
	if err != nil {
		panic(err)
	}
	return d
}

// Uniform returns the uniform distribution over k values.
func Uniform(k int) *Distribution {
	if k <= 0 {
		panic("dist: Uniform needs k > 0")
	}
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1.0 / float64(k)
	}
	return MustNew(probs)
}

// Bernoulli returns a two-valued distribution with Pr[value 1] = p.
func Bernoulli(p float64) (*Distribution, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("dist: Bernoulli parameter %v outside (0,1)", p)
	}
	return New([]float64{1 - p, p})
}

// Size returns the number of values in the support.
func (d *Distribution) Size() int { return len(d.probs) }

// Prob returns the probability of value index i.
func (d *Distribution) Prob(i int) float64 { return d.probs[i] }

// Probs returns a copy of the probability vector.
func (d *Distribution) Probs() []float64 {
	out := make([]float64, len(d.probs))
	copy(out, d.probs)
	return out
}

// Sample draws a value index using r.
func (d *Distribution) Sample(r *prng.Rand) int {
	u := r.Float64()
	// Linear scan is fine: supports are tiny (2..27 in all our workloads).
	for i, c := range d.cum {
		if u < c {
			return i
		}
	}
	return len(d.cum) - 1
}

// Entropy returns the Shannon entropy in bits.
func (d *Distribution) Entropy() float64 {
	h := 0.0
	for _, p := range d.probs {
		h -= p * math.Log2(p)
	}
	return h
}

// MaxProb returns the largest probability in the support.
func (d *Distribution) MaxProb() float64 {
	m := 0.0
	for _, p := range d.probs {
		if p > m {
			m = p
		}
	}
	return m
}

// MinProb returns the smallest probability in the support.
func (d *Distribution) MinProb() float64 {
	m := math.Inf(1)
	for _, p := range d.probs {
		if p < m {
			m = p
		}
	}
	return m
}

// Enumerate calls fn once for every joint assignment of the given
// distributions, passing the value-index tuple and its joint probability.
// The tuple slice is reused between calls; fn must not retain it.
// Enumerating zero distributions calls fn once with an empty tuple and
// probability 1 (the empty product).
func Enumerate(ds []*Distribution, fn func(tuple []int, p float64)) {
	tuple := make([]int, len(ds))
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(ds) {
			fn(tuple, p)
			return
		}
		for v := 0; v < ds[i].Size(); v++ {
			tuple[i] = v
			rec(i+1, p*ds[i].Prob(v))
		}
	}
	rec(0, 1)
}

// JointSize returns the number of assignments Enumerate would visit, or
// math.MaxInt if the product overflows.
func JointSize(ds []*Distribution) int {
	n := 1
	for _, d := range ds {
		if n > math.MaxInt/d.Size() {
			return math.MaxInt
		}
		n *= d.Size()
	}
	return n
}
