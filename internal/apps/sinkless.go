// Package apps builds the LLL instances for the application problems the
// paper discusses: sinkless orientation (the canonical problem sitting
// exactly at the threshold p = 2^-d), its relaxed below-threshold variant,
// orientation problems on rank-3 hypergraphs, and relaxed weak splitting.
//
// Each builder returns the model.Instance together with enough metadata to
// interpret a complete assignment in domain terms and to verify the
// domain-specific property directly (independently of the generic
// event-violation check).
package apps

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

// Orientation values of an edge variable in sinkless-orientation instances.
const (
	// ToU means the edge points at its lower endpoint (Edge.U).
	ToU = 0
	// ToV means the edge points at its higher endpoint (Edge.V).
	ToV = 1
	// Free means the edge points at neither endpoint (only present in
	// relaxed instances with slack > 0).
	Free = 2
)

// Sinkless is a (possibly relaxed) sinkless-orientation instance on a graph.
//
// Every edge carries one variable; the bad event at node v is "every
// incident edge points at v". With slack = 0 the edge variable is a fair
// coin over {ToU, ToV} and the per-node failure probability is exactly
// 2^-deg(v) — the instance sits exactly at the paper's threshold. With
// slack δ > 0 each edge additionally takes the value Free with probability
// δ, pushing the margin p·2^d down to (1-δ)^d on regular graphs: strictly
// below the threshold, where Theorem 1.1 applies.
type Sinkless struct {
	Instance *model.Instance
	Graph    *graph.Graph
	// EdgeVar maps a graph edge identifier to its variable identifier.
	EdgeVar []int
	// Slack is the relaxation parameter δ used at build time.
	Slack float64
}

// NewSinkless builds a sinkless-orientation instance on g with the given
// slack δ ∈ [0, 1). Nodes of degree 0 are rejected: their bad event would be
// the empty conjunction (probability 1) and the problem unsolvable.
func NewSinkless(g *graph.Graph, slack float64) (*Sinkless, error) {
	if slack < 0 || slack >= 1 {
		return nil, fmt.Errorf("apps: sinkless slack %v outside [0, 1)", slack)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0; sinkless orientation is unsolvable", v)
		}
	}
	var d *dist.Distribution
	if slack == 0 {
		d = dist.Uniform(2)
	} else {
		half := (1 - slack) / 2
		var err error
		d, err = dist.New([]float64{half, half, slack})
		if err != nil {
			return nil, fmt.Errorf("apps: building edge distribution: %w", err)
		}
	}

	b := model.NewBuilder()
	edgeVar := make([]int, g.M())
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		edgeVar[id] = b.AddVariable(d, fmt.Sprintf("edge{%d,%d}", e.U, e.V))
	}
	for v := 0; v < g.N(); v++ {
		ids := g.IncidentEdges(v)
		scope := make([]int, len(ids))
		badSets := make([][]int, len(ids))
		dists := make([]*dist.Distribution, len(ids))
		for i, id := range ids {
			scope[i] = edgeVar[id]
			dists[i] = d
			if g.Edge(id).U == v {
				badSets[i] = []int{ToU}
			} else {
				badSets[i] = []int{ToV}
			}
		}
		model.AddConjunctionEvent(b, scope, badSets, dists, fmt.Sprintf("sink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building sinkless instance: %w", err)
	}
	return &Sinkless{Instance: inst, Graph: g, EdgeVar: edgeVar, Slack: slack}, nil
}

// NewSinklessWithMargin builds a relaxed sinkless-orientation instance on a
// regular graph g whose exponential-criterion margin p·2^d equals the given
// value (0 < margin ≤ 1); margin 1 is the exact threshold instance. The
// sweep of experiment T5 is built on this knob.
func NewSinklessWithMargin(g *graph.Graph, margin float64) (*Sinkless, error) {
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("apps: margin %v outside (0, 1]", margin)
	}
	deg := g.MaxDegree()
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != deg {
			return nil, fmt.Errorf("apps: NewSinklessWithMargin needs a regular graph; node %d has degree %d != %d", v, g.Degree(v), deg)
		}
	}
	// On a d-regular graph the margin is ((1-δ)/2)^d · 2^d = (1-δ)^d.
	slack := 1 - math.Pow(margin, 1/float64(deg))
	if slack < 0 {
		slack = 0
	}
	return NewSinkless(g, slack)
}

// NewSinklessBiased builds a sinkless-orientation instance on g where edge
// id points at node alphaHead[id] (which must be one of its endpoints) with
// probability alpha and at the other endpoint with probability 1-alpha —
// and there is NO third value. Unlike the slack relaxation, this family
// offers the fixer no "escape" value that kills both events: every choice
// commits to a real orientation, so below-threshold runs exercise the full
// weighted Theorem 1.1 dynamics. A nil alphaHead defaults to the lower
// endpoint of every edge (note this can concentrate probability on
// low-index nodes; use NewSinklessBiasedCycle for the balanced family).
func NewSinklessBiased(g *graph.Graph, alpha float64, alphaHead []int) (*Sinkless, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("apps: bias %v outside (0, 1)", alpha)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0; sinkless orientation is unsolvable", v)
		}
	}
	if alphaHead == nil {
		alphaHead = make([]int, g.M())
		for id := 0; id < g.M(); id++ {
			alphaHead[id] = g.Edge(id).U
		}
	}
	if len(alphaHead) != g.M() {
		return nil, fmt.Errorf("apps: %d alpha heads for %d edges", len(alphaHead), g.M())
	}
	b := model.NewBuilder()
	edgeVar := make([]int, g.M())
	edgeDist := make([]*dist.Distribution, g.M())
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		// Value ToU always means "points at e.U"; the bias decides which
		// endpoint carries probability alpha.
		var probs []float64
		switch alphaHead[id] {
		case e.U:
			probs = []float64{alpha, 1 - alpha}
		case e.V:
			probs = []float64{1 - alpha, alpha}
		default:
			return nil, fmt.Errorf("apps: alpha head %d is not an endpoint of edge {%d,%d}", alphaHead[id], e.U, e.V)
		}
		d, err := dist.New(probs)
		if err != nil {
			return nil, fmt.Errorf("apps: building biased edge distribution: %w", err)
		}
		edgeDist[id] = d
		edgeVar[id] = b.AddVariable(d, fmt.Sprintf("edge{%d,%d}", e.U, e.V))
	}
	for v := 0; v < g.N(); v++ {
		ids := g.IncidentEdges(v)
		scope := make([]int, len(ids))
		badSets := make([][]int, len(ids))
		dists := make([]*dist.Distribution, len(ids))
		for i, id := range ids {
			scope[i] = edgeVar[id]
			dists[i] = edgeDist[id]
			if g.Edge(id).U == v {
				badSets[i] = []int{ToU}
			} else {
				badSets[i] = []int{ToV}
			}
		}
		model.AddConjunctionEvent(b, scope, badSets, dists, fmt.Sprintf("sink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building biased sinkless instance: %w", err)
	}
	return &Sinkless{Instance: inst, Graph: g, EdgeVar: edgeVar, Slack: 0}, nil
}

// NewSinklessBiasedCycle builds the balanced biased family on the cycle
// C_n: every edge points at its cycle-successor endpoint with probability
// alpha, so EVERY node's failure probability is exactly α(1-α) and the
// criterion margin is exactly 4α(1-α) — strictly below 1 for α ≠ 1/2 and
// exactly the threshold at α = 1/2.
func NewSinklessBiasedCycle(n int, alpha float64) (*Sinkless, error) {
	g := graph.Cycle(n)
	heads := make([]int, g.M())
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		// Successor of u along the cycle: u+1 mod n. The wrap edge {0,n-1}
		// is directed n-1 -> 0.
		if e.V == e.U+1 {
			heads[id] = e.V
		} else {
			heads[id] = 0 // wrap edge {0, n-1}: successor of n-1 is 0
		}
	}
	return NewSinklessBiased(g, alpha, heads)
}

// NoisySinkless is a sinkless-orientation instance with an ADDITIVE failure
// mode: the bad event at node v occurs if every incident edge points at v
// OR v's private alarm coin fires (probability noise). Its per-node failure
// probability is
//
//	p = noise + (1-noise)·2^-deg(v)  >  2^-deg(v),
//
// so the instance sits ABOVE the exponential threshold — the regime between
// exponential and polynomial criteria the paper's introduction asks about.
// The deterministic fixers carry no guarantee here (margins exceed 1),
// while randomized Moser-Tardos still converges whenever ep(d+1) < 1.
type NoisySinkless struct {
	Instance *model.Instance
	Graph    *graph.Graph
	// EdgeVar maps a graph edge identifier to its variable identifier.
	EdgeVar []int
	// CoinVar maps a node to its private alarm variable.
	CoinVar []int
	// Noise is the additive failure probability.
	Noise float64
}

// NewNoisySinkless builds the noisy instance on g with the given additive
// noise ∈ (0, 1).
func NewNoisySinkless(g *graph.Graph, noise float64) (*NoisySinkless, error) {
	if noise <= 0 || noise >= 1 {
		return nil, fmt.Errorf("apps: noise %v outside (0, 1)", noise)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0", v)
		}
	}
	edgeDist := dist.Uniform(2)
	coinDist, err := dist.New([]float64{1 - noise, noise})
	if err != nil {
		return nil, fmt.Errorf("apps: building coin distribution: %w", err)
	}

	b := model.NewBuilder()
	edgeVar := make([]int, g.M())
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		edgeVar[id] = b.AddVariable(edgeDist, fmt.Sprintf("edge{%d,%d}", e.U, e.V))
	}
	coinVar := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		coinVar[v] = b.AddVariable(coinDist, fmt.Sprintf("alarm%d", v))
	}
	for v := 0; v < g.N(); v++ {
		ids := g.IncidentEdges(v)
		scope := make([]int, 0, len(ids)+1)
		toMe := make([]int, 0, len(ids)) // value of scope[i] meaning "points at v"
		for _, id := range ids {
			scope = append(scope, edgeVar[id])
			if g.Edge(id).U == v {
				toMe = append(toMe, ToU)
			} else {
				toMe = append(toMe, ToV)
			}
		}
		scope = append(scope, coinVar[v])
		coinPos := len(scope) - 1
		bad := func(vals []int) bool {
			if vals[coinPos] == 1 {
				return true
			}
			for i, want := range toMe {
				if vals[i] != want {
					return false
				}
			}
			return true
		}
		condProb := func(vals []int, fixed []bool) float64 {
			// Pr[coin OR all-incoming] = 1 - (1 - pc)(1 - pin), the two
			// factors being independent.
			pc := noise
			if fixed[coinPos] {
				if vals[coinPos] == 1 {
					return 1
				}
				pc = 0
			}
			pin := 1.0
			for i, want := range toMe {
				if fixed[i] {
					if vals[i] != want {
						pin = 0
						break
					}
					continue
				}
				pin *= 0.5
			}
			return 1 - (1-pc)*(1-pin)
		}
		b.AddEvent(scope, bad, condProb, fmt.Sprintf("noisysink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building noisy sinkless instance: %w", err)
	}
	return &NoisySinkless{Instance: inst, Graph: g, EdgeVar: edgeVar, CoinVar: coinVar, Noise: noise}, nil
}

// NewNoisySinklessWithP builds the noisy instance on a regular graph so
// that every event's probability is exactly p, which must exceed 2^-deg.
func NewNoisySinklessWithP(g *graph.Graph, p float64) (*NoisySinkless, error) {
	deg := g.MaxDegree()
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != deg {
			return nil, fmt.Errorf("apps: NewNoisySinklessWithP needs a regular graph")
		}
	}
	base := math.Pow(2, -float64(deg))
	if p <= base || p >= 1 {
		return nil, fmt.Errorf("apps: p=%v outside (2^-deg, 1) = (%v, 1)", p, base)
	}
	// p = noise + (1-noise)·base  =>  noise = (p-base)/(1-base).
	noise := (p - base) / (1 - base)
	return NewNoisySinkless(g, noise)
}

// OrientationOf returns the node the edge points at under the complete
// assignment a, or -1 if the edge is Free.
func (s *Sinkless) OrientationOf(edgeID int, a *model.Assignment) int {
	e := s.Graph.Edge(edgeID)
	switch a.Value(s.EdgeVar[edgeID]) {
	case ToU:
		return e.U
	case ToV:
		return e.V
	default:
		return -1
	}
}

// Sinks returns the nodes that are sinks (every incident edge points at
// them) under the complete assignment a. A correct solution has none.
func (s *Sinkless) Sinks(a *model.Assignment) []int {
	var sinks []int
	for v := 0; v < s.Graph.N(); v++ {
		isSink := true
		for _, id := range s.Graph.IncidentEdges(v) {
			if s.OrientationOf(id, a) != v {
				isSink = false
				break
			}
		}
		if isSink {
			sinks = append(sinks, v)
		}
	}
	return sinks
}
