package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
)

// pollCountCtx is a context whose Err flips to Canceled after a fixed
// number of polls — a deterministic stand-in for a cancel racing the fixer.
type pollCountCtx struct {
	context.Context
	polls, cancelAfter int
}

func (c *pollCountCtx) Err() error {
	c.polls++
	if c.polls > c.cancelAfter {
		return context.Canceled
	}
	return nil
}

// TestFixSequentialCtxCancelPartial: cancellation between fixing steps
// returns the partial Result with exactly the variables fixed so far.
func TestFixSequentialCtxCancelPartial(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(2048), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pollCountCtx{Context: context.Background(), cancelAfter: 2}
	res, err := FixSequentialCtx(ctx, s.Instance, nil, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled fixer returned nil partial Result")
	}
	// The context passes 2 polls (before steps 0 and 256) and fails the
	// third (before step 512): exactly 512 variables are fixed.
	if res.Stats.VarsFixed != 2*ctxCheckStride {
		t.Errorf("VarsFixed = %d, want %d", res.Stats.VarsFixed, 2*ctxCheckStride)
	}
	fixed := 0
	for vid := 0; vid < s.Instance.NumVars(); vid++ {
		if res.Assignment.Fixed(vid) {
			fixed++
		}
	}
	if fixed != res.Stats.VarsFixed {
		t.Errorf("assignment has %d fixed variables, Stats claims %d", fixed, res.Stats.VarsFixed)
	}
}

// TestFixSequentialCtxUncancelled: a background context changes nothing —
// the run completes and solves the instance.
func TestFixSequentialCtxUncancelled(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(256), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixSequentialCtx(context.Background(), s.Instance, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("violated events: %d", res.Stats.FinalViolatedEvents)
	}
}
