// Package engine provides the sharded worker-pool execution engine behind
// the round-based simulators (the LOCAL runtime, the distributed
// Moser-Tardos resampler and the distributed fixers) and the experiment
// harness.
//
// A Pool is a fixed set of persistent workers. Each call to ForEach or
// ForEachShard partitions the index range [0, n) into contiguous shards and
// lets the workers pull shards off an atomic cursor until the range is
// exhausted. Compared with spawning one goroutine per index per round (the
// original LOCAL simulator), the pool amortises goroutine creation across
// rounds and keeps per-round allocations flat.
//
// Determinism contract: the pool guarantees that fn is called exactly once
// for every index in [0, n), with disjoint contiguous shards, and that the
// call returns only after all indices were processed. It does NOT guarantee
// any ordering between shards. Callers therefore must write results to
// index-addressed locations (out[i] = ...) and must not let the result
// depend on shard execution order; under that discipline results are
// bit-for-bit identical for every worker count, which the golden-table
// tests in internal/exp lock in.
//
// Nesting is safe: the submitting goroutine always participates in the work
// itself and idle workers are enlisted with non-blocking handoffs, so a
// ForEach issued from inside another ForEach (e.g. a LOCAL run inside a
// parallel experiment harness) degrades to inline execution instead of
// deadlocking.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// targetShardsPerWorker controls the shard granularity: enough shards per
// worker for load balancing without making the atomic cursor contended.
const targetShardsPerWorker = 8

// Pool is a fixed-size set of persistent workers executing sharded index
// ranges. The zero value is not usable; construct with New. A nil *Pool is
// valid and executes everything inline on the caller.
type Pool struct {
	workers int
	jobs    chan *job
	closed  atomic.Bool
}

// job is one ForEachShard invocation: workers race on the cursor for the
// next contiguous shard of [0, n).
type job struct {
	cursor atomic.Int64
	n      int64
	shard  int64
	fn     func(lo, hi int)
	wg     sync.WaitGroup
	// track enables steal accounting (RunStats requested); stolen counts
	// shards executed by helper workers rather than the submitter.
	track  bool
	stolen atomic.Int64
	// panicked holds the first panic recovered from any shard of this job
	// (first writer wins). Helper goroutines must never die from a panic in
	// fn — that would kill the whole process — so every shard runs under a
	// recover, and ForEachShardStats re-raises the captured panic on the
	// submitting goroutine once all workers have quiesced.
	panicked atomic.Pointer[fault.PanicError]
}

// run drains shards off the cursor. helper marks runs on pool workers (as
// opposed to the submitting goroutine) for steal accounting.
func (j *job) run(helper bool) {
	shards := 0
	for j.panicked.Load() == nil {
		lo := j.cursor.Add(j.shard) - j.shard
		if lo >= j.n {
			break
		}
		hi := lo + j.shard
		if hi > j.n {
			hi = j.n
		}
		if pe := j.runShard(int(lo), int(hi)); pe != nil {
			// Record the panic and stop claiming shards; racing workers
			// finish their current shard and observe panicked on the next
			// cursor pull, so the job fails fast without tearing a shard.
			j.panicked.CompareAndSwap(nil, pe)
			break
		}
		shards++
	}
	if helper && j.track && shards > 0 {
		j.stolen.Add(int64(shards))
	}
}

// runShard executes fn on one shard, converting a panic into a
// *fault.PanicError that carries the panicking goroutine's stack.
func (j *job) runShard(lo, hi int) (pe *fault.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = fault.CapturePanic(r)
		}
	}()
	j.fn(lo, hi)
	return nil
}

// New creates a pool with the given number of workers. workers <= 0 selects
// runtime.GOMAXPROCS(0). A 1-worker pool spawns no goroutines and executes
// inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// The caller participates in every job, so workers-1 helper
		// goroutines saturate `workers` ways of parallelism.
		p.jobs = make(chan *job)
		for i := 0; i < workers-1; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for j := range p.jobs {
		j.run(true)
		j.wg.Done()
	}
}

// Workers returns the configured worker count (including the caller).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the helper goroutines down. The pool executes inline after
// Close; Close must not be called concurrently with ForEach/ForEachShard.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
}

// RunStats reports how one ForEachShard call executed on the pool: the
// number of shards the range was split into and how many of them helper
// workers picked up (stole) off the atomic cursor rather than the
// submitting goroutine. The observability layer aggregates these into the
// engine_shards_total / engine_shards_stolen_total counters; a zero Stolen
// on a multi-worker pool means the submitter out-raced all helpers (tiny
// ranges) or the call degraded to inline execution.
type RunStats struct {
	// Shards is the number of disjoint contiguous shards executed.
	Shards int
	// Stolen is the number of shards executed by helper workers.
	Stolen int
}

// ForEachShard covers [0, n) with disjoint contiguous shards, invoking fn
// once per shard from the pool's workers (and the calling goroutine). It
// returns after every index was processed. fn must be safe for concurrent
// invocation on disjoint shards.
func (p *Pool) ForEachShard(n int, fn func(lo, hi int)) {
	p.ForEachShardStats(n, fn, nil)
}

// ForEachShardStats is ForEachShard with optional execution accounting:
// when rs is non-nil it is filled with the call's sharding stats. A nil rs
// is the zero-overhead fast path (no steal tracking); ForEachShard uses it.
func (p *Pool) ForEachShardStats(n int, fn func(lo, hi int), rs *RunStats) {
	if n <= 0 {
		if rs != nil {
			*rs = RunStats{}
		}
		return
	}
	if p == nil || p.workers == 1 || p.closed.Load() || n == 1 {
		fn(0, n)
		if rs != nil {
			*rs = RunStats{Shards: 1}
		}
		return
	}
	shard := (n + p.workers*targetShardsPerWorker - 1) / (p.workers * targetShardsPerWorker)
	if shard < 1 {
		shard = 1
	}
	j := &job{n: int64(n), shard: int64(shard), fn: fn, track: rs != nil}
	// Enlist idle helpers without blocking: a send on the unbuffered channel
	// succeeds only if a worker is parked in its receive. Busy workers (we
	// may be running inside one) are skipped, which is what makes nested
	// ForEach calls deadlock-free.
	for i := 0; i < p.workers-1; i++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j:
		default:
			j.wg.Done()
		}
	}
	j.run(false) // the caller always participates
	j.wg.Wait()
	if rs != nil {
		rs.Shards = int((int64(n) + j.shard - 1) / j.shard)
		rs.Stolen = int(j.stolen.Load())
	}
	// Panic isolation: a panic in fn — on a helper or on the submitter — is
	// recovered at the shard boundary, every worker quiesces, and the first
	// captured panic is re-raised HERE, on the submitting goroutine, as a
	// *fault.PanicError preserving the original stack. Helper goroutines
	// survive and the pool stays usable; callers that want to survive too
	// (the job service's scheduler) recover it, callers that don't keep the
	// ordinary crash semantics. On this path the every-index guarantee is
	// void: the range was only partially processed.
	if pe := j.panicked.Load(); pe != nil {
		panic(pe)
	}
}

// ForEach invokes fn once for every index in [0, n), sharded across the
// pool. See ForEachShard for the concurrency and determinism contract.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachShard(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RoundStats describes one synchronous round executed on the pool, as
// reported by the round-based consumers' Options.OnRound observers (the
// LOCAL runtime, and the Moser-Tardos parallel resampler which maps its
// iteration counters onto the same shape). Every field is deterministic —
// identical for every worker count — so per-round streams can be compared
// across worker counts; timings and sharding stats, which do vary, flow
// through the obs metrics/trace channels instead.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// Steps is the number of machines stepped (Round invocations) this
	// round.
	Steps int
	// Messages is the number of non-nil messages delivered this round.
	Messages int
	// Active is the number of machines still running after the round.
	Active int
	// Halted is the number of machines that halted in this round.
	Halted int
	// Dropped is the number of messages removed by fault injection this
	// round; Crashed the number of machines crash-stopped for the round
	// (local.Options.Fault). Both are zero without an injector, and both
	// are keyed by (round, node[, port]) hashes, so they stay deterministic
	// and worker-count independent like every other field.
	Dropped int
	Crashed int
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool with GOMAXPROCS workers, created on
// first use and never closed. Round-based simulators default to it so that
// buffer-sized worker state persists across runs.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(runtime.GOMAXPROCS(0)) })
	return sharedPool
}
