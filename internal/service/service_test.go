package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubRunner is a controllable Runner: it signals starts, then blocks until
// released or cancelled. runs counts jobs that actually executed.
type stubRunner struct {
	started chan string
	release chan struct{}
	runs    atomic.Int64
}

func newStubRunner() *stubRunner {
	return &stubRunner{started: make(chan string, 64), release: make(chan struct{}, 64)}
}

func (r *stubRunner) run(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
	r.runs.Add(1)
	r.started <- js.Family
	emit(Event{Kind: "round", Round: 1})
	select {
	case <-r.release:
		return &Summary{Algorithm: js.Algorithm, Satisfied: true}, nil
	case <-ctx.Done():
		return &Summary{Algorithm: js.Algorithm}, fmt.Errorf("stub stopped: %w", ctx.Err())
	}
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", j.ID, j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitStarted(t *testing.T, r *stubRunner) {
	t.Helper()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no job started within 5s")
	}
}

// TestQueueFullAdmission: with one in-flight slot and a queue of one, the
// third concurrent job is rejected with ErrQueueFull — admission control
// sheds load instead of building a backlog.
func TestQueueFullAdmission(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(Config{QueueCap: 1, MaxInFlight: 1, Metrics: reg, Runner: r.run})
	defer s.Shutdown(context.Background())

	a, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, r) // a is running, the queue is empty
	b, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("service_admission_rejects_total").Value(); got != 1 {
		t.Errorf("rejects counter = %d, want 1", got)
	}
	if got := reg.Gauge("service_queue_depth").Value(); got != 1 {
		t.Errorf("queue depth gauge = %v, want 1 (job b)", got)
	}

	r.release <- struct{}{}
	r.release <- struct{}{}
	waitState(t, a, StateDone)
	waitState(t, b, StateDone)
	if got := reg.Gauge("service_queue_depth").Value(); got != 0 {
		t.Errorf("queue depth gauge after drain = %v, want 0", got)
	}
	if got := reg.Counter("service_jobs_done_total").Value(); got != 2 {
		t.Errorf("done counter = %d, want 2", got)
	}
}

// TestCancelWhileQueued: cancelling a job that is still waiting finalizes
// it immediately and the scheduler never runs it.
func TestCancelWhileQueued(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Metrics: reg, Runner: r.run})
	defer s.Shutdown(context.Background())

	a, _ := s.Submit(JobSpec{})
	waitStarted(t, r)
	b, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != StateCancelled {
		t.Fatalf("cancelled-while-queued state = %q, want %q immediately", st, StateCancelled)
	}

	r.release <- struct{}{}
	waitState(t, a, StateDone)
	// Give the scheduler a chance to (wrongly) pick up b.
	time.Sleep(20 * time.Millisecond)
	if got := r.runs.Load(); got != 1 {
		t.Errorf("runner executed %d jobs, want 1 (cancelled job must be skipped)", got)
	}
	if got := reg.Counter("service_jobs_cancelled_total").Value(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
	// Cancel is idempotent on terminal jobs.
	if _, err := s.Cancel(b.ID); err != nil {
		t.Errorf("second cancel: %v", err)
	}
	if got := reg.Counter("service_jobs_cancelled_total").Value(); got != 1 {
		t.Errorf("cancelled counter after idempotent cancel = %d, want 1", got)
	}
}

// TestCancelWhileRunning: cancelling a running job cancels its context;
// the runner's partial summary is retained and marked Partial.
func TestCancelWhileRunning(t *testing.T) {
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run})
	defer s.Shutdown(context.Background())

	a, _ := s.Submit(JobSpec{})
	waitStarted(t, r)
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateCancelled)
	v := a.View()
	if v.Result == nil || !v.Result.Partial {
		t.Errorf("cancelled run result = %+v, want retained partial summary", v.Result)
	}
	if v.Error == "" {
		t.Error("cancelled run lost its error message")
	}
}

// TestShutdownDrain: Shutdown stops admission, cancels queued jobs, and
// waits for running jobs to finish normally.
func TestShutdownDrain(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Metrics: reg, Runner: r.run})

	a, _ := s.Submit(JobSpec{})
	waitStarted(t, r)
	b, _ := s.Submit(JobSpec{})

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	waitState(t, b, StateCancelled) // queued job cancelled by the drain
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobSpec{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	r.release <- struct{}{} // let the running job complete
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown returned %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the running job finished")
	}
	if st := a.State(); st != StateDone {
		t.Errorf("running job drained into %q, want %q", st, StateDone)
	}
}

// TestShutdownDeadlineCancelsRunning: when the drain context expires, the
// running jobs are cancelled through their run contexts and Shutdown
// returns the context error.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run})

	a, _ := s.Submit(JobSpec{})
	waitStarted(t, r)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	waitState(t, a, StateCancelled)
}

// TestRetention: terminal jobs beyond Config.Retention are evicted oldest
// first; Get on an evicted id reports ErrNotFound.
func TestRetention(t *testing.T) {
	r := newStubRunner()
	s := New(Config{QueueCap: 8, MaxInFlight: 1, Retention: 2, Runner: r.run})
	defer s.Shutdown(context.Background())

	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		waitStarted(t, r)
		r.release <- struct{}{}
		waitState(t, j, StateDone)
	}
	// Eviction happens at admission: submit one more to trigger it.
	last, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(jobs[0].ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest job still retained, want ErrNotFound")
	}
	if _, err := s.Get(jobs[4].ID); err != nil {
		t.Errorf("newest terminal job evicted too eagerly: %v", err)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, last, StateDone)
}

// TestSchedulerLeaksNoGoroutines: a full submit/run/shutdown cycle returns
// the process to its baseline goroutine count.
func TestSchedulerLeaksNoGoroutines(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	r := newStubRunner()
	s := New(Config{QueueCap: 8, MaxInFlight: 4, Runner: r.run})
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(JobSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		waitStarted(t, r)
		r.release <- struct{}{}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventStreamOrdering: events carry dense sequence numbers and the
// lifecycle kinds appear in order across the queued→running→done path.
func TestEventStreamOrdering(t *testing.T) {
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run})
	defer s.Shutdown(context.Background())

	j, _ := s.Submit(JobSpec{})
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, j, StateDone)

	events, _, state := j.EventsSince(0)
	if !state.Terminal() {
		t.Fatalf("state = %q after done wait", state)
	}
	kinds := make([]string, len(events))
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d, want dense numbering", i, e.Seq)
		}
		kinds[i] = e.Kind
	}
	want := []string{"queued", "start", "round", "end"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if last := events[len(events)-1]; last.State != StateDone {
		t.Errorf("end event state = %q, want %q", last.State, StateDone)
	}
}

// TestRunSpecEndToEnd exercises the real runner on every algorithm over a
// small solvable instance: each produces a satisfied summary, and the
// LOCAL-backed ones stream round events.
func TestRunSpecEndToEnd(t *testing.T) {
	for _, alg := range []string{AlgSeq, AlgDist, AlgMTSeq, AlgMTPar, AlgMTDist, AlgOneShot} {
		t.Run(alg, func(t *testing.T) {
			var rounds atomic.Int64
			emit := func(e Event) {
				if e.Kind == "round" {
					rounds.Add(1)
				}
			}
			sum, err := RunSpec(context.Background(),
				JobSpec{Family: FamilySinkless, N: 48, Margin: 0.9, Algorithm: alg, Seed: 7},
				Attempt{Number: 1}, emit, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if alg != AlgOneShot && !sum.Satisfied {
				t.Errorf("%s: summary not satisfied: %+v", alg, sum)
			}
			if sum.NumEvents != 48 {
				t.Errorf("NumEvents = %d, want 48", sum.NumEvents)
			}
			switch alg {
			case AlgDist, AlgMTDist, AlgMTPar:
				if rounds.Load() == 0 {
					t.Errorf("%s: no round events emitted", alg)
				}
			}
		})
	}
}

// TestRunSpecCancelDist: a real distributed job cancelled mid-run returns a
// partial summary carrying the rounds completed so far.
func TestRunSpecCancelDist(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawRound := false
	emit := func(e Event) {
		if e.Kind == "round" && e.Round == 2 {
			sawRound = true
			cancel()
		}
	}
	sum, err := RunSpec(ctx,
		JobSpec{Family: FamilySinkless, N: 4096, Margin: 0.9, Algorithm: AlgDist, Seed: 3},
		Attempt{Number: 1}, emit, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !sawRound {
		t.Fatal("cancel hook never fired")
	}
	if sum == nil {
		t.Fatal("cancelled RunSpec returned nil summary")
	}
	if sum.ViolatedEvents != -1 {
		t.Errorf("partial summary claims a violated count: %d", sum.ViolatedEvents)
	}
}

// TestSubmitValidation: bad specs are rejected at admission, not at run
// time.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{QueueCap: 2, MaxInFlight: 1, Runner: newStubRunner().run})
	defer s.Shutdown(context.Background())
	for _, js := range []JobSpec{
		{Family: "nope"},
		{Algorithm: "nope"},
		{Family: FamilyHyper, N: 31, Degree: 4}, // 31*4 not divisible by 3
		{Family: FamilyInline},                  // missing instance
		{N: -1},
		{TimeoutMS: -5},
	} {
		if _, err := s.Submit(js); err == nil {
			t.Errorf("spec %+v admitted, want validation error", js)
		}
	}
}
