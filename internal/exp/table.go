// Package exp is the experiment harness of the reproduction: it regenerates
// every figure and theorem-shaped claim of the paper as a printed table
// (see DESIGN.md section 3 for the experiment index F1, F2, T1-T8) and is
// shared by the cmd/ tools and the benchmark suite.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T1").
	ID string
	// Title is the human-readable experiment name.
	Title string
	// Note explains what to look for in the rows (the paper-shape check).
	Note string
	// Header labels the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends a formatted row built from arbitrary values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 0.01 && v < 1000:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// CSV writes the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}
