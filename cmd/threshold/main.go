// Command threshold sweeps the exponential-criterion margin p·2^d of
// sinkless-orientation instances across the sharp threshold and reports,
// for every margin: the deterministic fixer's outcome under the greedy and
// the adversarial strategy, the certified probability bound, the empirical
// one-shot failure rate, and the Moser-Tardos resampling cost. The printed
// series is the empirical face of the paper's title result.
//
// Usage:
//
//	threshold [-n N] [-d D] [-margins "0.5,0.9,0.99,1.0"] [-trials N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	lll "repro"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/mt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "threshold:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 64, "cycle length / node count")
	d := flag.Int("d", 2, "degree of the regular topology (2 = cycle)")
	marginsFlag := flag.String("margins", "0.25,0.5,0.75,0.9,0.99,0.999,1.0", "comma-separated margins p*2^d to sweep")
	trials := flag.Int("trials", 400, "one-shot and Moser-Tardos trials per margin")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	margins, err := parseMargins(*marginsFlag)
	if err != nil {
		return err
	}
	var g *lll.Graph
	if *d == 2 {
		g = lll.NewCycle(*n)
	} else {
		g, err = lll.NewRandomRegular(*n, *d, lll.NewRand(*seed))
		if err != nil {
			return err
		}
	}

	tbl := &exp.Table{
		ID:    "T5+",
		Title: fmt.Sprintf("Sharp threshold sweep on %d-regular topology, n=%d", *d, *n),
		Note: "Strictly below margin 1 the deterministic fixer succeeds under EVERY strategy " +
			"(the paper's guarantee); at margin 1 the certified bound degenerates to 1 and the " +
			"adversarial strategy fails. Randomized costs rise toward the threshold.",
		Header: []string{"margin", "greedy viol", "advers viol", "peak cert bound", "one-shot fail", "MT resamples (avg)"},
	}
	r := lll.NewRand(*seed)
	for _, m := range margins {
		s, err := lll.NewSinklessWithMargin(g, m)
		if err != nil {
			return err
		}
		greedy, err := lll.Solve(s.Instance, lll.Options{Strategy: lll.StrategyMinScore})
		if err != nil {
			return err
		}
		adv, err := lll.Solve(s.Instance, lll.Options{Strategy: lll.StrategyAdversarial})
		if err != nil {
			return err
		}
		failures := 0
		resamples := 0
		for i := 0; i < *trials; i++ {
			a := model.NewAssignment(s.Instance)
			for vid := 0; vid < s.Instance.NumVars(); vid++ {
				a.Fix(vid, s.Instance.Var(vid).Dist.Sample(r))
			}
			violated, err := s.Instance.CountViolated(a)
			if err != nil {
				return err
			}
			if violated > 0 {
				failures++
			}
			res, err := mt.Sequential(s.Instance, r.Split(), 0)
			if err != nil {
				return err
			}
			resamples += res.Resamplings
		}
		tbl.AddRow(m, greedy.Stats.FinalViolatedEvents, adv.Stats.FinalViolatedEvents,
			adv.Stats.PeakCertBound,
			float64(failures)/float64(*trials),
			float64(resamples)/float64(*trials))
	}
	tbl.Render(os.Stdout)
	return nil
}

func parseMargins(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad margin %q: %w", p, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("margin %v outside (0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no margins given")
	}
	return out, nil
}
