package kernel

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/model"
)

// FuzzAssignmentPackRoundTrip drives a fuzzer-chosen Fix/Unfix/Set program
// against the bit-packed Assignment and a plain model.Assignment in
// lockstep, over a fuzzer-chosen variable layout (count and per-variable
// value-space sizes, which select the packed width). After every operation
// the fixed mask, fixed count and fixed values must agree, and at the end
// the state must survive PackFrom/UnpackTo round trips in both directions.
//
// Byte program: data[0] picks the variable count (1..16), the next numVars
// bytes pick each variable's value-space size (1..64 — spanning the 1, 2, 4
// and 8-bit packed widths), and the rest is consumed in (op, var, value)
// triples.
func FuzzAssignmentPackRoundTrip(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x02, 0x01, 0x3f, 0x02, 0x00, 0x30, 0x00, 0x01, 0x05})
	f.Add([]byte{0x07, 0x01, 0x02, 0x03, 0x04, 0x1f, 0x20, 0x3e,
		0x00, 0x03, 0x02, 0x01, 0x03, 0x00, 0x02, 0x06, 0x11, 0x02, 0x06, 0x12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		numVars := int(data[0]%16) + 1
		data = data[1:]
		if len(data) < numVars {
			return
		}
		b := model.NewBuilder()
		sizes := make([]int, numVars)
		ds := make([]*dist.Distribution, numVars)
		for v := 0; v < numVars; v++ {
			sizes[v] = int(data[v]%64) + 1
			ds[v] = dist.Uniform(sizes[v])
			b.AddVariable(ds[v], "")
		}
		data = data[numVars:]
		// One event so the instance builds; its shape is irrelevant here.
		model.AddConjunctionEvent(b, []int{0}, [][]int{{0}}, ds[:1], "anchor")
		inst, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(inst)
		if err != nil {
			t.Fatal(err)
		}

		ka := c.NewAssignment()
		ma := model.NewAssignment(inst)
		check := func(step int) {
			if ka.NumFixed() != ma.NumFixed() || ka.Complete() != ma.Complete() {
				t.Fatalf("step %d: counters diverge: packed %d/%v model %d/%v",
					step, ka.NumFixed(), ka.Complete(), ma.NumFixed(), ma.Complete())
			}
			for v := 0; v < numVars; v++ {
				if ka.Fixed(v) != ma.Fixed(v) {
					t.Fatalf("step %d: Fixed(%d) diverges", step, v)
				}
				if ka.Fixed(v) && ka.Value(v) != ma.Value(v) {
					t.Fatalf("step %d: Value(%d): packed %d model %d",
						step, v, ka.Value(v), ma.Value(v))
				}
			}
		}
		for i := 0; i+2 < len(data); i += 3 {
			v := int(data[i+1]) % numVars
			val := int(data[i+2]) % sizes[v]
			switch data[i] % 3 {
			case 0:
				if !ma.Fixed(v) {
					ma.Fix(v, val)
					ka.Fix(v, val)
				}
			case 1:
				if ma.Fixed(v) {
					ma.Unfix(v)
					ka.Unfix(v)
				}
			default: // Set = fix-or-overwrite
				if ma.Fixed(v) {
					ma.Unfix(v)
				}
				ma.Fix(v, val)
				ka.Set(v, val)
			}
			check(i)
		}

		// Round trips: packed -> model -> packed and model -> packed.
		back := ka.UnpackTo()
		ka2 := c.NewAssignment()
		ka2.PackFrom(back)
		for v := 0; v < numVars; v++ {
			if ka2.Fixed(v) != ka.Fixed(v) {
				t.Fatalf("round trip: Fixed(%d) diverges", v)
			}
			if ka.Fixed(v) && ka2.Value(v) != ka.Value(v) {
				t.Fatalf("round trip: Value(%d) diverges", v)
			}
		}
		ka3 := c.NewAssignment()
		ka3.PackFrom(ma)
		for v := 0; v < numVars; v++ {
			if ka3.Fixed(v) != ma.Fixed(v) {
				t.Fatalf("PackFrom: Fixed(%d) diverges", v)
			}
			if ma.Fixed(v) && ka3.Value(v) != ma.Value(v) {
				t.Fatalf("PackFrom: Value(%d) diverges", v)
			}
		}
	})
}
