// Package prng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// node of the LOCAL simulator, every workload generator and every randomized
// baseline must produce identical streams for identical seeds, independent of
// goroutine scheduling. The generators here are therefore plain value types
// with no global state; callers derive independent child streams with Split.
//
// The implementation follows the public-domain reference implementations of
// SplitMix64 (Steele, Lea, Flood 2014) and xoshiro256** (Blackman, Vigna
// 2018).
package prng

import "math"

// SplitMix64 is a tiny 64-bit generator with a single word of state. It is
// primarily used for seeding and for splitting independent streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality mixing
// function used to derive per-entity seeds from (seed, id) pairs without
// constructing a generator.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is NOT valid; construct
// instances with New or Split so that the state is properly seeded.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro256** requires a state that is not all zero; SplitMix64 output
	// for any seed makes this astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// State returns the generator's full internal state. Together with
// FromState it lets checkpoint/resume machinery (internal/fault) persist a
// stream mid-run and continue it bit-identically later; reading the state
// does not advance the stream.
func (r *Rand) State() [4]uint64 {
	return r.s
}

// FromState reconstructs a generator from a State snapshot. The returned
// generator continues the stream exactly where State was captured.
func FromState(s [4]uint64) *Rand {
	r := &Rand{s: s}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		// An all-zero state is invalid for xoshiro256**; treat it as the
		// (equally arbitrary) default seeding instead of cycling on zeros.
		return New(0)
	}
	return r
}

// Split derives an independent child generator from the parent stream. The
// parent advances by one step; children created by successive Split calls are
// statistically independent of each other and of the parent's future output.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next 64 bits of the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster, but modulo with a
	// rejection loop keeps the code obviously correct and is fast enough for
	// our workloads.
	bound := uint64(n)
	threshold := -bound % bound // == 2^64 mod bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the polar Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
