package engine

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// recoverPanic runs fn and returns the value it panicked with (nil if it
// returned normally).
func recoverPanic(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

// TestPanicIsolationMultiWorker checks the pool's panic protocol: a panic
// inside a shard surfaces on the submitting goroutine as a *fault.PanicError
// carrying the original value and the panic site's stack, regardless of
// which worker ran the shard.
func TestPanicIsolationMultiWorker(t *testing.T) {
	p := New(4)
	defer p.Close()
	boom := errors.New("shard exploded")
	v := recoverPanic(func() {
		p.ForEach(1000, func(i int) {
			if i == 517 {
				panic(boom)
			}
		})
	})
	pe, ok := v.(*fault.PanicError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *fault.PanicError", v, v)
	}
	if pe.Value != boom {
		t.Errorf("Value = %v, want the original panic value", pe.Value)
	}
	if !errors.Is(pe, boom) {
		t.Error("PanicError does not unwrap to the original error")
	}
	if !strings.Contains(string(pe.Stack), "TestPanicIsolationMultiWorker") {
		t.Error("stack does not point at the panic site")
	}
}

// TestPanicFirstWins checks that when many shards panic concurrently,
// exactly one *fault.PanicError surfaces and the call still returns
// (every worker quiesces).
func TestPanicFirstWins(t *testing.T) {
	p := New(8)
	defer p.Close()
	for trial := 0; trial < 20; trial++ {
		v := recoverPanic(func() {
			p.ForEachShard(10000, func(lo, hi int) {
				panic(lo)
			})
		})
		pe, ok := v.(*fault.PanicError)
		if !ok {
			t.Fatalf("trial %d: recovered %T, want *fault.PanicError", trial, v)
		}
		if _, ok := pe.Value.(int); !ok {
			t.Fatalf("trial %d: panic value %v is not one of the shard values", trial, pe.Value)
		}
	}
}

// TestPoolUsableAfterPanic checks recovery leaves the pool fully
// functional: helper workers survive, the next ForEach covers every index
// exactly once, and no goroutines leak across repeated panic/recover
// cycles.
func TestPoolUsableAfterPanic(t *testing.T) {
	p := New(4)
	defer p.Close()
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 10; cycle++ {
		v := recoverPanic(func() {
			p.ForEach(500, func(i int) {
				if i%100 == 3 {
					panic("cycle boom")
				}
			})
		})
		if v == nil {
			t.Fatalf("cycle %d: panic did not propagate", cycle)
		}
		visits := make([]int32, 2000)
		p.ForEach(len(visits), func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, n := range visits {
			if n != 1 {
				t.Fatalf("cycle %d: index %d visited %d times after recovery", cycle, i, n)
			}
		}
	}
	// Helpers park between jobs; give stragglers a moment before comparing.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d → %d across panic cycles", before, after)
	}
}

// TestPanicInlineFastPath checks the single-worker inline path: the panic
// propagates on the caller directly (no pool machinery involved), so the
// raw value arrives unwrapped and recover-based callers still see it.
func TestPanicInlineFastPath(t *testing.T) {
	p := New(1)
	defer p.Close()
	v := recoverPanic(func() {
		p.ForEach(10, func(i int) { panic("inline") })
	})
	if v != "inline" {
		t.Fatalf("recovered %v, want the raw panic value on the inline path", v)
	}
}
