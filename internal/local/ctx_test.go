package local

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
)

// spinMachine never halts and sends nothing: a pure compute load for
// cancellation tests, where the run can only end through Ctx or MaxRounds.
type spinMachine struct{}

func (m *spinMachine) Init(NodeInfo) {}

func (m *spinMachine) Round(int, []Message) ([]Message, bool) { return nil, false }

// TestRunCtxCancelMidRound cancels a large run from inside its OnRound
// observer and demands that the runtime stops before the next round: the
// cancel fires after round 50's delivery phase, so exactly 50 rounds of
// stats must be reported, and the error must expose context.Canceled.
func TestRunCtxCancelMidRound(t *testing.T) {
	const nodes, cancelAt = 50_000, 50
	g := graph.Cycle(nodes)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stats, err := Run(g, func(int) Machine { return &spinMachine{} }, Options{
		Ctx: ctx,
		OnRound: func(rs engine.RoundStats) {
			if rs.Round == cancelAt {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Rounds != cancelAt {
		t.Errorf("Rounds = %d, want exactly %d (cancellation must be observed within one round)", stats.Rounds, cancelAt)
	}
	if want := cancelAt * nodes; stats.Steps != want {
		t.Errorf("Steps = %d, want %d", stats.Steps, want)
	}
}

// TestRunCtxAlreadyCancelled: a context that is done before the run starts
// stops it before the first round, with zero partial stats.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Run(graph.Cycle(64), func(int) Machine { return &spinMachine{} }, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats != (Stats{}) {
		t.Errorf("stats = %+v, want zero", stats)
	}
}

// TestRunCtxDeadline: a deadline context surfaces context.DeadlineExceeded
// through the same path.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err := Run(graph.Cycle(64), func(int) Machine { return &spinMachine{} }, Options{Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxCancelLeaksNoGoroutines is the stdlib goleak check: cancelled
// runs — on the shared pool and on transient per-run pools — must leave the
// process goroutine count where it was. The shared pool's persistent
// workers are warmed up before the baseline is taken so they do not read as
// leaks.
func TestRunCtxCancelLeaksNoGoroutines(t *testing.T) {
	warm := graph.Cycle(256)
	if _, err := Run(warm, func(int) Machine { return &spinMachine{} }, Options{MaxRounds: 2}); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("warm-up run: %v", err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	g := graph.Cycle(20_000)
	for _, workers := range []int{0, 1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(g, func(int) Machine { return &spinMachine{} }, Options{
			Ctx:     ctx,
			Workers: workers,
			OnRound: func(rs engine.RoundStats) {
				if rs.Round == 5 {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled runs: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
