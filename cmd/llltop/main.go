// Command llltop is a live terminal dashboard for the llld daemon: it
// polls /metrics (Prometheus text) and /slo (burn-rate JSON) and renders
// one compact frame per interval — admission and outcome counters, queue
// and run latency quantiles, per-objective SLO burn rates with the fast-burn
// flag, and the freshest trace-ID exemplars linking slow requests back to
// the daemon's JSONL trace log.
//
// Usage:
//
//	llltop -addr http://localhost:8080 -interval 2s
//	llltop -addr http://localhost:8080 -once        # one frame, no ANSI, exit
//
// -once renders a single frame without clearing the screen and exits with
// status 1 if either endpoint is unreachable, which makes it usable from
// scripts and smoke tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/slo"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "llld base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "render one frame without ANSI control codes and exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	if *once {
		if err := frame(os.Stdout, client, *addr, false); err != nil {
			fmt.Fprintln(os.Stderr, "llltop:", err)
			os.Exit(1)
		}
		return
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := frame(os.Stdout, client, *addr, true); err != nil {
			fmt.Fprintln(os.Stdout, "llltop:", err, "(retrying)")
		}
		select {
		case <-tick.C:
		case <-sigCh:
			return
		}
	}
}

// frame fetches both endpoints and renders one dashboard frame. In live
// mode the frame starts with an ANSI clear so it repaints in place.
func frame(w io.Writer, client *http.Client, addr string, ansi bool) error {
	metrics, hists, merr := fetchMetrics(client, addr)
	status, serr := fetchSLO(client, addr)
	if merr != nil && serr != nil {
		return fmt.Errorf("%v; %v", merr, serr)
	}
	if ansi {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "llltop — %s   %s\n\n", addr, time.Now().Format(time.RFC3339))
	if merr != nil {
		fmt.Fprintf(w, "/metrics unavailable: %v\n", merr)
	} else {
		renderMetrics(w, metrics, hists)
	}
	if serr != nil {
		fmt.Fprintf(w, "\n/slo unavailable: %v\n", serr)
	} else {
		renderSLO(w, status)
	}
	return nil
}

func renderMetrics(w io.Writer, m map[string]float64, hists map[string][]promBucket) {
	fmt.Fprintf(w, "admission  queue=%.0f  running=%.0f  submitted=%.0f  rejects=%.0f  shed=%.0f\n",
		m["service_queue_depth"], m["service_jobs_running"], m["service_jobs_submitted_total"],
		m["service_admission_rejects_total"], m["service_admission_shed_total"])
	fmt.Fprintf(w, "outcomes   done=%.0f  failed=%.0f  cancelled=%.0f  retries=%.0f  gaveup=%.0f  panics=%.0f\n",
		m["service_jobs_done_total"], m["service_jobs_failed_total"], m["service_jobs_cancelled_total"],
		m["service_retries_total"], m["service_gaveup_total"], m["service_panics_total"])
	fmt.Fprintf(w, "latency    queue p50=%s p99=%s | run p50=%s p99=%s\n",
		fmtSec(histQuantile(hists["service_job_queue_seconds"], 0.50)),
		fmtSec(histQuantile(hists["service_job_queue_seconds"], 0.99)),
		fmtSec(histQuantile(hists["service_job_run_seconds"], 0.50)),
		fmtSec(histQuantile(hists["service_job_run_seconds"], 0.99)))
}

func renderSLO(w io.Writer, st *slo.Status) {
	burning := "ok"
	if st.FastBurn {
		burning = "FAST BURN — shedding deadline'd jobs"
	}
	fmt.Fprintf(w, "\nSLO        %s   (burn factor %g, windows %gs/%gs)\n",
		burning, st.BurnFactor, st.ShortWindowS, st.LongWindowS)
	for _, o := range st.Objectives {
		line := fmt.Sprintf("  %-12s burn short=%.2f long=%.2f  good=%d bad=%d",
			o.Name, o.BurnShort, o.BurnLong, o.Good, o.Bad)
		if o.Kind == slo.Latency.String() {
			line += fmt.Sprintf("  p50=%s p99=%s", fmtSec(float64(o.P50)), fmtSec(float64(o.P99)))
		}
		if o.FastBurn {
			line += "  [burning]"
		}
		fmt.Fprintln(w, line)
		for _, ex := range freshestExemplars(o.Exemplars, 3) {
			fmt.Fprintf(w, "    exemplar trace=%s le=%s value=%s\n",
				ex.Trace, fmtSec(float64(ex.Bound)), fmtSec(ex.Value))
		}
	}
}

// freshestExemplars returns the n most recent exemplars, newest first.
func freshestExemplars(exs []slo.Exemplar, n int) []slo.Exemplar {
	out := append([]slo.Exemplar(nil), exs...)
	sort.Slice(out, func(i, j int) bool { return out[i].UnixNS > out[j].UnixNS })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func fmtSec(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "+Inf"
	case s <= 0:
		return "0"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// promBucket is one cumulative histogram bucket parsed from /metrics.
type promBucket struct {
	le  float64
	cum float64
}

// fetchMetrics scrapes and parses the Prometheus text endpoint: plain
// series land in the flat map keyed by metric name, `_bucket` series are
// collected per histogram (sorted by bound) for quantile estimates.
func fetchMetrics(client *http.Client, addr string) (map[string]float64, map[string][]promBucket, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, nil, err
	}
	metrics, hists := parseProm(string(body))
	return metrics, hists, nil
}

// parseProm understands the subset of the text format the obs registry
// emits: `name value` and `name_bucket{le="bound"} value` lines.
func parseProm(text string) (map[string]float64, map[string][]promBucket) {
	metrics := make(map[string]float64)
	hists := make(map[string][]promBucket)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name, valStr := fields[0], fields[1]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base, labels := name[:i], name[i:]
			if strings.HasSuffix(base, "_bucket") {
				hist := strings.TrimSuffix(base, "_bucket")
				if le, ok := parseLE(labels); ok {
					hists[hist] = append(hists[hist], promBucket{le: le, cum: val})
				}
			}
			continue
		}
		metrics[name] = val
	}
	for _, bs := range hists {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	}
	return metrics, hists
}

func parseLE(labels string) (float64, bool) {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	if rest[:j] == "+Inf" {
		return math.Inf(1), true
	}
	le, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return le, true
}

// histQuantile estimates quantile q as the upper bound of the first
// cumulative bucket covering it — the same coarse estimate the SLO engine
// reports, so the two panels agree.
func histQuantile(buckets []promBucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	rank := q * total
	for _, b := range buckets {
		if b.cum >= rank {
			return b.le
		}
	}
	return buckets[len(buckets)-1].le
}

// fetchSLO decodes the /slo JSON status (slo.Seconds handles the "+Inf"
// quantile encoding).
func fetchSLO(client *http.Client, addr string) (*slo.Status, error) {
	resp, err := client.Get(addr + "/slo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/slo: %s", resp.Status)
	}
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("/slo: %w", err)
	}
	return &st, nil
}
