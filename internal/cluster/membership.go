package cluster

import (
	"sort"

	"repro/internal/prng"
)

// Membership is the cluster's node set at one point in time, versioned by
// an epoch. Every process (node or router) holds a current Membership and
// adopts any strictly newer one it sees — last writer wins by epoch, with
// a deterministic content hash breaking the (rare) tie of two concurrent
// changes minting the same epoch. The ring is always a pure function of
// Nodes, so two processes that agree on the Membership agree on every
// key's owner without further coordination.
type Membership struct {
	// Epoch orders membership versions; every join/leave increments it.
	Epoch int64 `json:"epoch"`
	// Nodes is the member set, name → base URL.
	Nodes map[string]string `json:"nodes"`
}

// Clone deep-copies the membership.
func (m Membership) Clone() Membership {
	nodes := make(map[string]string, len(m.Nodes))
	for name, url := range m.Nodes {
		nodes[name] = url
	}
	return Membership{Epoch: m.Epoch, Nodes: nodes}
}

// Names returns the member names, sorted.
func (m Membership) Names() []string {
	out := make([]string, 0, len(m.Nodes))
	for name := range m.Nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hash folds the member set (names and URLs, order-independent via the
// sorted fold) and epoch into one value — the tie-breaker between two
// different memberships carrying the same epoch.
func (m Membership) Hash() uint64 {
	h := prng.Mix64(uint64(m.Epoch) ^ 0x3e3b)
	for _, name := range m.Names() {
		h = prng.Mix64(h ^ hashString(name))
		h = prng.Mix64(h ^ hashString(m.Nodes[name]))
	}
	return h
}

// Equal reports whether two memberships have the same epoch and node set.
func (m Membership) Equal(o Membership) bool {
	if m.Epoch != o.Epoch || len(m.Nodes) != len(o.Nodes) {
		return false
	}
	for name, url := range m.Nodes {
		if o.Nodes[name] != url {
			return false
		}
	}
	return true
}

// Newer reports whether m should replace o: a strictly higher epoch wins;
// the same epoch with different content falls back to the content hash so
// every process converges on one of the two (never oscillates).
func (m Membership) Newer(o Membership) bool {
	if m.Epoch != o.Epoch {
		return m.Epoch > o.Epoch
	}
	if m.Equal(o) {
		return false
	}
	return m.Hash() > o.Hash()
}

// WithJoin returns the next membership with a node added (or its URL
// updated): epoch+1, everything else carried over. The receiver is not
// modified.
func (m Membership) WithJoin(name, url string) Membership {
	next := m.Clone()
	if next.Nodes == nil {
		next.Nodes = make(map[string]string, 1)
	}
	next.Nodes[name] = url
	next.Epoch = m.Epoch + 1
	return next
}

// WithLeave returns the next membership with a node removed: epoch+1.
// Removing an absent node still mints a new epoch (the intent "this node
// must be out" propagates either way).
func (m Membership) WithLeave(name string) Membership {
	next := m.Clone()
	delete(next.Nodes, name)
	next.Epoch = m.Epoch + 1
	return next
}

// Ring builds the consistent-hash ring for this membership.
func (m Membership) Ring(vnodes int) *Ring {
	return NewRing(m.Names(), vnodes)
}
