package graph

import (
	"fmt"

	"repro/internal/prng"
)

// Cycle returns the cycle C_n. It requires n >= 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		mustAdd(b, i, (i+1)%n)
	}
	return b.Build()
}

// Path returns the path P_n on n nodes (n-1 edges). It requires n >= 1.
func Path(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: Path needs n >= 1, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(b, i, i+1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(b, i, j)
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid needs positive dimensions")
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols torus (wrap-around grid). Both dimensions
// must be at least 3 so the graph stays simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs dimensions >= 3")
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAdd(b, id(r, c), id(r, (c+1)%cols))
			mustAdd(b, id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns a complete binary tree on n nodes, with node 0
// as the root and node i's parent being (i-1)/2.
func CompleteBinaryTree(n int) *Graph {
	if n < 1 {
		panic("graph: CompleteBinaryTree needs n >= 1")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, i, (i-1)/2)
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n nodes, generated
// by decoding a random Prüfer sequence.
func RandomTree(n int, r *prng.Rand) *Graph {
	if n < 1 {
		panic("graph: RandomTree needs n >= 1")
	}
	b := NewBuilder(n)
	if n == 1 {
		return b.Build()
	}
	if n == 2 {
		mustAdd(b, 0, 1)
		return b.Build()
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = r.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	// Standard Prüfer decoding with a pointer-and-leaf scan.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		mustAdd(b, leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	mustAdd(b, leaf, n-1)
	return b.Build()
}

// RandomRegular returns a random d-regular simple graph on n nodes using the
// configuration model with restarts. It requires n*d even, d < n and d >= 0.
// For the (n, d) ranges used in this repository a valid pairing is found
// after a handful of restarts with overwhelming probability; the function
// gives up and returns an error after maxRestarts attempts.
func RandomRegular(n, d int, r *prng.Rand) (*Graph, error) {
	const maxRestarts = 1000
	switch {
	case d < 0 || n < 0:
		return nil, fmt.Errorf("graph: RandomRegular(%d, %d): negative parameter", n, d)
	case d >= n:
		return nil, fmt.Errorf("graph: RandomRegular(%d, %d): need d < n", n, d)
	case n*d%2 != 0:
		return nil, fmt.Errorf("graph: RandomRegular(%d, %d): n*d must be even", n, d)
	}
	if d == 0 {
		return NewBuilder(n).Build(), nil
	}
	if d == n-1 {
		// K_n is the unique (n-1)-regular graph; the configuration model
		// almost never produces a simple pairing for it.
		return Complete(n), nil
	}
	stubs := make([]int, 0, n*d)
	for attempt := 0; attempt < maxRestarts; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		// Greedily accept valid pairs, then repair the conflicting leftovers
		// with random edge swaps (the standard configuration-model repair;
		// plain rejection has success probability ~e^(-d²/4) and stalls
		// already at d = 6).
		b := NewBuilder(n)
		var leftover [][2]int
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || b.HasEdge(u, v) {
				leftover = append(leftover, [2]int{u, v})
				continue
			}
			mustAdd(b, u, v)
		}
		if g, ok := repairPairing(b, leftover, n, r); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d, %d): no simple pairing after %d restarts", n, d, maxRestarts)
}

// repairPairing resolves leftover (conflicting) stub pairs by splicing them
// into randomly chosen accepted edges: a leftover pair {u, v} and an edge
// {x, y} with all four nodes distinct, u–x and v–y absent, are replaced by
// u–x and v–y. Returns the finished graph, or ok=false if a leftover could
// not be placed within its swap budget.
func repairPairing(b *Builder, leftover [][2]int, n int, r *prng.Rand) (*Graph, bool) {
	for _, p := range leftover {
		u, v := p[0], p[1]
		placed := false
		for try := 0; try < 200*n; try++ {
			if len(b.edges) == 0 {
				break
			}
			idx := r.Intn(len(b.edges))
			e := b.edges[idx]
			x, y := e.U, e.V
			if r.Bool() {
				x, y = y, x
			}
			if u == x || u == y || v == x || v == y {
				continue
			}
			if b.HasEdge(u, x) || b.HasEdge(v, y) {
				continue
			}
			b.removeEdgeAt(idx)
			mustAdd(b, u, x)
			mustAdd(b, v, y)
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return b.Build(), true
}

// RandomBoundedDegree returns a random simple graph on n nodes where every
// node has degree at most maxDeg; approximately m edges are attempted. It is
// the workhorse generator for irregular LLL dependency graphs.
func RandomBoundedDegree(n, m, maxDeg int, r *prng.Rand) *Graph {
	if n < 2 || maxDeg < 1 {
		return NewBuilder(max(n, 0)).Build()
	}
	b := NewBuilder(n)
	degree := make([]int, n)
	attempts := 0
	added := 0
	// Cap attempts so pathological parameter combinations terminate.
	for added < m && attempts < 20*m+100 {
		attempts++
		u, v := r.Intn(n), r.Intn(n)
		if u == v || degree[u] >= maxDeg || degree[v] >= maxDeg || b.HasEdge(u, v) {
			continue
		}
		mustAdd(b, u, v)
		degree[u]++
		degree[v]++
		added++
	}
	return b.Build()
}

// HyperCube returns the dim-dimensional hypercube graph on 2^dim nodes.
func HyperCube(dim int) *Graph {
	if dim < 0 || dim > 20 {
		panic("graph: HyperCube dimension out of range")
	}
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				mustAdd(b, v, u)
			}
		}
	}
	return b.Build()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
