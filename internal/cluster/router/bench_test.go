package router

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/service"
)

// BenchmarkRouterPlacement measures the router's pure placement decision
// — spec canonicalisation into the placement key plus the consistent-hash
// preference walk — with no HTTP in the loop. This is the per-request
// overhead the routing tier adds on top of a node's own admission, and it
// must stay in the microsecond range: placement is on the submit path of
// every job, so a regression here taxes the whole cluster's ingest rate.
func BenchmarkRouterPlacement(b *testing.B) {
	ring := cluster.NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, cluster.DefaultVNodes)
	specs := make([]service.JobSpec, 64)
	for i := range specs {
		specs[i] = service.JobSpec{
			Family: service.FamilySinkless, N: 4096,
			Algorithm: service.AlgMTPar, Seed: uint64(i + 1), Cache: true,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, err := service.PlacementKeyFor(specs[i%len(specs)])
		if err != nil {
			b.Fatal(err)
		}
		if got := ring.Prefer(key, 3); len(got) != 3 {
			b.Fatalf("prefer returned %d nodes", len(got))
		}
	}
}
