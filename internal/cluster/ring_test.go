package cluster

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/prng"
)

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	// Two processes that build the ring from the same membership must agree
	// on every owner — construction order must not matter.
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2", "n1"}, 64)
	for i := 0; i < 1000; i++ {
		key := prng.Mix64(uint64(i) ^ 0xbeef)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %x: owners diverge: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Prefer(key, 3), b.Prefer(key, 3)) {
			t.Fatalf("key %x: preference orders diverge", key)
		}
	}
}

func TestRingPreferDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 32)
	for i := 0; i < 200; i++ {
		key := prng.Mix64(uint64(i))
		pref := r.Prefer(key, 3)
		if len(pref) != 3 {
			t.Fatalf("key %x: want 3 distinct nodes, got %v", key, pref)
		}
		if pref[0] != r.Owner(key) {
			t.Fatalf("key %x: Prefer[0] = %q, Owner = %q", key, pref[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("key %x: duplicate node %q in %v", key, n, pref)
			}
			seen[n] = true
		}
	}
	// Asking for more nodes than exist caps at the member count.
	if got := r.Prefer(42, 10); len(got) != 3 {
		t.Fatalf("Prefer(_, 10) on 3 nodes: got %v", got)
	}
}

func TestRingBalance(t *testing.T) {
	// With vnodes, uniformly random keys should land within a reasonable
	// factor of the mean on every node.
	nodes := []string{"a", "b", "c", "d", "e"}
	r := NewRing(nodes, DefaultVNodes)
	counts := map[string]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[r.Owner(prng.Mix64(uint64(i)^0x77))]++
	}
	mean := float64(n) / float64(len(nodes))
	for _, node := range nodes {
		c := float64(counts[node])
		if c < mean/2 || c > 2*mean {
			t.Fatalf("node %s owns %v keys, mean %v: balance outside [mean/2, 2·mean]", node, c, mean)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Removing one node must only move the keys it owned: every key owned
	// by a surviving node keeps its owner.
	before := NewRing([]string{"n1", "n2", "n3"}, DefaultVNodes)
	after := NewRing([]string{"n1", "n2"}, DefaultVNodes)
	moved := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		key := prng.Mix64(uint64(i) ^ 0xabc)
		was, is := before.Owner(key), after.Owner(key)
		if was != "n3" && was != is {
			t.Fatalf("key %x moved from surviving node %q to %q", key, was, is)
		}
		if was != is {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key moved after removing a node — n3 owned nothing?")
	}
}

func TestRingBoundedMovementOnJoin(t *testing.T) {
	// The elasticity hard invariant: adding one node to an N-node ring
	// moves at most (K/N)·(1+ε) of K keys, and every moved key moves TO
	// the joiner (no collateral reshuffling between survivors). The
	// expected movement is K/(N+1), so ε = 0.25 leaves ≥ 40% headroom over
	// the vnode-sampling variance at DefaultVNodes.
	const K = 50_000
	const eps = 0.25
	for _, n := range []int{2, 3, 5, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = "node-" + string(rune('a'+i))
		}
		before := NewRing(names, DefaultVNodes)
		after := NewRing(append(append([]string(nil), names...), "joiner"), DefaultVNodes)
		moved := 0
		for i := 0; i < K; i++ {
			key := prng.Mix64(uint64(i) ^ 0x5151)
			was, is := before.Owner(key), after.Owner(key)
			if was == is {
				continue
			}
			if is != "joiner" {
				t.Fatalf("N=%d key %x moved %q → %q, not to the joiner", n, key, was, is)
			}
			moved++
		}
		bound := float64(K) / float64(n) * (1 + eps)
		if float64(moved) > bound {
			t.Fatalf("N=%d: join moved %d keys, bound (K/N)(1+ε) = %.0f", n, moved, bound)
		}
		if moved == 0 {
			t.Fatalf("N=%d: joiner took no keys", n)
		}
	}
}

func TestRingBoundedMovementOnLeave(t *testing.T) {
	// Removing one node moves exactly the departed node's keys — at most
	// (K/N)·(1+ε) of them — and every moved key came from it.
	const K = 50_000
	const eps = 0.25
	for _, n := range []int{3, 5, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = "node-" + string(rune('a'+i))
		}
		gone := names[n-1]
		before := NewRing(names, DefaultVNodes)
		after := NewRing(names[:n-1], DefaultVNodes)
		moved := 0
		for i := 0; i < K; i++ {
			key := prng.Mix64(uint64(i) ^ 0x7272)
			was, is := before.Owner(key), after.Owner(key)
			if was == is {
				continue
			}
			if was != gone {
				t.Fatalf("N=%d key %x moved from surviving node %q", n, key, was)
			}
			moved++
		}
		bound := float64(K) / float64(n) * (1 + eps)
		if float64(moved) > bound {
			t.Fatalf("N=%d: leave moved %d keys, bound (K/N)(1+ε) = %.0f", n, moved, bound)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Owner(1); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Prefer(1, 3); got != nil {
		t.Fatalf("empty ring prefer = %v", got)
	}
	one := NewRing([]string{"solo"}, 8)
	if got := one.Owner(99); got != "solo" {
		t.Fatalf("single ring owner = %q", got)
	}
}

func TestMembersProbeStates(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Write([]byte("ok\n"))
		case "/debug/vars":
			w.Write([]byte(`{"gauges":{"service_queue_depth":3,"service_jobs_running":2}}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer up.Close()
	var draining atomic.Bool
	drain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer drain.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // immediately: probes must fail

	m := NewMembers(map[string]string{
		"up":    up.URL,
		"drain": drain.URL,
		"dead":  dead.URL,
	}, nil)
	// One failed probe suffices for down here; the threshold behaviour has
	// its own tests in members_test.go.
	m.SetDetector(DetectorConfig{DownAfter: 1})
	if st := m.State("up"); st != StateUnknown {
		t.Fatalf("pre-poll state = %v, want unknown", st)
	}
	if !m.State("up").Usable() {
		t.Fatal("unknown state must be usable (router pre-first-poll)")
	}
	draining.Store(true)
	m.Poll(t.Context())

	if st := m.State("up"); st != StateUp {
		t.Fatalf("up node state = %v", st)
	}
	if st := m.State("drain"); st != StateDraining {
		t.Fatalf("draining node state = %v", st)
	}
	if st := m.State("dead"); st != StateDown {
		t.Fatalf("dead node state = %v", st)
	}
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	for _, st := range snap {
		if st.Name == "up" && (st.Queue != 3 || st.Running != 2) {
			t.Fatalf("up node load = %+v, want queue 3 running 2", st)
		}
	}
	// Draining resolves back to up once the node stops refusing.
	draining.Store(false)
	m.Poll(t.Context())
	if st := m.State("drain"); st != StateUp {
		t.Fatalf("recovered node state = %v", st)
	}
}

func TestMembersOutstandingAndMarkDown(t *testing.T) {
	m := NewMembers(map[string]string{"a": "http://x", "b": "http://y"}, nil)
	m.AddOutstanding("a", 4)
	m.AddOutstanding("b", 2)
	if got := m.Outstanding("a"); got != 4 {
		t.Fatalf("outstanding(a) = %d", got)
	}
	if mean := m.MeanOutstanding(); mean != 3 {
		t.Fatalf("mean outstanding = %v, want 3", mean)
	}
	m.AddOutstanding("a", -10) // clamps at zero
	if got := m.Outstanding("a"); got != 0 {
		t.Fatalf("clamped outstanding(a) = %d", got)
	}
	m.MarkDown("b", nil)
	if st := m.State("b"); st != StateDown {
		t.Fatalf("marked-down state = %v", st)
	}
	// Mean over usable members only: "a" (unknown → usable) counts, the
	// downed "b" does not.
	m.AddOutstanding("a", 6)
	if mean := m.MeanOutstanding(); mean != 6 {
		t.Fatalf("mean over usable members = %v, want 6", mean)
	}
}

func TestMembersBackgroundPoller(t *testing.T) {
	var probes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			probes.Add(1)
		}
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()
	m := NewMembers(map[string]string{"n": srv.URL}, nil)
	m.Start(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for probes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	if probes.Load() < 2 {
		t.Fatalf("background poller probed %d times", probes.Load())
	}
	if st := m.State("n"); st != StateUp {
		t.Fatalf("polled state = %v", st)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, key := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		s := FormatKey(key)
		got, ok := ParseKey(s)
		if !ok || got != key {
			t.Fatalf("key %x round-trips to %x (ok=%v)", key, got, ok)
		}
	}
	if _, ok := ParseKey("zz"); ok {
		t.Fatal("malformed key parsed")
	}
}
