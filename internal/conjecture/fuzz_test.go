package conjecture

import (
	"math"
	"testing"

	"repro/internal/srep"
)

// FuzzFeasibleSoundness checks that every witness the numeric solver
// accepts is genuinely valid and dominating — for arbitrary rank-3 and
// rank-4 targets — and that on rank 3 it never claims feasibility outside
// the exact surface.
func FuzzFeasibleSoundness(f *testing.F) {
	f.Add(1.0, 1.0, 1.0, -1.0)
	f.Add(0.25, 1.5, 0.1, -1.0)
	f.Add(1.2, 0.8, 1.5, 0.6)
	f.Add(4.0, 4.0, 4.0, 4.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		target := []float64{a, b, c}
		if d >= 0 {
			target = append(target, d)
		}
		w, ok := Feasible(target)
		if !ok {
			return
		}
		if !w.Valid(1e-9) {
			t.Fatalf("invalid witness accepted for %v", target)
		}
		if !w.Dominates(target, 1e-6) {
			t.Fatalf("non-dominating witness for %v: products %v", target, w.Products())
		}
		if len(target) == 3 {
			// Soundness vs the exact surface (allow boundary slack).
			if !srep.IsRepresentable(a, b, c, 1e-5) {
				t.Fatalf("solver accepted non-representable rank-3 target %v", target)
			}
		}
	})
}
