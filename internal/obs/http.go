package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Endpoint is an extra route mounted on the observability handler, used by
// daemons to co-host subsystem endpoints (e.g. the SLO engine's /slo) on
// the same listener as /metrics.
type Endpoint struct {
	Pattern string
	Handler http.Handler
}

// Handler returns an http.Handler exposing the registry and the process:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   JSON snapshot (expvar-style)
//	/debug/pprof  net/http/pprof index (profile, heap, goroutine, ...)
//
// reg may be nil; the endpoints then serve empty metric sets but pprof
// still works, so a metrics listener is useful even for pure profiling.
// Additional endpoints are mounted verbatim (nil handlers are skipped).
func Handler(reg *Registry, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Handler != nil && e.Pattern != "" {
			mux.Handle(e.Pattern, e.Handler)
		}
	}
	return mux
}

// Server is a running metrics listener started by Serve.
type Server struct {
	// Addr is the bound address (host:port), useful when Serve was given
	// ":0".
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr and serves Handler(reg, extra...) on it in a background
// goroutine. Close the returned Server to stop it. addr follows
// net.Listen("tcp", addr) conventions; ":0" picks a free port.
func Serve(addr string, reg *Registry, extra ...Endpoint) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg, extra...), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close stops the listener. No-op on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
