package lb

import (
	"testing"

	"repro/internal/prng"
)

func TestDecideValidation(t *testing.T) {
	if _, err := Decide(0, 5); err == nil {
		t.Fatal("radius 0 accepted")
	}
	if _, err := Decide(1, 4); err == nil {
		t.Fatal("ID space below window accepted")
	}
	if _, err := Decide(5, 64); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestRadius1FrontierExact(t *testing.T) {
	// The exact finite frontier: radius-1 algorithms exist only when the
	// whole cycle fits in the view window (m = 5); one extra identifier
	// already kills them. Sinkless orientation on a cycle is equivalent to
	// picking a globally consistent direction, so this is the expected —
	// and now machine-checked — answer.
	c5, err := Decide(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !c5.Solvable {
		t.Fatal("radius 1, m=5 should be solvable (full cycle visible)")
	}
	for _, m := range []int{6, 7, 8} {
		c, err := Decide(1, m)
		if err != nil {
			t.Fatal(err)
		}
		if c.Solvable {
			t.Fatalf("radius 1, m=%d should be UNSAT", m)
		}
	}
}

func TestRadius2FrontierExact(t *testing.T) {
	c7, err := Decide(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !c7.Solvable {
		t.Fatal("radius 2, m=7 should be solvable (full cycle visible)")
	}
	c8, err := Decide(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c8.Solvable {
		t.Fatal("radius 2, m=8 should be UNSAT")
	}
}

func TestExtractedRuleAvoidsSinksOnAllCycles(t *testing.T) {
	// SAT side soundness: the extracted radius-1 rule for m=5 must avoid
	// sinks on EVERY 5-cycle over the full ID space (all circular
	// arrangements).
	c, err := Decide(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{0, 1, 2, 3, 4}
	var rec func(k int)
	count := 0
	rec = func(k int) {
		if k == len(perm) {
			sinks, err := c.CheckCycle(perm)
			if err != nil {
				t.Fatal(err)
			}
			if len(sinks) != 0 {
				t.Fatalf("rule leaves sinks %v on cycle %v", sinks, perm)
			}
			count++
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	// Fix position 0 (rotation symmetry is irrelevant for the check but
	// checking all permutations is cheap anyway).
	rec(1)
	if count != 24 {
		t.Fatalf("checked %d arrangements, want 24", count)
	}
}

func TestExtractedRadius2RuleOnRandomCycles(t *testing.T) {
	c, err := Decide(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(3)
	base := []int{0, 1, 2, 3, 4, 5, 6}
	for trial := 0; trial < 200; trial++ {
		ids := append([]int(nil), base...)
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		sinks, err := c.CheckCycle(ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(sinks) != 0 {
			t.Fatalf("trial %d: sinks %v on cycle %v", trial, sinks, ids)
		}
	}
}

func TestOrientErrors(t *testing.T) {
	unsat, err := Decide(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unsat.Orient([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("Orient on UNSAT certificate accepted")
	}
	sat, err := Decide(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sat.Orient([]int{0, 1, 2}); err == nil {
		t.Fatal("wrong view length accepted")
	}
	if _, err := sat.Orient([]int{0, 1, 1, 2}); err == nil {
		t.Fatal("repeated-ID view accepted")
	}
}

func TestRuleConsistencyUnderReversal(t *testing.T) {
	// The same physical edge seen from both directions must get opposite
	// "toward right" bits — the XOR constraints in action.
	c, err := Decide(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	views := [][]int{{0, 1, 2, 3}, {4, 2, 0, 1}, {3, 0, 4, 1}}
	for _, v := range views {
		fw, err := c.Orient(v)
		if err != nil {
			t.Fatal(err)
		}
		rev := []int{v[3], v[2], v[1], v[0]}
		bw, err := c.Orient(rev)
		if err != nil {
			t.Fatal(err)
		}
		if fw == bw {
			t.Fatalf("view %v and its reversal agree (%v); edge would be bi-oriented", v, fw)
		}
	}
}

func BenchmarkDecideRadius1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Decide(1, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecideRadius2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Decide(2, 8); err != nil {
			b.Fatal(err)
		}
	}
}
